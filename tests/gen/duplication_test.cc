// The --duplication corpus knob (gen::StampDuplicateSubtrees): stamping
// replaces whole sibling families with copies of the first child, so the
// result is still a valid pre-order tree, is deterministic per seed, and
// actually contains the duplicated subtrees the DAG-compressed evaluation
// path keys on.

#include <gtest/gtest.h>

#include "doc/subtree_classes.h"
#include "gen/corpus.h"

namespace xfrag::gen {
namespace {

using doc::NodeId;

RawCorpus MakeRaw(size_t nodes, uint64_t seed) {
  CorpusProfile profile;
  profile.target_nodes = nodes;
  profile.seed = seed;
  return GenerateRaw(profile);
}

TEST(StampDuplicateSubtreesTest, DeterministicForSeed) {
  RawCorpus a = MakeRaw(300, 11);
  RawCorpus b = MakeRaw(300, 11);
  Rng rng_a(99), rng_b(99);
  StampDuplicateSubtrees(&a, 0.6, &rng_a);
  StampDuplicateSubtrees(&b, 0.6, &rng_b);
  EXPECT_EQ(a.parents, b.parents);
  EXPECT_EQ(a.tags, b.tags);
  EXPECT_EQ(a.texts, b.texts);
}

TEST(StampDuplicateSubtreesTest, ZeroRateIsIdentity) {
  RawCorpus raw = MakeRaw(200, 12);
  RawCorpus before = raw;
  Rng rng(5);
  StampDuplicateSubtrees(&raw, 0.0, &rng);
  EXPECT_EQ(raw.parents, before.parents);
  EXPECT_EQ(raw.texts, before.texts);
}

TEST(StampDuplicateSubtreesTest, StampedCorpusIsAValidPreOrderTree) {
  RawCorpus raw = MakeRaw(400, 13);
  Rng rng(7);
  StampDuplicateSubtrees(&raw, 0.9, &rng);
  ASSERT_GT(raw.size(), 0u);
  EXPECT_EQ(raw.parents[0], doc::kNoNode);
  // Parent ids precede their children — the pre-order invariant Materialize
  // validates too.
  for (size_t i = 1; i < raw.size(); ++i) {
    EXPECT_LT(raw.parents[i], i) << "node " << i;
  }
  auto document = Materialize(raw);
  ASSERT_TRUE(document.ok()) << document.status().ToString();
}

TEST(StampDuplicateSubtreesTest, ProducesDuplicationTheIndexDetects) {
  RawCorpus raw = MakeRaw(400, 14);
  Rng rng(8);
  StampDuplicateSubtrees(&raw, 0.7, &rng);
  auto document = Materialize(raw);
  ASSERT_TRUE(document.ok());
  doc::SubtreeClassInterner interner;
  auto index = doc::SubtreeClassIndex::Build(*document, &interner);
  EXPECT_TRUE(index.has_duplication());
  EXPECT_GT(index.duplicated_classes(), 0u);
  // A substantial share of the corpus sits inside duplicated subtrees.
  EXPECT_GT(index.duplicated_nodes(), document->size() / 10);
}

TEST(StampDuplicateSubtreesTest, PlantedKeywordsSurviveInsideCopies) {
  RawCorpus raw = MakeRaw(400, 15);
  Rng rng(9);
  PlantKeyword(&raw, "needle", 24, PlantMode::kScattered, &rng);
  StampDuplicateSubtrees(&raw, 0.5, &rng);
  // Stamping can wipe planted occurrences (a replaced sibling carried them)
  // or multiply them (the donor did); either way the text mechanism keeps
  // working — re-planting after the stamp always lands.
  PlantKeyword(&raw, "anchor", 8, PlantMode::kScattered, &rng);
  size_t anchors = 0;
  for (const std::string& text : raw.texts) {
    if (text.find("anchor") != std::string::npos) ++anchors;
  }
  EXPECT_GE(anchors, 8u);
  ASSERT_TRUE(Materialize(raw).ok());
}

TEST(CorpusProfileTest, DuplicationKnobStampsDuringGeneration) {
  CorpusProfile profile;
  profile.target_nodes = 300;
  profile.seed = 16;
  profile.duplication = 0.8;
  auto document = Materialize(GenerateRaw(profile));
  ASSERT_TRUE(document.ok());
  doc::SubtreeClassInterner interner;
  auto index = doc::SubtreeClassIndex::Build(*document, &interner);
  EXPECT_TRUE(index.has_duplication());

  profile.duplication = 0.0;
  auto plain = Materialize(GenerateRaw(profile));
  ASSERT_TRUE(plain.ok());
  doc::SubtreeClassInterner plain_interner;
  auto plain_index = doc::SubtreeClassIndex::Build(*plain, &plain_interner);
  // Random paragraph texts collide with negligible probability: the
  // unstamped corpus is duplicate-free, which is what arms the kernels'
  // zero-cost bypass.
  EXPECT_FALSE(plain_index.has_duplication());
}

}  // namespace
}  // namespace xfrag::gen
