// The Figure-1 reconstruction must satisfy every structural fact the paper's
// running example depends on.

#include "gen/paper_document.h"

#include <gtest/gtest.h>

#include "text/inverted_index.h"
#include "xml/parser.h"

namespace xfrag::gen {
namespace {

using doc::NodeId;

class PaperDocumentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = BuildPaperDocument();
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    document_ = std::make_unique<doc::Document>(std::move(d).value());
  }

  std::unique_ptr<doc::Document> document_;
};

TEST_F(PaperDocumentTest, HasExactly82Nodes) {
  EXPECT_EQ(document_->size(), 82u);
}

TEST_F(PaperDocumentTest, IdAttributesMatchPreOrderRanks) {
  // Every node carries an id attribute "n<k>" equal to its pre-order rank;
  // it ends up in the node's text via attribute flattening.
  for (NodeId n = 0; n < document_->size(); ++n) {
    std::string marker = "n" + std::to_string(n);
    EXPECT_NE(document_->text(n).find(marker), std::string::npos)
        << "node " << n << " text: " << document_->text(n);
  }
}

TEST_F(PaperDocumentTest, AncestorChains) {
  // n17, n18 under n16 under n14 under n1 under n0.
  EXPECT_EQ(document_->parent(17), 16u);
  EXPECT_EQ(document_->parent(18), 16u);
  EXPECT_EQ(document_->parent(16), 14u);
  EXPECT_EQ(document_->parent(14), 1u);
  EXPECT_EQ(document_->parent(1), 0u);
  // n81 under n80 under n79 under n0.
  EXPECT_EQ(document_->parent(81), 80u);
  EXPECT_EQ(document_->parent(80), 79u);
  EXPECT_EQ(document_->parent(79), 0u);
}

TEST_F(PaperDocumentTest, TagsAreDocumentCentric) {
  EXPECT_EQ(document_->tag(0), "article");
  EXPECT_EQ(document_->tag(1), "chapter");
  EXPECT_EQ(document_->tag(14), "section");
  EXPECT_EQ(document_->tag(16), "subsection");
  EXPECT_EQ(document_->tag(17), "par");
  EXPECT_EQ(document_->tag(18), "par");
  EXPECT_EQ(document_->tag(81), "par");
}

TEST_F(PaperDocumentTest, KeywordPostingsAreExact) {
  auto index = text::InvertedIndex::Build(*document_);
  EXPECT_EQ(index.Lookup("xquery"), (std::vector<NodeId>{17, 18}));
  EXPECT_EQ(index.Lookup("optimization"), (std::vector<NodeId>{16, 17, 81}));
}

TEST_F(PaperDocumentTest, Lcas) {
  EXPECT_EQ(document_->Lca(17, 18), 16u);
  EXPECT_EQ(document_->Lca(17, 81), 0u);
  EXPECT_EQ(document_->Lca(16, 17), 16u);
}

TEST_F(PaperDocumentTest, XmlFormParsesBackToSameShape) {
  std::string xml_text = PaperDocumentXml();
  auto dom = xml::Parse(xml_text);
  ASSERT_TRUE(dom.ok()) << dom.status().ToString();
  auto reparsed = doc::Document::FromDom(*dom);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), document_->size());
  for (NodeId n = 0; n < document_->size(); ++n) {
    EXPECT_EQ(reparsed->parent(n), document_->parent(n)) << "node " << n;
    EXPECT_EQ(reparsed->tag(n), document_->tag(n)) << "node " << n;
  }
}

TEST_F(PaperDocumentTest, DomAndDocumentAgree) {
  xml::XmlDocument dom = BuildPaperDom();
  EXPECT_EQ(dom.root().SubtreeElementCount(), 82u);
}

}  // namespace
}  // namespace xfrag::gen
