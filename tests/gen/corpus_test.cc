#include "gen/corpus.h"

#include <gtest/gtest.h>

#include <set>

#include "text/inverted_index.h"

namespace xfrag::gen {
namespace {

using doc::NodeId;

TEST(VocabularyWordTest, DeterministicAndDistinct) {
  std::set<std::string> words;
  for (size_t i = 0; i < 2000; ++i) {
    std::string w = VocabularyWord(i);
    EXPECT_GE(w.size(), 6u);
    EXPECT_TRUE(words.insert(w).second) << "duplicate word " << w;
  }
  EXPECT_EQ(VocabularyWord(42), VocabularyWord(42));
}

TEST(GenerateRawTest, DeterministicForSeed) {
  CorpusProfile profile;
  profile.target_nodes = 200;
  profile.seed = 3;
  RawCorpus a = GenerateRaw(profile);
  RawCorpus b = GenerateRaw(profile);
  EXPECT_EQ(a.parents, b.parents);
  EXPECT_EQ(a.texts, b.texts);
  profile.seed = 4;
  RawCorpus c = GenerateRaw(profile);
  EXPECT_NE(a.parents, c.parents);
}

TEST(GenerateRawTest, RespectsNodeBudgetAndDepth) {
  CorpusProfile profile;
  profile.target_nodes = 500;
  profile.max_depth = 5;
  profile.seed = 9;
  RawCorpus corpus = GenerateRaw(profile);
  EXPECT_GE(corpus.size(), 100u);         // Grew substantially.
  EXPECT_LE(corpus.size(), 520u);         // Budget respected (± last family).
  auto document = Materialize(corpus);
  ASSERT_TRUE(document.ok());
  EXPECT_LT(document->height(), 5u);
}

TEST(GenerateRawTest, ParentsArePreOrder) {
  CorpusProfile profile;
  profile.target_nodes = 300;
  profile.seed = 5;
  RawCorpus corpus = GenerateRaw(profile);
  ASSERT_EQ(corpus.parents[0], doc::kNoNode);
  for (size_t i = 1; i < corpus.size(); ++i) {
    EXPECT_LT(corpus.parents[i], i);
  }
}

TEST(GenerateRawTest, TagsFollowDepthProfile) {
  CorpusProfile profile;
  profile.target_nodes = 100;
  profile.seed = 6;
  RawCorpus corpus = GenerateRaw(profile);
  auto document = Materialize(corpus);
  ASSERT_TRUE(document.ok());
  EXPECT_EQ(document->tag(0), "book");
  for (NodeId n = 1; n < document->size(); ++n) {
    if (document->depth(n) == 1) {
      EXPECT_EQ(document->tag(n), "chapter");
    }
    if (document->depth(n) == 2) {
      EXPECT_EQ(document->tag(n), "section");
    }
  }
}

TEST(PlantKeywordTest, ScatteredPlantsExactCount) {
  CorpusProfile profile;
  profile.target_nodes = 400;
  profile.seed = 7;
  RawCorpus corpus = GenerateRaw(profile);
  Rng rng(8);
  auto planted =
      PlantKeyword(&corpus, "plantedkw", 25, PlantMode::kScattered, &rng);
  EXPECT_EQ(planted.size(), 25u);
  EXPECT_TRUE(std::is_sorted(planted.begin(), planted.end()));

  auto document = Materialize(corpus);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  EXPECT_EQ(index.Lookup("plantedkw"), planted);
}

TEST(PlantKeywordTest, ClusteredStaysInsideOneSubtree) {
  CorpusProfile profile;
  profile.target_nodes = 500;
  profile.seed = 11;
  RawCorpus corpus = GenerateRaw(profile);
  Rng rng(12);
  auto planted =
      PlantKeyword(&corpus, "clusterkw", 20, PlantMode::kClustered, &rng);
  ASSERT_GE(planted.size(), 10u);
  auto document = Materialize(corpus);
  ASSERT_TRUE(document.ok());
  // All planted nodes lie under their collective LCA, and that LCA subtree
  // is much smaller than the document.
  NodeId lca = document->Lca(planted);
  EXPECT_LT(document->subtree_size(lca), document->size() / 2);
}

TEST(PlantKeywordTest, SiblingsShareParents) {
  CorpusProfile profile;
  profile.target_nodes = 400;
  profile.seed = 13;
  RawCorpus corpus = GenerateRaw(profile);
  Rng rng(14);
  auto planted =
      PlantKeyword(&corpus, "sibkw", 8, PlantMode::kSiblings, &rng);
  ASSERT_GE(planted.size(), 4u);
  std::set<NodeId> parents;
  for (NodeId n : planted) parents.insert(corpus.parents[n]);
  EXPECT_LE(parents.size(), 2u);  // At most one overflow family.
}

TEST(PlantKeywordTest, CountCappedAtCorpusSize) {
  CorpusProfile profile;
  profile.target_nodes = 30;
  profile.max_depth = 3;
  profile.seed = 15;
  RawCorpus corpus = GenerateRaw(profile);
  Rng rng(16);
  auto planted = PlantKeyword(&corpus, "capkw", 10000,
                              PlantMode::kScattered, &rng);
  EXPECT_EQ(planted.size(), corpus.size());
}

TEST(PlantKeywordTest, DistinctKeywordsIndependent) {
  CorpusProfile profile;
  profile.target_nodes = 300;
  profile.seed = 17;
  RawCorpus corpus = GenerateRaw(profile);
  Rng rng(18);
  auto one = PlantKeyword(&corpus, "kwalpha", 10, PlantMode::kScattered, &rng);
  auto two = PlantKeyword(&corpus, "kwbeta", 10, PlantMode::kScattered, &rng);
  auto document = Materialize(corpus);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  EXPECT_EQ(index.Lookup("kwalpha"), one);
  EXPECT_EQ(index.Lookup("kwbeta"), two);
}

TEST(ZipfTextTest, HighSkewConcentratesVocabulary) {
  CorpusProfile skewed;
  skewed.target_nodes = 300;
  skewed.zipf_skew = 1.5;
  skewed.seed = 19;
  CorpusProfile flat = skewed;
  flat.zipf_skew = 0.0;

  auto count_terms = [](const CorpusProfile& profile) {
    RawCorpus corpus = GenerateRaw(profile);
    auto document = Materialize(corpus);
    EXPECT_TRUE(document.ok());
    text::IndexOptions options;
    options.index_tag_names = false;
    auto index = text::InvertedIndex::Build(*document, options);
    return index.term_count();
  };
  // Skewed text re-uses frequent words, so its vocabulary is smaller.
  EXPECT_LT(count_terms(skewed), count_terms(flat));
}

}  // namespace
}  // namespace xfrag::gen
