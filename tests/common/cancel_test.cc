// common/cancel: flag semantics, deadline arming, and the null-token helper.

#include "common/cancel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace xfrag {
namespace {

TEST(CancelToken, StartsClear) {
  CancelToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_FALSE(token.has_deadline());
}

TEST(CancelToken, CancelTrips) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_TRUE(token.ShouldStop());  // stays tripped
}

TEST(CancelToken, FutureDeadlineDoesNotTrip) {
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::hours(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.ShouldStop());
}

TEST(CancelToken, ExpiredDeadlineTrips) {
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::nanoseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(token.ShouldStop());
  // Expiry is latched: later calls stay tripped without re-reading the clock.
  EXPECT_TRUE(token.ShouldStop());
}

TEST(CancelToken, NullTokenNeverStops) {
  EXPECT_FALSE(ShouldStop(nullptr));
  CancelToken token;
  EXPECT_FALSE(ShouldStop(&token));
  token.Cancel();
  EXPECT_TRUE(ShouldStop(&token));
}

TEST(CancelToken, VisibleAcrossThreads) {
  CancelToken token;
  std::thread canceller([&token] { token.Cancel(); });
  canceller.join();
  EXPECT_TRUE(token.ShouldStop());
}

}  // namespace
}  // namespace xfrag
