#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace xfrag {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversWholeRange) {
  Rng rng(11);
  std::map<int64_t, int> seen;
  for (int i = 0; i < 2000; ++i) ++seen[rng.UniformInt(0, 9)];
  EXPECT_EQ(seen.size(), 10u);
  for (const auto& [value, count] : seen) {
    EXPECT_GT(count, 100) << "value " << value << " under-sampled";
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(ZipfTest, UniformWhenSkewZero) {
  Rng rng(13);
  ZipfSampler zipf(10, 0.0);
  std::map<size_t, int> seen;
  for (int i = 0; i < 10000; ++i) ++seen[zipf.Sample(&rng)];
  for (const auto& [rank, count] : seen) {
    EXPECT_NEAR(count, 1000, 250) << "rank " << rank;
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.2);
  int rank0 = 0, rank50plus = 0;
  for (int i = 0; i < 10000; ++i) {
    size_t r = zipf.Sample(&rng);
    if (r == 0) ++rank0;
    if (r >= 50) ++rank50plus;
  }
  EXPECT_GT(rank0, rank50plus);
}

TEST(ZipfTest, SamplesWithinUniverse) {
  Rng rng(19);
  ZipfSampler zipf(7, 0.9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 7u);
  }
}

}  // namespace
}  // namespace xfrag
