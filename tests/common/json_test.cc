// common/json: writer round-trips, strict-parser acceptance/rejection with
// error offsets, and a malformed-input corpus that must never crash.

#include "common/json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xfrag::json {
namespace {

TEST(JsonWriter, ScalarForms) {
  EXPECT_EQ(Value().Dump(), "null");
  EXPECT_EQ(Value(true).Dump(), "true");
  EXPECT_EQ(Value(false).Dump(), "false");
  EXPECT_EQ(Value(42).Dump(), "42");
  EXPECT_EQ(Value(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(Value(uint64_t{18446744073709551615ULL}).Dump(),
            "18446744073709551615");
  EXPECT_EQ(Value(1.5).Dump(), "1.5");
  EXPECT_EQ(Value("hi").Dump(), "\"hi\"");
}

TEST(JsonWriter, IntegersNeverGrowFractions) {
  // Node ids and counters must round-trip as "42", not "42.0".
  Value v(uint64_t{42});
  EXPECT_TRUE(v.is_integral());
  EXPECT_EQ(v.Dump(), "42");
}

TEST(JsonWriter, StringEscapes) {
  EXPECT_EQ(Value("a\"b\\c\n\t\x01").Dump(),
            "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonWriter, ObjectsPreserveInsertionOrderAndOverwriteInPlace) {
  Value obj = Value::Object();
  obj.Set("b", 1).Set("a", 2).Set("b", 3);
  EXPECT_EQ(obj.Dump(), "{\"b\":3,\"a\":2}");
}

TEST(JsonWriter, PrettyPrint) {
  Value obj = Value::Object();
  obj.Set("xs", Value::Array().Append(1).Append(2));
  EXPECT_EQ(obj.Dump(2), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonWriter, EmptyContainers) {
  EXPECT_EQ(Value::Array().Dump(), "[]");
  EXPECT_EQ(Value::Object().Dump(), "{}");
  EXPECT_EQ(Value::Object().Dump(2), "{}");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE((*Parse("null")).is_null());
  EXPECT_EQ((*Parse("true")).AsBool(), true);
  EXPECT_EQ((*Parse("-17")).AsInt(), -17);
  EXPECT_TRUE((*Parse("-17")).is_integral());
  EXPECT_DOUBLE_EQ((*Parse("2.5e2")).AsDouble(), 250.0);
  EXPECT_FALSE((*Parse("2.5e2")).is_integral());
  EXPECT_EQ((*Parse("\"x\"")).AsString(), "x");
}

TEST(JsonParse, NestedStructure) {
  auto v = Parse(R"({"a": [1, {"b": "c"}, null], "d": false})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("a")->size(), 3u);
  EXPECT_EQ((*v->Find("a"))[1].Find("b")->AsString(), "c");
  EXPECT_EQ(v->Find("d")->AsBool(), false);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ((*Parse("\"\\u0041\"")).AsString(), "A");
  EXPECT_EQ((*Parse("\"\\u00e9\"")).AsString(), "\xC3\xA9");       // é
  EXPECT_EQ((*Parse("\"\\u2026\"")).AsString(), "\xE2\x80\xA6");   // …
  // Surrogate pair: U+1F600.
  EXPECT_EQ((*Parse("\"\\uD83D\\uDE00\"")).AsString(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonParse, RoundTripThroughDump) {
  const std::string text =
      R"({"terms":["xquery","optimization"],"deadline_ms":250,)"
      R"("nested":[{"k":-1.25},[],{},null,true]})";
  auto v = Parse(text);
  ASSERT_TRUE(v.ok());
  auto again = Parse(v->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*v, *again);
  EXPECT_EQ(v->Dump(), again->Dump());
}

TEST(JsonParse, ReportsErrorOffsets) {
  size_t offset = 0;
  auto v = Parse(R"({"a": })", &offset);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(offset, 6u);

  auto trailing = Parse("1 x", &offset);
  EXPECT_FALSE(trailing.ok());
  EXPECT_EQ(offset, 2u);
}

TEST(JsonParse, RejectsStrictly) {
  // Each input is malformed under RFC 8259; Parse must fail, never crash.
  const std::vector<std::string> corpus = {
      "", " ", "{", "}", "[", "]", "{]", "[}", "{\"a\":1,}", "[1,]",
      "[1 2]", "{\"a\" 1}", "{1: 2}", "nul", "tru", "falsey", "+1", "01",
      "1.", ".5", "1e", "1e+", "--1", "\"", "\"\\\"", "\"\\x\"",
      "\"\\u12\"", "\"\\uD83D\"", "\"\\uDE00\"", "\"\\uD83D\\u0041\"",
      "\"unterminated", "'single'", "{\"a\": 1} {\"b\": 2}", "[1], [2]",
      "{\"a\"}", "// comment\n1", "[1, /*c*/ 2]", "NaN", "Infinity",
      std::string("\"ab\x01ule\""),  // raw control character in a string
  };
  for (const std::string& text : corpus) {
    size_t offset = 0;
    auto v = Parse(text, &offset);
    EXPECT_FALSE(v.ok()) << "accepted: " << text;
    EXPECT_LE(offset, text.size());
  }
}

TEST(JsonParse, DepthLimitProtectsTheStack) {
  std::string deep(kMaxParseDepth + 8, '[');
  EXPECT_FALSE(Parse(deep).ok());
  std::string ok_depth;
  for (int i = 0; i < kMaxParseDepth - 1; ++i) ok_depth += '[';
  std::string closed = ok_depth + std::string(kMaxParseDepth - 1, ']');
  EXPECT_TRUE(Parse(closed).ok());
}

TEST(JsonParse, MutationFuzzNeverCrashes) {
  // Deterministic single-byte mutations of a valid document: every variant
  // must either parse or fail cleanly with an in-bounds offset.
  const std::string base =
      R"({"terms":["a","b"],"deadline_ms":1.5,"explain":true,"n":[1,2]})";
  const char replacements[] = {'"', '{', '}', '[', ']', ',', ':',
                               '\\', '0', 'x', ' ', '\n', '\x7f'};
  for (size_t i = 0; i < base.size(); ++i) {
    for (char c : replacements) {
      std::string mutated = base;
      mutated[i] = c;
      size_t offset = 0;
      auto v = Parse(mutated, &offset);
      if (!v.ok()) {
        EXPECT_LE(offset, mutated.size());
      }
    }
  }
}

TEST(JsonValue, RemoveDropsKeyAndPreservesOrder) {
  Value v = *Parse(R"({"a":1,"b":2,"c":3})");
  EXPECT_TRUE(v.Remove("b"));
  EXPECT_EQ(v.Dump(), R"({"a":1,"c":3})");
  EXPECT_FALSE(v.Remove("b"));  // already gone
  EXPECT_FALSE(v.Remove("zz"));
  EXPECT_TRUE(v.Remove("a"));
  EXPECT_TRUE(v.Remove("c"));
  EXPECT_EQ(v.Dump(), "{}");
  Value arr = *Parse("[1,2]");
  EXPECT_FALSE(arr.Remove("a"));  // non-objects never remove
  EXPECT_FALSE(Value(7).Remove("a"));
}

TEST(JsonValue, Equality) {
  EXPECT_EQ(Value(1), Value(int64_t{1}));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_EQ(*Parse("{\"a\":[1,2]}"), *Parse("{\"a\":[1,2]}"));
  EXPECT_NE(*Parse("{\"a\":[1,2]}"), *Parse("{\"a\":[2,1]}"));
}

}  // namespace
}  // namespace xfrag::json
