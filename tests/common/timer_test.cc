#include "common/timer.h"

#include <gtest/gtest.h>

namespace xfrag {
namespace {

// Burns a little CPU; the EXPECT keeps the loop from being optimized away.
void BurnTime(int iterations) {
  uint64_t sink = 0;
  for (int i = 0; i < iterations; ++i) sink += static_cast<uint64_t>(i);
  EXPECT_GT(sink, 0u);
}

TEST(TimerTest, ElapsedIsMonotonicNonNegative) {
  Timer timer;
  int64_t first = timer.ElapsedNanos();
  EXPECT_GE(first, 0);
  BurnTime(100000);
  int64_t second = timer.ElapsedNanos();
  EXPECT_GE(second, first);
}

TEST(TimerTest, UnitsAreConsistent) {
  Timer timer;
  BurnTime(100000);
  int64_t nanos = timer.ElapsedNanos();
  double micros = timer.ElapsedMicros();
  double millis = timer.ElapsedMillis();
  EXPECT_GE(micros, static_cast<double>(nanos) / 1e3);
  EXPECT_GE(millis * 1000.0 + 1.0, micros);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  BurnTime(200000);
  int64_t before = timer.ElapsedNanos();
  timer.Reset();
  int64_t after = timer.ElapsedNanos();
  EXPECT_LT(after, before + 1000000);  // Fresh start (1ms slack).
}

}  // namespace
}  // namespace xfrag
