#include "common/strings.h"

#include <gtest/gtest.h>

namespace xfrag {
namespace {

TEST(SplitTest, KeepsEmptyPieces) {
  auto pieces = Split("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(SplitTest, SingleField) {
  auto pieces = Split("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(SplitWhitespaceTest, DropsEmptyPieces) {
  auto pieces = SplitWhitespace("  alpha\t beta\n\ngamma ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "alpha");
  EXPECT_EQ(pieces[1], "beta");
  EXPECT_EQ(pieces[2], "gamma");
}

TEST(SplitWhitespaceTest, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StripTest, StripsBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  x  "), "x");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("\t a b \n"), "a b");
}

TEST(CaseTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("XQuery"), "xquery");
  EXPECT_EQ(AsciiToLower("ABC123"), "abc123");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("fragment", "frag"));
  EXPECT_FALSE(StartsWith("frag", "fragment"));
  EXPECT_TRUE(EndsWith("fragment", "ment"));
  EXPECT_FALSE(EndsWith("ment", "fragment"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("n%u", 17u), "n17");
  EXPECT_EQ(StrFormat("%s=%d", "beta", 3), "beta=3");
  EXPECT_EQ(StrFormat("%.2f", 0.5), "0.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace xfrag
