// ThreadPool: deterministic chunking, full coverage of the index range,
// reentrancy (nested ParallelFor), and concurrent use from many threads.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace xfrag {
namespace {

TEST(ThreadPoolChunksTest, PartitionIsContiguousAndBalanced) {
  for (size_t n : {0u, 1u, 2u, 7u, 8u, 9u, 100u, 1013u}) {
    for (unsigned parts : {1u, 2u, 3u, 4u, 8u, 16u}) {
      auto chunks = ThreadPool::Chunks(n, parts);
      if (n == 0) {
        EXPECT_TRUE(chunks.empty());
        continue;
      }
      ASSERT_FALSE(chunks.empty());
      EXPECT_LE(chunks.size(), static_cast<size_t>(parts));
      EXPECT_LE(chunks.size(), n);
      // Contiguous cover of [0, n) with near-equal sizes.
      size_t expect_begin = 0;
      size_t min_len = n, max_len = 0;
      for (const auto& [begin, end] : chunks) {
        EXPECT_EQ(begin, expect_begin);
        ASSERT_LT(begin, end);
        min_len = std::min(min_len, end - begin);
        max_len = std::max(max_len, end - begin);
        expect_begin = end;
      }
      EXPECT_EQ(expect_begin, n);
      EXPECT_LE(max_len - min_len, 1u);
    }
  }
}

TEST(ThreadPoolChunksTest, PartitionIsDeterministic) {
  auto a = ThreadPool::Chunks(1013, 7);
  auto b = ThreadPool::Chunks(1013, 7);
  EXPECT_EQ(a, b);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (unsigned parallelism : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(parallelism);
    EXPECT_EQ(pool.parallelism(), std::max(parallelism, 1u));
    const size_t n = 10007;
    std::vector<std::atomic<int>> visits(n);
    pool.ParallelFor(n, [&](unsigned, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ChunkIndicesMatchStaticPartition) {
  ThreadPool pool(4);
  const size_t n = 37;
  auto expected = ThreadPool::Chunks(n, pool.parallelism());
  std::mutex mutex;
  std::vector<std::pair<size_t, size_t>> seen(expected.size(), {0, 0});
  pool.ParallelFor(n, [&](unsigned chunk, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_LT(chunk, seen.size());
    seen[chunk] = {begin, end};
  });
  EXPECT_EQ(seen, expected);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](unsigned, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A chunk body issuing its own ParallelFor on the same pool must complete
  // (the waiting thread helps drain the queue). Exercised with fewer OS
  // threads than logical chunks.
  ThreadPool pool(2);
  const size_t outer = 8, inner = 64;
  std::vector<std::atomic<int>> counts(outer * inner);
  pool.ParallelFor(outer, [&](unsigned, size_t begin, size_t end) {
    for (size_t o = begin; o < end; ++o) {
      pool.ParallelFor(inner, [&, o](unsigned, size_t ib, size_t ie) {
        for (size_t i = ib; i < ie; ++i) counts[o * inner + i].fetch_add(1);
      });
    }
  });
  for (auto& c : counts) ASSERT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentCallersShareOnePool) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  const size_t n = 4096;
  std::vector<std::vector<std::atomic<int>>> visits(kCallers);
  for (auto& v : visits) {
    v = std::vector<std::atomic<int>>(n);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(n, [&, c](unsigned, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) visits[c][i].fetch_add(1);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[c][i].load(), 1) << "caller " << c << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, PerChunkAccumulatorsMergeToSerialTotal) {
  // The merged-at-the-barrier pattern the parallel kernels rely on.
  const size_t n = 100000;
  uint64_t serial = 0;
  for (size_t i = 0; i < n; ++i) serial += i * i;
  ThreadPool pool(8);
  std::vector<uint64_t> partial(pool.parallelism(), 0);
  pool.ParallelFor(n, [&](unsigned chunk, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) partial[chunk] += i * i;
  });
  uint64_t merged = std::accumulate(partial.begin(), partial.end(), 0ull);
  EXPECT_EQ(merged, serial);
}

}  // namespace
}  // namespace xfrag
