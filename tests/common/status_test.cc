#include "common/status.h"

#include <gtest/gtest.h>

namespace xfrag {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "ParseError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  XFRAG_ASSIGN_OR_RETURN(int h, Half(x));
  XFRAG_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnMacroPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = Quarter(6);  // 6/2 = 3, odd.
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Sum(int a, int b) {
  XFRAG_RETURN_NOT_OK(FailWhenNegative(a));
  XFRAG_RETURN_NOT_OK(FailWhenNegative(b));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Sum(1, 2).ok());
  EXPECT_FALSE(Sum(1, -2).ok());
}

}  // namespace
}  // namespace xfrag
