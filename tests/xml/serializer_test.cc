#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xfrag::xml {
namespace {

TEST(EscapeTest, TextEscapesMarkup) {
  EXPECT_EQ(EscapeText("a < b & c > d"), "a &lt; b &amp; c &gt; d");
  EXPECT_EQ(EscapeText("\"quotes\""), "\"quotes\"");  // Quotes legal in text.
}

TEST(EscapeTest, AttributeEscapesQuotes) {
  EXPECT_EQ(EscapeAttribute("say \"hi\" & <go>"),
            "say &quot;hi&quot; &amp; &lt;go&gt;");
}

TEST(SerializerTest, EmptyElementSelfCloses) {
  XmlDocument doc;
  doc.set_root(std::make_unique<XmlElement>("r"));
  SerializeOptions options;
  options.emit_declaration = false;
  EXPECT_EQ(Serialize(doc, options), "<r/>");
}

TEST(SerializerTest, DeclarationEmitted) {
  XmlDocument doc;
  doc.set_root(std::make_unique<XmlElement>("r"));
  doc.set_encoding("UTF-8");
  EXPECT_EQ(Serialize(doc),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><r/>");
}

TEST(SerializerTest, AttributesAndText) {
  XmlDocument doc;
  auto root = std::make_unique<XmlElement>("p");
  root->AddAttribute("id", "n1");
  root->AddText("body & soul");
  doc.set_root(std::move(root));
  SerializeOptions options;
  options.emit_declaration = false;
  EXPECT_EQ(Serialize(doc, options), "<p id=\"n1\">body &amp; soul</p>");
}

TEST(SerializerTest, NestedChildren) {
  XmlDocument doc;
  auto root = std::make_unique<XmlElement>("a");
  XmlElement* b = root->AddElement("b");
  b->AddText("x");
  root->AddElement("c");
  doc.set_root(std::move(root));
  SerializeOptions options;
  options.emit_declaration = false;
  EXPECT_EQ(Serialize(doc, options), "<a><b>x</b><c/></a>");
}

TEST(SerializerTest, CommentsAndCData) {
  XmlDocument doc;
  auto root = std::make_unique<XmlElement>("a");
  root->AddChild(std::make_unique<XmlCharacterData>(XmlNodeKind::kComment,
                                                    " note "));
  root->AddChild(std::make_unique<XmlCharacterData>(XmlNodeKind::kCData,
                                                    "<raw> & stuff"));
  doc.set_root(std::move(root));
  SerializeOptions options;
  options.emit_declaration = false;
  EXPECT_EQ(Serialize(doc, options),
            "<a><!-- note --><![CDATA[<raw> & stuff]]></a>");
}

TEST(SerializerTest, ProcessingInstructionRoundTrip) {
  XmlDocument doc;
  auto root = std::make_unique<XmlElement>("a");
  auto pi = std::make_unique<XmlCharacterData>(
      XmlNodeKind::kProcessingInstruction, "href=\"style.css\"");
  pi->set_pi_target("xml-stylesheet");
  root->AddChild(std::move(pi));
  doc.set_root(std::move(root));
  SerializeOptions options;
  options.emit_declaration = false;
  std::string out = Serialize(doc, options);
  EXPECT_EQ(out, "<a><?xml-stylesheet href=\"style.css\"?></a>");
  auto reparsed = Parse(out);
  ASSERT_TRUE(reparsed.ok());
  const auto& child =
      static_cast<const XmlCharacterData&>(*reparsed->root().children()[0]);
  EXPECT_EQ(child.pi_target(), "xml-stylesheet");
  EXPECT_EQ(child.data(), "href=\"style.css\"");
}

TEST(SerializerTest, MixedContentIsNeverIndented) {
  auto parsed = Parse("<p>alpha <em>beta</em> gamma</p>");
  ASSERT_TRUE(parsed.ok());
  SerializeOptions options;
  options.emit_declaration = false;
  options.pretty = true;
  // Pretty printing must not inject whitespace into mixed content.
  EXPECT_EQ(Serialize(*parsed, options),
            "<p>alpha <em>beta</em> gamma</p>\n");
}

TEST(SerializerTest, PrettyPrintIndentsElements) {
  XmlDocument doc;
  auto root = std::make_unique<XmlElement>("a");
  root->AddElement("b")->AddText("x");
  doc.set_root(std::move(root));
  SerializeOptions options;
  options.emit_declaration = false;
  options.pretty = true;
  EXPECT_EQ(Serialize(doc, options), "<a>\n  <b>x</b>\n</a>\n");
}

TEST(SerializerTest, SerializeElementSubtree) {
  auto parsed = Parse("<a><b><c>x</c></b></a>");
  ASSERT_TRUE(parsed.ok());
  const XmlElement* b = parsed->root().FindChild("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(SerializeElement(*b), "<b><c>x</c></b>");
}

}  // namespace
}  // namespace xfrag::xml
