// Round-trip property: Parse(Serialize(Parse(x))) produces a tree equal to
// Parse(x), for hand-written documents and generated corpora.

#include <gtest/gtest.h>

#include "gen/corpus.h"
#include "gen/paper_document.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xfrag::xml {
namespace {

// Structural equality of two elements (tags, attributes, textual content,
// element children), ignoring comments and PIs.
bool ElementsEqual(const XmlElement& a, const XmlElement& b) {
  if (a.tag() != b.tag()) return false;
  if (a.attributes().size() != b.attributes().size()) return false;
  for (size_t i = 0; i < a.attributes().size(); ++i) {
    if (a.attributes()[i].name != b.attributes()[i].name) return false;
    if (a.attributes()[i].value != b.attributes()[i].value) return false;
  }
  if (a.DirectText() != b.DirectText()) return false;
  auto ac = a.ChildElements();
  auto bc = b.ChildElements();
  if (ac.size() != bc.size()) return false;
  for (size_t i = 0; i < ac.size(); ++i) {
    if (!ElementsEqual(*ac[i], *bc[i])) return false;
  }
  return true;
}

void ExpectRoundTrip(std::string_view input) {
  auto first = Parse(input);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (bool pretty : {false, true}) {
    SerializeOptions options;
    options.pretty = pretty;
    std::string serialized = Serialize(*first, options);
    auto second = Parse(serialized);
    ASSERT_TRUE(second.ok())
        << second.status().ToString() << "\nserialized: " << serialized;
    EXPECT_TRUE(ElementsEqual(first->root(), second->root()))
        << "round-trip mismatch (pretty=" << pretty << ")\n"
        << serialized;
  }
}

TEST(RoundTripTest, SimpleDocuments) {
  ExpectRoundTrip("<a/>");
  ExpectRoundTrip("<a x=\"1\" y=\"two\"><b>text</b><c/></a>");
  ExpectRoundTrip("<a>&lt;escaped&gt; &amp; kept</a>");
  ExpectRoundTrip("<a><b>x</b>tail<b>y</b></a>");
}

TEST(RoundTripTest, AttributesWithSpecials) {
  ExpectRoundTrip("<a v=\"&quot;q&quot; &amp; &lt;tag&gt;\"/>");
}

TEST(RoundTripTest, PaperDocument) {
  std::string xml_text = gen::PaperDocumentXml();
  ExpectRoundTrip(xml_text);
}

TEST(RoundTripTest, GeneratedCorpora) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    gen::CorpusProfile profile;
    profile.target_nodes = 300;
    profile.seed = seed;
    gen::RawCorpus corpus = gen::GenerateRaw(profile);
    ExpectRoundTrip(gen::ToXml(corpus));
  }
}

TEST(RoundTripTest, GeneratedCorpusMatchesMaterializedDocument) {
  gen::CorpusProfile profile;
  profile.target_nodes = 200;
  profile.seed = 7;
  gen::RawCorpus corpus = gen::GenerateRaw(profile);

  auto direct = gen::Materialize(corpus);
  ASSERT_TRUE(direct.ok());

  auto parsed = Parse(gen::ToXml(corpus));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto via_xml = doc::Document::FromDom(*parsed);
  ASSERT_TRUE(via_xml.ok());

  ASSERT_EQ(direct->size(), via_xml->size());
  for (doc::NodeId n = 0; n < direct->size(); ++n) {
    EXPECT_EQ(direct->parent(n), via_xml->parent(n)) << "node " << n;
    EXPECT_EQ(direct->tag(n), via_xml->tag(n)) << "node " << n;
    EXPECT_EQ(direct->depth(n), via_xml->depth(n)) << "node " << n;
  }
}

}  // namespace
}  // namespace xfrag::xml
