#include "xml/parser.h"

#include <gtest/gtest.h>

namespace xfrag::xml {
namespace {

StatusOr<XmlDocument> ParseOk(std::string_view input) {
  auto doc = Parse(input);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc;
}

TEST(ParserTest, MinimalDocument) {
  auto doc = ParseOk("<root/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root().tag(), "root");
  EXPECT_TRUE(doc->root().children().empty());
}

TEST(ParserTest, Declaration) {
  auto doc = ParseOk("<?xml version=\"1.1\" encoding=\"UTF-8\"?><r/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->version(), "1.1");
  EXPECT_EQ(doc->encoding(), "UTF-8");
}

TEST(ParserTest, DefaultVersionWithoutDeclaration) {
  auto doc = ParseOk("<r/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->version(), "1.0");
  EXPECT_TRUE(doc->encoding().empty());
}

TEST(ParserTest, NestedElementsAndText) {
  auto doc = ParseOk("<a><b>hello</b><c>world</c></a>");
  ASSERT_TRUE(doc.ok());
  const XmlElement& root = doc->root();
  auto children = root.ChildElements();
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0]->tag(), "b");
  EXPECT_EQ(children[0]->DirectText(), "hello");
  EXPECT_EQ(children[1]->tag(), "c");
  EXPECT_EQ(children[1]->DirectText(), "world");
  EXPECT_EQ(root.DeepText(), "helloworld");
}

TEST(ParserTest, Attributes) {
  auto doc = ParseOk("<p id=\"n1\" class='wide'>x</p>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root().attributes().size(), 2u);
  EXPECT_EQ(*doc->root().FindAttribute("id"), "n1");
  EXPECT_EQ(*doc->root().FindAttribute("class"), "wide");
  EXPECT_EQ(doc->root().FindAttribute("absent"), nullptr);
}

TEST(ParserTest, DuplicateAttributeRejected) {
  auto doc = Parse("<p a=\"1\" a=\"2\"/>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, EntityDecoding) {
  auto doc = ParseOk("<t a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->root().FindAttribute("a"), "<&>");
  EXPECT_EQ(doc->root().DirectText(), "\"x' AB");
}

TEST(ParserTest, NumericEntityUtf8) {
  auto doc = ParseOk("<t>&#228;&#x20AC;</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root().DirectText(), "\xC3\xA4\xE2\x82\xAC");  // ä €
}

TEST(ParserTest, UnknownEntityRejected) {
  EXPECT_FALSE(Parse("<t>&nope;</t>").ok());
}

TEST(ParserTest, SurrogateCharacterReferenceRejected) {
  EXPECT_FALSE(Parse("<t>&#xD800;</t>").ok());
}

TEST(ParserTest, Comments) {
  auto doc = ParseOk("<!-- head --><a><!-- inner -->x</a><!-- tail -->");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root().children().size(), 2u);
  EXPECT_EQ(doc->root().children()[0]->kind(), XmlNodeKind::kComment);
  EXPECT_EQ(doc->root().DirectText(), "x");
}

TEST(ParserTest, CData) {
  auto doc = ParseOk("<a><![CDATA[<not> &parsed;]]></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root().children().size(), 1u);
  EXPECT_EQ(doc->root().children()[0]->kind(), XmlNodeKind::kCData);
  EXPECT_EQ(doc->root().DirectText(), "<not> &parsed;");
}

TEST(ParserTest, ProcessingInstruction) {
  auto doc = ParseOk("<a><?target some data?></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root().children().size(), 1u);
  const auto& pi =
      static_cast<const XmlCharacterData&>(*doc->root().children()[0]);
  EXPECT_EQ(pi.kind(), XmlNodeKind::kProcessingInstruction);
  EXPECT_EQ(pi.pi_target(), "target");
  EXPECT_EQ(pi.data(), "some data");
}

TEST(ParserTest, DoctypeSkipped) {
  auto doc = ParseOk(
      "<!DOCTYPE article [<!ENTITY foo \"bar\">]>\n<article>x</article>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root().tag(), "article");
}

TEST(ParserTest, IgnorableWhitespaceDropped) {
  auto doc = ParseOk("<a>\n  <b>x</b>\n  <c>y</c>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root().children().size(), 2u);  // No whitespace text nodes.
}

TEST(ParserTest, WhitespaceKeptWhenConfigured) {
  ParseOptions options;
  options.drop_ignorable_whitespace = false;
  auto doc = Parse("<a> <b>x</b> </a>", options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root().children().size(), 3u);
}

TEST(ParserTest, MixedContentTextPreserved) {
  auto doc = ParseOk("<p>alpha <em>beta</em> gamma</p>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root().DeepText(), "alpha beta gamma");
}

TEST(ParserTest, MismatchedEndTag) {
  auto doc = Parse("<a><b></a></b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("mismatched"), std::string::npos);
}

TEST(ParserTest, UnterminatedElement) {
  EXPECT_FALSE(Parse("<a><b>").ok());
}

TEST(ParserTest, ContentAfterRootRejected) {
  EXPECT_FALSE(Parse("<a/><b/>").ok());
}

TEST(ParserTest, EmptyInputRejected) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("   ").ok());
}

TEST(ParserTest, AttributeValueWithAngleRejected) {
  EXPECT_FALSE(Parse("<a v=\"x<y\"/>").ok());
}

TEST(ParserTest, DepthLimitEnforced) {
  ParseOptions options;
  options.max_depth = 10;
  std::string deep;
  for (int i = 0; i < 20; ++i) deep += "<d>";
  deep += "x";
  for (int i = 0; i < 20; ++i) deep += "</d>";
  auto doc = Parse(deep, options);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("depth"), std::string::npos);
}

TEST(ParserTest, ErrorPositionsReported) {
  auto doc = Parse("<a>\n<b></c>\n</a>");
  ASSERT_FALSE(doc.ok());
  // The mismatch is on line 2.
  EXPECT_NE(doc.status().message().find("2:"), std::string::npos)
      << doc.status().ToString();
}

TEST(ParserTest, NamespacePrefixesKeptLexically) {
  auto doc = ParseOk("<ns:a xmlns:ns=\"urn:x\"><ns:b/></ns:a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root().tag(), "ns:a");
  EXPECT_EQ(doc->root().ChildElements()[0]->tag(), "ns:b");
}

TEST(DecodeEntitiesTest, PlainTextPassesThrough) {
  auto out = DecodeEntities("no entities here");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "no entities here");
}

TEST(DecodeEntitiesTest, MalformedReferenceRejected) {
  EXPECT_FALSE(DecodeEntities("broken & alone").ok());
  EXPECT_FALSE(DecodeEntities("&;").ok());
  EXPECT_FALSE(DecodeEntities("&#;").ok());
  EXPECT_FALSE(DecodeEntities("&#x;").ok());
  EXPECT_FALSE(DecodeEntities("&#xZZ;").ok());
}

TEST(DecodeEntitiesTest, CodePointOutOfRangeRejected) {
  EXPECT_FALSE(DecodeEntities("&#x110000;").ok());
}

}  // namespace
}  // namespace xfrag::xml
