// Deterministic fuzzing of the XML parser: random garbage, random
// mutations of valid documents, and adversarial prefixes must never crash,
// and every accepted parse must survive a serialize → reparse round trip.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/corpus.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xfrag::xml {
namespace {

// Accepted documents must be internally consistent: reserialize and reparse.
void CheckAccepted(const XmlDocument& doc) {
  std::string serialized = Serialize(doc);
  auto reparsed = Parse(serialized);
  ASSERT_TRUE(reparsed.ok())
      << "accepted parse did not round-trip: " << reparsed.status().ToString()
      << "\n"
      << serialized.substr(0, 200);
}

TEST(XmlFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(0xf022);
  for (int trial = 0; trial < 400; ++trial) {
    size_t length = rng.Uniform(200);
    std::string input;
    input.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
    auto result = Parse(input);
    if (result.ok()) CheckAccepted(*result);
  }
}

TEST(XmlFuzzTest, MarkupSoupNeverCrashes) {
  // Garbage built from XML-ish tokens hits deeper parser states than
  // uniform bytes.
  constexpr const char* kTokens[] = {
      "<",    ">",     "</",   "/>",   "<?",   "?>",  "<!--", "-->",
      "<!",   "a",     "xml",  "=",    "\"",   "'",   " ",    "\n",
      "&",    ";",     "&lt;", "&#x",  "]]>",  "<![CDATA[",   "name",
      "<!DOCTYPE", "[", "]",   "v=\"w\"", "text", "&amp;",    "\t"};
  Rng rng(0x50a9);
  for (int trial = 0; trial < 600; ++trial) {
    std::string input;
    size_t tokens = 1 + rng.Uniform(40);
    for (size_t i = 0; i < tokens; ++i) {
      input += kTokens[rng.Uniform(sizeof(kTokens) / sizeof(kTokens[0]))];
    }
    auto result = Parse(input);
    if (result.ok()) CheckAccepted(*result);
  }
}

TEST(XmlFuzzTest, MutatedValidDocumentsNeverCrash) {
  gen::CorpusProfile profile;
  profile.target_nodes = 60;
  profile.seed = 0xabc;
  std::string valid = gen::ToXml(gen::GenerateRaw(profile));
  Rng rng(0xdef);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = valid;
    size_t mutations = 1 + rng.Uniform(4);
    for (size_t m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // Flip a byte.
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // Delete a span.
          mutated.erase(pos, rng.Uniform(8) + 1);
          break;
        case 2:  // Duplicate a span.
          mutated.insert(pos, mutated.substr(pos, rng.Uniform(8) + 1));
          break;
      }
      if (mutated.empty()) mutated = "<r/>";
    }
    auto result = Parse(mutated);
    if (result.ok()) CheckAccepted(*result);
  }
}

TEST(XmlFuzzTest, TruncationsOfValidDocumentNeverCrash) {
  std::string valid =
      "<?xml version=\"1.0\"?><a x=\"1\"><!-- c --><b>text &amp; "
      "more</b><![CDATA[raw]]><c/></a>";
  for (size_t keep = 0; keep <= valid.size(); ++keep) {
    auto result = Parse(std::string_view(valid).substr(0, keep));
    if (result.ok()) CheckAccepted(*result);
  }
}

TEST(XmlFuzzTest, PathologicalNesting) {
  // A deep but under-limit document parses; one over the limit is rejected
  // (never a stack overflow).
  ParseOptions options;
  options.max_depth = 64;
  for (int depth : {63, 64, 65, 200}) {
    std::string input;
    for (int i = 0; i < depth; ++i) input += "<d>";
    input += "x";
    for (int i = 0; i < depth; ++i) input += "</d>";
    auto result = Parse(input, options);
    EXPECT_EQ(result.ok(), depth <= 64) << "depth " << depth;
  }
}

TEST(XmlFuzzTest, HugeFlatDocument) {
  std::string input = "<r>";
  for (int i = 0; i < 20000; ++i) input += "<p/>";
  input += "</r>";
  auto result = Parse(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->root().SubtreeElementCount(), 20001u);
}

}  // namespace
}  // namespace xfrag::xml
