// Parameterized property suites for the algebraic laws of §2.2 over random
// trees and random fragments: fragment join is idempotent, commutative,
// associative, absorptive; pairwise join is commutative, associative,
// monotone, and distributes over union.

#include <gtest/gtest.h>

#include "../testutil.h"
#include "algebra/ops.h"

namespace xfrag::algebra {
namespace {

using testutil::RandomSingles;
using testutil::RandomTree;

struct TreeCase {
  size_t nodes;
  size_t window;
  uint64_t seed;
};

class JoinLawTest : public ::testing::TestWithParam<TreeCase> {
 protected:
  void SetUp() override {
    document_ = std::make_unique<doc::Document>(
        RandomTree(GetParam().nodes, GetParam().window, GetParam().seed));
    rng_ = std::make_unique<Rng>(GetParam().seed ^ 0xfeed);
  }

  // A random connected fragment: a random node joined with up to `extra`
  // other random nodes (joins always produce valid fragments).
  Fragment RandomFragment(size_t extra) {
    Fragment f = Fragment::Single(
        static_cast<doc::NodeId>(rng_->Uniform(document_->size())));
    for (size_t i = 0; i < extra; ++i) {
      f = Join(*document_, f,
               Fragment::Single(static_cast<doc::NodeId>(
                   rng_->Uniform(document_->size()))));
    }
    return f;
  }

  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<Rng> rng_;
};

TEST_P(JoinLawTest, Idempotency) {
  for (int trial = 0; trial < 50; ++trial) {
    Fragment f = RandomFragment(trial % 4);
    EXPECT_EQ(Join(*document_, f, f), f);
  }
}

TEST_P(JoinLawTest, Commutativity) {
  for (int trial = 0; trial < 50; ++trial) {
    Fragment a = RandomFragment(trial % 3);
    Fragment b = RandomFragment(trial % 2);
    EXPECT_EQ(Join(*document_, a, b), Join(*document_, b, a));
  }
}

TEST_P(JoinLawTest, Associativity) {
  for (int trial = 0; trial < 50; ++trial) {
    Fragment a = RandomFragment(trial % 3);
    Fragment b = RandomFragment(trial % 2);
    Fragment c = RandomFragment(trial % 4);
    EXPECT_EQ(Join(*document_, Join(*document_, a, b), c),
              Join(*document_, a, Join(*document_, b, c)));
  }
}

TEST_P(JoinLawTest, Absorption) {
  for (int trial = 0; trial < 50; ++trial) {
    Fragment a = RandomFragment(3);
    // Pick a sub-fragment of a: a connected subset built from a member node.
    Fragment sub = Fragment::Single(
        a.nodes()[rng_->Uniform(a.nodes().size())]);
    ASSERT_TRUE(a.ContainsFragment(sub));
    EXPECT_EQ(Join(*document_, a, sub), a);
  }
}

TEST_P(JoinLawTest, Lemma1InputsContained) {
  for (int trial = 0; trial < 50; ++trial) {
    Fragment a = RandomFragment(2);
    Fragment b = RandomFragment(2);
    Fragment joined = Join(*document_, a, b);
    EXPECT_TRUE(joined.ContainsFragment(a));
    EXPECT_TRUE(joined.ContainsFragment(b));
  }
}

TEST_P(JoinLawTest, JoinResultIsValidFragment) {
  for (int trial = 0; trial < 50; ++trial) {
    Fragment a = RandomFragment(2);
    Fragment b = RandomFragment(2);
    Fragment joined = Join(*document_, a, b);
    // Re-validate through the checked constructor.
    auto checked = Fragment::Create(*document_, joined.nodes());
    ASSERT_TRUE(checked.ok()) << checked.status().ToString();
    EXPECT_EQ(*checked, joined);
  }
}

TEST_P(JoinLawTest, JoinMinimality) {
  // No strict sub-fragment of a ⋈ b contains both a and b (Definition 4,
  // condition 3). It suffices to check one-node removals: if a smaller
  // containing fragment existed, some single node would be removable.
  for (int trial = 0; trial < 20; ++trial) {
    Fragment a = RandomFragment(1);
    Fragment b = RandomFragment(1);
    Fragment joined = Join(*document_, a, b);
    for (doc::NodeId n : joined.nodes()) {
      if (a.ContainsNode(n) || b.ContainsNode(n)) continue;
      std::vector<doc::NodeId> without;
      for (doc::NodeId m : joined.nodes()) {
        if (m != n) without.push_back(m);
      }
      EXPECT_FALSE(Fragment::Create(*document_, without).ok())
          << "removable node in join result";
    }
  }
}

TEST_P(JoinLawTest, PairwiseCommutativity) {
  Rng rng(GetParam().seed ^ 1);
  FragmentSet f1 = RandomSingles(*document_, 5, &rng);
  FragmentSet f2 = RandomSingles(*document_, 4, &rng);
  EXPECT_TRUE(PairwiseJoin(*document_, f1, f2)
                  .SetEquals(PairwiseJoin(*document_, f2, f1)));
}

TEST_P(JoinLawTest, PairwiseAssociativity) {
  Rng rng(GetParam().seed ^ 2);
  FragmentSet f1 = RandomSingles(*document_, 4, &rng);
  FragmentSet f2 = RandomSingles(*document_, 3, &rng);
  FragmentSet f3 = RandomSingles(*document_, 3, &rng);
  FragmentSet left =
      PairwiseJoin(*document_, PairwiseJoin(*document_, f1, f2), f3);
  FragmentSet right =
      PairwiseJoin(*document_, f1, PairwiseJoin(*document_, f2, f3));
  EXPECT_TRUE(left.SetEquals(right));
}

TEST_P(JoinLawTest, PairwiseMonotonicity) {
  Rng rng(GetParam().seed ^ 3);
  FragmentSet f = RandomSingles(*document_, 6, &rng);
  FragmentSet self = PairwiseJoin(*document_, f, f);
  for (const Fragment& member : f) {
    EXPECT_TRUE(self.Contains(member));
  }
}

TEST_P(JoinLawTest, PairwiseDistributesOverUnion) {
  Rng rng(GetParam().seed ^ 4);
  FragmentSet f1 = RandomSingles(*document_, 4, &rng);
  FragmentSet f2 = RandomSingles(*document_, 3, &rng);
  FragmentSet f3 = RandomSingles(*document_, 3, &rng);
  FragmentSet left = PairwiseJoin(*document_, f1, f2.Union(f3));
  FragmentSet right =
      PairwiseJoin(*document_, f1, f2).Union(PairwiseJoin(*document_, f1, f3));
  EXPECT_TRUE(left.SetEquals(right));
}

INSTANTIATE_TEST_SUITE_P(
    Trees, JoinLawTest,
    ::testing::Values(TreeCase{2, 1, 11}, TreeCase{10, 1, 12},
                      TreeCase{30, 30, 13}, TreeCase{60, 5, 14},
                      TreeCase{200, 20, 15}, TreeCase{500, 3, 16},
                      TreeCase{500, 400, 17}));

}  // namespace
}  // namespace xfrag::algebra
