// Fragment join (Definition 4): the paper's Figure-3 example reproduced
// exactly, plus the algebraic laws stated in §2.2 on fixed cases.

#include <gtest/gtest.h>

#include "../testutil.h"
#include "algebra/ops.h"

namespace xfrag::algebra {
namespace {

using testutil::Frag;
using testutil::TreeFromParents;

// The Figure-3 document tree (ids are pre-order):
//          0
//         / \.
//        1   3
//        |  / \.
//        2 4   6
//          |   |
//          5   7
//             / \.
//            8   9
doc::Document Fig3Tree() {
  return TreeFromParents({doc::kNoNode, 0, 1, 0, 3, 4, 3, 6, 7, 7});
}

TEST(JoinTest, Figure3FragmentJoin) {
  doc::Document d = Fig3Tree();
  // The paper: ⟨n4,n5⟩ ⋈ ⟨n7,n9⟩ = ⟨n3,n4,n5,n6,n7,n9⟩.
  Fragment joined = Join(d, Frag(d, {4, 5}), Frag(d, {7, 9}));
  EXPECT_EQ(joined, Frag(d, {3, 4, 5, 6, 7, 9}));
}

TEST(JoinTest, JoinOfNestedFragmentsAbsorbs) {
  doc::Document d = Fig3Tree();
  Fragment outer = Frag(d, {3, 4, 5, 6});
  Fragment inner = Frag(d, {4, 5});
  EXPECT_EQ(Join(d, outer, inner), outer);
  EXPECT_EQ(Join(d, inner, outer), outer);
}

TEST(JoinTest, JoinOfSiblingsClimbsToParent) {
  doc::Document d = Fig3Tree();
  EXPECT_EQ(Join(d, Fragment::Single(8), Fragment::Single(9)),
            Frag(d, {7, 8, 9}));
  EXPECT_EQ(Join(d, Fragment::Single(1), Fragment::Single(3)),
            Frag(d, {0, 1, 3}));
}

TEST(JoinTest, JoinOfAncestorDescendantFillsPath) {
  doc::Document d = Fig3Tree();
  EXPECT_EQ(Join(d, Fragment::Single(3), Fragment::Single(9)),
            Frag(d, {3, 6, 7, 9}));
  EXPECT_EQ(Join(d, Fragment::Single(0), Fragment::Single(5)),
            Frag(d, {0, 3, 4, 5}));
}

TEST(JoinTest, ResultContainsBothInputs) {
  doc::Document d = Fig3Tree();
  Fragment f1 = Frag(d, {1, 2});
  Fragment f2 = Frag(d, {6, 8, 7});
  Fragment joined = Join(d, f1, f2);
  EXPECT_TRUE(joined.ContainsFragment(f1));  // Lemma 1.
  EXPECT_TRUE(joined.ContainsFragment(f2));
}

TEST(JoinTest, MinimalityNoRemovableNode) {
  // Removing any node that is in the join but in neither input must
  // disconnect the fragment (otherwise the join was not minimal).
  doc::Document d = Fig3Tree();
  Fragment f1 = Frag(d, {4, 5});
  Fragment f2 = Frag(d, {7, 9});
  Fragment joined = Join(d, f1, f2);
  for (doc::NodeId n : joined.nodes()) {
    if (f1.ContainsNode(n) || f2.ContainsNode(n)) continue;
    std::vector<doc::NodeId> without;
    for (doc::NodeId m : joined.nodes()) {
      if (m != n) without.push_back(m);
    }
    EXPECT_FALSE(Fragment::Create(d, without).ok())
        << "node n" << n << " is removable: join not minimal";
  }
}

TEST(JoinTest, AlgebraicLawsOnFixedCases) {
  doc::Document d = Fig3Tree();
  Fragment a = Frag(d, {4, 5});
  Fragment b = Frag(d, {7, 9});
  Fragment c = Frag(d, {1, 2});
  // Idempotency.
  EXPECT_EQ(Join(d, a, a), a);
  // Commutativity.
  EXPECT_EQ(Join(d, a, b), Join(d, b, a));
  // Associativity.
  EXPECT_EQ(Join(d, Join(d, a, b), c), Join(d, a, Join(d, b, c)));
  // Absorption: f1 ⋈ f2 = f1 when f2 ⊆ f1.
  Fragment super = Frag(d, {3, 4, 5});
  EXPECT_EQ(Join(d, super, a), super);
}

TEST(JoinTest, MetricsCountJoins) {
  doc::Document d = Fig3Tree();
  OpMetrics metrics;
  Join(d, Fragment::Single(2), Fragment::Single(5), &metrics);
  Join(d, Fragment::Single(8), Fragment::Single(9), &metrics);
  EXPECT_EQ(metrics.fragment_joins, 2u);
  EXPECT_EQ(metrics.fragments_produced, 2u);
}

TEST(PairwiseJoinTest, Figure3PairwiseJoin) {
  doc::Document d = Fig3Tree();
  // F1 = {f11, f12}, F2 = {f21, f22} ⇒ all four combinations.
  FragmentSet f1{Frag(d, {4, 5}), Fragment::Single(2)};
  FragmentSet f2{Frag(d, {7, 9}), Fragment::Single(8)};
  FragmentSet joined = PairwiseJoin(d, f1, f2);
  EXPECT_EQ(joined.size(), 4u);
  EXPECT_TRUE(joined.Contains(Frag(d, {3, 4, 5, 6, 7, 9})));
  EXPECT_TRUE(joined.Contains(Frag(d, {3, 4, 5, 6, 7, 8})));
  EXPECT_TRUE(joined.Contains(Frag(d, {0, 1, 2, 3, 6, 7, 9})));
  EXPECT_TRUE(joined.Contains(Frag(d, {0, 1, 2, 3, 6, 7, 8})));
}

TEST(PairwiseJoinTest, DeduplicatesCoincidingJoins) {
  doc::Document d = Fig3Tree();
  // Joining either of {8}, {9} with {7} yields different results, but
  // joining {8} and {9} each with {7,8,9} both yield {7,8,9}.
  FragmentSet f1{Fragment::Single(8), Fragment::Single(9)};
  FragmentSet f2{Frag(d, {7, 8, 9})};
  FragmentSet joined = PairwiseJoin(d, f1, f2);
  EXPECT_EQ(joined.size(), 1u);
  EXPECT_TRUE(joined.Contains(Frag(d, {7, 8, 9})));
}

TEST(PairwiseJoinTest, EmptyOperandYieldsEmpty) {
  doc::Document d = Fig3Tree();
  FragmentSet f1{Fragment::Single(1)};
  EXPECT_TRUE(PairwiseJoin(d, f1, FragmentSet()).empty());
  EXPECT_TRUE(PairwiseJoin(d, FragmentSet(), f1).empty());
}

TEST(PairwiseJoinTest, MonotonicityOnSelfJoin) {
  // F ⊆ F ⋈ F (§2.2): idempotency of ⋈ keeps every original member.
  doc::Document d = Fig3Tree();
  FragmentSet f{Fragment::Single(2), Frag(d, {7, 9}), Frag(d, {0, 3})};
  FragmentSet self = PairwiseJoin(d, f, f);
  for (const Fragment& member : f) {
    EXPECT_TRUE(self.Contains(member));
  }
  EXPECT_GE(self.size(), f.size());
}

TEST(PairwiseJoinTest, NotIdempotentInGeneral) {
  // The paper notes pairwise join is NOT idempotent: F ⋈ F can exceed F.
  doc::Document d = Fig3Tree();
  FragmentSet f{Fragment::Single(8), Fragment::Single(9)};
  FragmentSet self = PairwiseJoin(d, f, f);
  EXPECT_GT(self.size(), f.size());
  EXPECT_TRUE(self.Contains(Frag(d, {7, 8, 9})));
}

TEST(PairwiseJoinFilteredTest, DropsFailingFragmentsEagerly) {
  doc::Document d = Fig3Tree();
  FragmentSet f1{Fragment::Single(2), Fragment::Single(8)};
  FragmentSet f2{Fragment::Single(9)};
  FilterContext context{&d, nullptr};
  OpMetrics metrics;
  FragmentSet joined = PairwiseJoinFiltered(d, f1, f2, filters::SizeAtMost(3),
                                            context, &metrics);
  // 2⋈9 = {0,1,2,3,6,7,9}: size 7, dropped. 8⋈9 = {7,8,9}: kept.
  EXPECT_EQ(joined.size(), 1u);
  EXPECT_TRUE(joined.Contains(Frag(d, {7, 8, 9})));
  EXPECT_EQ(metrics.filter_rejections, 1u);
  EXPECT_EQ(metrics.filter_evals, 2u);
}

TEST(SelectTest, KeepsOnlyMatching) {
  doc::Document d = Fig3Tree();
  FragmentSet set{Fragment::Single(1), Frag(d, {3, 4, 5}), Frag(d, {7, 8, 9})};
  FilterContext context{&d, nullptr};
  FragmentSet selected = Select(set, filters::SizeAtMost(1), context);
  EXPECT_EQ(selected.size(), 1u);
  EXPECT_TRUE(selected.Contains(Fragment::Single(1)));
  // σ_true is identity.
  EXPECT_TRUE(Select(set, filters::True(), context).SetEquals(set));
}

}  // namespace
}  // namespace xfrag::algebra
