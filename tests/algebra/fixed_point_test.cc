// Fixed point F⁺ (Definition 9): naive iteration vs the Theorem-1
// reduced-iteration algorithm, with exact cases and randomized equivalence.

#include <gtest/gtest.h>

#include "../testutil.h"
#include "algebra/ops.h"

namespace xfrag::algebra {
namespace {

using testutil::Frag;
using testutil::TreeFromParents;

doc::Document Fig4Tree() {
  return TreeFromParents({doc::kNoNode, 0, 0, 2, 3, 3, 2, 6});
}

// Oracle: F⁺ by literal subset enumeration (Definition 9).
FragmentSet FixedPointBySubsets(const doc::Document& d, const FragmentSet& f) {
  FragmentSet out;
  size_t total = size_t{1} << f.size();
  for (size_t mask = 1; mask < total; ++mask) {
    Fragment acc = Fragment::Single(0);
    bool first = true;
    for (size_t i = 0; i < f.size(); ++i) {
      if (!(mask & (size_t{1} << i))) continue;
      acc = first ? f[i] : Join(d, acc, f[i]);
      first = false;
    }
    out.Insert(acc);
  }
  return out;
}

TEST(FixedPointTest, SingleFragmentIsItsOwnFixedPoint) {
  doc::Document d = Fig4Tree();
  FragmentSet f{Frag(d, {2, 3})};
  EXPECT_TRUE(FixedPointNaive(d, f).SetEquals(f));
  EXPECT_TRUE(FixedPointReduced(d, f).SetEquals(f));
  EXPECT_TRUE(FixedPointNaive(d, FragmentSet()).SetEquals(FragmentSet()));
  EXPECT_TRUE(FixedPointReduced(d, FragmentSet()).SetEquals(FragmentSet()));
}

TEST(FixedPointTest, TwoSiblingsCloseOverParentPath) {
  doc::Document d = Fig4Tree();
  FragmentSet f = testutil::Singles({4, 5});
  FragmentSet expected{Fragment::Single(4), Fragment::Single(5),
                       Frag(d, {3, 4, 5})};
  EXPECT_TRUE(FixedPointNaive(d, f).SetEquals(expected));
  EXPECT_TRUE(FixedPointReduced(d, f).SetEquals(expected));
}

TEST(FixedPointTest, Figure4FixedPointMatchesOracle) {
  doc::Document d = Fig4Tree();
  FragmentSet f = testutil::Singles({1, 3, 5, 6, 7});
  FragmentSet oracle = FixedPointBySubsets(d, f);
  EXPECT_TRUE(FixedPointNaive(d, f).SetEquals(oracle));
  EXPECT_TRUE(FixedPointReduced(d, f).SetEquals(oracle));
}

TEST(FixedPointTest, Theorem1IterationCount) {
  // |⊖(F)| = 3 for the Figure-4 set, so ⋈_3(F) = ((F ⋈ F) ⋈ F) must reach
  // the fixed point: joining once more adds nothing.
  doc::Document d = Fig4Tree();
  FragmentSet f = testutil::Singles({1, 3, 5, 6, 7});
  FragmentSet reduced = Reduce(d, f);
  ASSERT_EQ(reduced.size(), 3u);
  FragmentSet join2 = PairwiseJoin(d, f, f);
  FragmentSet join3 = PairwiseJoin(d, join2, f);
  FragmentSet join4 = PairwiseJoin(d, join3, f);
  EXPECT_TRUE(join3.SetEquals(join4));
  EXPECT_TRUE(join3.SetEquals(FixedPointNaive(d, f)));
  // Two iterations are NOT enough here (the theorem's bound is tight on
  // this example): the 3-way join of {1,5,7} appears only at level 3.
  EXPECT_FALSE(join2.SetEquals(join3));
}

TEST(FixedPointTest, FixedPointIsClosedUnderJoin) {
  doc::Document d = testutil::RandomTree(60, 8, 41);
  Rng rng(42);
  FragmentSet f = testutil::RandomSingles(d, 6, &rng);
  FragmentSet fp = FixedPointNaive(d, f);
  for (const Fragment& a : fp) {
    for (const Fragment& b : fp) {
      EXPECT_TRUE(fp.Contains(Join(d, a, b)));
    }
  }
}

TEST(FixedPointTest, MetricsReportIterations) {
  doc::Document d = Fig4Tree();
  FragmentSet f = testutil::Singles({1, 3, 5, 6, 7});
  OpMetrics naive_metrics;
  FixedPointNaive(d, f, &naive_metrics);
  EXPECT_GE(naive_metrics.fixed_point_iterations, 3u);  // Includes the check.
  OpMetrics reduced_metrics;
  FixedPointReduced(d, f, &reduced_metrics);
  EXPECT_EQ(reduced_metrics.fixed_point_iterations, 2u);  // k−1 = 2 joins.
}

struct FixedPointCase {
  size_t nodes;
  size_t window;
  size_t set_size;
  uint64_t seed;
};

class FixedPointPropertyTest
    : public ::testing::TestWithParam<FixedPointCase> {};

TEST_P(FixedPointPropertyTest, NaiveEqualsReducedEqualsOracle) {
  const auto& param = GetParam();
  doc::Document d =
      testutil::RandomTree(param.nodes, param.window, param.seed);
  Rng rng(param.seed ^ 0xbead);
  FragmentSet f = testutil::RandomSingles(d, param.set_size, &rng);
  FragmentSet naive = FixedPointNaive(d, f);
  FragmentSet reduced = FixedPointReduced(d, f);
  EXPECT_TRUE(naive.SetEquals(reduced))
      << "naive " << naive.size() << " vs reduced " << reduced.size();
  if (f.size() <= 10) {
    FragmentSet oracle = FixedPointBySubsets(d, f);
    EXPECT_TRUE(naive.SetEquals(oracle));
  }
}

TEST_P(FixedPointPropertyTest, Theorem1BoundHolds) {
  // ⋈_k(F) with k = |⊖(F)| equals ⋈_{k+1}(F) on random inputs.
  const auto& param = GetParam();
  doc::Document d =
      testutil::RandomTree(param.nodes, param.window, param.seed ^ 5);
  Rng rng(param.seed ^ 0xcafe);
  FragmentSet f = testutil::RandomSingles(d, param.set_size, &rng);
  if (f.size() < 2) return;
  size_t k = Reduce(d, f).size();
  ASSERT_GE(k, 1u);
  FragmentSet level = f;  // ⋈_1(F).
  for (size_t i = 1; i < k; ++i) level = PairwiseJoin(d, level, f);
  FragmentSet next = PairwiseJoin(d, level, f);
  EXPECT_TRUE(level.SetEquals(next))
      << "k=" << k << " |F|=" << f.size() << " level=" << level.size()
      << " next=" << next.size();
}

INSTANTIATE_TEST_SUITE_P(
    Random, FixedPointPropertyTest,
    ::testing::Values(FixedPointCase{20, 2, 3, 51}, FixedPointCase{20, 20, 5, 52},
                      FixedPointCase{50, 5, 6, 53}, FixedPointCase{50, 50, 7, 54},
                      FixedPointCase{120, 10, 8, 55},
                      FixedPointCase{120, 3, 9, 56},
                      FixedPointCase{200, 150, 10, 57},
                      FixedPointCase{40, 1, 6, 58}));  // Chain tree.

}  // namespace
}  // namespace xfrag::algebra
