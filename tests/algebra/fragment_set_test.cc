#include "algebra/fragment_set.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace xfrag::algebra {
namespace {

using testutil::Frag;
using testutil::TreeFromParents;

doc::Document Fixture() {
  return TreeFromParents({doc::kNoNode, 0, 1, 1, 1, 0, 5, 6});
}

TEST(FragmentSetTest, InsertDeduplicates) {
  doc::Document d = Fixture();
  FragmentSet set;
  EXPECT_TRUE(set.Insert(Frag(d, {1, 2})));
  EXPECT_FALSE(set.Insert(Frag(d, {2, 1})));  // Same canonical fragment.
  EXPECT_TRUE(set.Insert(Frag(d, {1, 3})));
  EXPECT_EQ(set.size(), 2u);
}

TEST(FragmentSetTest, ContainsAfterInsert) {
  doc::Document d = Fixture();
  FragmentSet set;
  set.Insert(Frag(d, {0, 1}));
  EXPECT_TRUE(set.Contains(Frag(d, {0, 1})));
  EXPECT_FALSE(set.Contains(Frag(d, {0, 5})));
  EXPECT_FALSE(FragmentSet().Contains(Frag(d, {0, 1})));
}

TEST(FragmentSetTest, PreservesInsertionOrder) {
  doc::Document d = Fixture();
  FragmentSet set;
  set.Insert(Fragment::Single(5));
  set.Insert(Fragment::Single(1));
  set.Insert(Fragment::Single(3));
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0].root(), 5u);
  EXPECT_EQ(set[1].root(), 1u);
  EXPECT_EQ(set[2].root(), 3u);
}

TEST(FragmentSetTest, InitializerListAndFromVector) {
  doc::Document d = Fixture();
  FragmentSet a{Fragment::Single(1), Fragment::Single(1), Fragment::Single(2)};
  EXPECT_EQ(a.size(), 2u);
  FragmentSet b = FragmentSet::FromVector(
      {Fragment::Single(2), Fragment::Single(1), Fragment::Single(2)});
  EXPECT_EQ(b.size(), 2u);
  EXPECT_TRUE(a.SetEquals(b));
}

TEST(FragmentSetTest, SetEqualsIsOrderIndependent) {
  doc::Document d = Fixture();
  FragmentSet a{Fragment::Single(1), Fragment::Single(2)};
  FragmentSet b{Fragment::Single(2), Fragment::Single(1)};
  FragmentSet c{Fragment::Single(2)};
  EXPECT_TRUE(a.SetEquals(b));
  EXPECT_FALSE(a.SetEquals(c));
  EXPECT_FALSE(c.SetEquals(a));
  EXPECT_TRUE(FragmentSet().SetEquals(FragmentSet()));
}

TEST(FragmentSetTest, UnionDeduplicates) {
  doc::Document d = Fixture();
  FragmentSet a{Fragment::Single(1), Fragment::Single(2)};
  FragmentSet b{Fragment::Single(2), Fragment::Single(3)};
  FragmentSet u = a.Union(b);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_TRUE(u.Contains(Fragment::Single(1)));
  EXPECT_TRUE(u.Contains(Fragment::Single(2)));
  EXPECT_TRUE(u.Contains(Fragment::Single(3)));
  // Operands untouched.
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(FragmentSetTest, SortedIsCanonical) {
  doc::Document d = Fixture();
  FragmentSet set;
  set.Insert(Frag(d, {5, 6}));
  set.Insert(Frag(d, {0, 1}));
  set.Insert(Frag(d, {1, 2}));
  auto sorted = set.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], Frag(d, {0, 1}));
  EXPECT_EQ(sorted[1], Frag(d, {1, 2}));
  EXPECT_EQ(sorted[2], Frag(d, {5, 6}));
}

TEST(FragmentSetTest, ToString) {
  doc::Document d = Fixture();
  FragmentSet set{Fragment::Single(2), Fragment::Single(1)};
  EXPECT_EQ(set.ToString(), "{⟨n1⟩, ⟨n2⟩}");
  EXPECT_EQ(FragmentSet().ToString(), "{}");
}

TEST(FragmentSetTest, ManyInsertionsStaySet) {
  doc::Document d = testutil::RandomTree(500, 20, 99);
  Rng rng(1);
  FragmentSet set;
  size_t inserted = 0;
  for (int i = 0; i < 3000; ++i) {
    doc::NodeId n = static_cast<doc::NodeId>(rng.Uniform(d.size()));
    if (set.Insert(Fragment::Single(n))) ++inserted;
  }
  EXPECT_EQ(set.size(), inserted);
  EXPECT_LE(set.size(), 500u);
  // Every element present exactly once.
  for (const Fragment& f : set) {
    EXPECT_TRUE(set.Contains(f));
  }
}

}  // namespace
}  // namespace xfrag::algebra
