// The DAG-compression contract (docs/ALGEBRA.md, "DAG-compressed
// evaluation"): for every corpus — duplicated or not — the class-aware
// kernels return results bit-identical to the baseline and accumulate
// exactly the same *logical* OpMetrics, across strategies, thread counts
// {1, 2, 4, 8}, top-k values, and tie-heavy (heavily duplicated) inputs.
// Property-tested over seeded stamped corpora (gen::StampDuplicateSubtrees).
// Runs under ASan and TSan via `ctest -L parallel` (scripts/check.sh).

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "algebra/ops.h"
#include "algebra/ops_parallel.h"
#include "common/thread_pool.h"
#include "doc/subtree_classes.h"
#include "gen/corpus.h"
#include "query/engine.h"
#include "query/ranking.h"

namespace xfrag::algebra {
namespace {

// Restores the process-wide switch whatever path exits the test.
struct DagSwitchGuard {
  explicit DagSwitchGuard(bool enabled) { SetDagCompressionEnabled(enabled); }
  ~DagSwitchGuard() { SetDagCompressionEnabled(true); }
};

// A stamped corpus with its subtree-class index and the two keywords'
// posting lists. Keywords are planted *before* stamping so duplicated
// subtrees carry them (the replay path gets exercised, not just bypassed),
// then topped up afterwards so neither posting list can come out empty.
struct StampedInput {
  std::unique_ptr<doc::Document> document;
  std::unique_ptr<text::InvertedIndex> index;
  std::unique_ptr<doc::SubtreeClassInterner> interner;
  std::unique_ptr<doc::SubtreeClassIndex> classes;
  FragmentSet set1;
  FragmentSet set2;
};

FragmentSet Singles(const std::vector<doc::NodeId>& nodes) {
  FragmentSet out;
  for (doc::NodeId n : nodes) out.Insert(Fragment::Single(n));
  return out;
}

StampedInput MakeStampedInput(uint64_t seed, double duplication) {
  gen::CorpusProfile profile;
  profile.target_nodes = 400;
  profile.seed = seed;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(seed ^ 0xDA61ULL);
  gen::PlantKeyword(&raw, "kwone", 20, gen::PlantMode::kScattered, &rng);
  gen::PlantKeyword(&raw, "kwtwo", 16, gen::PlantMode::kScattered, &rng);
  if (duplication > 0.0) {
    gen::StampDuplicateSubtrees(&raw, duplication, &rng);
  }
  // Stamping re-emits the tree, so occurrences may have multiplied (donor
  // carried them) or vanished (a replaced sibling did); re-plant a floor.
  gen::PlantKeyword(&raw, "kwone", 8, gen::PlantMode::kScattered, &rng);
  gen::PlantKeyword(&raw, "kwtwo", 8, gen::PlantMode::kScattered, &rng);

  StampedInput input;
  auto document = gen::Materialize(raw);
  EXPECT_TRUE(document.ok());
  input.document =
      std::make_unique<doc::Document>(std::move(document).value());
  input.index = std::make_unique<text::InvertedIndex>(
      text::InvertedIndex::Build(*input.document));
  input.interner = std::make_unique<doc::SubtreeClassInterner>();
  input.classes = std::make_unique<doc::SubtreeClassIndex>(
      doc::SubtreeClassIndex::Build(*input.document, input.interner.get()));
  input.set1 = Singles(input.index->Lookup("kwone"));
  input.set2 = Singles(input.index->Lookup("kwtwo"));
  EXPECT_FALSE(input.set1.empty());
  EXPECT_FALSE(input.set2.empty());
  if (duplication >= 0.5) {
    EXPECT_TRUE(input.classes->has_duplication());
  }
  return input;
}

void ExpectIdenticalSets(const FragmentSet& baseline, const FragmentSet& dag) {
  ASSERT_EQ(baseline.size(), dag.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    ASSERT_EQ(baseline[i], dag[i])
        << "divergence at position " << i << ": baseline "
        << baseline[i].ToString() << " vs dag " << dag[i].ToString();
  }
}

// Every logical counter must be invariant under compression — replays
// advance them by the exact deltas of the evaluation they avoided. The dag
// counters themselves (and the other physical ones) are schedule- and
// mode-dependent by design, which operator== already encodes.
void ExpectInvariantLogicalMetrics(const OpMetrics& baseline,
                                   const OpMetrics& dag) {
  EXPECT_EQ(baseline.fragment_joins, dag.fragment_joins);
  EXPECT_EQ(baseline.filter_evals, dag.filter_evals);
  EXPECT_EQ(baseline.filter_rejections, dag.filter_rejections);
  EXPECT_EQ(baseline.fixed_point_iterations, dag.fixed_point_iterations);
  EXPECT_EQ(baseline.fragments_produced, dag.fragments_produced);
  EXPECT_EQ(baseline.pairs_considered, dag.pairs_considered);
  EXPECT_EQ(baseline.pairs_rejected_summary, dag.pairs_rejected_summary);
  EXPECT_TRUE(baseline == dag);
}

// (seed, duplication rate, thread count).
class DagEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, unsigned>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  double duplication() const { return std::get<1>(GetParam()); }
  unsigned threads() const { return std::get<2>(GetParam()); }
};

TEST_P(DagEquivalenceTest, PairwiseJoinFiltered) {
  StampedInput input = MakeStampedInput(seed(), duplication());
  DagSwitchGuard guard(true);
  FilterPtr filter = filters::SizeAtMost(5);
  FilterContext context{input.document.get(), input.index.get()};
  OpMetrics baseline_metrics, serial_metrics, parallel_metrics;
  FragmentSet baseline =
      PairwiseJoinFiltered(*input.document, input.set1, input.set2, filter,
                           context, &baseline_metrics, /*dag=*/nullptr);
  FragmentSet serial_dag =
      PairwiseJoinFiltered(*input.document, input.set1, input.set2, filter,
                           context, &serial_metrics, input.classes.get());
  ThreadPool pool(threads());
  FragmentSet parallel_dag = PairwiseJoinFilteredParallel(
      *input.document, input.set1, input.set2, filter, context, &pool,
      &parallel_metrics, input.classes.get());
  ExpectIdenticalSets(baseline, serial_dag);
  ExpectIdenticalSets(baseline, parallel_dag);
  ExpectInvariantLogicalMetrics(baseline_metrics, serial_metrics);
  ExpectInvariantLogicalMetrics(baseline_metrics, parallel_metrics);
}

TEST_P(DagEquivalenceTest, SelectAndFixedPointFiltered) {
  StampedInput input = MakeStampedInput(seed(), duplication());
  DagSwitchGuard guard(true);
  FilterPtr filter = filters::SizeAtMost(6);
  FilterContext context{input.document.get(), input.index.get()};

  OpMetrics select_base, select_dag;
  FragmentSet selected_base = Select(input.set1, filter, context, &select_base,
                                     /*dag=*/nullptr);
  FragmentSet selected_dag =
      Select(input.set1, filter, context, &select_dag, input.classes.get());
  ExpectIdenticalSets(selected_base, selected_dag);
  ExpectInvariantLogicalMetrics(select_base, select_dag);

  OpMetrics fp_base, fp_serial, fp_parallel;
  FragmentSet fixed_base =
      FixedPointFiltered(*input.document, input.set1, filter, context,
                         &fp_base, /*cancel=*/nullptr, /*dag=*/nullptr);
  FragmentSet fixed_serial =
      FixedPointFiltered(*input.document, input.set1, filter, context,
                         &fp_serial, /*cancel=*/nullptr, input.classes.get());
  ThreadPool pool(threads());
  FragmentSet fixed_parallel = FixedPointFilteredParallel(
      *input.document, input.set1, filter, context, &pool, &fp_parallel,
      /*cancel=*/nullptr, input.classes.get());
  ExpectIdenticalSets(fixed_base, fixed_serial);
  ExpectIdenticalSets(fixed_base, fixed_parallel);
  ExpectInvariantLogicalMetrics(fp_base, fp_serial);
  ExpectInvariantLogicalMetrics(fp_base, fp_parallel);
}

TEST_P(DagEquivalenceTest, TopKBitIdenticalAcrossKValues) {
  StampedInput input = MakeStampedInput(seed(), duplication());
  DagSwitchGuard guard(true);
  FilterPtr filter = filters::SizeAtMost(5);
  FilterContext context{input.document.get(), input.index.get()};
  query::AnswerScorer scorer({"kwone", "kwtwo"}, *input.document,
                             *input.index);
  ThreadPool pool(threads());
  // Heavily duplicated corpora are tie-heavy by construction (isomorphic
  // copies score identically), so small k exercises the deterministic
  // tie-break under replay.
  for (size_t k : {size_t{1}, size_t{3}, size_t{8}, size_t{1000}}) {
    TopKCollector baseline_collector(k);
    PairwiseJoinTopK(*input.document, input.set1, input.set2, filter, context,
                     scorer, {}, &baseline_collector, /*metrics=*/nullptr,
                     /*cancel=*/nullptr, /*dag=*/nullptr);
    TopKCollector serial_collector(k);
    PairwiseJoinTopK(*input.document, input.set1, input.set2, filter, context,
                     scorer, {}, &serial_collector, /*metrics=*/nullptr,
                     /*cancel=*/nullptr, input.classes.get());
    TopKCollector parallel_collector(k);
    PairwiseJoinTopKParallel(*input.document, input.set1, input.set2, filter,
                             context, scorer, {}, &parallel_collector, &pool,
                             /*metrics=*/nullptr, /*cancel=*/nullptr,
                             input.classes.get());
    auto baseline = baseline_collector.TakeSorted();
    auto serial = serial_collector.TakeSorted();
    auto parallel = parallel_collector.TakeSorted();
    ASSERT_EQ(baseline.size(), serial.size()) << "k=" << k;
    ASSERT_EQ(baseline.size(), parallel.size()) << "k=" << k;
    for (size_t i = 0; i < baseline.size(); ++i) {
      // Bit-identical: same fragments, same doubles, same order.
      ASSERT_EQ(baseline[i].fragment, serial[i].fragment)
          << "k=" << k << " position " << i;
      ASSERT_EQ(baseline[i].score, serial[i].score)
          << "k=" << k << " position " << i;
      ASSERT_EQ(baseline[i].fragment, parallel[i].fragment)
          << "k=" << k << " position " << i;
      ASSERT_EQ(baseline[i].score, parallel[i].score)
          << "k=" << k << " position " << i;
    }
  }
}

// Engine-wiring input: planted *after* stamping, so posting lists keep the
// small exact sizes the unfiltered naive fixed point can afford (stamping
// first would multiply pre-planted occurrences corpus-dependently — the
// closure is exponential in the posting-list size). Duplication elsewhere
// in the corpus still arms the class index and the `dag:` EXPLAIN line;
// replay depth itself is exercised by the kernel-level tests above.
StampedInput MakeEngineInput(uint64_t seed, double duplication) {
  gen::CorpusProfile profile;
  profile.target_nodes = 400;
  profile.seed = seed;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(seed ^ 0xE46ULL);
  if (duplication > 0.0) {
    gen::StampDuplicateSubtrees(&raw, duplication, &rng);
  }
  gen::PlantKeyword(&raw, "kwone", 6, gen::PlantMode::kClustered, &rng);
  gen::PlantKeyword(&raw, "kwtwo", 5, gen::PlantMode::kScattered, &rng);

  StampedInput input;
  auto document = gen::Materialize(raw);
  EXPECT_TRUE(document.ok());
  input.document =
      std::make_unique<doc::Document>(std::move(document).value());
  input.index = std::make_unique<text::InvertedIndex>(
      text::InvertedIndex::Build(*input.document));
  input.interner = std::make_unique<doc::SubtreeClassInterner>();
  input.classes = std::make_unique<doc::SubtreeClassIndex>(
      doc::SubtreeClassIndex::Build(*input.document, input.interner.get()));
  input.set1 = Singles(input.index->Lookup("kwone"));
  input.set2 = Singles(input.index->Lookup("kwtwo"));
  EXPECT_FALSE(input.set1.empty());
  EXPECT_FALSE(input.set2.empty());
  return input;
}

TEST_P(DagEquivalenceTest, EngineBitIdenticalAcrossStrategiesAndSwitch) {
  StampedInput input = MakeEngineInput(seed(), duplication());
  query::QueryEngine engine(*input.document, *input.index);
  query::Query q;
  q.terms = {"kwone", "kwtwo"};
  q.filter = filters::SizeAtMost(8);
  for (query::Strategy strategy :
       {query::Strategy::kFixedPointNaive, query::Strategy::kFixedPointReduced,
        query::Strategy::kPushDown}) {
    query::EvalOptions off_options;
    off_options.strategy = strategy;
    off_options.executor.subtree_classes = input.classes.get();
    StatusOr<query::EvalResult> off = [&] {
      DagSwitchGuard guard(false);
      return engine.Evaluate(q, off_options);
    }();
    ASSERT_TRUE(off.ok()) << off.status().ToString();

    DagSwitchGuard guard(true);
    query::EvalOptions on_options = off_options;
    on_options.executor.parallelism = threads();
    auto on = engine.Evaluate(q, on_options);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    ExpectIdenticalSets(off->answers, on->answers);
    ExpectInvariantLogicalMetrics(off->metrics, on->metrics);
    EXPECT_NE(on->explain.find("dag:"), std::string::npos) << on->explain;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByDuplicationByThreads, DagEquivalenceTest,
    ::testing::Combine(::testing::Values(uint64_t{51}, uint64_t{52},
                                         uint64_t{53}),
                       ::testing::Values(0.5, 0.9),
                       ::testing::Values(1u, 2u, 4u, 8u)));

// The replay path must actually engage on a duplicated corpus — otherwise
// the equivalence assertions above would pass vacuously.
// Replay requires both fragments of a pair to live inside the SAME
// occurrence of a duplicated subtree (see DagJoinState::PairCacheable) — a
// condition randomized stamping at unit-test scale essentially never
// produces for cross-keyword pairs. Build it by hand instead: two
// byte-identical 'a' subtrees, each carrying one kwone node and one kwtwo
// node, so (kwone@occ1 × kwtwo@occ1) gets evaluated and cached and
// (kwone@occ2 × kwtwo@occ2) is a pure replay.
TEST(DagEngagementTest, ReplayCountersAdvanceOnDuplicatedCorpus) {
  DagSwitchGuard guard(true);
  auto document = doc::Document::FromParents(
      {doc::kNoNode, 0, 1, 1, 1, 1, 0, 6, 6, 6, 6, 0},
      {"r", "a", "h", "k", "h", "k", "a", "h", "k", "h", "k", "c"},
      {"", "", "filler one", "kwone", "filler two", "kwtwo", "",
       "filler one", "kwone", "filler two", "kwtwo", "unique tail"});
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  doc::SubtreeClassInterner interner;
  doc::SubtreeClassIndex classes =
      doc::SubtreeClassIndex::Build(*document, &interner);
  ASSERT_TRUE(classes.has_duplication());
  ASSERT_EQ(classes.dup_anchor(3), classes.dup_anchor(5));
  ASSERT_EQ(classes.dup_anchor(8), classes.dup_anchor(10));
  ASSERT_NE(classes.dup_anchor(3), classes.dup_anchor(8));

  FragmentSet set1 = Singles(index.Lookup("kwone"));
  FragmentSet set2 = Singles(index.Lookup("kwtwo"));
  ASSERT_EQ(set1.size(), 2u);
  ASSERT_EQ(set2.size(), 2u);
  FilterPtr filter = filters::SizeAtMost(5);
  FilterContext context{document.operator->(), &index};
  OpMetrics baseline_metrics, dag_metrics;
  FragmentSet baseline =
      PairwiseJoinFiltered(*document, set1, set2, filter, context,
                          &baseline_metrics, /*dag=*/nullptr);
  FragmentSet with_dag = PairwiseJoinFiltered(
      *document, set1, set2, filter, context, &dag_metrics, &classes);
  ExpectIdenticalSets(baseline, with_dag);
  ExpectInvariantLogicalMetrics(baseline_metrics, dag_metrics);
  // The second occurrence's in-anchor pair replays the first's outcome.
  EXPECT_GT(dag_metrics.class_pairs_considered, 0u);
  EXPECT_GT(dag_metrics.answers_multiplied_out, 0u);
}

// Zero-duplication regression guard: a duplicate-free document must take the
// has_duplication() bypass — no class bookkeeping, dag counters stay zero —
// while producing the same results.
TEST(DagEngagementTest, DuplicateFreeCorpusBypasses) {
  DagSwitchGuard guard(true);
  StampedInput input = MakeStampedInput(71, /*duplication=*/0.0);
  ASSERT_FALSE(input.classes->has_duplication());
  FilterPtr filter = filters::SizeAtMost(5);
  FilterContext context{input.document.get(), input.index.get()};
  OpMetrics baseline_metrics, dag_metrics;
  FragmentSet baseline =
      PairwiseJoinFiltered(*input.document, input.set1, input.set2, filter,
                           context, &baseline_metrics, /*dag=*/nullptr);
  FragmentSet with_dag =
      PairwiseJoinFiltered(*input.document, input.set1, input.set2, filter,
                           context, &dag_metrics, input.classes.get());
  ExpectIdenticalSets(baseline, with_dag);
  ExpectInvariantLogicalMetrics(baseline_metrics, dag_metrics);
  EXPECT_EQ(dag_metrics.classes_total, 0u);
  EXPECT_EQ(dag_metrics.class_pairs_considered, 0u);
  EXPECT_EQ(dag_metrics.answers_multiplied_out, 0u);
}

// Position-dependent predicate: accepts fragments by their root's parity —
// the canonical example of a filter whose verdict does NOT transfer between
// occurrences of a subtree class.
class ParityFilter : public Filter {
 public:
  bool Matches(const Fragment& fragment,
               const FilterContext&) const override {
    return fragment.root() % 2 == 0;
  }
  bool anti_monotonic() const override { return false; }
  bool TranslationInvariant() const override { return false; }
  std::string ToString() const override { return "even_root"; }
};

// A filter that is not translation-invariant must disable the class-aware
// path (DagUsable) — outcomes at one occurrence do not transfer.
TEST(DagEngagementTest, NonTranslationInvariantFilterDisablesReplay) {
  DagSwitchGuard guard(true);
  StampedInput input = MakeStampedInput(81, 0.9);
  FilterContext context{input.document.get(), input.index.get()};
  FilterPtr parity = std::make_shared<ParityFilter>();
  ASSERT_FALSE(parity->TranslationInvariant());
  OpMetrics baseline_metrics, dag_metrics;
  FragmentSet baseline =
      PairwiseJoinFiltered(*input.document, input.set1, input.set2, parity,
                           context, &baseline_metrics, /*dag=*/nullptr);
  FragmentSet with_dag =
      PairwiseJoinFiltered(*input.document, input.set1, input.set2, parity,
                           context, &dag_metrics, input.classes.get());
  ExpectIdenticalSets(baseline, with_dag);
  EXPECT_EQ(dag_metrics.class_pairs_considered, 0u);
}

}  // namespace
}  // namespace xfrag::algebra
