// TopKCollector semantics (dedup, eviction, tie-breaking, order
// independence) and the score-bounded serial kernel's contract: for every k,
// PairwiseJoinTopK retains exactly the k best answers of the unbounded
// evaluation under (score desc, canonical fragment order asc), while
// rejecting pairs whose upper bound cannot reach the heap.

#include "algebra/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../testutil.h"
#include "algebra/ops.h"
#include "common/rng.h"

namespace xfrag::algebra {
namespace {

using testutil::RandomSingles;
using testutil::RandomTree;

Fragment Single(doc::NodeId n) { return Fragment::Single(n); }

// Smaller fragments score higher. Sound bound: |f1 ⋈ f2| >= size_lower and
// the score is decreasing in size. Leaves QuickUpperBound at the base-class
// default ("no information") so the kernel's two-stage check degrades
// gracefully.
class InverseSizeScorer : public JoinScorer {
 public:
  double Score(const Fragment& fragment) const override {
    return 10.0 / (1.0 + static_cast<double>(fragment.size()));
  }
  double UpperBound(const JoinBounds& bounds) const override {
    return 10.0 / (1.0 + static_cast<double>(bounds.size_lower));
  }
};

TEST(TopKCollectorTest, ZeroCapacityAcceptsNothing) {
  TopKCollector collector(0);
  EXPECT_FALSE(collector.CouldAccept(1e9));
  EXPECT_FALSE(collector.Offer(Single(1), 5.0));
  EXPECT_EQ(collector.size(), 0u);
}

TEST(TopKCollectorTest, EvictsTheMinimumWhenFull) {
  TopKCollector collector(2);
  EXPECT_TRUE(collector.Offer(Single(1), 1.0));
  EXPECT_TRUE(collector.Offer(Single(2), 3.0));
  EXPECT_TRUE(collector.full());
  // Outranks the current minimum (Single(1), 1.0): retained, minimum gone.
  EXPECT_TRUE(collector.Offer(Single(3), 2.0));
  auto sorted = collector.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].fragment, Single(2));
  EXPECT_EQ(sorted[1].fragment, Single(3));
}

TEST(TopKCollectorTest, CouldAcceptIsStrictOnlyBelowTheMinimum) {
  TopKCollector collector(1);
  EXPECT_TRUE(collector.CouldAccept(0.0));  // not yet full
  collector.Offer(Single(1), 2.0);
  EXPECT_FALSE(collector.CouldAccept(1.99));
  // A candidate *tying* the minimum could still win on fragment order.
  EXPECT_TRUE(collector.CouldAccept(2.0));
}

TEST(TopKCollectorTest, TiesBreakOnCanonicalFragmentOrder) {
  TopKCollector collector(1);
  EXPECT_TRUE(collector.Offer(Single(2), 1.0));
  // Same score, canonically earlier fragment: replaces the retained entry.
  EXPECT_TRUE(collector.Offer(Single(1), 1.0));
  // Same score, canonically later fragment: rejected.
  EXPECT_FALSE(collector.Offer(Single(3), 1.0));
  auto sorted = collector.TakeSorted();
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_EQ(sorted[0].fragment, Single(1));
}

TEST(TopKCollectorTest, DuplicateOffersAreRejected) {
  TopKCollector collector(4);
  EXPECT_TRUE(collector.Offer(Single(1), 2.0));
  EXPECT_FALSE(collector.Offer(Single(1), 2.0));  // retained non-minimum dup
  EXPECT_TRUE(collector.Offer(Single(2), 1.0));
  EXPECT_FALSE(collector.Offer(Single(2), 1.0));  // duplicate of the minimum
  EXPECT_EQ(collector.size(), 2u);
}

TEST(TopKCollectorTest, ContainsTracksRetentionAndEviction) {
  TopKCollector collector(2);
  EXPECT_FALSE(collector.Contains(Single(1)));
  collector.Offer(Single(1), 1.0);
  collector.Offer(Single(2), 3.0);
  EXPECT_TRUE(collector.Contains(Single(1)));
  EXPECT_TRUE(collector.Contains(Single(2)));
  collector.Offer(Single(3), 2.0);  // evicts Single(1)
  EXPECT_FALSE(collector.Contains(Single(1)));
  EXPECT_TRUE(collector.Contains(Single(3)));
}

TEST(TopKCollectorTest, FinalContentIsOfferOrderIndependent) {
  std::vector<ScoredFragment> offers;
  Rng rng(0xc0de);
  for (doc::NodeId n = 0; n < 40; ++n) {
    // Few distinct scores, so ties are common; duplicates offered on purpose.
    offers.push_back({Single(n % 25), static_cast<double>(rng.Uniform(5))});
  }
  TopKCollector forward(8);
  for (const auto& offer : offers) {
    forward.Offer(offer.fragment, offer.score);
  }
  std::vector<ScoredFragment> shuffled = offers;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  TopKCollector backward(8);
  for (const auto& offer : shuffled) {
    backward.Offer(offer.fragment, offer.score);
  }
  auto a = forward.TakeSorted();
  auto b = backward.TakeSorted();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fragment, b[i].fragment);
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

// The unbounded oracle: join, filter, accept, score everything, sort, cut.
std::vector<ScoredFragment> OracleTopK(const doc::Document& document,
                                       const FragmentSet& set1,
                                       const FragmentSet& set2,
                                       const FilterPtr& filter,
                                       const JoinScorer& scorer,
                                       const FragmentPredicate& accept,
                                       size_t k) {
  FilterContext context{&document, nullptr};
  FragmentSet joined =
      PairwiseJoinFiltered(document, set1, set2, filter, context);
  std::vector<ScoredFragment> scored;
  for (const Fragment& fragment : joined) {
    if (accept && !accept(fragment)) continue;
    scored.push_back({fragment, scorer.Score(fragment)});
  }
  std::sort(scored.begin(), scored.end(), OutranksScored);
  if (scored.size() > k) {
    scored.erase(scored.begin() + static_cast<ptrdiff_t>(k), scored.end());
  }
  return scored;
}

class TopKKernelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKKernelTest, MatchesUnboundedOracleForEveryK) {
  doc::Document document = RandomTree(120, 3, GetParam());
  Rng rng(GetParam() ^ 0xabcd);
  FragmentSet set1 = RandomSingles(document, 12, &rng);
  FragmentSet set2 = RandomSingles(document, 12, &rng);
  FilterPtr filter = filters::SizeAtMost(10);
  FilterContext context{&document, nullptr};
  InverseSizeScorer scorer;

  for (size_t k : {size_t{1}, size_t{3}, size_t{10}, size_t{1000}}) {
    auto oracle = OracleTopK(document, set1, set2, filter, scorer, {}, k);
    TopKCollector collector(k);
    OpMetrics metrics;
    PairwiseJoinTopK(document, set1, set2, filter, context, scorer, {},
                     &collector, &metrics);
    auto got = collector.TakeSorted();
    ASSERT_EQ(got.size(), oracle.size()) << "k=" << k;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].fragment, oracle[i].fragment) << "k=" << k;
      EXPECT_EQ(got[i].score, oracle[i].score) << "k=" << k;
    }
    EXPECT_EQ(metrics.pairs_considered, set1.size() * set2.size());
  }
}

TEST_P(TopKKernelTest, AcceptPredicateRestrictsTheHeapSoundly) {
  doc::Document document = RandomTree(100, 4, GetParam());
  Rng rng(GetParam() ^ 0x9f);
  FragmentSet set1 = RandomSingles(document, 10, &rng);
  FragmentSet set2 = RandomSingles(document, 10, &rng);
  FilterPtr filter = filters::True();
  FilterContext context{&document, nullptr};
  InverseSizeScorer scorer;
  // Only odd-sized answers are acceptable (stands in for the engine's
  // leaf-strict answer-mode condition).
  FragmentPredicate odd = [](const Fragment& f) { return f.size() % 2 == 1; };

  const size_t k = 5;
  auto oracle = OracleTopK(document, set1, set2, filter, scorer, odd, k);
  TopKCollector collector(k);
  PairwiseJoinTopK(document, set1, set2, filter, context, scorer, odd,
                   &collector);
  auto got = collector.TakeSorted();
  ASSERT_EQ(got.size(), oracle.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].fragment, oracle[i].fragment);
    EXPECT_EQ(got[i].score, oracle[i].score);
    EXPECT_EQ(got[i].fragment.size() % 2, 1u);
  }
}

TEST(TopKKernelTest, SmallKPrunesPairsOnChains) {
  // A pure chain: joins of far-apart singles are large, so with k=1 the
  // inverse-size scorer's bound rejects most pairs before materialization.
  doc::Document document = RandomTree(64, 1, 7);
  FragmentSet singles;
  for (doc::NodeId n = 0; n < 64; n += 4) singles.Insert(Single(n));
  FilterPtr filter = filters::True();
  FilterContext context{&document, nullptr};
  InverseSizeScorer scorer;

  TopKCollector collector(1);
  OpMetrics metrics;
  PairwiseJoinTopK(document, singles, singles, filter, context, scorer, {},
                   &collector, &metrics);
  auto got = collector.TakeSorted();
  // Best answer: any single joined with itself (size 1).
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].fragment.size(), 1u);
  EXPECT_GT(metrics.pairs_rejected_score, 0u);
  EXPECT_LT(metrics.fragment_joins, metrics.pairs_considered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKKernelTest,
                         ::testing::Values(1ull, 17ull, 2026ull));

// ---------------------------------------------------------------------------
// Seeded score floors (the distributed top-k shard contract): a collector
// seeded with a sound floor — the k-th best score over >= k real answers —
// must produce exactly the answers a cold collector produces, while
// rejecting at least as many pairs. An unsound (too high) floor must be
// detectable via the floor audit.
// ---------------------------------------------------------------------------

class SeededFloorTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededFloorTest, SoundFloorKeepsTheTopKPrefixByteForByte) {
  doc::Document document = RandomTree(110, 3, GetParam());
  Rng rng(GetParam() ^ 0x5eed);
  FragmentSet set1 = RandomSingles(document, 12, &rng);
  FragmentSet set2 = RandomSingles(document, 12, &rng);
  FilterPtr filter = filters::SizeAtMost(12);
  FilterContext context{&document, nullptr};
  InverseSizeScorer scorer;

  for (size_t k : {size_t{1}, size_t{3}, size_t{10}}) {
    auto oracle = OracleTopK(document, set1, set2, filter, scorer, {}, k);
    if (oracle.size() < k) continue;  // floor only sound with >= k answers
    const double sound_floor = oracle.back().score;  // true k-th best score

    TopKCollector cold(k);
    OpMetrics cold_metrics;
    PairwiseJoinTopK(document, set1, set2, filter, context, scorer, {},
                     &cold, &cold_metrics);

    TopKCollector seeded(k);
    seeded.SeedFloor(sound_floor);
    OpMetrics seeded_metrics;
    PairwiseJoinTopK(document, set1, set2, filter, context, scorer, {},
                     &seeded, &seeded_metrics);

    EXPECT_TRUE(seeded.FloorAuditClean()) << "k=" << k;
    auto expect = cold.TakeSorted();
    auto got = seeded.TakeSorted();
    ASSERT_EQ(got.size(), expect.size()) << "k=" << k;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].fragment, expect[i].fragment) << "k=" << k;
      EXPECT_EQ(got[i].score, expect[i].score) << "k=" << k;
    }
    // The floor can only add pruning power, never remove it.
    EXPECT_GE(seeded_metrics.pairs_rejected_score,
              cold_metrics.pairs_rejected_score)
        << "k=" << k;
  }
}

TEST_P(SeededFloorTest, UnsoundFloorIsCaughtByTheAudit) {
  doc::Document document = RandomTree(90, 3, GetParam());
  Rng rng(GetParam() ^ 0xbad);
  FragmentSet set1 = RandomSingles(document, 10, &rng);
  FragmentSet set2 = RandomSingles(document, 10, &rng);
  FilterPtr filter = filters::True();
  FilterContext context{&document, nullptr};
  InverseSizeScorer scorer;

  const size_t k = 5;
  auto oracle = OracleTopK(document, set1, set2, filter, scorer, {}, k);
  ASSERT_GE(oracle.size(), k);
  // Deliberately unsound: strictly above the true best score, so every real
  // answer is pruned and the audit must flag the loss.
  TopKCollector seeded(k);
  seeded.SeedFloor(oracle.front().score + 1.0);
  PairwiseJoinTopK(document, set1, set2, filter, context, scorer, {},
                   &seeded);
  EXPECT_EQ(seeded.size(), 0u);
  EXPECT_FALSE(seeded.FloorAuditClean());
  EXPECT_GT(seeded.floor_rejections(), 0u);
  EXPECT_GE(seeded.max_floor_rejected(), oracle.front().score);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededFloorTest,
                         ::testing::Values(1ull, 17ull, 2026ull));

TEST(SeededFloorTest, FloorPrunesStrictlyBelowButNeverTies) {
  // Floor semantics: an offer strictly below the floor is rejected; one
  // *tying* the floor must survive (it could still win on fragment order).
  TopKCollector collector(2);
  collector.SeedFloor(2.0);
  EXPECT_FALSE(collector.Offer(Single(1), 1.99));
  EXPECT_TRUE(collector.Offer(Single(2), 2.0));
  EXPECT_TRUE(collector.Offer(Single(3), 5.0));
  auto sorted = collector.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].fragment, Single(3));
  EXPECT_EQ(sorted[1].fragment, Single(2));
}

TEST(SeededFloorTest, SeedFloorIsMonotonic) {
  TopKCollector collector(4);
  collector.SeedFloor(3.0);
  collector.SeedFloor(1.0);  // lowering attempt: ignored
  EXPECT_EQ(collector.seeded_floor(), 3.0);
  EXPECT_FALSE(collector.Offer(Single(1), 2.0));
  collector.SeedFloor(4.0);  // raising: applied
  EXPECT_EQ(collector.seeded_floor(), 4.0);
  EXPECT_FALSE(collector.Offer(Single(2), 3.5));
  EXPECT_TRUE(collector.Offer(Single(3), 4.0));
}

TEST(SeededFloorTest, AuditDistinguishesHarmlessFromLossyRejections) {
  // Rejections strictly below the final k-th score are harmless: the cold
  // collector would have evicted those answers anyway.
  TopKCollector harmless(1);
  harmless.SeedFloor(2.0);
  EXPECT_FALSE(harmless.Offer(Single(1), 1.0));  // counted, but...
  EXPECT_TRUE(harmless.Offer(Single(2), 3.0));   // ...outranked in the end
  EXPECT_GE(harmless.floor_rejections(), 1u);
  EXPECT_TRUE(harmless.FloorAuditClean());

  // A rejection at or above the final k-th score is a real loss.
  TopKCollector lossy(2);
  lossy.SeedFloor(2.0);
  EXPECT_FALSE(lossy.Offer(Single(1), 1.0));  // would have been kept (k=2)
  EXPECT_TRUE(lossy.Offer(Single(2), 3.0));
  EXPECT_FALSE(lossy.FloorAuditClean());  // heap never filled: answer lost
}

TEST(SeededFloorTest, LiveFloorRaisesPruningMidStream) {
  std::atomic<double> live{-1e300};
  TopKCollector collector(2);
  collector.AttachLiveFloor(&live);
  EXPECT_EQ(collector.live_floor(), &live);
  EXPECT_TRUE(collector.Offer(Single(1), 1.0));  // floor not raised yet
  live.store(2.0, std::memory_order_relaxed);    // remote shard reports 2.0
  EXPECT_FALSE(collector.CouldAccept(1.5));
  EXPECT_FALSE(collector.Offer(Single(2), 1.5));
  EXPECT_TRUE(collector.Offer(Single(3), 2.0));  // ties the floor: kept
  EXPECT_TRUE(collector.Offer(Single(4), 9.0));
  auto sorted = collector.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].fragment, Single(4));
  EXPECT_EQ(sorted[1].fragment, Single(3));
}

TEST(SeededFloorTest, MergeFloorAuditCarriesChunkRejections) {
  // Parallel chunks audit locally; the barrier folds their counters into
  // the shared collector so FloorAuditClean() sees the whole document.
  TopKCollector parent(1);
  parent.SeedFloor(5.0);
  TopKCollector chunk(1);
  chunk.SeedFloor(5.0);
  EXPECT_FALSE(chunk.Offer(Single(1), 4.0));  // lossy in the chunk
  EXPECT_FALSE(chunk.FloorAuditClean());
  parent.MergeFloorAudit(chunk);
  EXPECT_GT(parent.floor_rejections(), 0u);
  EXPECT_FALSE(parent.FloorAuditClean());
  // Once the parent retains an answer outranking every rejection, the merged
  // audit is clean again: nothing in the final top-k was lost.
  EXPECT_TRUE(parent.Offer(Single(2), 6.0));
  EXPECT_TRUE(parent.FloorAuditClean());
}

}  // namespace
}  // namespace xfrag::algebra
