// The summary-prefilter contract (ops.h): with the prefilter enabled, the
// filtered join kernels and ⊖'s candidate index must return results (and
// deterministic metrics) identical to the unoptimized kernels — the O(1)
// bounds only ever skip work whose outcome is already decided. Exercised at
// the boundaries (size<=0, size<=1, height<=0, a filter exactly at the join's
// size lower bound) and property-style over random corpora, for the serial
// and the pooled kernels at every thread count. Runs under `ctest -L
// parallel` (see XFRAG_SANITIZE).

#include <gtest/gtest.h>

#include "../testutil.h"
#include "algebra/ops.h"
#include "algebra/ops_parallel.h"
#include "common/thread_pool.h"

namespace xfrag::algebra {
namespace {

using testutil::Frag;
using testutil::RandomTree;
using testutil::Singles;
using testutil::TreeFromParents;

// Restores the process-wide prefilter switch on scope exit.
class PrefilterToggle {
 public:
  explicit PrefilterToggle(bool enabled) : prev_(SummaryPrefilterEnabled()) {
    SetSummaryPrefilterEnabled(enabled);
  }
  ~PrefilterToggle() { SetSummaryPrefilterEnabled(prev_); }

 private:
  bool prev_;
};

// Logical-counter equality across the on/off toggle. operator== is not
// usable here: it includes pairs_rejected_summary, which is 0 with the
// prefilter off by construction.
void ExpectSameLogicalWork(const OpMetrics& off, const OpMetrics& on) {
  EXPECT_EQ(off.fragment_joins, on.fragment_joins);
  EXPECT_EQ(off.filter_evals, on.filter_evals);
  EXPECT_EQ(off.filter_rejections, on.filter_rejections);
  EXPECT_EQ(off.fixed_point_iterations, on.fixed_point_iterations);
  EXPECT_EQ(off.fragments_produced, on.fragments_produced);
  EXPECT_EQ(off.pairs_considered, on.pairs_considered);
}

void ExpectIdenticalSets(const FragmentSet& a, const FragmentSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "divergence at position " << i;
  }
}

// 0 → 1 → ... → 9 chain: join of two singles is the connecting path, so
// every bound is exact and easy to state.
doc::Document Chain(size_t n = 10) {
  std::vector<doc::NodeId> parents{doc::kNoNode};
  for (size_t i = 1; i < n; ++i) {
    parents.push_back(static_cast<doc::NodeId>(i - 1));
  }
  return TreeFromParents(std::move(parents));
}

TEST(JoinBoundsTest, ExactFactsOnAChain) {
  doc::Document d = Chain();
  Fragment f1 = Fragment::Single(5);
  Fragment f2 = Fragment::Single(9);
  JoinBounds bounds = ComputeJoinBounds(d, f1.Summary(d), f2.Summary(d));
  Fragment joined = Join(d, f1, f2);  // {5,6,7,8,9}.
  EXPECT_EQ(bounds.root_depth, d.depth(joined.root()));
  EXPECT_EQ(bounds.height, FragmentHeight(joined, d));
  EXPECT_EQ(bounds.span, FragmentSpan(joined));
  EXPECT_EQ(bounds.size_lower, 5u);  // Exact for singles.
  EXPECT_EQ(bounds.roots_distance, 4u);
  EXPECT_EQ(joined.size(), 5u);
}

TEST(JoinBoundsTest, SizeLowerBoundNeverExceedsActualSize) {
  doc::Document d = RandomTree(200, 4, 77);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    Fragment f1 = Fragment::Single(static_cast<doc::NodeId>(
        rng.Uniform(d.size())));
    Fragment f2 = Fragment::Single(static_cast<doc::NodeId>(
        rng.Uniform(d.size())));
    // Grow the operands a little so multi-node summaries are covered too.
    f1 = Join(d, f1, Fragment::Single(static_cast<doc::NodeId>(
                         rng.Uniform(d.size()))));
    JoinBounds bounds = ComputeJoinBounds(d, f1.Summary(d), f2.Summary(d));
    Fragment joined = Join(d, f1, f2);
    EXPECT_LE(bounds.size_lower, joined.size());
    EXPECT_EQ(bounds.height, FragmentHeight(joined, d));
    EXPECT_EQ(bounds.span, FragmentSpan(joined));
    EXPECT_EQ(bounds.root_depth, d.depth(joined.root()));
  }
}

// size<=0 rejects every fragment; every pair must be prefilter-rejected and
// the result empty, exactly as without the prefilter.
TEST(PrefilterBoundaryTest, SizeAtMostZero) {
  doc::Document d = Chain();
  FragmentSet set1 = Singles({1, 3, 5});
  FragmentSet set2 = Singles({2, 4, 6});
  FilterPtr filter = filters::SizeAtMost(0);
  FilterContext context{&d, nullptr};

  OpMetrics off_metrics;
  FragmentSet off;
  {
    PrefilterToggle toggle(false);
    off = PairwiseJoinFiltered(d, set1, set2, filter, context, &off_metrics);
  }
  OpMetrics on_metrics;
  FragmentSet on;
  {
    PrefilterToggle toggle(true);
    on = PairwiseJoinFiltered(d, set1, set2, filter, context, &on_metrics);
  }
  EXPECT_TRUE(on.empty());
  ExpectIdenticalSets(off, on);
  ExpectSameLogicalWork(off_metrics, on_metrics);
  EXPECT_EQ(off_metrics.pairs_rejected_summary, 0u);
  EXPECT_EQ(on_metrics.pairs_rejected_summary, 9u);  // Every pair, in O(1).
}

// size<=1 admits a join only when both operands are the same single node
// (f ⋈ f = f); the prefilter must keep exactly those pairs.
TEST(PrefilterBoundaryTest, SizeAtMostOne) {
  doc::Document d = Chain();
  FragmentSet set1 = Singles({2, 5});
  FragmentSet set2 = Singles({5, 7});
  FilterPtr filter = filters::SizeAtMost(1);
  FilterContext context{&d, nullptr};
  PrefilterToggle toggle(true);
  OpMetrics metrics;
  FragmentSet out =
      PairwiseJoinFiltered(d, set1, set2, filter, context, &metrics);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Fragment::Single(5));
  EXPECT_EQ(metrics.pairs_rejected_summary, 3u);
}

// height<=0 likewise admits only single-node self-joins.
TEST(PrefilterBoundaryTest, HeightAtMostZero) {
  doc::Document d = Chain();
  FragmentSet set1 = Singles({3, 6});
  FragmentSet set2 = Singles({6, 8});
  FilterPtr filter = filters::HeightAtMost(0);
  FilterContext context{&d, nullptr};

  OpMetrics off_metrics, on_metrics;
  FragmentSet off, on;
  {
    PrefilterToggle toggle(false);
    off = PairwiseJoinFiltered(d, set1, set2, filter, context, &off_metrics);
  }
  {
    PrefilterToggle toggle(true);
    on = PairwiseJoinFiltered(d, set1, set2, filter, context, &on_metrics);
  }
  ASSERT_EQ(on.size(), 1u);
  EXPECT_EQ(on[0], Fragment::Single(6));
  ExpectIdenticalSets(off, on);
  ExpectSameLogicalWork(off_metrics, on_metrics);
  EXPECT_GT(on_metrics.pairs_rejected_summary, 0u);
}

// A filter threshold exactly at the join's size lower bound must NOT be
// prefilter-rejected (the bound is not *above* the threshold), and one step
// tighter must be. This pins the strict inequality in RejectsJoinBounds.
TEST(PrefilterBoundaryTest, FilterExactlyAtJoinLowerBound) {
  doc::Document d = Chain();
  FragmentSet set1 = Singles({5});
  FragmentSet set2 = Singles({9});  // Join {5..9}: size 5, exactly bounded.
  FilterContext context{&d, nullptr};
  PrefilterToggle toggle(true);

  OpMetrics at_metrics;
  FragmentSet at = PairwiseJoinFiltered(d, set1, set2,
                                        filters::SizeAtMost(5), context,
                                        &at_metrics);
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0].size(), 5u);
  EXPECT_EQ(at_metrics.pairs_rejected_summary, 0u);

  OpMetrics below_metrics;
  FragmentSet below = PairwiseJoinFiltered(d, set1, set2,
                                           filters::SizeAtMost(4), context,
                                           &below_metrics);
  EXPECT_TRUE(below.empty());
  EXPECT_EQ(below_metrics.pairs_rejected_summary, 1u);
  // The rejected pair still counts as logical work (ops.h contract).
  EXPECT_EQ(below_metrics.fragment_joins, at_metrics.fragment_joins);
  EXPECT_EQ(below_metrics.filter_evals, at_metrics.filter_evals);
}

// Property: prefilter on/off and serial/pooled all agree — same fragments,
// same insertion order, same deterministic metrics — across corpora, filters
// and thread counts.
TEST(PrefilterEquivalenceTest, OnOffAndPooledAgree) {
  for (uint64_t seed : {101ull, 102ull, 103ull}) {
    doc::Document d = RandomTree(300, 3, seed);
    Rng rng(seed ^ 0xf00d);
    std::vector<doc::NodeId> nodes1, nodes2;
    for (int i = 0; i < 16; ++i) {
      nodes1.push_back(static_cast<doc::NodeId>(rng.Uniform(d.size())));
      nodes2.push_back(static_cast<doc::NodeId>(rng.Uniform(d.size())));
    }
    FragmentSet set1 = Singles(nodes1);
    FragmentSet set2 = Singles(nodes2);
    FilterContext context{&d, nullptr};
    const std::vector<FilterPtr> filter_cases = {
        filters::SizeAtMost(0),
        filters::SizeAtMost(1),
        filters::SizeAtMost(6),
        filters::HeightAtMost(0),
        filters::HeightAtMost(2),
        filters::SpanAtMost(12),
        filters::DistanceAtMost(3),
        filters::RootDepthAtLeast(2),
        filters::And(filters::SizeAtMost(8), filters::HeightAtMost(3)),
        filters::Or(filters::SizeAtMost(3), filters::SpanAtMost(6)),
    };
    for (const FilterPtr& filter : filter_cases) {
      OpMetrics off_metrics;
      FragmentSet off;
      {
        PrefilterToggle toggle(false);
        off = PairwiseJoinFiltered(d, set1, set2, filter, context,
                                   &off_metrics);
      }
      PrefilterToggle toggle(true);
      OpMetrics on_metrics;
      FragmentSet on =
          PairwiseJoinFiltered(d, set1, set2, filter, context, &on_metrics);
      ExpectIdenticalSets(off, on);
      // Logical counters are invariant under the prefilter; only
      // pairs_rejected_summary may differ (it records the physical saving).
      EXPECT_EQ(off_metrics.fragment_joins, on_metrics.fragment_joins);
      EXPECT_EQ(off_metrics.filter_evals, on_metrics.filter_evals);
      EXPECT_EQ(off_metrics.filter_rejections, on_metrics.filter_rejections);
      EXPECT_EQ(off_metrics.fragments_produced, on_metrics.fragments_produced);
      EXPECT_EQ(off_metrics.pairs_considered, on_metrics.pairs_considered);
      EXPECT_EQ(off_metrics.pairs_rejected_summary, 0u);
      for (unsigned threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        OpMetrics pooled_metrics;
        FragmentSet pooled = PairwiseJoinFilteredParallel(
            d, set1, set2, filter, context, &pool, &pooled_metrics);
        ExpectIdenticalSets(on, pooled);
        EXPECT_TRUE(on_metrics == pooled_metrics)
            << "metrics divergence at " << filter->ToString() << " threads "
            << threads;
      }
    }
  }
}

// Reduce: the interval/size candidate index must not change the reduced set,
// serial or pooled, and must actually skip subsumption checks on clustered
// inputs (where eliminations are plentiful).
TEST(PrefilterEquivalenceTest, ReduceIndexAgrees) {
  for (uint64_t seed : {7ull, 8ull}) {
    // window=1 chains cluster members along root paths: many eliminations.
    doc::Document d = RandomTree(120, 2, seed);
    Rng rng(seed);
    std::vector<doc::NodeId> nodes;
    for (int i = 0; i < 20; ++i) {
      nodes.push_back(static_cast<doc::NodeId>(rng.Uniform(d.size())));
    }
    FragmentSet set = Singles(nodes);
    OpMetrics off_metrics;
    FragmentSet off;
    {
      PrefilterToggle toggle(false);
      off = Reduce(d, set, &off_metrics);
    }
    PrefilterToggle toggle(true);
    OpMetrics on_metrics;
    FragmentSet on = Reduce(d, set, &on_metrics);
    ExpectIdenticalSets(off, on);
    EXPECT_TRUE(off_metrics == on_metrics);  // Excludes the skip counter.
    EXPECT_GT(on_metrics.subsume_checks_skipped, 0u);
    for (unsigned threads : {2u, 4u, 8u}) {
      ThreadPool pool(threads);
      OpMetrics pooled_metrics;
      FragmentSet pooled = ReduceParallel(d, set, &pool, &pooled_metrics);
      ExpectIdenticalSets(on, pooled);
      EXPECT_TRUE(on_metrics == pooled_metrics);
    }
  }
}

}  // namespace
}  // namespace xfrag::algebra
