// Powerset fragment join ⋈* (Definition 6) and its Theorem-2 equivalence
// F1 ⋈* F2 = F1⁺ ⋈ F2⁺.

#include <gtest/gtest.h>

#include "../testutil.h"
#include "algebra/ops.h"

namespace xfrag::algebra {
namespace {

using testutil::Frag;
using testutil::TreeFromParents;

doc::Document Fig3Tree() {
  return TreeFromParents({doc::kNoNode, 0, 1, 0, 3, 4, 3, 6, 7, 7});
}

TEST(PowersetJoinTest, ProducesMoreThanPairwise) {
  // The paper highlights (Figure 3 (c) vs (d)) that ⋈* yields more
  // fragments than ⋈ for the same operands.
  doc::Document d = Fig3Tree();
  FragmentSet f1{Fragment::Single(2), Fragment::Single(5)};
  FragmentSet f2{Fragment::Single(8), Fragment::Single(9)};
  FragmentSet pairwise = PairwiseJoin(d, f1, f2);
  auto powerset = PowersetJoinBruteForce(d, f1, f2);
  ASSERT_TRUE(powerset.ok());
  EXPECT_GT(powerset->size(), pairwise.size());
  // Every pairwise result is a powerset result (singleton subsets).
  for (const Fragment& f : pairwise) {
    EXPECT_TRUE(powerset->Contains(f));
  }
}

TEST(PowersetJoinTest, EmptyOperandsYieldEmpty) {
  doc::Document d = Fig3Tree();
  FragmentSet f{Fragment::Single(1)};
  auto r1 = PowersetJoinBruteForce(d, f, FragmentSet());
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty());
  auto r2 = PowersetJoinBruteForce(d, FragmentSet(), f);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST(PowersetJoinTest, SizeGuardTriggersResourceExhausted) {
  doc::Document d = testutil::RandomTree(64, 8, 61);
  Rng rng(62);
  FragmentSet big = testutil::RandomSingles(d, 30, &rng);
  PowersetJoinOptions options;
  options.max_set_size = kMaxPowersetSetSize;
  auto result = PowersetJoinBruteForce(d, big, big, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(PowersetJoinTest, LimitAboveSafeBoundIsInvalidArgument) {
  // Regression: max_set_size used to be accepted up to 20, admitting
  // 2^20 × 2^20 subset pairs. Anything above kMaxPowersetSetSize must be
  // rejected up front — even when the actual operands are tiny.
  doc::Document d = Fig3Tree();
  FragmentSet f1{Fragment::Single(2)};
  FragmentSet f2{Fragment::Single(8)};
  PowersetJoinOptions options;
  options.max_set_size = kMaxPowersetSetSize + 1;
  auto result = PowersetJoinBruteForce(d, f1, f2, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  options.max_set_size = 20;  // The old default.
  result = PowersetJoinBruteForce(d, f1, f2, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // At the bound itself the operator still works.
  options.max_set_size = kMaxPowersetSetSize;
  auto ok = PowersetJoinBruteForce(d, f1, f2, options);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 1u);
}

TEST(PowersetJoinTest, SingletonOperands) {
  doc::Document d = Fig3Tree();
  FragmentSet f1{Fragment::Single(5)};
  FragmentSet f2{Fragment::Single(9)};
  auto result = PowersetJoinBruteForce(d, f1, f2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->Contains(Join(d, Fragment::Single(5),
                                    Fragment::Single(9))));
}

struct PowersetCase {
  size_t nodes;
  size_t window;
  size_t size1;
  size_t size2;
  uint64_t seed;
};

class PowersetPropertyTest : public ::testing::TestWithParam<PowersetCase> {};

TEST_P(PowersetPropertyTest, Theorem2FixedPointFormEqualsBruteForce) {
  const auto& param = GetParam();
  doc::Document d =
      testutil::RandomTree(param.nodes, param.window, param.seed);
  Rng rng(param.seed ^ 0x99);
  FragmentSet f1 = testutil::RandomSingles(d, param.size1, &rng);
  FragmentSet f2 = testutil::RandomSingles(d, param.size2, &rng);
  auto brute = PowersetJoinBruteForce(d, f1, f2);
  ASSERT_TRUE(brute.ok());
  FragmentSet via_fp = PowersetJoinViaFixedPoint(d, f1, f2);
  EXPECT_TRUE(brute->SetEquals(via_fp))
      << "brute " << brute->size() << " vs fixed-point " << via_fp.size();
}

TEST_P(PowersetPropertyTest, EveryResultContainsOneFragmentFromEachSide) {
  const auto& param = GetParam();
  doc::Document d =
      testutil::RandomTree(param.nodes, param.window, param.seed ^ 7);
  Rng rng(param.seed ^ 0xaa);
  FragmentSet f1 = testutil::RandomSingles(d, param.size1, &rng);
  FragmentSet f2 = testutil::RandomSingles(d, param.size2, &rng);
  auto result = PowersetJoinBruteForce(d, f1, f2);
  ASSERT_TRUE(result.ok());
  for (const Fragment& f : *result) {
    bool has1 = false, has2 = false;
    for (const Fragment& a : f1) has1 = has1 || f.ContainsFragment(a);
    for (const Fragment& b : f2) has2 = has2 || f.ContainsFragment(b);
    EXPECT_TRUE(has1 && has2) << f.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, PowersetPropertyTest,
    ::testing::Values(PowersetCase{20, 2, 2, 2, 71},
                      PowersetCase{30, 30, 3, 3, 72},
                      PowersetCase{50, 5, 4, 3, 73},
                      PowersetCase{80, 10, 5, 4, 74},
                      PowersetCase{80, 2, 4, 4, 75},
                      PowersetCase{150, 100, 6, 5, 76},
                      PowersetCase{25, 1, 4, 4, 77}));  // Chain tree.

}  // namespace
}  // namespace xfrag::algebra
