// Filters (§3.3, §3.4): concrete semantics, anti-monotonicity flags, the
// closure of anti-monotonicity under ∧/∨, the Figure-7 counterexample for
// the equal-depth filter, and a randomized check that every filter claiming
// anti-monotonicity actually satisfies Definition 11.

#include "algebra/filter.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "algebra/ops.h"
#include "text/inverted_index.h"

namespace xfrag::algebra {
namespace {

using testutil::Frag;
using testutil::TreeFromParents;

doc::Document Fixture() {
  //        0
  //       / \.
  //      1   5
  //     /|\   \.
  //    2 3 4   6
  //            |
  //            7
  return TreeFromParents({doc::kNoNode, 0, 1, 1, 1, 0, 5, 6});
}

TEST(FilterTest, TrueAcceptsEverything) {
  doc::Document d = Fixture();
  FilterContext ctx{&d, nullptr};
  EXPECT_TRUE(filters::True()->Matches(Fragment::Single(0), ctx));
  EXPECT_TRUE(filters::True()->Matches(Frag(d, {0, 1, 2, 3, 4, 5, 6, 7}), ctx));
  EXPECT_TRUE(filters::True()->anti_monotonic());
}

TEST(FilterTest, SizeAtMost) {
  doc::Document d = Fixture();
  FilterContext ctx{&d, nullptr};
  auto filter = filters::SizeAtMost(3);
  EXPECT_TRUE(filter->Matches(Frag(d, {1, 2, 3}), ctx));
  EXPECT_FALSE(filter->Matches(Frag(d, {1, 2, 3, 4}), ctx));
  EXPECT_TRUE(filter->anti_monotonic());
  EXPECT_EQ(filter->ToString(), "size<=3");
  // Boundary: β = 0 rejects everything (fragments are non-empty).
  EXPECT_FALSE(filters::SizeAtMost(0)->Matches(Fragment::Single(1), ctx));
}

TEST(FilterTest, HeightAtMost) {
  doc::Document d = Fixture();
  FilterContext ctx{&d, nullptr};
  auto filter = filters::HeightAtMost(1);
  EXPECT_TRUE(filter->Matches(Frag(d, {1, 2}), ctx));
  EXPECT_TRUE(filter->Matches(Fragment::Single(7), ctx));
  EXPECT_FALSE(filter->Matches(Frag(d, {5, 6, 7}), ctx));
  EXPECT_TRUE(filter->anti_monotonic());
}

TEST(FilterTest, SpanAtMost) {
  doc::Document d = Fixture();
  FilterContext ctx{&d, nullptr};
  auto filter = filters::SpanAtMost(2);
  EXPECT_TRUE(filter->Matches(Frag(d, {1, 2, 3}), ctx));
  EXPECT_FALSE(filter->Matches(Frag(d, {0, 1, 5}), ctx));  // Span 5.
  EXPECT_TRUE(filter->anti_monotonic());
}

TEST(FilterTest, SizeAtLeastIsNotAntiMonotonic) {
  doc::Document d = Fixture();
  FilterContext ctx{&d, nullptr};
  auto filter = filters::SizeAtLeast(3);
  EXPECT_FALSE(filter->anti_monotonic());
  // Counterexample to Definition 11: the super-fragment passes, the
  // sub-fragment fails.
  Fragment super = Frag(d, {1, 2, 3});
  Fragment sub = Frag(d, {1, 2});
  EXPECT_TRUE(filter->Matches(super, ctx));
  EXPECT_FALSE(filter->Matches(sub, ctx));
}

TEST(FilterTest, ContainsKeyword) {
  auto dsor = doc::Document::FromParents(
      {doc::kNoNode, 0, 0}, {"r", "a", "b"},
      {"", "alpha beta", "gamma"});
  ASSERT_TRUE(dsor.ok());
  doc::Document d = std::move(dsor).value();
  text::InvertedIndex index = text::InvertedIndex::Build(d);
  FilterContext ctx{&d, &index};
  auto filter = filters::ContainsKeyword("alpha");
  EXPECT_TRUE(filter->Matches(Fragment::Single(1), ctx));
  EXPECT_FALSE(filter->Matches(Fragment::Single(2), ctx));
  EXPECT_TRUE(filter->Matches(Frag(d, {0, 1, 2}), ctx));
  // Monotone, not anti-monotonic.
  EXPECT_FALSE(filter->anti_monotonic());
}

TEST(FilterTest, RootTagIs) {
  auto dsor = doc::Document::FromParents({doc::kNoNode, 0}, {"sec", "par"},
                                         {"", ""});
  ASSERT_TRUE(dsor.ok());
  doc::Document d = std::move(dsor).value();
  FilterContext ctx{&d, nullptr};
  auto filter = filters::RootTagIs("sec");
  EXPECT_TRUE(filter->Matches(Frag(d, {0, 1}), ctx));
  EXPECT_FALSE(filter->Matches(Fragment::Single(1), ctx));
  EXPECT_FALSE(filter->anti_monotonic());
}

TEST(FilterTest, EqualDepthFigure7Counterexample) {
  // Figure 7: f' fails the equal-depth predicate while its super-fragment f
  // satisfies it, so the filter is not anti-monotonic.
  //
  //        0
  //       / \.
  //      1   3
  //      |   |
  //      2   4
  // k1 at node 2 (depth 2), k2 at nodes 3 (depth 1) and 4 (depth 2).
  auto dsor = doc::Document::FromParents(
      {doc::kNoNode, 0, 1, 0, 3}, {"r", "a", "b", "c", "d"},
      {"", "", "k1", "k2", "k2"});
  ASSERT_TRUE(dsor.ok());
  doc::Document d = std::move(dsor).value();
  text::InvertedIndex index = text::InvertedIndex::Build(d);
  FilterContext ctx{&d, &index};
  auto filter = filters::EqualDepth("k1", "k2");
  EXPECT_FALSE(filter->anti_monotonic());

  // f = whole tree: k1@2 has depth 2; k2@4 has depth 2... but k2@3 has
  // depth 1, so restrict f to the subtree {0,1,2,3,4} minus nothing —
  // instead use f' = ⟨0,1,2,3⟩ (k2 at depth 1 ≠ k1 at depth 2: fails) and
  // f = ⟨0,1,2,3,4⟩ without node 3's occurrence? Node 3 still carries k2,
  // so build the counterexample with uniform-depth occurrences:
  Fragment f_prime = Frag(d, {0, 1, 2, 3});     // k2 only at depth 1: fails.
  EXPECT_FALSE(filter->Matches(f_prime, ctx));
  // A fragment where all k2 nodes sit at k1's depth: drop node 3 from the
  // keyword view by using a tree where 4 hangs under 0 directly.
  auto dsor2 = doc::Document::FromParents(
      {doc::kNoNode, 0, 1, 0, 3}, {"r", "a", "b", "c", "d"},
      {"", "", "k1", "", "k2"});
  ASSERT_TRUE(dsor2.ok());
  doc::Document d2 = std::move(dsor2).value();
  text::InvertedIndex index2 = text::InvertedIndex::Build(d2);
  FilterContext ctx2{&d2, &index2};
  Fragment f_super = Frag(d2, {0, 1, 2, 3, 4});  // k1@2, k2@2: passes.
  Fragment f_sub = Frag(d2, {0, 1, 2, 3});       // k2 lost: fails.
  EXPECT_TRUE(filter->Matches(f_super, ctx2));
  EXPECT_FALSE(filter->Matches(f_sub, ctx2));
}

TEST(FilterTest, DistanceAtMost) {
  doc::Document d = Fixture();
  FilterContext ctx{&d, nullptr};
  auto filter = filters::DistanceAtMost(2);
  EXPECT_TRUE(filter->Matches(Fragment::Single(7), ctx));
  EXPECT_TRUE(filter->Matches(Frag(d, {1, 2, 3}), ctx));     // Diameter 2.
  EXPECT_TRUE(filter->Matches(Frag(d, {5, 6, 7}), ctx));     // Chain: 2.
  EXPECT_FALSE(filter->Matches(Frag(d, {0, 1, 2, 5}), ctx)); // 2..5 = 3.
  EXPECT_FALSE(filter->Matches(Frag(d, {0, 5, 6, 7}), ctx)); // Chain: 3.
  EXPECT_TRUE(filter->anti_monotonic());
}

TEST(FilterTest, DistanceAgreesWithPairwiseMaximum) {
  doc::Document d = testutil::RandomTree(60, 5, 314);
  FilterContext ctx{&d, nullptr};
  Rng rng(315);
  for (int trial = 0; trial < 40; ++trial) {
    Fragment f = Fragment::Single(
        static_cast<doc::NodeId>(rng.Uniform(d.size())));
    for (int j = 0; j < 3; ++j) {
      f = Join(d, f, Fragment::Single(
                         static_cast<doc::NodeId>(rng.Uniform(d.size()))));
    }
    uint32_t diameter = 0;
    for (doc::NodeId a : f.nodes()) {
      for (doc::NodeId b : f.nodes()) {
        diameter = std::max(diameter, d.Distance(a, b));
      }
    }
    // The filter's double-sweep diameter must match the O(n^2) oracle:
    // accept at the exact diameter, reject one below (unless zero).
    EXPECT_TRUE(filters::DistanceAtMost(diameter)->Matches(f, ctx));
    if (diameter > 0) {
      EXPECT_FALSE(filters::DistanceAtMost(diameter - 1)->Matches(f, ctx));
    }
  }
}

TEST(FilterTest, TagsWithin) {
  auto dsor = doc::Document::FromParents(
      {doc::kNoNode, 0, 0}, {"sec", "par", "fig"}, {"", "", ""});
  ASSERT_TRUE(dsor.ok());
  doc::Document d = std::move(dsor).value();
  FilterContext ctx{&d, nullptr};
  auto filter = filters::TagsWithin({"sec", "par"});
  EXPECT_TRUE(filter->Matches(Frag(d, {0, 1}), ctx));
  EXPECT_FALSE(filter->Matches(Frag(d, {0, 2}), ctx));  // "fig" not allowed.
  EXPECT_TRUE(filter->anti_monotonic());
}

TEST(FilterTest, RootDepthBounds) {
  doc::Document d = Fixture();
  FilterContext ctx{&d, nullptr};
  auto deep = filters::RootDepthAtLeast(1);
  EXPECT_TRUE(deep->Matches(Frag(d, {1, 2}), ctx));
  EXPECT_FALSE(deep->Matches(Frag(d, {0, 1}), ctx));  // Root at depth 0.
  EXPECT_TRUE(deep->anti_monotonic());

  auto shallow = filters::RootDepthAtMost(0);
  EXPECT_TRUE(shallow->Matches(Frag(d, {0, 1}), ctx));
  EXPECT_FALSE(shallow->Matches(Frag(d, {1, 2}), ctx));
  EXPECT_FALSE(shallow->anti_monotonic());
  // Non-anti-monotonicity witness: ⟨0,1⟩ passes root_depth<=0, its
  // sub-fragment ⟨1⟩ does not.
  EXPECT_FALSE(shallow->Matches(Fragment::Single(1), ctx));
}

TEST(FilterTest, ConjunctionAndDisjunctionPreserveAntiMonotonicity) {
  auto size2 = filters::SizeAtMost(2);
  auto height1 = filters::HeightAtMost(1);
  auto min3 = filters::SizeAtLeast(3);
  EXPECT_TRUE(filters::And(size2, height1)->anti_monotonic());
  EXPECT_TRUE(filters::Or(size2, height1)->anti_monotonic());
  EXPECT_FALSE(filters::And(size2, min3)->anti_monotonic());
  EXPECT_FALSE(filters::Or(size2, min3)->anti_monotonic());
}

TEST(FilterTest, NegationNeverClaimsAntiMonotonicity) {
  EXPECT_FALSE(filters::Not(filters::SizeAtMost(2))->anti_monotonic());
  // ¬(size<=2) ≡ size>=3: genuinely not anti-monotonic, confirming the
  // paper's exclusion of negation.
  doc::Document d = Fixture();
  FilterContext ctx{&d, nullptr};
  auto neg = filters::Not(filters::SizeAtMost(2));
  EXPECT_TRUE(neg->Matches(Frag(d, {1, 2, 3}), ctx));
  EXPECT_FALSE(neg->Matches(Frag(d, {1, 2}), ctx));
}

TEST(FilterTest, CompositeSemantics) {
  doc::Document d = Fixture();
  FilterContext ctx{&d, nullptr};
  Fragment small = Frag(d, {1, 2});            // size 2, height 1.
  Fragment tall = Frag(d, {0, 5, 6, 7});       // size 4, height 3.
  auto both = filters::And(filters::SizeAtMost(3), filters::HeightAtMost(2));
  auto either = filters::Or(filters::SizeAtMost(3), filters::HeightAtMost(3));
  EXPECT_TRUE(both->Matches(small, ctx));
  EXPECT_FALSE(both->Matches(tall, ctx));
  EXPECT_TRUE(either->Matches(tall, ctx));  // Height 3 satisfies the Or.
}

TEST(FilterTest, AndAllOfEmptyIsTrue) {
  EXPECT_EQ(filters::AndAll({}).get(), filters::True().get());
  auto one = filters::SizeAtMost(5);
  EXPECT_EQ(filters::AndAll({one}).get(), one.get());
}

TEST(FilterTest, SplitAntiMonotonicSeparatesConjuncts) {
  auto size3 = filters::SizeAtMost(3);
  auto height2 = filters::HeightAtMost(2);
  auto min2 = filters::SizeAtLeast(2);
  FilterPtr anti, residue;

  SplitAntiMonotonic(filters::And(filters::And(size3, min2), height2), &anti,
                     &residue);
  EXPECT_TRUE(anti->anti_monotonic());
  EXPECT_NE(anti->ToString().find("size<=3"), std::string::npos);
  EXPECT_NE(anti->ToString().find("height<=2"), std::string::npos);
  EXPECT_EQ(residue->ToString(), "size>=2");

  // All anti-monotonic: residue is True.
  SplitAntiMonotonic(filters::And(size3, height2), &anti, &residue);
  EXPECT_EQ(residue.get(), filters::True().get());

  // None anti-monotonic: anti is True.
  SplitAntiMonotonic(min2, &anti, &residue);
  EXPECT_EQ(anti.get(), filters::True().get());
  EXPECT_EQ(residue.get(), min2.get());

  // A disjunction is a single conjunct: an anti-monotonic Or is pushed whole.
  SplitAntiMonotonic(filters::Or(size3, height2), &anti, &residue);
  EXPECT_NE(anti.get(), filters::True().get());
  EXPECT_EQ(residue.get(), filters::True().get());
}

// Randomized Definition-11 check: every filter whose anti_monotonic() flag is
// true must satisfy P(f) ⇒ P(f') for node-removal sub-fragments.
class AntiMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(AntiMonotonicityTest, FlagImpliesDefinition11) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  doc::Document d = testutil::RandomTree(60, 6, seed);
  text::InvertedIndex index = text::InvertedIndex::Build(d);
  FilterContext ctx{&d, &index};
  std::vector<FilterPtr> candidates = {
      filters::True(),
      filters::SizeAtMost(3),
      filters::HeightAtMost(2),
      filters::SpanAtMost(10),
      filters::And(filters::SizeAtMost(4), filters::HeightAtMost(3)),
      filters::Or(filters::SizeAtMost(2), filters::SpanAtMost(4)),
      filters::DistanceAtMost(3),
      filters::TagsWithin({"n"}),
      filters::RootDepthAtLeast(1),
      filters::And(filters::DistanceAtMost(4),
                   filters::RootDepthAtLeast(2)),
  };
  Rng rng(seed ^ 0x5555);
  for (const auto& filter : candidates) {
    ASSERT_TRUE(filter->anti_monotonic());
    for (int trial = 0; trial < 40; ++trial) {
      // Random fragment via joins.
      Fragment f = Fragment::Single(
          static_cast<doc::NodeId>(rng.Uniform(d.size())));
      for (int j = 0; j < 3; ++j) {
        f = Join(d, f,
                 Fragment::Single(
                     static_cast<doc::NodeId>(rng.Uniform(d.size()))));
      }
      if (!filter->Matches(f, ctx)) continue;
      // Every connected one-node-removal sub-fragment must also match, and
      // recursively to singletons via leaf pruning.
      Fragment current = f;
      while (current.size() > 1) {
        // Remove a leaf of the fragment (keeps connectivity).
        auto leaves = FragmentLeaves(current, d);
        doc::NodeId drop = leaves[rng.Uniform(leaves.size())];
        std::vector<doc::NodeId> rest;
        for (doc::NodeId n : current.nodes()) {
          if (n != drop) rest.push_back(n);
        }
        if (rest.empty()) break;
        auto sub = Fragment::Create(d, rest);
        ASSERT_TRUE(sub.ok());
        EXPECT_TRUE(filter->Matches(*sub, ctx))
            << filter->ToString() << " failed on sub-fragment "
            << sub->ToString() << " of " << f.ToString();
        current = *sub;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AntiMonotonicityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace xfrag::algebra
