// FragmentPool hash-consing and FragmentRefSet set semantics: equal
// fragments share one ref, refs stay stable, and materialization preserves
// insertion order exactly like FragmentSet.

#include "algebra/fragment_pool.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace xfrag::algebra {
namespace {

using testutil::Frag;
using testutil::TreeFromParents;

TEST(FragmentPoolTest, EqualFragmentsInternToOneRef) {
  doc::Document d = TreeFromParents({doc::kNoNode, 0, 1, 1, 0});
  FragmentPool pool;
  FragmentRef a = pool.Intern(Frag(d, {0, 1, 3}));
  FragmentRef b = pool.Intern(Frag(d, {0, 1, 4}));
  FragmentRef a2 = pool.Intern(Frag(d, {0, 1, 3}));
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Get(a), Frag(d, {0, 1, 3}));
  EXPECT_EQ(pool.Get(b), Frag(d, {0, 1, 4}));
}

TEST(FragmentPoolTest, RefsAndAddressesAreStableAcrossGrowth) {
  doc::Document d = testutil::RandomTree(300, 4, 9);
  FragmentPool pool;
  FragmentRef first = pool.Intern(Fragment::Single(7));
  const Fragment* address = &pool.Get(first);
  for (doc::NodeId n = 0; n < 300; ++n) {
    pool.Intern(Fragment::Single(n));
  }
  EXPECT_EQ(&pool.Get(first), address);
  EXPECT_EQ(pool.Get(first), Fragment::Single(7));
  // Re-interning after growth still finds the original ref.
  EXPECT_EQ(pool.Intern(Fragment::Single(7)), first);
}

TEST(FragmentRefSetTest, InsertDeduplicatesAndKeepsOrder) {
  FragmentRefSet set;
  EXPECT_TRUE(set.Insert(5));
  EXPECT_TRUE(set.Insert(3));
  EXPECT_FALSE(set.Insert(5));
  EXPECT_TRUE(set.Insert(9));
  EXPECT_FALSE(set.Insert(3));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.Contains(9));
  EXPECT_FALSE(set.Contains(4));
  EXPECT_EQ(set.refs(), (std::vector<FragmentRef>{5, 3, 9}));
}

TEST(FragmentRefSetTest, MaterializeMatchesFragmentSetInsertionOrder) {
  doc::Document d = testutil::RandomTree(50, 3, 11);
  Rng rng(12);
  // Insert the same random sequence (with duplicates) into both a
  // FragmentSet and a pool-backed ref set.
  FragmentPool pool;
  FragmentRefSet refs;
  FragmentSet direct;
  for (int i = 0; i < 200; ++i) {
    Fragment f = Fragment::Single(
        static_cast<doc::NodeId>(rng.Uniform(d.size())));
    refs.Insert(pool.Intern(f));
    direct.Insert(std::move(f));
  }
  FragmentSet materialized = refs.Materialize(pool);
  ASSERT_EQ(materialized.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(materialized[i], direct[i]) << "position " << i;
  }
}

TEST(FragmentPoolTest, InternSetPreservesIterationOrder) {
  doc::Document d = TreeFromParents({doc::kNoNode, 0, 1, 1, 0, 4});
  FragmentSet set{Fragment::Single(4), Fragment::Single(1),
                  Fragment::Single(5)};
  FragmentPool pool;
  FragmentRefSet refs = InternSet(&pool, set);
  ASSERT_EQ(refs.size(), set.size());
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(pool.Get(refs[i]), set[i]);
  }
}

}  // namespace
}  // namespace xfrag::algebra
