// Fragment set reduce ⊖ (Definition 10), including the paper's Figure-4
// example reproduced exactly.

#include <gtest/gtest.h>

#include "../testutil.h"
#include "algebra/ops.h"

namespace xfrag::algebra {
namespace {

using testutil::Frag;
using testutil::TreeFromParents;

// The Figure-4 document tree (ids are pre-order):
//          0
//         / \.
//        1   2
//           / \.
//          3   6
//         /|   |
//        4 5   7
doc::Document Fig4Tree() {
  return TreeFromParents({doc::kNoNode, 0, 0, 2, 3, 3, 2, 6});
}

TEST(ReduceTest, Figure4Example) {
  doc::Document d = Fig4Tree();
  // The paper: ⊖({⟨n1⟩,⟨n3⟩,⟨n5⟩,⟨n6⟩,⟨n7⟩}) = {⟨n1⟩,⟨n5⟩,⟨n7⟩}, because
  // n3 ⊆ n1 ⋈ n5 and n6 ⊆ n1 ⋈ n7.
  FragmentSet f = testutil::Singles({1, 3, 5, 6, 7});
  // Sanity of the premises first.
  EXPECT_TRUE(Join(d, Fragment::Single(1), Fragment::Single(5))
                  .ContainsNode(3));
  EXPECT_TRUE(Join(d, Fragment::Single(1), Fragment::Single(7))
                  .ContainsNode(6));
  FragmentSet reduced = Reduce(d, f);
  EXPECT_TRUE(reduced.SetEquals(testutil::Singles({1, 5, 7})))
      << reduced.ToString();
}

TEST(ReduceTest, SmallSetsAreAlreadyReduced) {
  doc::Document d = Fig4Tree();
  FragmentSet empty;
  EXPECT_TRUE(Reduce(d, empty).SetEquals(empty));
  FragmentSet one = testutil::Singles({4});
  EXPECT_TRUE(Reduce(d, one).SetEquals(one));
  // Two elements: elimination needs two *other* members, impossible.
  FragmentSet two = testutil::Singles({4, 5});
  EXPECT_TRUE(Reduce(d, two).SetEquals(two));
}

TEST(ReduceTest, IndependentFragmentsSurvive) {
  doc::Document d = Fig4Tree();
  // Siblings 4, 5 and node 1: no join of two of them covers the third.
  FragmentSet f = testutil::Singles({1, 4, 5});
  EXPECT_TRUE(Join(d, Fragment::Single(4), Fragment::Single(5))
                  .ContainsNode(3));  // 4 ⋈ 5 = ⟨3,4,5⟩; no member inside.
  FragmentSet reduced = Reduce(d, f);
  EXPECT_TRUE(reduced.SetEquals(f));
}

TEST(ReduceTest, NonSingletonFragmentsReduceToo) {
  doc::Document d = Fig4Tree();
  // ⟨2,3⟩ ⊆ ⟨3,4⟩ ⋈ ⟨2,6⟩ = ⟨2,3,4,6⟩, so ⟨2,3⟩ is eliminated.
  FragmentSet f{Frag(d, {2, 3}), Frag(d, {3, 4}), Frag(d, {2, 6})};
  FragmentSet reduced = Reduce(d, f);
  EXPECT_EQ(reduced.size(), 2u);
  EXPECT_FALSE(reduced.Contains(Frag(d, {2, 3})));
}

TEST(ReduceTest, ReducedSetIsSubsetOfInput) {
  doc::Document d = testutil::RandomTree(100, 10, 21);
  Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    FragmentSet f = testutil::RandomSingles(d, 8, &rng);
    FragmentSet reduced = Reduce(d, f);
    EXPECT_LE(reduced.size(), f.size());
    for (const Fragment& member : reduced) {
      EXPECT_TRUE(f.Contains(member));
    }
  }
}

TEST(ReduceTest, EliminationConditionHolds) {
  // Every eliminated member must indeed be subsumed by the join of two other
  // distinct members (soundness of ⊖).
  doc::Document d = testutil::RandomTree(80, 6, 31);
  Rng rng(32);
  FragmentSet f = testutil::RandomSingles(d, 7, &rng);
  FragmentSet reduced = Reduce(d, f);
  for (const Fragment& member : f) {
    if (reduced.Contains(member)) continue;
    bool witnessed = false;
    for (size_t i = 0; i < f.size() && !witnessed; ++i) {
      for (size_t j = i + 1; j < f.size() && !witnessed; ++j) {
        if (f[i] == member || f[j] == member) continue;
        if (Join(d, f[i], f[j]).ContainsFragment(member)) witnessed = true;
      }
    }
    EXPECT_TRUE(witnessed) << "eliminated without witness: "
                           << member.ToString();
  }
}

}  // namespace
}  // namespace xfrag::algebra
