// The parallel-kernel contract (ops_parallel.h): for every thread count, the
// pooled kernels return fragment sets bit-identical to the serial oracle —
// same members in the same insertion order — and accumulate exactly the same
// OpMetrics. Property-tested over seeded random corpora (src/gen) × thread
// counts {1, 2, 4, 8}, plus the executor/engine wiring of the Parallelism
// option. Runs under TSan via `ctest -L parallel` (see XFRAG_SANITIZE).

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "../testutil.h"
#include "algebra/ops.h"
#include "algebra/ops_parallel.h"
#include "common/thread_pool.h"
#include "gen/corpus.h"
#include "query/engine.h"
#include "query/ranking.h"

namespace xfrag::algebra {
namespace {

// A generated document with the two planted keywords' posting lists as
// single-node fragment sets.
struct PlantedInput {
  std::unique_ptr<doc::Document> document;
  std::unique_ptr<text::InvertedIndex> index;
  FragmentSet set1;
  FragmentSet set2;
};

FragmentSet Singles(const std::vector<doc::NodeId>& nodes) {
  FragmentSet out;
  for (doc::NodeId n : nodes) out.Insert(Fragment::Single(n));
  return out;
}

PlantedInput MakeInput(uint64_t seed, size_t count1, gen::PlantMode mode1,
                       size_t count2, gen::PlantMode mode2) {
  gen::CorpusProfile profile;
  profile.target_nodes = 400;
  profile.seed = seed;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(seed ^ 0x5eedULL);
  auto planted1 = gen::PlantKeyword(&raw, "kwone", count1, mode1, &rng);
  auto planted2 = gen::PlantKeyword(&raw, "kwtwo", count2, mode2, &rng);
  auto document = gen::Materialize(raw);
  EXPECT_TRUE(document.ok());
  PlantedInput input;
  input.document =
      std::make_unique<doc::Document>(std::move(document).value());
  input.index = std::make_unique<text::InvertedIndex>(
      text::InvertedIndex::Build(*input.document));
  input.set1 = Singles(planted1);
  input.set2 = Singles(planted2);
  EXPECT_FALSE(input.set1.empty());
  EXPECT_FALSE(input.set2.empty());
  return input;
}

// Bit-identical: same size, same fragments, same insertion order.
void ExpectIdenticalSets(const FragmentSet& serial,
                         const FragmentSet& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i])
        << "insertion-order divergence at position " << i << ": serial "
        << serial[i].ToString() << " vs parallel " << parallel[i].ToString();
  }
}

void ExpectIdenticalMetrics(const OpMetrics& serial,
                            const OpMetrics& parallel) {
  EXPECT_EQ(serial.fragment_joins, parallel.fragment_joins);
  EXPECT_EQ(serial.filter_evals, parallel.filter_evals);
  EXPECT_EQ(serial.filter_rejections, parallel.filter_rejections);
  EXPECT_EQ(serial.fixed_point_iterations, parallel.fixed_point_iterations);
  EXPECT_EQ(serial.fragments_produced, parallel.fragments_produced);
  // The prefilter pair counters are deterministic per input, so they must
  // match across thread counts too. subsume_checks_skipped is deliberately
  // NOT compared: how many checks ⊖'s candidate index skips depends on how
  // far each worker's private elimination bitmap had progressed (ops.h).
  EXPECT_EQ(serial.pairs_considered, parallel.pairs_considered);
  EXPECT_EQ(serial.pairs_rejected_summary, parallel.pairs_rejected_summary);
  EXPECT_TRUE(serial == parallel);
}

// (seed, thread count).
class ParallelEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  unsigned threads() const { return std::get<1>(GetParam()); }
};

TEST_P(ParallelEquivalenceTest, PairwiseJoin) {
  PlantedInput input = MakeInput(seed(), 24, gen::PlantMode::kScattered, 20,
                                 gen::PlantMode::kScattered);
  ThreadPool pool(threads());
  OpMetrics serial_metrics, parallel_metrics;
  FragmentSet serial =
      PairwiseJoin(*input.document, input.set1, input.set2, &serial_metrics);
  FragmentSet parallel = PairwiseJoinParallel(
      *input.document, input.set1, input.set2, &pool, &parallel_metrics);
  ExpectIdenticalSets(serial, parallel);
  ExpectIdenticalMetrics(serial_metrics, parallel_metrics);
  EXPECT_EQ(serial_metrics.fragment_joins,
            uint64_t{input.set1.size()} * input.set2.size());
}

TEST_P(ParallelEquivalenceTest, PairwiseJoinFiltered) {
  PlantedInput input = MakeInput(seed(), 24, gen::PlantMode::kScattered, 20,
                                 gen::PlantMode::kClustered);
  ThreadPool pool(threads());
  FilterPtr filter = filters::SizeAtMost(6);
  FilterContext context{input.document.get(), input.index.get()};
  OpMetrics serial_metrics, parallel_metrics;
  FragmentSet serial =
      PairwiseJoinFiltered(*input.document, input.set1, input.set2, filter,
                           context, &serial_metrics);
  FragmentSet parallel = PairwiseJoinFilteredParallel(
      *input.document, input.set1, input.set2, filter, context, &pool,
      &parallel_metrics);
  ExpectIdenticalSets(serial, parallel);
  ExpectIdenticalMetrics(serial_metrics, parallel_metrics);
  // The filter must have actually discriminated for the test to mean much.
  EXPECT_GT(serial_metrics.filter_rejections, 0u);
}

TEST_P(ParallelEquivalenceTest, Reduce) {
  PlantedInput input = MakeInput(seed(), 18, gen::PlantMode::kClustered, 1,
                                 gen::PlantMode::kScattered);
  ThreadPool pool(threads());
  OpMetrics serial_metrics, parallel_metrics;
  FragmentSet serial = Reduce(*input.document, input.set1, &serial_metrics);
  FragmentSet parallel =
      ReduceParallel(*input.document, input.set1, &pool, &parallel_metrics);
  ExpectIdenticalSets(serial, parallel);
  ExpectIdenticalMetrics(serial_metrics, parallel_metrics);
}

TEST_P(ParallelEquivalenceTest, FixedPointNaive) {
  PlantedInput input = MakeInput(seed(), 9, gen::PlantMode::kClustered, 1,
                                 gen::PlantMode::kScattered);
  ThreadPool pool(threads());
  OpMetrics serial_metrics, parallel_metrics;
  FragmentSet serial =
      FixedPointNaive(*input.document, input.set1, &serial_metrics);
  FragmentSet parallel = FixedPointNaiveParallel(*input.document, input.set1,
                                                 &pool, &parallel_metrics);
  ExpectIdenticalSets(serial, parallel);
  ExpectIdenticalMetrics(serial_metrics, parallel_metrics);
}

TEST_P(ParallelEquivalenceTest, FixedPointReduced) {
  PlantedInput input = MakeInput(seed(), 9, gen::PlantMode::kSiblings, 1,
                                 gen::PlantMode::kScattered);
  ThreadPool pool(threads());
  OpMetrics serial_metrics, parallel_metrics;
  FragmentSet serial =
      FixedPointReduced(*input.document, input.set1, &serial_metrics);
  FragmentSet parallel = FixedPointReducedParallel(
      *input.document, input.set1, &pool, &parallel_metrics);
  ExpectIdenticalSets(serial, parallel);
  ExpectIdenticalMetrics(serial_metrics, parallel_metrics);
}

TEST_P(ParallelEquivalenceTest, FixedPointFiltered) {
  PlantedInput input = MakeInput(seed(), 10, gen::PlantMode::kClustered, 1,
                                 gen::PlantMode::kScattered);
  ThreadPool pool(threads());
  FilterPtr filter = filters::SizeAtMost(8);
  FilterContext context{input.document.get(), input.index.get()};
  OpMetrics serial_metrics, parallel_metrics;
  FragmentSet serial = FixedPointFiltered(*input.document, input.set1, filter,
                                          context, &serial_metrics);
  FragmentSet parallel = FixedPointFilteredParallel(
      *input.document, input.set1, filter, context, &pool, &parallel_metrics);
  ExpectIdenticalSets(serial, parallel);
  ExpectIdenticalMetrics(serial_metrics, parallel_metrics);
}

TEST_P(ParallelEquivalenceTest, PairwiseJoinTopK) {
  PlantedInput input = MakeInput(seed(), 24, gen::PlantMode::kScattered, 20,
                                 gen::PlantMode::kClustered);
  ThreadPool pool(threads());
  FilterPtr filter = filters::SizeAtMost(6);
  FilterContext context{input.document.get(), input.index.get()};
  // The real serving scorer (read-only, thread-safe by contract).
  query::AnswerScorer scorer({"kwone", "kwtwo"}, *input.document,
                             *input.index);
  for (size_t k : {size_t{1}, size_t{5}, size_t{1000}}) {
    TopKCollector serial_collector(k);
    OpMetrics serial_metrics;
    PairwiseJoinTopK(*input.document, input.set1, input.set2, filter, context,
                     scorer, {}, &serial_collector, &serial_metrics);
    TopKCollector parallel_collector(k);
    PairwiseJoinTopKParallel(*input.document, input.set1, input.set2, filter,
                             context, scorer, {}, &parallel_collector, &pool);
    auto serial = serial_collector.TakeSorted();
    auto parallel = parallel_collector.TakeSorted();
    ASSERT_EQ(serial.size(), parallel.size()) << "k=" << k;
    for (size_t i = 0; i < serial.size(); ++i) {
      // Bit-identical: same fragments, same doubles, same order.
      ASSERT_EQ(serial[i].fragment, parallel[i].fragment)
          << "k=" << k << " position " << i;
      ASSERT_EQ(serial[i].score, parallel[i].score)
          << "k=" << k << " position " << i;
    }
    // Every candidate pair is enumerated on both paths (pruning skips work
    // per pair, never pairs); the pruning counters themselves are
    // schedule-dependent and deliberately not compared.
    EXPECT_EQ(serial_metrics.pairs_considered,
              uint64_t{input.set1.size()} * input.set2.size());
  }
}

TEST_P(ParallelEquivalenceTest, NullPoolFallsBackToSerial) {
  PlantedInput input = MakeInput(seed(), 8, gen::PlantMode::kScattered, 8,
                                 gen::PlantMode::kScattered);
  OpMetrics serial_metrics, fallback_metrics;
  FragmentSet serial =
      PairwiseJoin(*input.document, input.set1, input.set2, &serial_metrics);
  FragmentSet fallback =
      PairwiseJoinParallel(*input.document, input.set1, input.set2,
                           /*pool=*/nullptr, &fallback_metrics);
  ExpectIdenticalSets(serial, fallback);
  ExpectIdenticalMetrics(serial_metrics, fallback_metrics);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByThreads, ParallelEquivalenceTest,
    ::testing::Combine(::testing::Values(uint64_t{21}, uint64_t{22},
                                         uint64_t{23}, uint64_t{24}),
                       ::testing::Values(1u, 2u, 4u, 8u)));

// End-to-end wiring: the engine's Parallelism option must not change any
// observable output — answers, metrics, or strategy — and must be surfaced
// in EXPLAIN.
TEST(EngineParallelismTest, EvaluationIsBitIdenticalAcrossParallelism) {
  for (uint64_t seed : {31ull, 32ull, 33ull}) {
    PlantedInput input = MakeInput(seed, 6, gen::PlantMode::kClustered, 5,
                                   gen::PlantMode::kScattered);
    query::QueryEngine engine(*input.document, *input.index);
    query::Query q;
    q.terms = {"kwone", "kwtwo"};
    q.filter = filters::SizeAtMost(10);
    for (query::Strategy strategy :
         {query::Strategy::kFixedPointNaive, query::Strategy::kFixedPointReduced,
          query::Strategy::kPushDown}) {
      query::EvalOptions serial_options;
      serial_options.strategy = strategy;
      auto serial = engine.Evaluate(q, serial_options);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      for (unsigned threads : {2u, 4u, 8u}) {
        query::EvalOptions parallel_options;
        parallel_options.strategy = strategy;
        parallel_options.executor.parallelism = threads;
        auto parallel = engine.Evaluate(q, parallel_options);
        ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
        ExpectIdenticalSets(serial->answers, parallel->answers);
        ExpectIdenticalMetrics(serial->metrics, parallel->metrics);
        EXPECT_NE(parallel->explain.find("parallelism:"), std::string::npos)
            << parallel->explain;
        EXPECT_EQ(serial->explain.find("parallelism:"), std::string::npos);
      }
    }
  }
}

TEST(EngineParallelismTest, ExternalPoolIsReusedAcrossQueries) {
  PlantedInput input = MakeInput(41, 6, gen::PlantMode::kClustered, 5,
                                 gen::PlantMode::kScattered);
  query::QueryEngine engine(*input.document, *input.index);
  ThreadPool pool(4);
  query::Query q;
  q.terms = {"kwone", "kwtwo"};
  query::EvalOptions options;
  options.strategy = query::Strategy::kFixedPointReduced;
  options.executor.thread_pool = &pool;
  auto first = engine.Evaluate(q, options);
  auto second = engine.Evaluate(q, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectIdenticalSets(first->answers, second->answers);
  auto serial = engine.Evaluate(q, {});
  ASSERT_TRUE(serial.ok());
  // kAuto (default) may resolve to a different strategy; compare as sets.
  EXPECT_TRUE(serial->answers.SetEquals(first->answers));
}

}  // namespace
}  // namespace xfrag::algebra
