#include "algebra/fragment.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../testutil.h"
#include "algebra/fragment_pool.h"
#include "algebra/fragment_set.h"

namespace xfrag::algebra {
namespace {

using testutil::Frag;
using testutil::TreeFromParents;

// Fixture (ids are pre-order):
//        0
//       / \.
//      1   5
//     /|\   \.
//    2 3 4   6
//            |
//            7
doc::Document Fixture() {
  return TreeFromParents({doc::kNoNode, 0, 1, 1, 1, 0, 5, 6});
}

TEST(FragmentTest, CreateValidatesConnectivity) {
  doc::Document d = Fixture();
  EXPECT_TRUE(Fragment::Create(d, {1, 2, 3}).ok());
  EXPECT_TRUE(Fragment::Create(d, {0, 1, 5}).ok());
  EXPECT_TRUE(Fragment::Create(d, {7}).ok());
  // 2 and 4 are siblings without their parent: disconnected.
  EXPECT_FALSE(Fragment::Create(d, {2, 4}).ok());
  // 0 and 7 without the 5,6 chain: disconnected.
  EXPECT_FALSE(Fragment::Create(d, {0, 7}).ok());
}

TEST(FragmentTest, CreateRejectsEmptyAndOutOfRange) {
  doc::Document d = Fixture();
  EXPECT_FALSE(Fragment::Create(d, {}).ok());
  EXPECT_EQ(Fragment::Create(d, {99}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(FragmentTest, CreateSortsAndDeduplicates) {
  doc::Document d = Fixture();
  auto f = Fragment::Create(d, {3, 1, 2, 3, 1});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->nodes(), (std::vector<doc::NodeId>{1, 2, 3}));
  EXPECT_EQ(f->size(), 3u);
}

TEST(FragmentTest, RootIsMinimalPreOrderId) {
  doc::Document d = Fixture();
  EXPECT_EQ(Frag(d, {5, 6, 7}).root(), 5u);
  EXPECT_EQ(Frag(d, {0, 1, 5}).root(), 0u);
  EXPECT_EQ(Fragment::Single(4).root(), 4u);
}

TEST(FragmentTest, ContainsNodeAndFragment) {
  doc::Document d = Fixture();
  Fragment f = Frag(d, {1, 2, 3, 4});
  EXPECT_TRUE(f.ContainsNode(3));
  EXPECT_FALSE(f.ContainsNode(5));
  EXPECT_TRUE(f.ContainsFragment(Frag(d, {1, 3})));
  EXPECT_TRUE(f.ContainsFragment(f));
  EXPECT_FALSE(f.ContainsFragment(Frag(d, {0, 1})));
  EXPECT_FALSE(Frag(d, {1, 3}).ContainsFragment(f));
}

TEST(FragmentTest, EqualityAndHash) {
  doc::Document d = Fixture();
  Fragment a = Frag(d, {1, 2});
  Fragment b = Frag(d, {2, 1});
  Fragment c = Frag(d, {1, 3});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
  EXPECT_NE(a.Hash(), c.Hash());  // Not guaranteed, but should hold here.
}

TEST(FragmentTest, OrderingIsLexicographic) {
  doc::Document d = Fixture();
  EXPECT_LT(Frag(d, {0, 1}), Frag(d, {1, 2}));
  EXPECT_LT(Frag(d, {1, 2}), Frag(d, {1, 2, 3}));
  EXPECT_FALSE(Frag(d, {1, 2}) < Frag(d, {1, 2}));
}

TEST(FragmentTest, ToStringUsesPaperNotation) {
  doc::Document d = Fixture();
  EXPECT_EQ(Frag(d, {5, 6, 7}).ToString(), "⟨n5,n6,n7⟩");
  EXPECT_EQ(Fragment::Single(0).ToString(), "⟨n0⟩");
}

TEST(FragmentMetricsTest, Height) {
  doc::Document d = Fixture();
  EXPECT_EQ(FragmentHeight(Fragment::Single(3), d), 0u);
  EXPECT_EQ(FragmentHeight(Frag(d, {1, 2}), d), 1u);
  EXPECT_EQ(FragmentHeight(Frag(d, {0, 5, 6, 7}), d), 3u);
  EXPECT_EQ(FragmentHeight(Frag(d, {5, 6, 7}), d), 2u);
}

TEST(FragmentMetricsTest, Span) {
  doc::Document d = Fixture();
  EXPECT_EQ(FragmentSpan(Fragment::Single(3)), 0u);
  EXPECT_EQ(FragmentSpan(Frag(d, {1, 2, 3})), 2u);
  EXPECT_EQ(FragmentSpan(Frag(d, {0, 1, 5})), 5u);
}

TEST(FragmentMetricsTest, Leaves) {
  doc::Document d = Fixture();
  EXPECT_EQ(FragmentLeaves(Frag(d, {1, 2, 3, 4}), d),
            (std::vector<doc::NodeId>{2, 3, 4}));
  EXPECT_EQ(FragmentLeaves(Frag(d, {5, 6, 7}), d),
            (std::vector<doc::NodeId>{7}));
  EXPECT_EQ(FragmentLeaves(Fragment::Single(0), d),
            (std::vector<doc::NodeId>{0}));
  // Node 1 is internal (2 hangs below it); 5 is a leaf of the fragment even
  // though it has children in the document.
  EXPECT_EQ(FragmentLeaves(Frag(d, {0, 1, 2, 5}), d),
            (std::vector<doc::NodeId>{2, 5}));
}

// The summary header must agree with a brute-force scan of the node vector.
TEST(FragmentSummaryTest, MatchesBruteForceScan) {
  doc::Document d = Fixture();
  for (const auto& nodes : std::vector<std::vector<doc::NodeId>>{
           {7}, {1, 2, 3, 4}, {0, 1, 5, 6, 7}, {5, 6}}) {
    Fragment f = Frag(d, nodes);
    FragmentSummary s = f.Summary(d);
    EXPECT_EQ(s.size, nodes.size());
    EXPECT_EQ(s.root, *std::min_element(nodes.begin(), nodes.end()));
    EXPECT_EQ(s.min_pre, *std::min_element(nodes.begin(), nodes.end()));
    EXPECT_EQ(s.max_pre, *std::max_element(nodes.begin(), nodes.end()));
    uint32_t max_depth = 0;
    for (doc::NodeId n : nodes) max_depth = std::max(max_depth, d.depth(n));
    EXPECT_EQ(s.max_depth, max_depth);
    EXPECT_EQ(s.root_depth, d.depth(s.root));
  }
}

// The hash is computed once at construction; FragmentSet dedup and
// FragmentPool interning must reuse it instead of rescanning nodes.
TEST(FragmentHashTest, InterningDoesNotRecomputeHashes) {
  doc::Document d = Fixture();
  std::vector<Fragment> frags;
  frags.push_back(Frag(d, {1, 2, 3}));
  frags.push_back(Frag(d, {0, 1, 5}));
  frags.push_back(Frag(d, {5, 6, 7}));
  frags.push_back(Frag(d, {1, 2, 3}));  // Duplicate of the first.

  uint64_t before = Fragment::HashComputationsForTest();
  FragmentSet set;
  for (const Fragment& f : frags) set.Insert(f);
  EXPECT_EQ(set.size(), 3u);
  FragmentPool pool;
  for (const Fragment& f : set) pool.Intern(f);
  InternSet(&pool, set);
  // Copies share the precomputed hash; no node vector was rescanned.
  EXPECT_EQ(Fragment::HashComputationsForTest(), before);
}

}  // namespace
}  // namespace xfrag::algebra
