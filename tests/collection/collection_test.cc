// Collection container + collection-wide query evaluation, including the
// parallel path and determinism of merged results.

#include "collection/collection_engine.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "gen/corpus.h"
#include "gen/paper_document.h"

namespace xfrag::collection {
namespace {

Collection MakeSmallCollection() {
  Collection collection;
  EXPECT_TRUE(collection
                  .AddXml("alpha.xml",
                          "<doc><sec><par>apples and oranges</par>"
                          "<par>oranges only</par></sec></doc>")
                  .ok());
  EXPECT_TRUE(collection
                  .AddXml("beta.xml",
                          "<doc><par>apples alone here</par></doc>")
                  .ok());
  EXPECT_TRUE(collection
                  .AddXml("gamma.xml",
                          "<doc><sec>apples<par>oranges</par></sec></doc>")
                  .ok());
  return collection;
}

TEST(CollectionTest, AddAndLookup) {
  Collection collection = MakeSmallCollection();
  EXPECT_EQ(collection.size(), 3u);
  EXPECT_EQ(collection.Names(),
            (std::vector<std::string>{"alpha.xml", "beta.xml", "gamma.xml"}));
  auto found = collection.Find("beta.xml");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->name, "beta.xml");
  EXPECT_FALSE(collection.Find("missing.xml").ok());
}

TEST(CollectionTest, DuplicateNameRejected) {
  Collection collection;
  ASSERT_TRUE(collection.AddXml("a", "<r>x</r>").ok());
  auto status = collection.AddXml("a", "<r>y</r>");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CollectionTest, MalformedXmlRejected) {
  Collection collection;
  EXPECT_FALSE(collection.AddXml("bad", "<r><unclosed></r>").ok());
  EXPECT_EQ(collection.size(), 0u);
}

TEST(CollectionTest, DocumentFrequency) {
  Collection collection = MakeSmallCollection();
  EXPECT_EQ(collection.DocumentFrequency("apples"), 3u);
  EXPECT_EQ(collection.DocumentFrequency("oranges"), 2u);
  EXPECT_EQ(collection.DocumentFrequency("nothing"), 0u);
}

TEST(CollectionTest, TotalNodes) {
  Collection collection = MakeSmallCollection();
  // alpha: doc,sec,par,par = 4; beta: doc,par = 2; gamma: doc,sec,par = 3.
  EXPECT_EQ(collection.TotalNodes(), 9u);
}

TEST(CollectionEngineTest, EvaluatesOnlyDocumentsWithAllTerms) {
  Collection collection = MakeSmallCollection();
  CollectionEngine engine(collection);
  query::Query q;
  q.terms = {"apples", "oranges"};
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // beta.xml lacks 'oranges'.
  EXPECT_EQ(result->documents_evaluated, 2u);
  EXPECT_EQ(result->documents_skipped, 1u);
  ASSERT_FALSE(result->answers.empty());
  for (const auto& answer : result->answers) {
    EXPECT_NE(answer.document_name, "beta.xml");
  }
}

TEST(CollectionEngineTest, AnswersCarryProvenanceInDocumentOrder) {
  Collection collection = MakeSmallCollection();
  CollectionEngine engine(collection);
  query::Query q;
  q.terms = {"apples"};
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->documents_evaluated, 3u);
  // Document indexes are non-decreasing in the merged answer list.
  for (size_t i = 1; i < result->answers.size(); ++i) {
    EXPECT_LE(result->answers[i - 1].document_index,
              result->answers[i].document_index);
  }
}

TEST(CollectionEngineTest, EmptyQueryRejected) {
  Collection collection = MakeSmallCollection();
  CollectionEngine engine(collection);
  EXPECT_FALSE(engine.Evaluate(query::Query{}).ok());
}

TEST(CollectionEngineTest, EmptyCollectionYieldsEmptyResult) {
  Collection collection;
  CollectionEngine engine(collection);
  query::Query q;
  q.terms = {"anything"};
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answers.empty());
  EXPECT_EQ(result->documents_evaluated, 0u);
}

TEST(CollectionEngineTest, ParallelMatchesSequential) {
  // A larger generated collection exercises the parallel path.
  Collection collection;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    gen::CorpusProfile profile;
    profile.target_nodes = 300;
    profile.seed = seed;
    gen::RawCorpus raw = gen::GenerateRaw(profile);
    Rng rng(seed ^ 0xc0);
    gen::PlantKeyword(&raw, "kwone", 5, gen::PlantMode::kClustered, &rng);
    if (seed % 2 == 0) {  // Half the documents have both terms.
      gen::PlantKeyword(&raw, "kwtwo", 4, gen::PlantMode::kScattered, &rng);
    }
    auto document = gen::Materialize(raw);
    ASSERT_TRUE(document.ok());
    ASSERT_TRUE(collection
                    .Add("doc" + std::to_string(seed),
                         std::move(document).value())
                    .ok());
  }
  CollectionEngine engine(collection);
  query::Query q;
  q.terms = {"kwone", "kwtwo"};
  q.filter = algebra::filters::SizeAtMost(6);

  CollectionEvalOptions sequential;
  sequential.parallelism = 1;
  auto seq = engine.Evaluate(q, sequential);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->documents_skipped, 4u);

  CollectionEvalOptions parallel;
  parallel.parallelism = 4;
  auto par = engine.Evaluate(q, parallel);
  ASSERT_TRUE(par.ok());

  ASSERT_EQ(seq->answers.size(), par->answers.size());
  for (size_t i = 0; i < seq->answers.size(); ++i) {
    EXPECT_EQ(seq->answers[i].document_index, par->answers[i].document_index);
    EXPECT_EQ(seq->answers[i].fragment, par->answers[i].fragment);
  }
  EXPECT_EQ(seq->metrics.fragment_joins, par->metrics.fragment_joins);
}

TEST(CollectionEngineTest, PaperDocumentInACollection) {
  Collection collection;
  auto paper = gen::BuildPaperDocument();
  ASSERT_TRUE(paper.ok());
  ASSERT_TRUE(collection.Add("figure1.xml", std::move(paper).value()).ok());
  ASSERT_TRUE(
      collection.AddXml("other.xml", "<doc><par>nothing relevant</par></doc>")
          .ok());

  CollectionEngine engine(collection);
  query::Query q;
  q.terms = {"xquery", "optimization"};
  q.filter = algebra::filters::SizeAtMost(3);
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->documents_evaluated, 1u);
  EXPECT_EQ(result->documents_skipped, 1u);
  ASSERT_EQ(result->answers.size(), 4u);
  for (const auto& answer : result->answers) {
    EXPECT_EQ(answer.document_name, "figure1.xml");
  }
}

}  // namespace
}  // namespace xfrag::collection
