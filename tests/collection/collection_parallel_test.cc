// Collection evaluation on the shared thread pool: answers, metrics, and
// provenance are identical for every parallelism, an external pool can be
// reused across evaluations (and shared with the per-document kernels), and
// nested parallelism (documents × kernels on one pool) stays correct.

#include <gtest/gtest.h>

#include <string>

#include "collection/collection_engine.h"
#include "common/thread_pool.h"
#include "gen/corpus.h"

namespace xfrag::collection {
namespace {

// A corpus of generated documents with both keywords planted in each.
Collection MakeGeneratedCollection(size_t documents, uint64_t seed) {
  Collection collection;
  for (size_t i = 0; i < documents; ++i) {
    gen::CorpusProfile profile;
    profile.target_nodes = 120;
    profile.seed = seed + i;
    gen::RawCorpus raw = gen::GenerateRaw(profile);
    Rng rng(seed ^ (i * 1315423911ull));
    gen::PlantKeyword(&raw, "kwone", 4, gen::PlantMode::kClustered, &rng);
    gen::PlantKeyword(&raw, "kwtwo", 3, gen::PlantMode::kScattered, &rng);
    auto document = gen::Materialize(raw);
    EXPECT_TRUE(document.ok());
    EXPECT_TRUE(collection
                    .Add("doc" + std::to_string(i),
                         std::move(document).value())
                    .ok());
  }
  return collection;
}

void ExpectSameResults(const CollectionResult& a, const CollectionResult& b) {
  EXPECT_EQ(a.documents_evaluated, b.documents_evaluated);
  EXPECT_EQ(a.documents_skipped, b.documents_skipped);
  EXPECT_TRUE(a.metrics == b.metrics);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].document_index, b.answers[i].document_index);
    EXPECT_EQ(a.answers[i].document_name, b.answers[i].document_name);
    EXPECT_EQ(a.answers[i].fragment, b.answers[i].fragment);
  }
}

TEST(CollectionParallelTest, ResultsIdenticalAcrossParallelism) {
  Collection collection = MakeGeneratedCollection(9, 51);
  CollectionEngine engine(collection);
  query::Query q;
  q.terms = {"kwone", "kwtwo"};

  CollectionEvalOptions serial;
  serial.parallelism = 1;
  auto reference = engine.Evaluate(q, serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_GT(reference->documents_evaluated, 0u);

  for (unsigned parallelism : {2u, 4u, 8u}) {
    CollectionEvalOptions options;
    options.parallelism = parallelism;
    auto result = engine.Evaluate(q, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameResults(*reference, *result);
  }
}

TEST(CollectionParallelTest, ExternalPoolIsReusedAcrossEvaluations) {
  Collection collection = MakeGeneratedCollection(6, 61);
  CollectionEngine engine(collection);
  ThreadPool pool(4);
  query::Query q;
  q.terms = {"kwone", "kwtwo"};
  CollectionEvalOptions options;
  options.thread_pool = &pool;
  auto first = engine.Evaluate(q, options);
  auto second = engine.Evaluate(q, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSameResults(*first, *second);
}

TEST(CollectionParallelTest, NestedDocumentAndKernelParallelismOnOnePool) {
  // Per-document fan-out and the per-query pooled kernels share the same
  // pool: a chunk body issues nested ParallelFor calls. Must neither
  // deadlock nor change any output.
  Collection collection = MakeGeneratedCollection(5, 71);
  CollectionEngine engine(collection);
  query::Query q;
  q.terms = {"kwone", "kwtwo"};

  auto reference = engine.Evaluate(q, {});
  ASSERT_TRUE(reference.ok());

  ThreadPool pool(3);
  CollectionEvalOptions nested;
  nested.thread_pool = &pool;
  nested.per_document.executor.thread_pool = &pool;
  auto result = engine.Evaluate(q, nested);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameResults(*reference, *result);
}

}  // namespace
}  // namespace xfrag::collection
