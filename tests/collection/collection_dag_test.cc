// Collection-level DAG compression: byte-identical member documents share a
// root class, the engine evaluates one representative per class and replays
// its outcome, and answers/metrics are identical with the optimization off.

#include <gtest/gtest.h>

#include "algebra/ops.h"
#include "collection/collection_engine.h"
#include "gen/corpus.h"

namespace xfrag::collection {
namespace {

struct DagSwitchGuard {
  explicit DagSwitchGuard(bool enabled) {
    algebra::SetDagCompressionEnabled(enabled);
  }
  ~DagSwitchGuard() { algebra::SetDagCompressionEnabled(true); }
};

// Four documents, two byte-identical pairs plus nothing unique: classes
// {A, A, B, B}.
Collection MakeDuplicatedCollection() {
  Collection collection;
  const char* kDocA =
      "<doc><sec><par>apples and oranges</par><par>oranges too</par></sec>"
      "<par>filler</par></doc>";
  const char* kDocB =
      "<doc><sec>apples<par>oranges here</par></sec></doc>";
  EXPECT_TRUE(collection.AddXml("a0.xml", kDocA).ok());
  EXPECT_TRUE(collection.AddXml("b0.xml", kDocB).ok());
  EXPECT_TRUE(collection.AddXml("a1.xml", kDocA).ok());
  EXPECT_TRUE(collection.AddXml("b1.xml", kDocB).ok());
  return collection;
}

TEST(CollectionDagTest, IdenticalDocumentsShareARootClass) {
  Collection collection = MakeDuplicatedCollection();
  EXPECT_EQ(collection.entry(0).classes.root_class(),
            collection.entry(2).classes.root_class());
  EXPECT_EQ(collection.entry(1).classes.root_class(),
            collection.entry(3).classes.root_class());
  EXPECT_NE(collection.entry(0).classes.root_class(),
            collection.entry(1).classes.root_class());
  // The shared interner has seen every document.
  EXPECT_GT(collection.subtree_classes().size(), 0u);
  EXPECT_EQ(collection.subtree_classes().occurrences(
                collection.entry(0).classes.root_class()),
            2u);
}

TEST(CollectionDagTest, EngineDeduplicatesAndStaysIdentical) {
  Collection collection = MakeDuplicatedCollection();
  CollectionEngine engine(collection);
  query::Query q;
  q.terms = {"apples", "oranges"};

  DagSwitchGuard on(true);
  auto compressed = engine.Evaluate(q);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  // One representative evaluated per class; the other member replayed.
  EXPECT_EQ(compressed->documents_deduplicated, 2u);

  auto baseline = [&] {
    DagSwitchGuard off(false);
    return engine.Evaluate(q);
  }();
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->documents_deduplicated, 0u);

  // Same answers with the same provenance, in the same order, and identical
  // aggregated logical metrics.
  ASSERT_EQ(baseline->answers.size(), compressed->answers.size());
  for (size_t i = 0; i < baseline->answers.size(); ++i) {
    EXPECT_EQ(baseline->answers[i].document_index,
              compressed->answers[i].document_index);
    EXPECT_EQ(baseline->answers[i].document_name,
              compressed->answers[i].document_name);
    EXPECT_EQ(baseline->answers[i].fragment, compressed->answers[i].fragment);
  }
  EXPECT_EQ(baseline->documents_evaluated, compressed->documents_evaluated);
  EXPECT_EQ(baseline->documents_skipped, compressed->documents_skipped);
  EXPECT_TRUE(baseline->metrics == compressed->metrics);
}

TEST(CollectionDagTest, DuplicateFreeCollectionNeverDeduplicates) {
  Collection collection;
  ASSERT_TRUE(
      collection.AddXml("x.xml", "<doc><par>apples one</par></doc>").ok());
  ASSERT_TRUE(
      collection.AddXml("y.xml", "<doc><par>apples two</par></doc>").ok());
  CollectionEngine engine(collection);
  query::Query q;
  q.terms = {"apples"};
  DagSwitchGuard on(true);
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->documents_deduplicated, 0u);
  EXPECT_EQ(result->documents_evaluated, 2u);
}

}  // namespace
}  // namespace xfrag::collection
