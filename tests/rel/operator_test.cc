#include "rel/operator.h"

#include <gtest/gtest.h>

namespace xfrag::rel {
namespace {

// Small people/dept fixture for operator tests.
class OperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    people_ = std::make_unique<Table>(
        "people", Schema({{"id", ValueType::kInt64},
                          {"name", ValueType::kString},
                          {"dept", ValueType::kInt64}}));
    for (auto& [id, name, dept] :
         std::vector<std::tuple<int64_t, std::string, int64_t>>{
             {1, "ada", 10}, {2, "bob", 20}, {3, "cyd", 10}, {4, "dee", 30}}) {
      ASSERT_TRUE(
          people_->Insert({Value(id), Value(name), Value(dept)}).ok());
    }
    ASSERT_TRUE(people_->CreateIndex("id").ok());

    depts_ = std::make_unique<Table>(
        "depts",
        Schema({{"dept", ValueType::kInt64}, {"label", ValueType::kString}}));
    for (auto& [dept, label] : std::vector<std::tuple<int64_t, std::string>>{
             {10, "eng"}, {20, "ops"}}) {
      ASSERT_TRUE(depts_->Insert({Value(dept), Value(label)}).ok());
    }
  }

  std::unique_ptr<Table> people_;
  std::unique_ptr<Table> depts_;
};

TEST_F(OperatorTest, SeqScanReturnsAllRows) {
  auto scan = SeqScan(*people_);
  auto rows = Collect(scan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0][1].AsString(), "ada");
}

TEST_F(OperatorTest, SeqScanReopens) {
  auto scan = SeqScan(*people_);
  ASSERT_TRUE(Collect(scan.get()).ok());
  auto again = Collect(scan.get());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 4u);
}

TEST_F(OperatorTest, IndexScanSelectsByKey) {
  auto scan = IndexScan(*people_, "id", Value(int64_t{3}));
  auto rows = Collect(scan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].AsString(), "cyd");
}

TEST_F(OperatorTest, IndexScanWithoutIndexFails) {
  auto scan = IndexScan(*people_, "name", Value(std::string("ada")));
  EXPECT_FALSE(Collect(scan.get()).ok());
}

TEST_F(OperatorTest, FilterByPredicate) {
  auto op = Filter(SeqScan(*people_),
                   expr::Compare("dept", CompareOp::kEq, Value(int64_t{10})));
  auto rows = Collect(op.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(OperatorTest, FilterComposedPredicate) {
  auto pred = expr::And(
      expr::Compare("dept", CompareOp::kEq, Value(int64_t{10})),
      expr::Compare("name", CompareOp::kNe, Value(std::string("ada"))));
  auto op = Filter(SeqScan(*people_), pred);
  auto rows = Collect(op.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].AsString(), "cyd");
}

TEST_F(OperatorTest, FilterComparisonOperators) {
  auto count = [&](ExprPtr pred) {
    auto op = Filter(SeqScan(*people_), std::move(pred));
    auto rows = Collect(op.get());
    EXPECT_TRUE(rows.ok());
    return rows->size();
  };
  EXPECT_EQ(count(expr::Compare("id", CompareOp::kLt, Value(int64_t{3}))), 2u);
  EXPECT_EQ(count(expr::Compare("id", CompareOp::kLe, Value(int64_t{3}))), 3u);
  EXPECT_EQ(count(expr::Compare("id", CompareOp::kGt, Value(int64_t{3}))), 1u);
  EXPECT_EQ(count(expr::Compare("id", CompareOp::kGe, Value(int64_t{3}))), 2u);
  EXPECT_EQ(count(expr::Not(expr::True())), 0u);
  EXPECT_EQ(count(expr::Or(
                expr::Compare("id", CompareOp::kEq, Value(int64_t{1})),
                expr::Compare("id", CompareOp::kEq, Value(int64_t{4})))),
            2u);
}

TEST_F(OperatorTest, FilterUnknownColumnFailsAtOpen) {
  auto op = Filter(SeqScan(*people_),
                   expr::Compare("ghost", CompareOp::kEq, Value(int64_t{1})));
  EXPECT_FALSE(Collect(op.get()).ok());
}

TEST_F(OperatorTest, ProjectSelectsAndReorders) {
  auto op = Project(SeqScan(*people_), {"name", "id"});
  auto rows = Collect(op.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0].size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsString(), "ada");
  EXPECT_EQ((*rows)[0][1].AsInt64(), 1);
}

TEST_F(OperatorTest, ProjectUnknownColumnFails) {
  auto op = Project(SeqScan(*people_), {"ghost"});
  EXPECT_FALSE(Collect(op.get()).ok());
}

TEST_F(OperatorTest, HashJoinMatchesKeys) {
  auto join =
      HashJoin(SeqScan(*people_), SeqScan(*depts_), "dept", "dept");
  auto rows = Collect(join.get());
  ASSERT_TRUE(rows.ok());
  // ada/eng, bob/ops, cyd/eng (dee's dept 30 has no match).
  EXPECT_EQ(rows->size(), 3u);
  // Output schema is left ++ right (duplicate name prefixed).
  EXPECT_EQ(join->schema().column_count(), 5u);
  auto label = join->schema().IndexOf("label");
  ASSERT_TRUE(label.ok());
  for (const Row& row : *rows) {
    int64_t dept = row[2].AsInt64();
    const std::string& l = row[*label].AsString();
    EXPECT_EQ(l, dept == 10 ? "eng" : "ops");
  }
}

TEST_F(OperatorTest, HashJoinEmptySide) {
  Table empty("empty", depts_->schema());
  auto join = HashJoin(SeqScan(*people_), SeqScan(empty), "dept", "dept");
  auto rows = Collect(join.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(OperatorTest, SortOrdersByColumns) {
  auto op = Sort(SeqScan(*people_), {"dept", "name"});
  auto rows = Collect(op.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0][1].AsString(), "ada");   // dept 10.
  EXPECT_EQ((*rows)[1][1].AsString(), "cyd");   // dept 10.
  EXPECT_EQ((*rows)[2][1].AsString(), "bob");   // dept 20.
  EXPECT_EQ((*rows)[3][1].AsString(), "dee");   // dept 30.
}

TEST_F(OperatorTest, PipelineComposition) {
  // σ(dept=10) → project(name) → sort(name): classic mini-pipeline.
  auto op = Sort(
      Project(Filter(SeqScan(*people_), expr::Compare("dept", CompareOp::kEq,
                                                      Value(int64_t{10}))),
              {"name"}),
      {"name"});
  auto rows = Collect(op.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsString(), "ada");
  EXPECT_EQ((*rows)[1][0].AsString(), "cyd");
}

}  // namespace
}  // namespace xfrag::rel
