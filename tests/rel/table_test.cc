#include "rel/table.h"

#include <gtest/gtest.h>

namespace xfrag::rel {
namespace {

Schema NodeSchema() {
  return Schema({{"id", ValueType::kInt64}, {"tag", ValueType::kString}});
}

TEST(ValueTest, TypesAndComparisons) {
  Value i(int64_t{42});
  Value s(std::string("abc"));
  EXPECT_EQ(i.type(), ValueType::kInt64);
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(i.AsInt64(), 42);
  EXPECT_EQ(s.AsString(), "abc");
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(std::string("a")), Value(std::string("b")));
  EXPECT_EQ(i.ToString(), "42");
  EXPECT_EQ(s.ToString(), "'abc'");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_EQ(Value(std::string("xy")).Hash(), Value(std::string("xy")).Hash());
  EXPECT_NE(Value(int64_t{7}).Hash(), Value(int64_t{8}).Hash());
}

TEST(SchemaTest, IndexOf) {
  Schema schema = NodeSchema();
  EXPECT_EQ(schema.column_count(), 2u);
  auto id = schema.IndexOf("id");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_FALSE(schema.IndexOf("nope").ok());
}

TEST(SchemaTest, ConcatPrefixesDuplicates) {
  Schema left({{"id", ValueType::kInt64}});
  Schema right({{"id", ValueType::kInt64}, {"tag", ValueType::kString}});
  Schema joined = Schema::Concat(left, right);
  ASSERT_EQ(joined.column_count(), 3u);
  EXPECT_EQ(joined.column(0).name, "id");
  EXPECT_EQ(joined.column(1).name, "right.id");
  EXPECT_EQ(joined.column(2).name, "tag");
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(NodeSchema().ToString(), "(id INT64, tag STRING)");
}

TEST(TableTest, InsertValidatesArityAndTypes) {
  Table t("node", NodeSchema());
  EXPECT_TRUE(t.Insert({Value(int64_t{1}), Value(std::string("a"))}).ok());
  EXPECT_FALSE(t.Insert({Value(int64_t{1})}).ok());
  EXPECT_FALSE(
      t.Insert({Value(std::string("x")), Value(std::string("a"))}).ok());
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, IndexLookupFindsAllMatches) {
  Table t("node", NodeSchema());
  ASSERT_TRUE(t.Insert({Value(int64_t{1}), Value(std::string("a"))}).ok());
  ASSERT_TRUE(t.Insert({Value(int64_t{2}), Value(std::string("b"))}).ok());
  ASSERT_TRUE(t.Insert({Value(int64_t{1}), Value(std::string("c"))}).ok());
  ASSERT_TRUE(t.CreateIndex("id").ok());
  EXPECT_TRUE(t.HasIndex("id"));
  EXPECT_FALSE(t.HasIndex("tag"));

  auto rows = t.IndexLookup("id", Value(int64_t{1}));
  EXPECT_EQ(rows, (std::vector<size_t>{0, 2}));
  EXPECT_TRUE(t.IndexLookup("id", Value(int64_t{9})).empty());
}

TEST(TableTest, IndexMaintainedAcrossInserts) {
  Table t("node", NodeSchema());
  ASSERT_TRUE(t.CreateIndex("id").ok());
  ASSERT_TRUE(t.Insert({Value(int64_t{5}), Value(std::string("x"))}).ok());
  ASSERT_TRUE(t.Insert({Value(int64_t{5}), Value(std::string("y"))}).ok());
  EXPECT_EQ(t.IndexLookup("id", Value(int64_t{5})).size(), 2u);
}

TEST(TableTest, CreateIndexOnUnknownColumnFails) {
  Table t("node", NodeSchema());
  EXPECT_FALSE(t.CreateIndex("ghost").ok());
}

TEST(TableTest, StringIndex) {
  Table t("kw", Schema({{"term", ValueType::kString},
                        {"node", ValueType::kInt64}}));
  ASSERT_TRUE(t.CreateIndex("term").ok());
  ASSERT_TRUE(t.Insert({Value(std::string("alpha")), Value(int64_t{3})}).ok());
  ASSERT_TRUE(t.Insert({Value(std::string("beta")), Value(int64_t{4})}).ok());
  ASSERT_TRUE(t.Insert({Value(std::string("alpha")), Value(int64_t{9})}).ok());
  auto rows = t.IndexLookup("term", Value(std::string("alpha")));
  EXPECT_EQ(rows.size(), 2u);
}

}  // namespace
}  // namespace xfrag::rel
