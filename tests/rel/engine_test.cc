// Shredder and relational fragment-algebra engine.

#include "rel/engine.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "gen/paper_document.h"

namespace xfrag::rel {
namespace {

using algebra::Fragment;

class RelEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = gen::BuildPaperDocument();
    ASSERT_TRUE(d.ok());
    document_ = std::make_unique<doc::Document>(std::move(d).value());
    index_ = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*document_));
  }

  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<text::InvertedIndex> index_;
};

TEST_F(RelEngineTest, ShredProducesConsistentTables) {
  auto shredded = Shred(*document_, *index_);
  ASSERT_TRUE(shredded.ok());
  EXPECT_EQ(shredded->node->row_count(), document_->size());
  EXPECT_EQ(shredded->kw->row_count(), index_->posting_count());
  EXPECT_TRUE(shredded->node->HasIndex("id"));
  EXPECT_TRUE(shredded->kw->HasIndex("term"));

  // Spot-check a node row: n17 (par under n16).
  auto rows = shredded->node->IndexLookup("id", Value(int64_t{17}));
  ASSERT_EQ(rows.size(), 1u);
  const Row& row = shredded->node->row(rows[0]);
  EXPECT_EQ(row[1].AsInt64(), 16);  // parent.
  EXPECT_EQ(row[2].AsInt64(), 4);   // depth: article/chapter/section/subsec/par.
  EXPECT_EQ(row[3].AsInt64(), 1);   // subtree size.
  EXPECT_EQ(row[4].AsString(), "par");

  // Root row has parent -1.
  auto root_rows = shredded->node->IndexLookup("id", Value(int64_t{0}));
  ASSERT_EQ(root_rows.size(), 1u);
  EXPECT_EQ(shredded->node->row(root_rows[0])[1].AsInt64(), -1);

  // kw rows for 'xquery'.
  auto kw_rows = shredded->kw->IndexLookup("term", Value(std::string("xquery")));
  EXPECT_EQ(kw_rows.size(), 2u);
}

TEST_F(RelEngineTest, EvaluatePaperQueryMatchesTable1) {
  auto engine = RelationalEngine::Create(*document_, *index_);
  ASSERT_TRUE(engine.ok());
  RelFilter filter;
  filter.size_at_most = 3;
  auto answers = engine->Evaluate({"xquery", "optimization"}, filter);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  algebra::FragmentSet expected{
      Fragment::FromSortedUnchecked({16, 17, 18}),
      Fragment::FromSortedUnchecked({16, 17}),
      Fragment::FromSortedUnchecked({16, 18}),
      Fragment::Single(17),
  };
  EXPECT_TRUE(answers->SetEquals(expected)) << answers->ToString();
  EXPECT_GT(engine->metrics().node_fetches, 0u);
  EXPECT_EQ(engine->metrics().kw_probes, 2u);
}

TEST_F(RelEngineTest, PushDownAndLateFilterAgree) {
  auto engine = RelationalEngine::Create(*document_, *index_);
  ASSERT_TRUE(engine.ok());
  RelFilter filter;
  filter.size_at_most = 3;

  RelEvalOptions pushed;
  pushed.push_down = true;
  auto with_push = engine->Evaluate({"xquery", "optimization"}, filter, pushed);
  ASSERT_TRUE(with_push.ok());
  uint64_t pushed_joins = engine->metrics().fragment_joins;

  RelEvalOptions late;
  late.push_down = false;
  auto without_push =
      engine->Evaluate({"xquery", "optimization"}, filter, late);
  ASSERT_TRUE(without_push.ok());
  uint64_t late_joins = engine->metrics().fragment_joins;

  EXPECT_TRUE(with_push->SetEquals(*without_push));
  EXPECT_LT(pushed_joins, late_joins);
}

TEST_F(RelEngineTest, HeightAndSpanFilters) {
  auto engine = RelationalEngine::Create(*document_, *index_);
  ASSERT_TRUE(engine.ok());

  RelFilter height_filter;
  height_filter.height_at_most = 1;
  auto answers = engine->Evaluate({"xquery", "optimization"}, height_filter);
  ASSERT_TRUE(answers.ok());
  // ⟨n16,n17⟩, ⟨n16,n18⟩, ⟨n16,n17,n18⟩ (height 1) and ⟨n17⟩ (height 0).
  EXPECT_EQ(answers->size(), 4u);

  RelFilter span_filter;
  span_filter.span_at_most = 1;
  auto narrow = engine->Evaluate({"xquery", "optimization"}, span_filter);
  ASSERT_TRUE(narrow.ok());
  // Span ≤ 1: ⟨n17⟩ (0) and ⟨n16,n17⟩ (1).
  EXPECT_EQ(narrow->size(), 2u);
}

TEST_F(RelEngineTest, TrivialFilterReturnsFullAnswerSet) {
  auto engine = RelationalEngine::Create(*document_, *index_);
  ASSERT_TRUE(engine.ok());
  RelFilter trivial;
  ASSERT_TRUE(trivial.IsTrivial());
  auto answers = engine->Evaluate({"xquery", "optimization"}, trivial);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 7u);  // All unique Table-1 fragments.
}

TEST_F(RelEngineTest, ThreeTermQuery) {
  auto engine = RelationalEngine::Create(*document_, *index_);
  ASSERT_TRUE(engine.ok());
  RelFilter filter;
  filter.size_at_most = 4;
  // 'subsection' is the tag of n16, indexed as a term.
  auto answers =
      engine->Evaluate({"xquery", "optimization", "subsection"}, filter);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // Every answer contains n16 (the only 'subsection' node) and both
  // keyword witnesses, within 4 nodes.
  ASSERT_FALSE(answers->empty());
  for (const algebra::Fragment& f : *answers) {
    EXPECT_TRUE(f.ContainsNode(16)) << f.ToString();
    EXPECT_LE(f.size(), 4u);
  }
  EXPECT_TRUE(answers->Contains(
      algebra::Fragment::FromSortedUnchecked({16, 17, 18})));
}

TEST_F(RelEngineTest, CombinedSizeAndHeightFilter) {
  auto engine = RelationalEngine::Create(*document_, *index_);
  ASSERT_TRUE(engine.ok());
  RelFilter combined;
  combined.size_at_most = 3;
  combined.height_at_most = 1;
  auto answers = engine->Evaluate({"xquery", "optimization"}, combined);
  ASSERT_TRUE(answers.ok());
  // Same as the β=3 answer set: all four fragments have height ≤ 1.
  EXPECT_EQ(answers->size(), 4u);

  combined.height_at_most = 0;
  auto flat = engine->Evaluate({"xquery", "optimization"}, combined);
  ASSERT_TRUE(flat.ok());
  // Only the single node ⟨n17⟩ has height 0.
  ASSERT_EQ(flat->size(), 1u);
  EXPECT_EQ((*flat)[0], algebra::Fragment::Single(17));
}

TEST_F(RelEngineTest, ReducedFixedPointMatchesNaive) {
  auto engine = RelationalEngine::Create(*document_, *index_);
  ASSERT_TRUE(engine.ok());
  RelFilter trivial;

  RelEvalOptions naive;
  naive.push_down = false;
  naive.use_reduced_fixed_point = false;
  auto naive_answers = engine->Evaluate({"xquery", "optimization"}, trivial,
                                        naive);
  ASSERT_TRUE(naive_answers.ok());

  RelEvalOptions reduced;
  reduced.push_down = false;
  reduced.use_reduced_fixed_point = true;
  auto reduced_answers =
      engine->Evaluate({"xquery", "optimization"}, trivial, reduced);
  ASSERT_TRUE(reduced_answers.ok());

  EXPECT_TRUE(naive_answers->SetEquals(*reduced_answers));
  EXPECT_EQ(reduced_answers->size(), 7u);  // The Table-1 unique fragments.
}

TEST_F(RelEngineTest, MissingTermYieldsEmpty) {
  auto engine = RelationalEngine::Create(*document_, *index_);
  ASSERT_TRUE(engine.ok());
  auto answers = engine->Evaluate({"xquery", "unobtainium"}, RelFilter{});
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
}

TEST_F(RelEngineTest, EmptyQueryRejected) {
  auto engine = RelationalEngine::Create(*document_, *index_);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->Evaluate({}, RelFilter{}).ok());
}

}  // namespace
}  // namespace xfrag::rel
