// Snapshot format: write → mmap → zero-copy load round-trips, metadata
// fidelity, and the adversarial-input surface — truncation at every layer,
// bit flips over the whole file (superblock, TOC, and every section), and
// structurally invalid columns whose checksums have been made consistent
// again, which only the structural validation pass can catch.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "gen/corpus.h"
#include "gen/paper_document.h"
#include "storage/format.h"

namespace xfrag::storage {
namespace {

constexpr const char* kDocA = R"(
  <paper>
    <title>XQuery optimization</title>
    <section>algebra for fragments
      <par>query algebra</par>
      <par>optimization rules</par>
    </section>
  </paper>)";
constexpr const char* kDocB = R"(
  <book>
    <chapter>fragment retrieval
      <par>xquery engines</par>
      <par>ranking fragments</par>
    </chapter>
    <chapter>fragment retrieval
      <par>xquery engines</par>
      <par>ranking fragments</par>
    </chapter>
  </book>)";

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A small mixed collection: two XML documents (kDocB has duplicate
/// subtrees, so the class table is non-trivial) plus the paper example.
collection::Collection BuildCollection() {
  collection::Collection collection;
  EXPECT_TRUE(collection.AddXml("a.xml", kDocA).ok());
  EXPECT_TRUE(collection.AddXml("b.xml", kDocB).ok());
  auto paper = gen::BuildPaperDocument();
  EXPECT_TRUE(paper.ok());
  EXPECT_TRUE(collection.Add("paper.xml", std::move(*paper)).ok());
  return collection;
}

std::string WriteTestSnapshot(const collection::Collection& collection,
                              const std::string& name) {
  std::string path = TestPath(name);
  auto written = WriteSnapshot(collection, text::IndexOptions{}, path);
  EXPECT_TRUE(written.ok()) << written.ToString();
  return path;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void WriteWholeFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  EXPECT_TRUE(out.good()) << path;
}

uint64_t ReadU64At(const std::string& data, size_t offset) {
  uint64_t v = 0;
  std::memcpy(&v, data.data() + offset, sizeof(v));
  return v;
}

void WriteU64At(std::string* data, size_t offset, uint64_t v) {
  std::memcpy(data->data() + offset, &v, sizeof(v));
}

// Superblock field offsets (must match snapshot.cc).
constexpr size_t kOffTocOffset = 32;
constexpr size_t kOffTocBytes = 40;
constexpr size_t kOffTocChecksum = 48;
constexpr size_t kOffHeaderChecksum = 56;

struct TocEntry {
  uint64_t kind = 0;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t checksum = 0;
  size_t checksum_position = 0;  // Absolute file offset of the fixed64.
};

/// Parses the TOC out of raw file bytes, remembering where each section
/// checksum lives so tests can rewrite it in place.
std::vector<TocEntry> ParseToc(const std::string& data) {
  std::vector<TocEntry> entries;
  uint64_t toc_offset = ReadU64At(data, kOffTocOffset);
  uint64_t toc_bytes = ReadU64At(data, kOffTocBytes);
  std::string_view toc(data.data() + toc_offset, toc_bytes);
  Reader reader(toc);
  auto count = reader.ReadVarint();
  EXPECT_TRUE(count.ok());
  for (uint64_t i = 0; i < *count; ++i) {
    TocEntry entry;
    entry.kind = *reader.ReadVarint();
    entry.offset = *reader.ReadVarint();
    entry.bytes = *reader.ReadVarint();
    entry.checksum_position =
        static_cast<size_t>(toc_offset) + reader.position();
    entry.checksum = *reader.ReadFixed64();
    entries.push_back(entry);
  }
  return entries;
}

/// After a test mutates section bytes, make the file checksum-consistent
/// again: recompute each section checksum, the TOC checksum, and the header
/// checksum. What remains wrong afterwards is only the structure itself.
void FixupChecksums(std::string* data) {
  for (const TocEntry& entry : ParseToc(*data)) {
    uint64_t checksum = Checksum(
        std::string_view(data->data() + entry.offset, entry.bytes));
    WriteU64At(data, entry.checksum_position, checksum);
  }
  uint64_t toc_offset = ReadU64At(*data, kOffTocOffset);
  uint64_t toc_bytes = ReadU64At(*data, kOffTocBytes);
  WriteU64At(data, kOffTocChecksum,
             Checksum(std::string_view(data->data() + toc_offset, toc_bytes)));
  WriteU64At(data, kOffHeaderChecksum,
             Checksum(std::string_view(data->data(), kOffHeaderChecksum)));
}

const TocEntry& FindSection(const std::vector<TocEntry>& toc,
                            SectionKind kind) {
  for (const TocEntry& entry : toc) {
    if (entry.kind == static_cast<uint64_t>(kind)) return entry;
  }
  ADD_FAILURE() << "section " << static_cast<uint64_t>(kind) << " missing";
  static TocEntry missing;
  return missing;
}

TEST(SnapshotTest, EmptyCollectionRejected) {
  collection::Collection empty;
  auto written =
      WriteSnapshot(empty, text::IndexOptions{}, TestPath("empty.snap"));
  EXPECT_FALSE(written.ok());
}

TEST(SnapshotTest, MetadataRoundTrip) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "meta.snap");
  auto reader = SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const SnapshotMeta& meta = (*reader)->meta();
  EXPECT_EQ(meta.doc_count, collection.size());
  EXPECT_EQ(meta.node_count, collection.TotalNodes());
  EXPECT_EQ(meta.child_count, meta.node_count - meta.doc_count);
  ASSERT_EQ((*reader)->documents().size(), collection.size());
  uint64_t node_base = 0, term_base = 0;
  for (size_t i = 0; i < collection.size(); ++i) {
    const SnapshotDocRecord& record = (*reader)->documents()[i];
    const auto& entry = collection.entry(i);
    EXPECT_EQ(record.name, entry.name);
    EXPECT_EQ(record.node_count, entry.document.size());
    EXPECT_EQ(record.term_count, entry.index.term_count());
    EXPECT_EQ(record.node_base, node_base);
    EXPECT_EQ(record.term_base, term_base);
    node_base += record.node_count;
    term_base += record.term_count;
  }
  const SnapshotOpenStats& stats = (*reader)->open_stats();
  EXPECT_GT(stats.file_bytes, 0u);
  EXPECT_EQ(stats.mapped_bytes, stats.file_bytes);
  EXPECT_GE(stats.open_ms, 0.0);
  EXPECT_TRUE((*reader)->VerifyChecksums().ok());
}

TEST(SnapshotTest, LoadedCollectionMatchesOriginal) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "roundtrip.snap");
  auto loaded = LoadCollectionFromSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->collection.size(), collection.size());
  EXPECT_TRUE(loaded->collection.frozen());
  for (size_t i = 0; i < collection.size(); ++i) {
    const auto& original = collection.entry(i);
    const auto& copy = loaded->collection.entry(i);
    SCOPED_TRACE(original.name);
    EXPECT_EQ(copy.name, original.name);
    ASSERT_EQ(copy.document.size(), original.document.size());
    EXPECT_TRUE(copy.document.snapshot_backed());
    for (doc::NodeId n = 0; n < original.document.size(); ++n) {
      EXPECT_EQ(copy.document.parent(n), original.document.parent(n)) << n;
      EXPECT_EQ(copy.document.tag(n), original.document.tag(n)) << n;
      EXPECT_EQ(copy.document.text(n), original.document.text(n)) << n;
      EXPECT_EQ(copy.document.depth(n), original.document.depth(n)) << n;
      EXPECT_EQ(copy.document.subtree_size(n),
                original.document.subtree_size(n))
          << n;
      auto copy_children = copy.document.children(n);
      auto original_children = original.document.children(n);
      ASSERT_EQ(copy_children.size(), original_children.size()) << n;
      for (size_t c = 0; c < copy_children.size(); ++c) {
        EXPECT_EQ(copy_children[c], original_children[c]);
      }
    }
    // LCA agrees on every pair (the snapshot path climbs parents, the
    // in-memory path uses the sparse table).
    for (doc::NodeId a = 0; a < original.document.size(); ++a) {
      for (doc::NodeId b = a; b < original.document.size(); ++b) {
        EXPECT_EQ(copy.document.Lca(a, b), original.document.Lca(a, b))
            << a << "," << b;
      }
    }
    // The text index answers identically for every stored term.
    EXPECT_EQ(copy.index.term_count(), original.index.term_count());
    EXPECT_EQ(copy.index.posting_count(), original.index.posting_count());
    for (const auto& term : original.index.Terms()) {
      EXPECT_EQ(copy.index.Lookup(term), original.index.Lookup(term)) << term;
    }
    EXPECT_TRUE(copy.index.Lookup("no-such-term-anywhere").empty());
    // Subtree classes: same per-document duplication statistics.
    EXPECT_EQ(copy.classes.duplicated_nodes(),
              original.classes.duplicated_nodes());
    for (doc::NodeId n = 0; n < original.document.size(); ++n) {
      EXPECT_EQ(copy.classes.class_of(n), original.classes.class_of(n)) << n;
    }
  }
}

TEST(SnapshotTest, LoadedCollectionIsImmutable) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "frozen.snap");
  auto loaded = LoadCollectionFromSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  auto added = loaded->collection.AddXml("late.xml", "<a>text</a>");
  EXPECT_FALSE(added.ok());
}

TEST(SnapshotTest, CollectionOutlivesReaderHandle) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "anchor.snap");
  auto loaded = LoadCollectionFromSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  // Dropping the reader handle must not unmap the file: the collection
  // anchors it. Touch every document afterwards.
  loaded->reader.reset();
  collection::Collection survivor = std::move(loaded->collection);
  for (size_t i = 0; i < survivor.size(); ++i) {
    const auto& entry = survivor.entry(i);
    for (doc::NodeId n = 0; n < entry.document.size(); ++n) {
      EXPECT_FALSE(entry.document.tag(n).empty());
    }
  }
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  auto reader = SnapshotReader::Open("/nonexistent/dir/x.snap");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, BadMagicRejected) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "magic.snap");
  std::string data = ReadWholeFile(path);
  data[0] = 'Y';
  WriteWholeFile(path, data);
  auto reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kParseError);
}

TEST(SnapshotTest, UnsupportedVersionRejected) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "version.snap");
  std::string data = ReadWholeFile(path);
  // Patch the version and re-seal the header checksum, so the version check
  // itself (not the checksum) must reject the file.
  WriteU64At(&data, 8, kSnapshotFormatVersion + 1);
  WriteU64At(&data, kOffHeaderChecksum,
             Checksum(std::string_view(data.data(), kOffHeaderChecksum)));
  WriteWholeFile(path, data);
  auto reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("version"), std::string::npos)
      << reader.status().ToString();
}

TEST(SnapshotTest, TruncationRejectedEverywhere) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "truncate.snap");
  std::string data = ReadWholeFile(path);
  std::string chopped = TestPath("truncate_chopped.snap");
  for (size_t keep : {size_t{0}, size_t{7}, size_t{63}, size_t{4095},
                      size_t{4096}, data.size() / 2, data.size() - 1}) {
    WriteWholeFile(chopped, data.substr(0, keep));
    auto reader = SnapshotReader::Open(chopped);
    EXPECT_FALSE(reader.ok()) << "kept " << keep << " of " << data.size();
  }
  std::remove(chopped.c_str());
}

TEST(SnapshotTest, TrailingGarbageRejected) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "trailing.snap");
  std::string data = ReadWholeFile(path) + std::string(512, 'Z');
  WriteWholeFile(path, data);
  // file_bytes in the superblock no longer matches the mapping.
  EXPECT_FALSE(SnapshotReader::Open(path).ok());
}

// The meta and directory sections are interpreted at open, before any
// VerifyChecksums pass could run, so a flip inside them must be rejected by
// Open itself — not parsed cleanly (a flipped tokenizer option would
// silently change query normalization).
TEST(SnapshotTest, MetaFlipRejectedAtOpen) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "metaflip.snap");
  std::string data = ReadWholeFile(path);
  std::vector<TocEntry> toc = ParseToc(data);
  const TocEntry& meta = FindSection(toc, SectionKind::kMeta);
  // The section's last byte is the index_tag_names flag varint; the flip
  // yields an equally well-formed record, so only the checksum can object.
  data[meta.offset + meta.bytes - 1] ^= 0x01;
  WriteWholeFile(path, data);
  auto reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kParseError);
}

TEST(SnapshotTest, DirectoryFlipRejectedAtOpen) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "dirflip.snap");
  std::string data = ReadWholeFile(path);
  std::vector<TocEntry> toc = ParseToc(data);
  const TocEntry& directory = FindSection(toc, SectionKind::kDirectory);
  // Flip a byte of the first document's name ("a.xml" follows its length
  // prefix): still a well-formed record, a silently different name.
  data[directory.offset + 1] ^= 0x02;
  WriteWholeFile(path, data);
  auto reader = SnapshotReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kParseError);
}

// Flip the first byte of every page. Page starts are never padding (the
// superblock starts page 0, each section starts its own page, the TOC
// starts the last), so every flip lands in a checksummed region and must be
// caught by Open (superblock/TOC) or VerifyChecksums (section data).
TEST(SnapshotTest, BitFlipOnEveryPageIsDetected) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "bitflip.snap");
  std::string pristine = ReadWholeFile(path);
  std::string flipped_path = TestPath("bitflip_mutated.snap");
  for (size_t page = 0; page * kSnapshotPageSize < pristine.size(); ++page) {
    std::string mutated = pristine;
    mutated[page * kSnapshotPageSize] ^= 0x5A;
    WriteWholeFile(flipped_path, mutated);
    auto reader = SnapshotReader::Open(flipped_path);
    if (!reader.ok()) continue;  // Caught at open — good.
    EXPECT_FALSE((*reader)->VerifyChecksums().ok())
        << "undetected flip on page " << page;
  }
  std::remove(flipped_path.c_str());
}

// Random in-page flips: whatever happens, the validated load must either
// fail cleanly or produce a healthy collection — never crash (ASan backs
// this up in the check.sh storage stage).
TEST(SnapshotTest, RandomBitFlipsNeverCrashValidatedLoad) {
  auto collection = BuildCollection();
  std::string path = WriteTestSnapshot(collection, "fuzzflip.snap");
  std::string pristine = ReadWholeFile(path);
  std::string mutated_path = TestPath("fuzzflip_mutated.snap");
  uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int trial = 0; trial < 200; ++trial) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    size_t offset = static_cast<size_t>(state % pristine.size());
    std::string mutated = pristine;
    mutated[offset] ^= static_cast<char>(1u << (state >> 61));
    WriteWholeFile(mutated_path, mutated);
    auto loaded = LoadCollectionFromSnapshot(mutated_path);
    if (!loaded.ok()) continue;
    // Flip landed in padding or produced an equally valid file — reading
    // every column must still be safe.
    for (size_t i = 0; i < loaded->collection.size(); ++i) {
      const auto& entry = loaded->collection.entry(i);
      for (doc::NodeId n = 0; n < entry.document.size(); ++n) {
        (void)entry.document.tag(n);
        (void)entry.document.text(n);
        (void)entry.document.children(n);
      }
    }
  }
  std::remove(mutated_path.c_str());
}

class SnapshotStructuralAttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto collection = BuildCollection();
    path_ = WriteTestSnapshot(collection, "attack.snap");
    pristine_ = ReadWholeFile(path_);
    toc_ = ParseToc(pristine_);
  }

  /// Overwrites one u32 inside `kind` at element `index`, re-seals every
  /// checksum, and expects the fully validated load to reject the file.
  void AttackU32(SectionKind kind, size_t index, uint32_t value,
                 const char* what) {
    std::string mutated = pristine_;
    const TocEntry& section = FindSection(toc_, kind);
    ASSERT_LT(index * sizeof(uint32_t), section.bytes);
    std::memcpy(mutated.data() + section.offset + index * sizeof(uint32_t),
                &value, sizeof(value));
    FixupChecksums(&mutated);
    std::string mutated_path = TestPath("attack_mutated.snap");
    WriteWholeFile(mutated_path, mutated);
    // Checksums are consistent again...
    auto reader = SnapshotReader::Open(mutated_path);
    if (reader.ok()) {
      EXPECT_TRUE((*reader)->VerifyChecksums().ok());
    }
    // ...so only structural validation can refuse the load.
    auto loaded = LoadCollectionFromSnapshot(mutated_path);
    EXPECT_FALSE(loaded.ok()) << what;
    std::remove(mutated_path.c_str());
  }

  std::string path_;
  std::string pristine_;
  std::vector<TocEntry> toc_;
};

TEST_F(SnapshotStructuralAttackTest, ForwardParentRejected) {
  // parents[1] = 5: a pre-order violation (parent after child).
  AttackU32(SectionKind::kParents, 1, 5, "forward parent");
}

TEST_F(SnapshotStructuralAttackTest, OutOfRangeParentRejected) {
  AttackU32(SectionKind::kParents, 2, 0x7FFFFFFF, "out-of-range parent");
}

TEST_F(SnapshotStructuralAttackTest, WrongDepthRejected) {
  AttackU32(SectionKind::kDepth, 1, 9, "depth != parent depth + 1");
}

TEST_F(SnapshotStructuralAttackTest, WrongSubtreeSizeRejected) {
  AttackU32(SectionKind::kSubtreeSize, 0, 1, "root subtree size 1");
}

TEST_F(SnapshotStructuralAttackTest, BrokenChildOffsetsRejected) {
  AttackU32(SectionKind::kChildOffsets, 1, 0x40000000, "CSR offset jump");
}

TEST_F(SnapshotStructuralAttackTest, InflatedFirstChildOffsetRejected) {
  // Inflate only the CSR base: the first document's slice would start ~4GB
  // into the child-id column.
  AttackU32(SectionKind::kChildOffsets, 0, 0x40000000, "inflated CSR base");
}

TEST_F(SnapshotStructuralAttackTest, ShiftedChildOffsetColumnRejected) {
  // Add a constant to *every* child_offsets entry. Every per-document
  // relative check (monotonicity, span == node_count - 1, shared
  // boundaries) still passes, so only the global anchor
  // (child_offsets[0] == 0) and the per-document column-extent bound stand
  // between the validator and dereferencing child_ids ~4GB past the mapped
  // section — this is the crafted file that used to SIGSEGV the validated
  // load.
  std::string mutated = pristine_;
  const TocEntry& section = FindSection(toc_, SectionKind::kChildOffsets);
  for (size_t i = 0; i * sizeof(uint32_t) < section.bytes; ++i) {
    char* at = mutated.data() + section.offset + i * sizeof(uint32_t);
    uint32_t value;
    std::memcpy(&value, at, sizeof(value));
    value += 0x40000000;
    std::memcpy(at, &value, sizeof(value));
  }
  FixupChecksums(&mutated);
  std::string mutated_path = TestPath("attack_shifted_csr.snap");
  WriteWholeFile(mutated_path, mutated);
  auto loaded = LoadCollectionFromSnapshot(mutated_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(mutated_path.c_str());
}

TEST_F(SnapshotStructuralAttackTest, OutOfRangeChildIdRejected) {
  AttackU32(SectionKind::kChildIds, 0, 0x7FFFFFFF, "child id out of range");
}

TEST_F(SnapshotStructuralAttackTest, OutOfRangeTagIdRejected) {
  AttackU32(SectionKind::kTagIds, 0, 0x7FFFFFFF, "tag id out of dictionary");
}

TEST_F(SnapshotStructuralAttackTest, NonAncestorDupAnchorRejected) {
  // Point node 1's anchor at the last node, which cannot be its ancestor.
  const TocEntry& section = FindSection(toc_, SectionKind::kDupAnchor);
  uint32_t last = static_cast<uint32_t>(section.bytes / sizeof(uint32_t) - 1);
  AttackU32(SectionKind::kDupAnchor, 1, last, "non-ancestor dup anchor");
}

TEST_F(SnapshotStructuralAttackTest, OutOfRangeClassRejected) {
  AttackU32(SectionKind::kClassOf, 0, 0x7FFFFFFF, "class id out of table");
}

TEST_F(SnapshotStructuralAttackTest, CorruptPostingRunRejected) {
  // Stomp the head of the postings blob: decoding must fail validation (an
  // id out of range, a zero delta, or a run-length mismatch), never wander.
  std::string mutated = pristine_;
  const TocEntry& section = FindSection(toc_, SectionKind::kPostingsBlob);
  std::memset(mutated.data() + section.offset, 0xFF,
              std::min<uint64_t>(section.bytes, 8));
  FixupChecksums(&mutated);
  std::string mutated_path = TestPath("attack_postings.snap");
  WriteWholeFile(mutated_path, mutated);
  auto loaded = LoadCollectionFromSnapshot(mutated_path);
  EXPECT_FALSE(loaded.ok());
  std::remove(mutated_path.c_str());
}

TEST_F(SnapshotStructuralAttackTest, UnsortedTermDictionaryRejected) {
  // Swap the first byte of the term blob with 0x7E '~' (> any lowercase
  // letter), breaking the sorted-dictionary invariant.
  std::string mutated = pristine_;
  const TocEntry& section = FindSection(toc_, SectionKind::kTermBlob);
  ASSERT_GT(section.bytes, 0u);
  mutated[section.offset] = '~';
  FixupChecksums(&mutated);
  std::string mutated_path = TestPath("attack_terms.snap");
  WriteWholeFile(mutated_path, mutated);
  auto loaded = LoadCollectionFromSnapshot(mutated_path);
  EXPECT_FALSE(loaded.ok());
  std::remove(mutated_path.c_str());
}

}  // namespace
}  // namespace xfrag::storage
