// The load-bearing property of the snapshot subsystem: a collection served
// from an mmap snapshot answers every query with the exact bytes the
// in-memory (parse → index → hash-cons) collection produces. The whole
// /query handler runs on both sides — strategies, filters, ranking, top-k,
// XML rendering, DAG replay over duplicated subtrees — and the rendered
// response bodies are compared byte for byte after zeroing the one
// non-deterministic field (elapsed_ms).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "collection/collection.h"
#include "common/json.h"
#include "gen/corpus.h"
#include "server/service.h"
#include "storage/snapshot.h"

namespace xfrag::storage {
namespace {

constexpr const char* kDocA = R"(
  <paper>
    <title>XQuery optimization</title>
    <section>algebra for fragments
      <par>query algebra</par>
      <par>optimization rules</par>
    </section>
    <section>ranking
      <par>query scores</par>
    </section>
  </paper>)";
// Two identical chapters: root-level duplicate subtrees, so the DAG replay
// path (evaluate one representative, replay for the twin) is exercised.
constexpr const char* kDocB = R"(
  <book>
    <chapter>fragment retrieval
      <par>xquery engines</par>
      <par>ranking fragments</par>
    </chapter>
    <chapter>fragment retrieval
      <par>xquery engines</par>
      <par>ranking fragments</par>
    </chapter>
  </book>)";
constexpr const char* kDocC = R"(
  <notes>
    <entry>query about nothing</entry>
    <entry>optimization of nothing</entry>
  </notes>)";

class SnapshotEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    in_memory_ = new collection::Collection();
    ASSERT_TRUE(in_memory_->AddXml("a.xml", kDocA).ok());
    ASSERT_TRUE(in_memory_->AddXml("b.xml", kDocB).ok());
    ASSERT_TRUE(in_memory_->AddXml("c.xml", kDocC).ok());
    // A generated document for scale beyond hand-written trees.
    gen::CorpusProfile profile;
    profile.target_nodes = 600;
    profile.seed = 7;
    gen::RawCorpus raw = gen::GenerateRaw(profile);
    Rng rng(8);
    gen::PlantKeyword(&raw, "query", 12, gen::PlantMode::kClustered, &rng);
    gen::PlantKeyword(&raw, "optimization", 9, gen::PlantMode::kScattered,
                      &rng);
    auto document = gen::Materialize(raw);
    ASSERT_TRUE(document.ok());
    ASSERT_TRUE(in_memory_->Add("gen.xml", std::move(*document)).ok());

    path_ = new std::string(::testing::TempDir() + "/equivalence.snap");
    auto written =
        WriteSnapshot(*in_memory_, text::IndexOptions{}, *path_);
    ASSERT_TRUE(written.ok()) << written.ToString();
    auto loaded = LoadCollectionFromSnapshot(*path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    snapshot_ = new SnapshotCollection(std::move(*loaded));
  }

  static void TearDownTestSuite() {
    delete snapshot_;
    snapshot_ = nullptr;
    std::remove(path_->c_str());
    delete path_;
    path_ = nullptr;
    delete in_memory_;
    in_memory_ = nullptr;
  }

  /// Renders one HandleQuery body with elapsed_ms zeroed.
  static std::string NormalizedBody(const server::QueryService& service,
                                    const std::string& request) {
    server::QueryOutcome outcome = service.HandleQuery(request);
    EXPECT_EQ(outcome.http_status, 200) << request << " -> "
                                        << outcome.body.Dump();
    outcome.body.Set("elapsed_ms", 0);
    return outcome.body.Dump();
  }

  /// The request matrix: every strategy crossed with the render/rank/top-k
  /// options the serving layer exposes.
  static std::vector<std::string> Requests() {
    std::vector<std::string> requests;
    for (const char* strategy :
         {"auto", "brute", "naive", "reduced", "pushdown"}) {
      requests.push_back(std::string(R"({"terms":["query"],"strategy":")") +
                         strategy + "\"}");
      requests.push_back(
          std::string(
              R"({"terms":["query","optimization"],"strategy":")") +
          strategy + R"(","filter":"size<=6"})");
    }
    requests.push_back(R"({"terms":["query"],"rank":true})");
    requests.push_back(R"({"terms":["query"],"top_k":3})");
    requests.push_back(R"({"terms":["query","optimization"],"top_k":5})");
    requests.push_back(R"({"terms":["xquery"],"xml":true})");
    requests.push_back(
        R"({"terms":["fragment"],"answer_mode":"leaf_strict"})");
    requests.push_back(
        R"({"terms":["xquery","ranking"],"filter":"height<=4","rank":true})");
    requests.push_back(R"({"terms":["query"],"max_answers":4})");
    requests.push_back(R"({"terms":["nosuchterm"]})");
    return requests;
  }

  static collection::Collection* in_memory_;
  static SnapshotCollection* snapshot_;
  static std::string* path_;
};

collection::Collection* SnapshotEquivalenceTest::in_memory_ = nullptr;
SnapshotCollection* SnapshotEquivalenceTest::snapshot_ = nullptr;
std::string* SnapshotEquivalenceTest::path_ = nullptr;

TEST_F(SnapshotEquivalenceTest, ResponsesAreByteIdentical) {
  server::ServiceOptions options;
  server::QueryService memory_service(*in_memory_, options);
  server::QueryService snapshot_service(snapshot_->collection, options);
  for (const std::string& request : Requests()) {
    SCOPED_TRACE(request);
    EXPECT_EQ(NormalizedBody(memory_service, request),
              NormalizedBody(snapshot_service, request));
  }
}

TEST_F(SnapshotEquivalenceTest, ResponsesAreByteIdenticalWithResultCache) {
  server::ServiceOptions options;
  options.result_cache_bytes = 4u << 20;
  server::QueryService memory_service(*in_memory_, options);
  server::QueryService snapshot_service(snapshot_->collection, options);
  // Twice: the second pass is served from the result cache on both sides.
  for (int round = 0; round < 2; ++round) {
    for (const std::string& request : Requests()) {
      SCOPED_TRACE(request);
      EXPECT_EQ(NormalizedBody(memory_service, request),
                NormalizedBody(snapshot_service, request));
    }
  }
}

TEST_F(SnapshotEquivalenceTest, ConcurrentQueriesStayIdentical) {
  server::ServiceOptions options;
  server::QueryService memory_service(*in_memory_, options);
  server::QueryService snapshot_service(snapshot_->collection, options);
  // Warm both services' fixed-point caches first: a cold-cache response
  // reports different work metrics than a warm one, and the concurrent
  // phase below interleaves arbitrarily, so only the warm steady state is
  // reproducible. Then compute the expected bytes single-threaded.
  std::vector<std::string> requests = Requests();
  for (const std::string& request : requests) {
    (void)memory_service.HandleQuery(request);
    (void)snapshot_service.HandleQuery(request);
  }
  std::vector<std::string> expected;
  expected.reserve(requests.size());
  for (const std::string& request : requests) {
    expected.push_back(NormalizedBody(memory_service, request));
  }
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < requests.size(); ++i) {
        if (NormalizedBody(snapshot_service, requests[i]) != expected[i]) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << t;
}

TEST_F(SnapshotEquivalenceTest, TrustedOpenIsEquivalentToo) {
  SnapshotOpenOptions open_options;
  open_options.validate_structure = false;
  auto trusted = LoadCollectionFromSnapshot(*path_, open_options);
  ASSERT_TRUE(trusted.ok()) << trusted.status().ToString();
  server::QueryService memory_service(*in_memory_, {});
  server::QueryService trusted_service(trusted->collection, {});
  for (const std::string& request : Requests()) {
    SCOPED_TRACE(request);
    EXPECT_EQ(NormalizedBody(memory_service, request),
              NormalizedBody(trusted_service, request));
  }
}

}  // namespace
}  // namespace xfrag::storage
