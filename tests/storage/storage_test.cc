// Storage: varint/string primitives, document & index round-trips,
// corruption detection, and file persistence.

#include "storage/storage.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "../testutil.h"
#include "gen/corpus.h"
#include "gen/paper_document.h"
#include "storage/format.h"

namespace xfrag::storage {
namespace {

TEST(FormatTest, VarintRoundTrip) {
  for (uint64_t value :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}) {
    std::string buffer;
    PutVarint(value, &buffer);
    Reader reader(buffer);
    auto decoded = reader.ReadVarint();
    ASSERT_TRUE(decoded.ok()) << value;
    EXPECT_EQ(*decoded, value);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(FormatTest, VarintEncodingIsCompact) {
  std::string one_byte, two_bytes;
  PutVarint(127, &one_byte);
  PutVarint(128, &two_bytes);
  EXPECT_EQ(one_byte.size(), 1u);
  EXPECT_EQ(two_bytes.size(), 2u);
}

TEST(FormatTest, TruncatedVarintRejected) {
  std::string buffer;
  PutVarint(300, &buffer);
  Reader reader(std::string_view(buffer).substr(0, 1));
  EXPECT_FALSE(reader.ReadVarint().ok());
}

TEST(FormatTest, MaxLengthVarintAccepted) {
  // UINT64_MAX encodes to exactly kMaxVarintBytes bytes.
  std::string buffer;
  PutVarint(0xFFFFFFFFFFFFFFFFull, &buffer);
  EXPECT_EQ(buffer.size(), static_cast<size_t>(kMaxVarintBytes));
  Reader reader(buffer);
  auto decoded = reader.ReadVarint();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, 0xFFFFFFFFFFFFFFFFull);
}

TEST(FormatTest, OverlongVarintRejected) {
  // Eleven continuation bytes: a malicious encoding that would decode to a
  // value no 64-bit varint can hold. The reader must stop at the 10-byte
  // cap with ParseError instead of looping or wrapping.
  std::string buffer(11, '\x80');
  buffer.push_back('\x01');
  Reader reader(buffer);
  auto decoded = reader.ReadVarint();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(FormatTest, VarintHighBitOverflowRejected) {
  // Ten bytes whose final byte carries more than the single bit that fits
  // into bit 63: accepting it would silently truncate the value.
  std::string buffer(9, '\x80');
  buffer.push_back('\x02');  // Shift 63, payload 2 > 1.
  Reader reader(buffer);
  auto decoded = reader.ReadVarint();
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(FormatTest, AllContinuationBytesRejected) {
  // No terminator at all — must be truncation/overflow, never a hang.
  std::string buffer(64, '\x80');
  Reader reader(buffer);
  EXPECT_FALSE(reader.ReadVarint().ok());
}

TEST(FormatTest, StringRoundTrip) {
  std::string buffer;
  PutString("", &buffer);
  PutString("hello", &buffer);
  std::string binary("\x00\xFF\x80 raw", 8);
  PutString(binary, &buffer);
  Reader reader(buffer);
  EXPECT_EQ(*reader.ReadString(), "");
  EXPECT_EQ(*reader.ReadString(), "hello");
  EXPECT_EQ(*reader.ReadString(), binary);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(FormatTest, TruncatedStringRejected) {
  std::string buffer;
  PutString("hello world", &buffer);
  Reader reader(std::string_view(buffer).substr(0, 4));
  EXPECT_FALSE(reader.ReadString().ok());
}

TEST(FormatTest, Fixed64RoundTrip) {
  std::string buffer;
  PutFixed64(0xdeadbeefcafef00dULL, &buffer);
  EXPECT_EQ(buffer.size(), 8u);
  Reader reader(buffer);
  EXPECT_EQ(*reader.ReadFixed64(), 0xdeadbeefcafef00dULL);
}

TEST(FormatTest, ChecksumDetectsChanges) {
  EXPECT_EQ(Checksum("abc"), Checksum("abc"));
  EXPECT_NE(Checksum("abc"), Checksum("abd"));
  EXPECT_NE(Checksum("abc"), Checksum("ab"));
}

void ExpectDocumentsEqual(const doc::Document& a, const doc::Document& b) {
  ASSERT_EQ(a.size(), b.size());
  for (doc::NodeId n = 0; n < a.size(); ++n) {
    EXPECT_EQ(a.parent(n), b.parent(n)) << n;
    EXPECT_EQ(a.tag(n), b.tag(n)) << n;
    EXPECT_EQ(a.text(n), b.text(n)) << n;
  }
}

TEST(BundleTest, DocumentOnlyRoundTrip) {
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  std::string data = WriteBundle(*document);
  auto bundle = ReadBundle(data);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  ExpectDocumentsEqual(*document, bundle->document);
  EXPECT_FALSE(bundle->index.has_value());
}

TEST(BundleTest, DocumentAndIndexRoundTrip) {
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  std::string data = WriteBundle(*document, &index);
  auto bundle = ReadBundle(data);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  ASSERT_TRUE(bundle->index.has_value());
  EXPECT_EQ(bundle->index->term_count(), index.term_count());
  EXPECT_EQ(bundle->index->posting_count(), index.posting_count());
  EXPECT_EQ(bundle->index->Lookup("xquery"), index.Lookup("xquery"));
  EXPECT_EQ(bundle->index->Lookup("optimization"),
            index.Lookup("optimization"));
}

TEST(BundleTest, GeneratedCorpusRoundTrip) {
  gen::CorpusProfile profile;
  profile.target_nodes = 800;
  profile.seed = 33;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(34);
  gen::PlantKeyword(&raw, "kwone", 10, gen::PlantMode::kClustered, &rng);
  auto document = gen::Materialize(raw);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  std::string data = WriteBundle(*document, &index);
  auto bundle = ReadBundle(data);
  ASSERT_TRUE(bundle.ok());
  ExpectDocumentsEqual(*document, bundle->document);
  // Reloaded index answers queries identically.
  ASSERT_TRUE(bundle->index.has_value());
  for (const auto& term : index.Terms()) {
    EXPECT_EQ(bundle->index->Lookup(term), index.Lookup(term)) << term;
  }
}

TEST(BundleTest, CorruptionRejected) {
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  std::string data = WriteBundle(*document);
  // Flip one byte in the middle (inside the sections payload).
  std::string corrupted = data;
  corrupted[corrupted.size() / 2] ^= 0x40;
  auto bundle = ReadBundle(corrupted);
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kParseError);
}

TEST(BundleTest, TruncationRejected) {
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  std::string data = WriteBundle(*document);
  for (size_t keep : {size_t{3}, data.size() / 2, data.size() - 1}) {
    EXPECT_FALSE(ReadBundle(std::string_view(data).substr(0, keep)).ok())
        << "kept " << keep << " bytes";
  }
}

TEST(BundleTest, BadMagicRejected) {
  EXPECT_FALSE(ReadBundle("NOTADB..").ok());
  EXPECT_FALSE(ReadBundle("").ok());
}

TEST(BundleTest, FileRoundTrip) {
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  std::string path = ::testing::TempDir() + "/xfrag_bundle_test.xdb";
  ASSERT_TRUE(SaveBundleToFile(path, *document, &index).ok());
  auto bundle = LoadBundleFromFile(path);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  ExpectDocumentsEqual(*document, bundle->document);
  ASSERT_TRUE(bundle->index.has_value());
  std::remove(path.c_str());
}

TEST(BundleTest, LoadErrorNamesThePath) {
  std::string path = ::testing::TempDir() + "/xfrag_bundle_corrupt.xdb";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "XFRAGDB1 but then garbage";
  }
  auto bundle = LoadBundleFromFile(path);
  ASSERT_FALSE(bundle.ok());
  EXPECT_NE(bundle.status().message().find(path), std::string::npos)
      << bundle.status().ToString();
  std::remove(path.c_str());
}

TEST(BundleTest, FailedSaveLeavesNoTempFile) {
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  // Target an occupied directory: the temp file writes fine but the final
  // rename must fail, and the temp must be cleaned up afterwards.
  std::string dir = ::testing::TempDir() + "/xfrag_save_target_dir";
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  std::string inner = dir + "/occupant";
  { std::ofstream out(inner); out << "x"; }
  auto saved = SaveBundleToFile(dir, *document, nullptr);
  EXPECT_FALSE(saved.ok());
  struct ::stat st{};
  EXPECT_NE(::stat((dir + ".tmp").c_str(), &st), 0)
      << "temp file survived a failed save";
  std::remove(inner.c_str());
  ::rmdir(dir.c_str());
}

TEST(BundleTest, MissingFileIsNotFound) {
  auto bundle = LoadBundleFromFile("/nonexistent/path/file.xdb");
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kNotFound);
}

TEST(IndexFromPostingsTest, Validation) {
  std::unordered_map<std::string, std::vector<doc::NodeId>> good{
      {"alpha", {1, 3, 5}}};
  EXPECT_TRUE(text::InvertedIndex::FromPostings(good).ok());
  std::unordered_map<std::string, std::vector<doc::NodeId>> unsorted{
      {"alpha", {3, 1}}};
  EXPECT_FALSE(text::InvertedIndex::FromPostings(unsorted).ok());
  std::unordered_map<std::string, std::vector<doc::NodeId>> duplicate{
      {"alpha", {1, 1}}};
  EXPECT_FALSE(text::InvertedIndex::FromPostings(duplicate).ok());
  std::unordered_map<std::string, std::vector<doc::NodeId>> uppercase{
      {"Alpha", {1}}};
  EXPECT_FALSE(text::InvertedIndex::FromPostings(uppercase).ok());
  std::unordered_map<std::string, std::vector<doc::NodeId>> empty_term{
      {"", {1}}};
  EXPECT_FALSE(text::InvertedIndex::FromPostings(empty_term).ok());
}

}  // namespace
}  // namespace xfrag::storage
