// ResultCache unit tests: LRU eviction under the byte budget, hit/miss/
// eviction counters, recency refresh, oversized-body rejection, Clear, the
// disabled (zero-budget) mode, and a multi-threaded hammering smoke test
// (runs under TSan via `ctest -L server`).

#include "server/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace xfrag::server {
namespace {

json::Value Body(const std::string& payload) {
  json::Value body = json::Value::Object();
  body.Set("payload", payload);
  return body;
}

// A single shard makes eviction order deterministic for the unit tests.
ResultCacheOptions SingleShard(size_t max_bytes) {
  ResultCacheOptions options;
  options.max_bytes = max_bytes;
  options.shards = 1;
  return options;
}

TEST(ResultCacheTest, DisabledCacheNeverStoresOrCounts) {
  ResultCache cache(SingleShard(0));
  EXPECT_FALSE(cache.enabled());
  cache.Insert("k", Body("v"));
  EXPECT_EQ(cache.Find("k"), nullptr);
  ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ResultCacheTest, HitReturnsTheStoredBodyAndCounts) {
  ResultCache cache(SingleShard(1 << 20));
  EXPECT_EQ(cache.Find("k"), nullptr);  // miss
  cache.Insert("k", Body("v"));
  auto hit = cache.Find("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->Find("payload")->AsString(), "v");
  ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Size the budget for roughly two entries, then insert three.
  ResultCache probe(SingleShard(1 << 20));
  probe.Insert("probe", Body("xxxxxxxx"));
  const size_t entry_bytes = probe.Stats().bytes;
  ResultCache cache(SingleShard(entry_bytes * 2 + entry_bytes / 2));
  cache.Insert("a", Body("xxxxxxxx"));
  cache.Insert("b", Body("xxxxxxxx"));
  // Touch "a" so "b" is the least recently used entry.
  ASSERT_NE(cache.Find("a"), nullptr);
  cache.Insert("c", Body("xxxxxxxx"));
  EXPECT_EQ(cache.Find("b"), nullptr);
  EXPECT_NE(cache.Find("a"), nullptr);
  EXPECT_NE(cache.Find("c"), nullptr);
  ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCacheTest, BodyLargerThanShardBudgetIsNotCached) {
  ResultCache cache(SingleShard(64));
  cache.Insert("big", Body(std::string(4096, 'x')));
  EXPECT_EQ(cache.Find("big"), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, InsertReplacesExistingEntry) {
  ResultCache cache(SingleShard(1 << 20));
  cache.Insert("k", Body("old"));
  cache.Insert("k", Body("new"));
  auto hit = cache.Find("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->Find("payload")->AsString(), "new");
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(ResultCacheTest, HitSurvivesConcurrentEviction) {
  ResultCache cache(SingleShard(1 << 20));
  cache.Insert("k", Body("pinned"));
  auto pinned = cache.Find("k");
  ASSERT_NE(pinned, nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Find("k"), nullptr);
  // The shared_ptr keeps the evicted body alive for the holder.
  EXPECT_EQ(pinned->Find("payload")->AsString(), "pinned");
}

TEST(ResultCacheTest, ClearResetsEntriesAndCounters) {
  ResultCache cache(SingleShard(1 << 20));
  cache.Insert("k", Body("v"));
  ASSERT_NE(cache.Find("k"), nullptr);
  cache.Clear();
  ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.inserts, 0u);
}

TEST(ResultCacheTest, StatsJsonCarriesEveryCounter) {
  ResultCache cache(SingleShard(1 << 20));
  cache.Insert("k", Body("v"));
  ASSERT_NE(cache.Find("k"), nullptr);
  json::Value stats = cache.StatsJson();
  EXPECT_TRUE(stats.Find("enabled")->AsBool());
  EXPECT_EQ(stats.Find("entries")->AsInt(), 1);
  EXPECT_EQ(stats.Find("hits")->AsInt(), 1);
  ASSERT_NE(stats.Find("misses"), nullptr);
  ASSERT_NE(stats.Find("evictions"), nullptr);
  ASSERT_NE(stats.Find("inserts"), nullptr);
  ASSERT_NE(stats.Find("bytes"), nullptr);
}

TEST(ResultCacheTest, ConcurrentMixedTrafficStaysCoherent) {
  ResultCache cache([] {
    ResultCacheOptions options;
    options.max_bytes = 1 << 14;  // small enough to force evictions
    options.shards = 4;
    return options;
  }());
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::atomic<int> bad_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "key-" + std::to_string((t * 7 + i) % 32);
        if (i % 3 == 0) {
          cache.Insert(key, Body(key));
        } else if (auto hit = cache.Find(key)) {
          // A hit must always carry the body inserted under that key.
          if (hit->Find("payload")->AsString() != key) ++bad_hits;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad_hits.load(), 0);
  ResultCacheStats stats = cache.Stats();
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_EQ(stats.entries, cache.Stats().entries);
}

}  // namespace
}  // namespace xfrag::server
