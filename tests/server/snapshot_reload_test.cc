// Atomic snapshot swap under live traffic: a snapshot-backed Server keeps
// answering queries correctly while POST /admin/reload repeatedly swaps
// serving epochs underneath it. Every query lands entirely on one epoch
// (the per-request state pin), reloads never block readers, and the
// endpoint's error paths leave the serving state untouched. Runs under TSan
// via the `server` ctest label (scripts/check.sh).

#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "server/http.h"
#include "server/net.h"
#include "storage/snapshot.h"

namespace xfrag::server {
namespace {

constexpr const char* kDocA = R"(
  <paper>
    <title>XQuery optimization</title>
    <section>algebra for fragments
      <par>query algebra</par>
      <par>optimization rules</par>
    </section>
  </paper>)";
constexpr const char* kDocB = R"(
  <book>
    <chapter>fragment retrieval
      <par>xquery engines</par>
      <par>ranking fragments</par>
    </chapter>
  </book>)";

class SnapshotReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    snap_a_ = ::testing::TempDir() + "/reload_a.snap";
    snap_b_ = ::testing::TempDir() + "/reload_b.snap";
    collection::Collection one;
    ASSERT_TRUE(one.AddXml("a.xml", kDocA).ok());
    ASSERT_TRUE(
        storage::WriteSnapshot(one, text::IndexOptions{}, snap_a_).ok());
    collection::Collection two;
    ASSERT_TRUE(two.AddXml("a.xml", kDocA).ok());
    ASSERT_TRUE(two.AddXml("b.xml", kDocB).ok());
    ASSERT_TRUE(
        storage::WriteSnapshot(two, text::IndexOptions{}, snap_b_).ok());
  }

  void TearDown() override {
    std::remove(snap_a_.c_str());
    std::remove(snap_b_.c_str());
  }

  std::unique_ptr<Server> StartSnapshotServer(const std::string& path,
                                              ServerOptions options = {}) {
    auto loaded = storage::LoadCollectionFromSnapshot(path);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto server =
        std::make_unique<Server>(path, std::move(*loaded), options);
    auto started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  StatusOr<HttpResponse> Post(uint16_t port, const std::string& path,
                              const std::string& body) {
    std::string request = StrFormat(
        "POST %s HTTP/1.1\r\nHost: t\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        path.c_str(), body.size());
    request += body;
    auto raw = HttpRoundTrip("127.0.0.1", port, request, 30000);
    if (!raw.ok()) return raw.status();
    return ParseHttpResponse(*raw);
  }

  StatusOr<HttpResponse> Get(uint16_t port, const std::string& path) {
    std::string request = StrFormat(
        "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        path.c_str());
    auto raw = HttpRoundTrip("127.0.0.1", port, request);
    if (!raw.ok()) return raw.status();
    return ParseHttpResponse(*raw);
  }

  std::string snap_a_;
  std::string snap_b_;
};

TEST_F(SnapshotReloadTest, ReloadSwapsEpochAndCollection) {
  auto server = StartSnapshotServer(snap_a_);
  EXPECT_EQ(server->Epoch(), 1u);
  auto health = Get(server->port(), "/healthz");
  ASSERT_TRUE(health.ok());
  auto parsed = json::Parse(health->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("documents")->AsInt(), 1);

  auto reload = Post(server->port(), "/admin/reload",
                     "{\"snapshot\": \"" + snap_b_ + "\"}");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->status, 200) << reload->body;
  auto reload_body = json::Parse(reload->body);
  ASSERT_TRUE(reload_body.ok());
  EXPECT_EQ(reload_body->Find("epoch")->AsInt(), 2);
  EXPECT_EQ(reload_body->Find("documents")->AsInt(), 2);

  EXPECT_EQ(server->Epoch(), 2u);
  health = Get(server->port(), "/healthz");
  ASSERT_TRUE(health.ok());
  parsed = json::Parse(health->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("documents")->AsInt(), 2);
  EXPECT_EQ(parsed->Find("epoch")->AsInt(), 2);

  // The new document answers; it could not before the swap.
  auto query =
      Post(server->port(), "/query", R"({"terms":["retrieval"]})");
  ASSERT_TRUE(query.ok());
  auto query_body = json::Parse(query->body);
  ASSERT_TRUE(query_body.ok());
  EXPECT_GE(query_body->Find("answer_count")->AsInt(), 1);
}

TEST_F(SnapshotReloadTest, FailedReloadLeavesServingStateUntouched) {
  auto server = StartSnapshotServer(snap_a_);
  auto reload = Post(server->port(), "/admin/reload",
                     R"({"snapshot": "/nonexistent/file.snap"})");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->status, 404) << reload->body;
  EXPECT_EQ(server->Epoch(), 1u);
  auto query = Post(server->port(), "/query", R"({"terms":["xquery"]})");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->status, 200);

  auto bad_field = Post(server->port(), "/admin/reload",
                        R"({"path": "/tmp/x.snap"})");
  ASSERT_TRUE(bad_field.ok());
  EXPECT_EQ(bad_field->status, 400);
  EXPECT_EQ(server->Epoch(), 1u);

  auto bad_method = Get(server->port(), "/admin/reload");
  ASSERT_TRUE(bad_method.ok());
  EXPECT_EQ(bad_method->status, 405);
}

TEST_F(SnapshotReloadTest, ReloadRequiresSnapshotBackedServer) {
  collection::Collection collection;
  ASSERT_TRUE(collection.AddXml("a.xml", kDocA).ok());
  Server server(collection, {});
  ASSERT_TRUE(server.Start().ok());
  auto reload = Post(server.port(), "/admin/reload", "");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->status, 400) << reload->body;
}

// The TSan-relevant test: queries hammer the server from several threads
// while another thread swaps snapshots as fast as it can. Every query must
// come back 200 with one of the two valid answer shapes, and the server
// must end on a sane epoch.
TEST_F(SnapshotReloadTest, ConcurrentQueriesDuringReloads) {
  ServerOptions options;
  options.workers = 4;
  auto server = StartSnapshotServer(snap_a_);
  const uint16_t port = server->port();

  constexpr int kQueryThreads = 3;
  constexpr int kQueriesPerThread = 40;
  constexpr int kReloads = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto response =
            Post(port, "/query", R"({"terms":["xquery"],"rank":true})");
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        auto body = json::Parse(response->body);
        if (!body.ok() || body->Find("answer_count") == nullptr) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kReloads; ++i) {
      const std::string& next = (i % 2 == 0) ? snap_b_ : snap_a_;
      auto response = Post(port, "/admin/reload",
                           "{\"snapshot\": \"" + next + "\"}");
      if (!response.ok() || response->status != 200) failures.fetch_add(1);
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->Epoch(), 1u + kReloads);

  auto metrics = Get(port, "/metrics");
  ASSERT_TRUE(metrics.ok());
  auto parsed = json::Parse(metrics->body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* snapshot = parsed->Find("snapshot");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->Find("reloads")->AsInt(), kReloads);
  EXPECT_EQ(snapshot->Find("reload_failures")->AsInt(), 0);
  const json::Value* open = parsed->Find("snapshot_open");
  ASSERT_NE(open, nullptr);
  EXPECT_EQ(open->Find("count")->AsInt(), 1 + kReloads);
}

TEST_F(SnapshotReloadTest, VersionAndMetricsCarrySnapshotInfo) {
  auto server = StartSnapshotServer(snap_a_);
  auto version = Get(server->port(), "/version");
  ASSERT_TRUE(version.ok());
  auto parsed = json::Parse(version->body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* snapshot = parsed->Find("snapshot");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->Find("path")->AsString(), snap_a_);
  EXPECT_EQ(snapshot->Find("format_version")->AsInt(),
            static_cast<int64_t>(storage::kSnapshotFormatVersion));
  EXPECT_EQ(snapshot->Find("epoch")->AsInt(), 1);

  auto metrics = Get(server->port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  parsed = json::Parse(metrics->body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* live = parsed->Find("snapshot");
  ASSERT_NE(live, nullptr);
  EXPECT_TRUE(live->Find("enabled")->AsBool());
  EXPECT_GT(live->Find("file_bytes")->AsInt(), 0);
  EXPECT_EQ(live->Find("mapped_bytes")->AsInt(),
            live->Find("file_bytes")->AsInt());
  const json::Value* open = parsed->Find("snapshot_open");
  ASSERT_NE(open, nullptr);
  EXPECT_EQ(open->Find("count")->AsInt(), 1);
  EXPECT_GE(open->Find("last_open_ms")->AsDouble(), 0.0);
}

}  // namespace
}  // namespace xfrag::server
