// HTTP/1.1 persistent-connection behavior of the serving socket layer:
// several exchanges over one connection, pipelined requests, the
// Connection-header negotiation matrix (1.1 default keep-alive, 1.0 default
// close, explicit overrides both ways), the idle timeout, the
// max-requests-per-connection cap, and keep-alive interacting with graceful
// drain. Runs against an in-process xfragd on loopback.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "collection/collection.h"
#include "common/json.h"
#include "common/strings.h"
#include "server/http.h"
#include "server/net.h"
#include "server/server.h"

namespace xfrag::server {
namespace {

class KeepAliveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        collection_.AddXml("a.xml", "<doc><par>alpha beta</par></doc>").ok());
  }

  std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
    auto server = std::make_unique<Server>(collection_, options);
    auto started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  static std::string QueryRequest(const std::string& extra_headers = "",
                                  const std::string& version = "HTTP/1.1") {
    const std::string body = R"({"terms":["alpha"]})";
    return StrFormat("POST /query %s\r\nHost: t\r\nContent-Length: %zu\r\n%s\r\n",
                     version.c_str(), body.size(), extra_headers.c_str()) +
           body;
  }

  /// Reads exactly one Content-Length framed response off `fd`, seeding the
  /// parser with `leftover` bytes from the previous exchange.
  static StatusOr<HttpResponse> ReadResponse(int fd, std::string* leftover) {
    HttpResponseParser parser;
    auto state = parser.Feed(*leftover);
    char buf[4096];
    while (state == HttpResponseParser::State::kNeedMore) {
      auto n = ReadSome(fd, buf, sizeof(buf));
      if (!n.ok()) return n.status();
      if (*n == 0) {
        state = parser.OnEof();
        break;
      }
      state = parser.Feed(std::string_view(buf, *n));
    }
    if (state != HttpResponseParser::State::kComplete) {
      return Status::Internal("incomplete response: " + parser.error());
    }
    *leftover = parser.TakeRemaining();
    return parser.response();
  }

  collection::Collection collection_;
};

TEST_F(KeepAliveTest, ServesManyExchangesOverOneConnection) {
  auto server = StartServer();
  auto conn = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(SetSocketTimeouts(conn->get(), 5000).ok());

  std::string leftover;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(WriteAll(conn->get(), QueryRequest()).ok());
    auto response = ReadResponse(conn->get(), &leftover);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    EXPECT_TRUE(response->keep_alive);
    auto body = json::Parse(response->body);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body->Find("answer_count")->AsInt(), 1);
  }
  // All five exchanges really used one connection: the server admitted a
  // single connection in total.
  EXPECT_EQ(server->stats().RequestsWithStatus(200), 5u);
  server->Shutdown();
}

TEST_F(KeepAliveTest, PipelinedRequestsAreServedInOrder) {
  auto server = StartServer();
  auto conn = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(SetSocketTimeouts(conn->get(), 5000).ok());

  // Two complete requests in a single write; the second must survive the
  // parser hand-off (TakeRemaining) and be answered on the same connection.
  ASSERT_TRUE(
      WriteAll(conn->get(), QueryRequest() + QueryRequest()).ok());
  std::string leftover;
  for (int i = 0; i < 2; ++i) {
    auto response = ReadResponse(conn->get(), &leftover);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    EXPECT_TRUE(response->keep_alive);
  }
  server->Shutdown();
}

TEST_F(KeepAliveTest, ConnectionCloseIsHonored) {
  auto server = StartServer();
  auto conn = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(SetSocketTimeouts(conn->get(), 5000).ok());

  ASSERT_TRUE(
      WriteAll(conn->get(), QueryRequest("Connection: close\r\n")).ok());
  std::string leftover;
  auto response = ReadResponse(conn->get(), &leftover);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_FALSE(response->keep_alive);
  // The server closes after the response.
  char buf[64];
  auto n = ReadSome(conn->get(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 0u);
  server->Shutdown();
}

TEST_F(KeepAliveTest, Http10DefaultsToCloseUnlessExplicitKeepAlive) {
  auto server = StartServer();
  {
    auto conn = ConnectTcp("127.0.0.1", server->port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(SetSocketTimeouts(conn->get(), 5000).ok());
    ASSERT_TRUE(
        WriteAll(conn->get(), QueryRequest("", "HTTP/1.0")).ok());
    std::string leftover;
    auto response = ReadResponse(conn->get(), &leftover);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
    EXPECT_FALSE(response->keep_alive);
  }
  {
    auto conn = ConnectTcp("127.0.0.1", server->port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(SetSocketTimeouts(conn->get(), 5000).ok());
    std::string leftover;
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(WriteAll(conn->get(),
                           QueryRequest("Connection: keep-alive\r\n",
                                        "HTTP/1.0"))
                      .ok());
      auto response = ReadResponse(conn->get(), &leftover);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(response->status, 200);
      EXPECT_TRUE(response->keep_alive);
    }
  }
  server->Shutdown();
}

TEST_F(KeepAliveTest, KeepAliveDisabledServerClosesEveryConnection) {
  ServerOptions options;
  options.keep_alive = false;
  auto server = StartServer(options);
  auto conn = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(SetSocketTimeouts(conn->get(), 5000).ok());
  ASSERT_TRUE(WriteAll(conn->get(), QueryRequest()).ok());
  std::string leftover;
  auto response = ReadResponse(conn->get(), &leftover);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->keep_alive);
  char buf[64];
  auto n = ReadSome(conn->get(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  server->Shutdown();
}

TEST_F(KeepAliveTest, IdleConnectionsAreReapedAfterTheIdleTimeout) {
  ServerOptions options;
  options.keep_alive_idle_timeout_ms = 100;
  auto server = StartServer(options);
  auto conn = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(SetSocketTimeouts(conn->get(), 5000).ok());

  ASSERT_TRUE(WriteAll(conn->get(), QueryRequest()).ok());
  std::string leftover;
  ASSERT_TRUE(ReadResponse(conn->get(), &leftover).ok());

  // Exceed the idle timeout: the server must close (a silent close, not a
  // 408 — no request was in progress).
  char buf[64];
  auto n = ReadSome(conn->get(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 0u);
  // An idle-reaped connection must also free its admission slot.
  EXPECT_TRUE([&] {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      if (server->InFlight() == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return server->InFlight() == 0;
  }());
  server->Shutdown();
}

TEST_F(KeepAliveTest, MaxRequestsPerConnectionCapsTheConnection) {
  ServerOptions options;
  options.max_requests_per_connection = 2;
  auto server = StartServer(options);
  auto conn = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(SetSocketTimeouts(conn->get(), 5000).ok());

  std::string leftover;
  ASSERT_TRUE(WriteAll(conn->get(), QueryRequest()).ok());
  auto first = ReadResponse(conn->get(), &leftover);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->keep_alive);

  ASSERT_TRUE(WriteAll(conn->get(), QueryRequest()).ok());
  auto second = ReadResponse(conn->get(), &leftover);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->keep_alive) << "cap not announced on the last response";

  char buf[64];
  auto n = ReadSome(conn->get(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  server->Shutdown();
}

TEST_F(KeepAliveTest, ParkedConnectionsDoNotHoldWorkers) {
  // With one worker and a long idle timeout, two keep-alive connections can
  // only make progress if the worker is released between requests. If the
  // worker instead sat in the idle wait of whichever connection it served
  // last, every alternation below would stall until that wait expired
  // (~5s each), and connections would starve whenever they outnumber
  // workers — the regression this test pins down.
  ServerOptions options;
  options.workers = 1;
  options.keep_alive_idle_timeout_ms = 5000;
  auto server = StartServer(options);

  auto a = ConnectTcp("127.0.0.1", server->port());
  auto b = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(SetSocketTimeouts(a->get(), 5000).ok());
  ASSERT_TRUE(SetSocketTimeouts(b->get(), 5000).ok());

  auto start = std::chrono::steady_clock::now();
  std::string leftover_a;
  std::string leftover_b;
  for (int i = 0; i < 4; ++i) {
    for (auto [fd, leftover] : {std::pair<int, std::string*>{a->get(),
                                                             &leftover_a},
                                {b->get(), &leftover_b}}) {
      ASSERT_TRUE(WriteAll(fd, QueryRequest()).ok());
      auto response = ReadResponse(fd, leftover);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(response->status, 200);
      EXPECT_TRUE(response->keep_alive);
    }
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_LT(elapsed, 4000)
      << "alternating between two connections waited on the idle timeout";
  EXPECT_EQ(server->stats().RequestsWithStatus(200), 8u);
  server->Shutdown();
}

TEST_F(KeepAliveTest, ShutdownDrainsKeepAliveConnections) {
  auto server = StartServer();
  auto conn = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(SetSocketTimeouts(conn->get(), 5000).ok());
  ASSERT_TRUE(WriteAll(conn->get(), QueryRequest()).ok());
  std::string leftover;
  ASSERT_TRUE(ReadResponse(conn->get(), &leftover).ok());

  // Shutdown with a keep-alive connection parked in its idle wait: the
  // drain must not hang on it.
  auto start = std::chrono::steady_clock::now();
  server->Shutdown();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_LT(elapsed, 4000) << "drain waited for an idle keep-alive connection";
}

}  // namespace
}  // namespace xfrag::server
