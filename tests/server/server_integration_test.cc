// End-to-end tests of the xfragd serving stack over real loopback sockets:
// concurrent mixed queries whose answers must be byte-identical to direct
// QueryEngine evaluation, admission-control 503s under overload, per-request
// deadline 504s, graceful drain with requests in flight, and the error paths
// (malformed JSON, malformed HTTP, unknown endpoints/methods/fields).
//
// Everything runs against an in-process Server on an ephemeral port, so the
// suite is hermetic and runs under TSan (scripts/check.sh server stage).

#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "server/http.h"
#include "server/net.h"

namespace xfrag::server {
namespace {

constexpr const char* kDocA = R"(
  <paper>
    <title>XQuery optimization</title>
    <section>algebra for fragments
      <par>query algebra</par>
      <par>optimization rules</par>
    </section>
  </paper>)";
constexpr const char* kDocB = R"(
  <book>
    <chapter>fragment retrieval
      <par>xquery engines</par>
      <par>ranking fragments</par>
    </chapter>
    <chapter>cost models
      <par>optimization of joins</par>
    </chapter>
  </book>)";
constexpr const char* kDocC = R"(
  <notes>
    <entry>unrelated vocabulary</entry>
    <entry>nothing to see</entry>
  </notes>)";

class ServerIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    collection_ = std::make_unique<collection::Collection>();
    ASSERT_TRUE(collection_->AddXml("a.xml", kDocA).ok());
    ASSERT_TRUE(collection_->AddXml("b.xml", kDocB).ok());
    ASSERT_TRUE(collection_->AddXml("c.xml", kDocC).ok());
  }

  std::unique_ptr<Server> StartServer(ServerOptions options) {
    auto server = std::make_unique<Server>(*collection_, options);
    auto started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  StatusOr<HttpResponse> Post(uint16_t port, const std::string& body,
                              int timeout_ms = 30000) {
    std::string request = StrFormat(
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        body.size());
    request += body;
    auto raw = HttpRoundTrip("127.0.0.1", port, request, timeout_ms);
    if (!raw.ok()) return raw.status();
    return ParseHttpResponse(*raw);
  }

  StatusOr<HttpResponse> Get(uint16_t port, const std::string& path) {
    std::string request = StrFormat(
        "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        path.c_str());
    auto raw = HttpRoundTrip("127.0.0.1", port, request);
    if (!raw.ok()) return raw.status();
    return ParseHttpResponse(*raw);
  }

  /// The expected "answers" array for `terms`, built by evaluating directly
  /// against each document with a fresh QueryEngine — the serving stack must
  /// reproduce these bytes exactly.
  std::string ExpectedAnswersJson(const std::vector<std::string>& terms,
                                  const std::string& filter_expr,
                                  query::Strategy strategy) {
    query::Query q;
    q.terms = terms;
    if (!filter_expr.empty()) {
      auto filter = query::ParseFilterExpression(filter_expr);
      EXPECT_TRUE(filter.ok());
      q.filter = *filter;
    }
    json::Value answers = json::Value::Array();
    for (size_t i = 0; i < collection_->size(); ++i) {
      const auto& entry = collection_->entry(i);
      bool has_all = true;
      for (const auto& term : terms) {
        if (entry.index.Lookup(term).empty()) has_all = false;
      }
      if (!has_all) continue;
      query::QueryEngine engine(entry.document, entry.index);
      query::EvalOptions options;
      options.strategy = strategy;
      auto result = engine.Evaluate(q, options);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (!result.ok()) continue;
      for (const auto& fragment : result->answers.Sorted()) {
        answers.Append(QueryService::AnswerToJson(
            entry.name, i, fragment, entry.document, /*include_xml=*/false));
      }
    }
    return answers.Dump();
  }

  std::unique_ptr<collection::Collection> collection_;
};

TEST_F(ServerIntegrationTest, SixteenConcurrentClientsMatchDirectEvaluation) {
  ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 256;  // admit everything: this test is about data
  auto server = StartServer(options);
  uint16_t port = server->port();

  struct Variant {
    std::string body;
    std::string expected_answers;
  };
  std::vector<Variant> variants;
  variants.push_back(
      {R"({"terms":["xquery","optimization"]})",
       ExpectedAnswersJson({"xquery", "optimization"}, "",
                           query::Strategy::kAuto)});
  variants.push_back(
      {R"({"terms":["xquery","optimization"],"filter":"size<=3",)"
       R"("strategy":"pushdown"})",
       ExpectedAnswersJson({"xquery", "optimization"}, "size<=3",
                           query::Strategy::kPushDown)});
  variants.push_back(
      {R"({"terms":["fragments"],"strategy":"reduced"})",
       ExpectedAnswersJson({"fragments"}, "",
                           query::Strategy::kFixedPointReduced)});
  variants.push_back(
      {R"({"terms":["algebra","query"],"filter":"height<=2",)"
       R"("strategy":"naive"})",
       ExpectedAnswersJson({"algebra", "query"}, "height<=2",
                           query::Strategy::kFixedPointNaive)});

  constexpr int kClients = 16;
  constexpr int kRequestsPerClient = 13;  // 16 * 13 = 208 >= 200
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const Variant& variant = variants[(c + r) % variants.size()];
        auto response = Post(port, variant.body);
        if (!response.ok() || response->status != 200) {
          ++failures;
          continue;
        }
        auto parsed = json::Parse(response->body);
        if (!parsed.ok() || parsed->Find("answers") == nullptr) {
          ++failures;
          continue;
        }
        if (parsed->Find("answers")->Dump() != variant.expected_answers) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server->stats().RequestsWithStatus(200),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
  server->Shutdown();
}

TEST_F(ServerIntegrationTest, OverloadedServerSheds503WithoutHanging) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 0;  // exactly one exchange in flight
  options.service.enable_debug_sleep = true;
  auto server = StartServer(options);
  uint16_t port = server->port();

  // Occupy the only slot with a slow request...
  std::thread occupant([&] {
    auto response =
        Post(port, R"({"terms":["xquery"],"debug_sleep_ms":400})");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  });
  // ...wait until it is actually admitted...
  while (server->InFlight() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // ...then every concurrent request must be shed with a fast 503.
  constexpr int kRejected = 6;
  std::atomic<int> got503{0};
  std::vector<std::thread> shed;
  for (int i = 0; i < kRejected; ++i) {
    shed.emplace_back([&] {
      auto response = Post(port, R"({"terms":["xquery"]})");
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      if (response->status == 503) ++got503;
    });
  }
  for (auto& t : shed) t.join();
  occupant.join();
  EXPECT_EQ(got503.load(), kRejected);
  EXPECT_EQ(server->stats().RequestsWithStatus(503),
            static_cast<uint64_t>(kRejected));
  EXPECT_EQ(server->stats().RequestsWithStatus(200), 1u);

  // A handled connection frees its admission slot only after the lingering
  // close completes, which can outlast the client's read of the response —
  // wait for quiescence so the probe below cannot race a closing slot.
  while (server->InFlight() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // The server sheds load, it does not tip over: it still serves afterwards.
  auto health = Get(port, "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  server->Shutdown();
}

TEST_F(ServerIntegrationTest, DeadlineExpiryYields504WithPartialMetrics) {
  ServerOptions options;
  options.service.enable_debug_sleep = true;
  auto server = StartServer(options);

  // The deadline arms before the debug sleep, so a 50 ms stall against a
  // 10 ms deadline deterministically trips the executor's first check.
  auto response = Post(server->port(),
                       R"({"terms":["xquery","optimization"],)"
                       R"("deadline_ms":10,"debug_sleep_ms":50})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 504);
  auto body = json::Parse(response->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Find("code")->AsString(), "DeadlineExceeded");
  EXPECT_EQ(body->Find("partial")->AsBool(), true);
  ASSERT_NE(body->Find("metrics"), nullptr);
  EXPECT_NE(body->Find("metrics")->Find("fragment_joins"), nullptr);
  EXPECT_EQ(server->stats().RequestsWithStatus(504), 1u);
  server->Shutdown();
}

TEST_F(ServerIntegrationTest, ServerSideDefaultDeadlineApplies) {
  ServerOptions options;
  options.service.enable_debug_sleep = true;
  options.service.default_deadline_ms = 10;
  auto server = StartServer(options);
  auto response = Post(server->port(),
                       R"({"terms":["xquery"],"debug_sleep_ms":50})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 504);
  server->Shutdown();
}

TEST_F(ServerIntegrationTest, MaxDeadlineClampsClientRequests) {
  ServerOptions options;
  options.service.enable_debug_sleep = true;
  options.service.max_deadline_ms = 10;
  auto server = StartServer(options);
  // The client asks for a generous deadline; the operator ceiling wins.
  auto response = Post(server->port(),
                       R"({"terms":["xquery"],"deadline_ms":60000,)"
                       R"("debug_sleep_ms":50})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 504);
  server->Shutdown();
}

TEST_F(ServerIntegrationTest, GracefulShutdownFinishesInFlightRequests) {
  ServerOptions options;
  options.service.enable_debug_sleep = true;
  auto server = StartServer(options);
  uint16_t port = server->port();

  std::atomic<bool> responded{false};
  std::thread in_flight([&] {
    auto response =
        Post(port, R"({"terms":["xquery"],"debug_sleep_ms":300})");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    responded = true;
  });
  while (server->InFlight() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server->Shutdown();
  // Shutdown returning means the exchange is over — response written, slot
  // released — not merely abandoned.
  EXPECT_EQ(server->InFlight(), 0);
  in_flight.join();
  EXPECT_TRUE(responded.load());

  // And the listener is really gone.
  auto after = Get(port, "/healthz");
  EXPECT_FALSE(after.ok());
}

TEST_F(ServerIntegrationTest, HealthMetricsAndVersionEndpoints) {
  auto server = StartServer(ServerOptions{});
  uint16_t port = server->port();

  auto health = Get(port, "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  auto health_body = json::Parse(health->body);
  ASSERT_TRUE(health_body.ok());
  EXPECT_EQ(health_body->Find("status")->AsString(), "ok");
  EXPECT_EQ(health_body->Find("documents")->AsInt(), 3);

  auto version = Get(port, "/version");
  ASSERT_TRUE(version.ok());
  auto version_body = json::Parse(version->body);
  ASSERT_TRUE(version_body.ok());
  EXPECT_FALSE(version_body->Find("version")->AsString().empty());

  ASSERT_TRUE(Post(port, R"({"terms":["xquery"]})").ok());
  auto metrics = Get(port, "/metrics");
  ASSERT_TRUE(metrics.ok());
  auto metrics_body = json::Parse(metrics->body);
  ASSERT_TRUE(metrics_body.ok());
  EXPECT_GE(metrics_body->Find("requests")->Find("total")->AsInt(), 3);
  EXPECT_NE(metrics_body->Find("latency_us")->Find("p99"), nullptr);
  EXPECT_NE(metrics_body->Find("op_metrics"), nullptr);
  EXPECT_NE(metrics_body->Find("fixed_point_cache"), nullptr);
  server->Shutdown();
}

TEST_F(ServerIntegrationTest, StructuredErrorsForBadRequests) {
  auto server = StartServer(ServerOptions{});
  uint16_t port = server->port();

  // Malformed JSON: 400 with the parse offset.
  auto malformed = Post(port, R"({"terms": )");
  ASSERT_TRUE(malformed.ok());
  EXPECT_EQ(malformed->status, 400);
  auto body = json::Parse(malformed->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Find("code")->AsString(), "ParseError");
  ASSERT_NE(body->Find("offset"), nullptr);
  EXPECT_GT(body->Find("offset")->AsInt(), 0);

  // A misspelled field must not be silently ignored.
  auto unknown = Post(port, R"({"terms":["x"],"strtaegy":"auto"})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 400);
  EXPECT_NE(json::Parse(unknown->body)->Find("error")->AsString().find(
                "strtaegy"),
            std::string::npos);

  // Unknown strategy name, missing terms, wrong types.
  EXPECT_EQ(Post(port, R"({"terms":["x"],"strategy":"quantum"})")->status,
            400);
  EXPECT_EQ(Post(port, R"({"filter":"true"})")->status, 400);
  EXPECT_EQ(Post(port, R"({"terms":"x"})")->status, 400);
  EXPECT_EQ(Post(port, R"({"terms":[]})")->status, 400);
  // debug_sleep_ms is rejected when the server does not enable it.
  EXPECT_EQ(Post(port, R"({"terms":["x"],"debug_sleep_ms":5})")->status, 400);

  // Routing errors.
  EXPECT_EQ(Get(port, "/nope")->status, 404);
  auto get_query = Get(port, "/query");
  EXPECT_EQ(get_query->status, 405);

  // Malformed HTTP framing (not even a request line).
  auto raw = HttpRoundTrip("127.0.0.1", port, "BANANA\r\n\r\n");
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto parsed = ParseHttpResponse(*raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, 400);
  server->Shutdown();
}

TEST_F(ServerIntegrationTest, SharedCacheServesRepeatQueriesWarm) {
  auto server = StartServer(ServerOptions{});
  uint16_t port = server->port();
  // "reduced" forces a FixedPoint-over-Scan plan — the shape the cross-query
  // cache memoizes (auto may resolve tiny inputs to brute-force, which has
  // no fixed point to reuse).
  for (int i = 0; i < 3; ++i) {
    auto response = Post(
        port, R"({"terms":["xquery","optimization"],"strategy":"reduced"})");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  }
  auto metrics = Get(port, "/metrics");
  ASSERT_TRUE(metrics.ok());
  auto body = json::Parse(metrics->body);
  ASSERT_TRUE(body.ok());
  // Two evaluated documents × two terms are primed by the first request;
  // the two repeats hit the per-document caches.
  EXPECT_GT(body->Find("fixed_point_cache")->Find("hits")->AsInt(), 0);
  server->Shutdown();
}

TEST_F(ServerIntegrationTest, RankedAndTopKQueriesOverLoopback) {
  auto server = StartServer(ServerOptions{});
  uint16_t port = server->port();

  // Rank the full answer set: scores present and non-increasing.
  auto all = Post(port, R"({"terms":["xquery","optimization"],"rank":true})");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->status, 200);
  auto all_body = json::Parse(all->body);
  ASSERT_TRUE(all_body.ok());
  EXPECT_TRUE(all_body->Find("ranked")->AsBool());
  const json::Value* answers = all_body->Find("answers");
  ASSERT_NE(answers, nullptr);
  ASSERT_GT(answers->size(), 2u);
  double previous = 0.0;
  for (size_t i = 0; i < answers->size(); ++i) {
    const json::Value* score = (*answers)[i].Find("score");
    ASSERT_NE(score, nullptr) << "unscored ranked answer at " << i;
    if (i > 0) {
      EXPECT_LE(score->AsDouble(), previous);
    }
    previous = score->AsDouble();
  }

  // top_k must be byte-identical to the length-k prefix of the full ranking.
  auto top2 = Post(
      port, R"({"terms":["xquery","optimization"],"top_k":2})");
  ASSERT_TRUE(top2.ok());
  ASSERT_EQ(top2->status, 200);
  auto top2_body = json::Parse(top2->body);
  ASSERT_TRUE(top2_body.ok());
  EXPECT_EQ(top2_body->Find("top_k")->AsInt(), 2);
  const json::Value* top2_answers = top2_body->Find("answers");
  ASSERT_NE(top2_answers, nullptr);
  ASSERT_EQ(top2_answers->size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ((*top2_answers)[i].Dump(), (*answers)[i].Dump())
        << "prefix divergence at " << i;
  }

  // k = 0 is valid and empty; contradictions and bad types are 400s.
  auto top0 = Post(port, R"({"terms":["xquery"],"top_k":0})");
  ASSERT_TRUE(top0.ok());
  EXPECT_EQ(top0->status, 200);
  EXPECT_EQ(json::Parse(top0->body)->Find("answers")->size(), 0u);
  EXPECT_EQ(
      Post(port, R"({"terms":["x"],"top_k":2,"rank":false})")->status, 400);
  EXPECT_EQ(Post(port, R"({"terms":["x"],"top_k":-1})")->status, 400);
  EXPECT_EQ(Post(port, R"({"terms":["x"],"top_k":"many"})")->status, 400);
  server->Shutdown();
}

TEST_F(ServerIntegrationTest, TopKQueriesRespectDeadlines) {
  ServerOptions options;
  options.service.enable_debug_sleep = true;
  auto server = StartServer(options);
  auto response = Post(server->port(),
                       R"({"terms":["xquery","optimization"],"top_k":3,)"
                       R"("deadline_ms":10,"debug_sleep_ms":50})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 504);
  auto body = json::Parse(response->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Find("code")->AsString(), "DeadlineExceeded");
  server->Shutdown();
}

TEST_F(ServerIntegrationTest, ResultCacheServesRepeatsWithoutTheEngine) {
  ServerOptions options;
  options.service.result_cache_bytes = 1 << 20;
  auto server = StartServer(options);
  uint16_t port = server->port();
  const std::string request =
      R"({"terms":["xquery","optimization"],"top_k":3})";

  auto miss = Post(port, request);
  ASSERT_TRUE(miss.ok());
  ASSERT_EQ(miss->status, 200);
  auto miss_body = json::Parse(miss->body);
  ASSERT_TRUE(miss_body.ok());
  EXPECT_EQ(miss_body->Find("result_cache"), nullptr);

  // Snapshot the engine work counters after the miss...
  auto before = json::Parse(Get(port, "/metrics")->body);
  ASSERT_TRUE(before.ok());
  const std::string op_metrics_before = before->Find("op_metrics")->Dump();

  // ...the repeat is served from the cache: same answers, hit marker, and
  // not a single additional operator invocation.
  auto hit = Post(port, request);
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->status, 200);
  auto hit_body = json::Parse(hit->body);
  ASSERT_TRUE(hit_body.ok());
  EXPECT_EQ(hit_body->Find("result_cache")->AsString(), "hit");
  EXPECT_EQ(hit_body->Find("answers")->Dump(),
            miss_body->Find("answers")->Dump());

  auto after = json::Parse(Get(port, "/metrics")->body);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->Find("op_metrics")->Dump(), op_metrics_before);
  const json::Value* cache = after->Find("result_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->Find("enabled")->AsBool());
  EXPECT_EQ(cache->Find("hits")->AsInt(), 1);
  EXPECT_EQ(cache->Find("inserts")->AsInt(), 1);

  // A different rendering of the same evaluation is a different cache key.
  auto other = Post(
      port, R"({"terms":["xquery","optimization"],"top_k":3,"xml":true})");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->status, 200);
  auto final_stats = json::Parse(Get(port, "/metrics")->body);
  ASSERT_TRUE(final_stats.ok());
  EXPECT_EQ(final_stats->Find("result_cache")->Find("hits")->AsInt(), 1);
  EXPECT_EQ(final_stats->Find("result_cache")->Find("inserts")->AsInt(), 2);
  server->Shutdown();
}

}  // namespace
}  // namespace xfrag::server
