// Serving-level DAG compression: /query bodies are byte-identical with the
// optimization on or off (after stripping wall-clock and the physical dag
// counters whose whole purpose is to report compression work), duplicate
// documents are served by replay, and GET /metrics exposes the class table
// and replay statistics.

#include <gtest/gtest.h>

#include <string>

#include "algebra/ops.h"
#include "collection/collection.h"
#include "common/json.h"
#include "server/service.h"

namespace xfrag::server {
namespace {

struct DagSwitchGuard {
  explicit DagSwitchGuard(bool enabled) {
    algebra::SetDagCompressionEnabled(enabled);
  }
  ~DagSwitchGuard() { algebra::SetDagCompressionEnabled(true); }
};

// Six documents: three copies of A, two of B, one unique C.
collection::Collection MakeDuplicatedCollection() {
  collection::Collection collection;
  const char* kDocA =
      "<doc><sec><par>apples and oranges</par><par>oranges too</par></sec>"
      "<sec><par>apples again</par></sec></doc>";
  const char* kDocB =
      "<doc><sec>apples<par>deep oranges</par></sec><par>tail</par></doc>";
  const char* kDocC = "<doc><par>apples beside oranges</par></doc>";
  EXPECT_TRUE(collection.AddXml("a0.xml", kDocA).ok());
  EXPECT_TRUE(collection.AddXml("a1.xml", kDocA).ok());
  EXPECT_TRUE(collection.AddXml("b0.xml", kDocB).ok());
  EXPECT_TRUE(collection.AddXml("c0.xml", kDocC).ok());
  EXPECT_TRUE(collection.AddXml("a2.xml", kDocA).ok());
  EXPECT_TRUE(collection.AddXml("b1.xml", kDocB).ok());
  return collection;
}

// Strips the fields that legitimately differ between a compressed and an
// uncompressed run (mirrors bench/bench_dag.cc).
json::Value Normalized(const json::Value& body) {
  json::Value v = body;
  v.Remove("elapsed_ms");
  if (const json::Value* metrics = v.Find("metrics")) {
    json::Value m = *metrics;
    m.Set("classes_total", uint64_t{0});
    m.Set("class_pairs_considered", uint64_t{0});
    m.Set("answers_multiplied_out", uint64_t{0});
    v.Set("metrics", std::move(m));
  }
  return v;
}

TEST(ServiceDagTest, BodiesByteIdenticalAcrossTheSwitch) {
  collection::Collection collection = MakeDuplicatedCollection();
  // Floor off: with it on, per-document metrics depend on the evaluation
  // partition (documented precedent), which would break the byte-compare.
  ServiceOptions options;
  options.enable_cross_document_floor = false;
  const char* kRequests[] = {
      R"({"terms":["apples","oranges"]})",
      R"({"terms":["apples","oranges"],"filter":"size<=4",)"
      R"("strategy":"pushdown"})",
      R"({"terms":["apples","oranges"],"top_k":3})",
      R"({"terms":["apples","oranges"],"rank":true,"xml":true})",
  };
  for (const char* request : kRequests) {
    // Fresh services per mode so neither warms the other's caches.
    QueryService service_off(collection, options);
    QueryService service_on(collection, options);
    json::Value body_off = [&] {
      DagSwitchGuard off(false);
      return service_off.HandleQuery(request).body;
    }();
    DagSwitchGuard on(true);
    json::Value body_on = service_on.HandleQuery(request).body;
    EXPECT_TRUE(Normalized(body_off) == Normalized(body_on))
        << request << "\noff: " << Normalized(body_off).Dump()
        << "\non:  " << Normalized(body_on).Dump();
  }
}

TEST(ServiceDagTest, MetricsExposeClassTableAndReplays) {
  collection::Collection collection = MakeDuplicatedCollection();
  ServiceOptions options;
  options.enable_cross_document_floor = false;
  QueryService service(collection, options);
  DagSwitchGuard on(true);

  json::Value before = service.DagStatsJson();
  ASSERT_NE(before.Find("enabled"), nullptr);
  EXPECT_TRUE(before.Find("enabled")->AsBool());
  EXPECT_GT(before.Find("classes")->AsInt(), 0);
  EXPECT_EQ(before.Find("documents")->AsInt(), 6);
  // Three distinct root classes among six documents.
  EXPECT_EQ(before.Find("distinct_documents")->AsInt(), 3);
  EXPECT_GE(before.Find("compression_ratio")->AsDouble(), 1.0);
  EXPECT_EQ(before.Find("documents_deduplicated")->AsInt(), 0);

  QueryOutcome outcome =
      service.HandleQuery(R"({"terms":["apples","oranges"]})");
  ASSERT_EQ(outcome.http_status, 200);
  json::Value after = service.DagStatsJson();
  // Of the 3+2 duplicate-class documents, one representative each was
  // evaluated; the other three were replayed.
  EXPECT_EQ(after.Find("documents_deduplicated")->AsInt(), 3);
}

TEST(ServiceDagTest, ExplainRequestsSkipDedupButStillSucceed) {
  collection::Collection collection = MakeDuplicatedCollection();
  ServiceOptions options;
  options.enable_cross_document_floor = false;
  QueryService service(collection, options);
  DagSwitchGuard on(true);
  QueryOutcome outcome = service.HandleQuery(
      R"({"terms":["apples","oranges"],"explain":true})");
  ASSERT_EQ(outcome.http_status, 200);
  // Per-document EXPLAIN entries force every document through its own
  // evaluation — no replays recorded.
  EXPECT_EQ(service.DagStatsJson().Find("documents_deduplicated")->AsInt(),
            0);
  // The explain text surfaces the dag line for evaluated documents.
  EXPECT_NE(outcome.body.Dump().find("dag:"), std::string::npos);
}

TEST(ServiceDagTest, SwitchOffDisablesReplayEntirely) {
  collection::Collection collection = MakeDuplicatedCollection();
  ServiceOptions options;
  options.enable_cross_document_floor = false;
  QueryService service(collection, options);
  DagSwitchGuard off(false);
  QueryOutcome outcome =
      service.HandleQuery(R"({"terms":["apples","oranges"]})");
  ASSERT_EQ(outcome.http_status, 200);
  json::Value stats = service.DagStatsJson();
  EXPECT_FALSE(stats.Find("enabled")->AsBool());
  EXPECT_EQ(stats.Find("documents_deduplicated")->AsInt(), 0);
}

}  // namespace
}  // namespace xfrag::server
