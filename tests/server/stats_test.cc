// server/stats: histogram bucketing and percentile bounds, registry
// aggregation (status counts, metrics merging incl. partial-504 metrics),
// and the /metrics JSON shape.

#include "server/stats.h"

#include <gtest/gtest.h>

namespace xfrag::server {
namespace {

TEST(LatencyHistogram, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanMicros(), 0.0);
  EXPECT_EQ(h.PercentileUpperBoundMicros(50), 0u);
}

TEST(LatencyHistogram, SingleSample) {
  LatencyHistogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_micros(), 100u);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 100.0);
  // Every percentile of one sample is that sample (bounded by the max).
  EXPECT_EQ(h.PercentileUpperBoundMicros(50), 100u);
  EXPECT_EQ(h.PercentileUpperBoundMicros(99), 100u);
}

TEST(LatencyHistogram, PercentilesAreUpperBounds) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(10);   // bucket [8,16)
  h.Record(5000);                              // the tail sample
  uint64_t p50 = h.PercentileUpperBoundMicros(50);
  EXPECT_GE(p50, 10u);
  EXPECT_LT(p50, 16u);
  // p99 of 100 samples is the 99th-ranked one — still a fast sample...
  EXPECT_LT(h.PercentileUpperBoundMicros(99), 16u);
  // ...while p100 must reach the slow one.
  EXPECT_EQ(h.PercentileUpperBoundMicros(100), 5000u);
}

TEST(LatencyHistogram, NearestRankRoundsUp) {
  // With 3 samples, p95 is ceil(0.95*3) = the 3rd (slowest) sample, and the
  // reported bound is clamped to the observed max.
  LatencyHistogram h;
  h.Record(100);
  h.Record(120);
  h.Record(527);
  EXPECT_EQ(h.PercentileUpperBoundMicros(95), 527u);
  EXPECT_EQ(h.PercentileUpperBoundMicros(99), 527u);
}

TEST(LatencyHistogram, ZeroAndHugeSamplesLandSafely) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max_micros(), ~uint64_t{0});
}

TEST(StatsRegistry, CountsByStatusAndMergesMetrics) {
  StatsRegistry stats;
  algebra::OpMetrics m;
  m.fragment_joins = 3;
  m.pairs_rejected_summary = 2;
  stats.RecordRequest(200, 120, &m);
  stats.RecordRequest(200, 80, &m);
  stats.RecordRequest(503, 5, nullptr);   // rejected: no metrics
  stats.RecordRequest(504, 900, &m);      // partial metrics still merge

  EXPECT_EQ(stats.TotalRequests(), 4u);
  EXPECT_EQ(stats.RequestsWithStatus(200), 2u);
  EXPECT_EQ(stats.RequestsWithStatus(503), 1u);
  EXPECT_EQ(stats.RequestsWithStatus(504), 1u);
  EXPECT_EQ(stats.RequestsWithStatus(404), 0u);

  json::Value rendered = stats.ToJson();
  EXPECT_EQ(rendered.Find("requests")->Find("total")->AsInt(), 4);
  EXPECT_EQ(
      rendered.Find("requests")->Find("by_status")->Find("200")->AsInt(), 2);
  EXPECT_EQ(rendered.Find("latency_us")->Find("count")->AsInt(), 4);
  EXPECT_EQ(rendered.Find("op_metrics")->Find("fragment_joins")->AsInt(), 9);
  EXPECT_EQ(
      rendered.Find("op_metrics")->Find("pairs_rejected_summary")->AsInt(),
      6);
}

TEST(StatsRegistry, OpMetricsJsonCoversEveryCounter) {
  algebra::OpMetrics m;
  m.fragment_joins = 1;
  m.filter_evals = 2;
  m.filter_rejections = 3;
  m.fixed_point_iterations = 4;
  m.fragments_produced = 5;
  m.pairs_considered = 6;
  m.pairs_rejected_summary = 7;
  m.subsume_checks_skipped = 8;
  m.pairs_rejected_score = 9;
  m.classes_total = 10;
  m.class_pairs_considered = 11;
  m.answers_multiplied_out = 12;
  json::Value rendered = StatsRegistry::OpMetricsToJson(m);
  EXPECT_EQ(rendered.size(), 12u);
  EXPECT_EQ(rendered.Find("fragment_joins")->AsInt(), 1);
  EXPECT_EQ(rendered.Find("subsume_checks_skipped")->AsInt(), 8);
  EXPECT_EQ(rendered.Find("pairs_rejected_score")->AsInt(), 9);
  EXPECT_EQ(rendered.Find("classes_total")->AsInt(), 10);
  EXPECT_EQ(rendered.Find("class_pairs_considered")->AsInt(), 11);
  EXPECT_EQ(rendered.Find("answers_multiplied_out")->AsInt(), 12);
}

}  // namespace
}  // namespace xfrag::server
