// server/http: incremental request parsing (byte-at-a-time feeds included),
// framing errors mapped to the right HTTP statuses, and the response
// serializer/parser round trip.

#include "server/http.h"

#include <gtest/gtest.h>

#include <string>

namespace xfrag::server {
namespace {

constexpr const char kPost[] =
    "POST /query HTTP/1.1\r\n"
    "Host: localhost\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 17\r\n"
    "\r\n"
    "{\"terms\":[\"a\"]}!!";

TEST(HttpRequestParser, ParsesACompletePost) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed(kPost), HttpRequestParser::State::kComplete);
  const HttpRequest& req = parser.request();
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/query");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.body, "{\"terms\":[\"a\"]}!!");
  ASSERT_NE(req.FindHeader("content-type"), nullptr);
  EXPECT_EQ(*req.FindHeader("CONTENT-TYPE"), "application/json");
  EXPECT_EQ(req.FindHeader("x-missing"), nullptr);
}

TEST(HttpRequestParser, ByteAtATimeFeedsReachTheSameResult) {
  HttpRequestParser parser;
  std::string_view data(kPost);
  auto state = HttpRequestParser::State::kNeedMore;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(state, HttpRequestParser::State::kNeedMore) << "early at " << i;
    state = parser.Feed(data.substr(i, 1));
  }
  ASSERT_EQ(state, HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().body, "{\"terms\":[\"a\"]}!!");
}

TEST(HttpRequestParser, GetWithoutBodyCompletesAtHeaderEnd) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpRequestParser, ExcessBytesAfterTheBodyAreIgnored) {
  // One exchange per connection: whatever follows the framed body is not
  // part of this request.
  HttpRequestParser parser;
  std::string message(kPost);
  ASSERT_EQ(parser.Feed(message + "GET / HTTP/1.1\r\n"),
            HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.request().body.size(), 17u);
}

TEST(HttpRequestParser, MalformedRequestLineIs400) {
  for (const char* bad :
       {"GARBAGE\r\n\r\n", "GET /\r\n\r\n", "GET / HTTP/2.0\r\n\r\n",
        "GET / HTTP/1.1 extra\r\n\r\n", " / HTTP/1.1\r\n\r\n"}) {
    HttpRequestParser parser;
    EXPECT_EQ(parser.Feed(bad), HttpRequestParser::State::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(HttpRequestParser, MalformedHeaderIs400) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\nno colon here\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpRequestParser, BadContentLengthIs400) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpRequestParser, OversizedBodyIs413) {
  HttpRequestParser parser(/*max_body_bytes=*/8);
  EXPECT_EQ(parser.Feed("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpRequestParser, ChunkedFramingIs501) {
  HttpRequestParser parser;
  EXPECT_EQ(
      parser.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpRequestParser, UnboundedHeadersAreRejected) {
  HttpRequestParser parser;
  std::string flood = "GET / HTTP/1.1\r\n";
  flood += "X-Filler: " + std::string(80 * 1024, 'a') + "\r\n";
  EXPECT_EQ(parser.Feed(flood), HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpResponse, RenderAndParseRoundTrip) {
  std::string raw = RenderHttpResponse(200, "application/json",
                                       "{\"ok\":true}", "X-Extra: 1\r\n");
  auto response = ParseHttpResponse(raw);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "{\"ok\":true}");
  bool found_close = false, found_extra = false;
  for (const auto& [name, value] : response->headers) {
    if (name == "Connection" && value == "close") found_close = true;
    if (name == "X-Extra" && value == "1") found_extra = true;
  }
  EXPECT_TRUE(found_close);
  EXPECT_TRUE(found_extra);
}

TEST(HttpResponse, ReasonPhrases) {
  EXPECT_EQ(HttpStatusReason(200), "OK");
  EXPECT_EQ(HttpStatusReason(503), "Service Unavailable");
  EXPECT_EQ(HttpStatusReason(504), "Gateway Timeout");
  EXPECT_EQ(HttpStatusReason(299), "Unknown");
}

TEST(HttpResponse, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseHttpResponse("not http").ok());
  EXPECT_FALSE(ParseHttpResponse("BANANA 200 OK\r\n\r\n").ok());
}

}  // namespace
}  // namespace xfrag::server
