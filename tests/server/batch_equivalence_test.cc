// /query_batch equivalence: every item of a batch must come back
// byte-identical — INCLUDING metrics — to what a sequential POST /query of
// the same items against a fresh service would have returned, across
// strategies, top-k, batch parallelism, the DAG-compression switch, and the
// result cache. Also covers per-item 400s, per-item deadline 504s,
// result-cache hit stamping for duplicate items, envelope-level 400s, the
// size cap, and the /metrics "batch" section over real loopback sockets.

#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "algebra/ops.h"
#include "collection/collection.h"
#include "common/json.h"
#include "common/strings.h"
#include "server/http.h"
#include "server/net.h"
#include "server/server.h"
#include "server/service.h"

namespace xfrag::server {
namespace {

struct DagSwitchGuard {
  explicit DagSwitchGuard(bool enabled) {
    algebra::SetDagCompressionEnabled(enabled);
  }
  ~DagSwitchGuard() { algebra::SetDagCompressionEnabled(true); }
};

collection::Collection MakeCollection() {
  collection::Collection collection;
  EXPECT_TRUE(collection
                  .AddXml("a.xml",
                          "<paper><title>xquery optimization</title>"
                          "<section>algebra for fragments"
                          "<par>query algebra</par>"
                          "<par>optimization rules</par></section></paper>")
                  .ok());
  EXPECT_TRUE(collection
                  .AddXml("b.xml",
                          "<book><chapter>fragment retrieval"
                          "<par>xquery engines</par>"
                          "<par>ranking fragments</par></chapter>"
                          "<chapter>cost models"
                          "<par>optimization of joins</par></chapter></book>")
                  .ok());
  EXPECT_TRUE(collection
                  .AddXml("c.xml",
                          "<notes><entry>unrelated vocabulary</entry>"
                          "<entry>nothing to see</entry></notes>")
                  .ok());
  return collection;
}

// The only legitimate per-item difference between the two paths.
json::Value Normalized(const json::Value& body) {
  json::Value v = body;
  v.Remove("elapsed_ms");
  return v;
}

// A mixed workload: shared terms (one group), disjoint terms (separate
// groups), strategies, filters, top-k, ranking, xml rendering, an exact
// duplicate, and a per-item validation error.
const char* const kMixedItems[] = {
    R"({"terms":["xquery","optimization"]})",
    R"({"terms":["xquery"],"filter":"size<=2","strategy":"pushdown"})",
    R"({"terms":["fragment","ranking"],"top_k":3})",
    R"({"terms":["unrelated"],"rank":true,"xml":true})",
    R"({"terms":["xquery","optimization"]})",  // duplicate of item 0
    R"({"terms":["algebra"],"strategy":"reduced","max_answers":2})",
};

std::string MixedBatchBody() {
  std::string body = "[";
  for (size_t i = 0; i < std::size(kMixedItems); ++i) {
    if (i > 0) body += ",";
    body += kMixedItems[i];
  }
  body += "]";
  return body;
}

// Runs the items sequentially through one fresh service and as one batch
// through another fresh service, asserting per-item byte identity.
void ExpectBatchMatchesSequential(const collection::Collection& collection,
                                  ServiceOptions options,
                                  const std::string& context) {
  QueryService sequential(collection, options);
  QueryService batched(collection, options);
  std::vector<json::Value> expected;
  for (const char* item : kMixedItems) {
    expected.push_back(sequential.HandleQuery(item).body);
  }
  QueryOutcome outcome = batched.HandleQueryBatch(MixedBatchBody());
  ASSERT_EQ(outcome.http_status, 200) << context << outcome.body.Dump();
  const json::Value* results = outcome.body.Find("results");
  ASSERT_NE(results, nullptr) << context;
  ASSERT_EQ(results->size(), expected.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    const json::Value& entry = (*results)[i];
    ASSERT_NE(entry.Find("status"), nullptr) << context;
    EXPECT_EQ(entry.Find("status")->AsInt(), 200) << context << " item " << i;
    const json::Value* body = entry.Find("body");
    ASSERT_NE(body, nullptr) << context;
    EXPECT_TRUE(Normalized(*body) == Normalized(expected[i]))
        << context << " item " << i << "\nbatch: " << body->Dump()
        << "\nsequential: " << expected[i].Dump();
  }
}

TEST(BatchEquivalenceTest, ItemsMatchSequentialAcrossConfigurations) {
  collection::Collection collection = MakeCollection();
  for (unsigned parallelism : {1u, 3u}) {
    for (size_t cache_bytes : {size_t{0}, size_t{1} << 20}) {
      for (bool dag : {false, true}) {
        DagSwitchGuard guard(dag);
        ServiceOptions options;
        options.batch_parallelism = parallelism;
        options.result_cache_bytes = cache_bytes;
        ExpectBatchMatchesSequential(
            collection, options,
            StrFormat("parallelism=%u cache=%zu dag=%d ", parallelism,
                      cache_bytes, dag ? 1 : 0));
      }
    }
  }
}

TEST(BatchEquivalenceTest, BadItemGetsItsOwn400WithoutPoisoningTheBatch) {
  collection::Collection collection = MakeCollection();
  QueryService service(collection, {});
  QueryService sequential(collection, {});
  const std::string bad = R"({"terms":[],"bogus":1})";
  QueryOutcome outcome = service.HandleQueryBatch(
      "[" + std::string(kMixedItems[0]) + "," + bad + "," +
      std::string(kMixedItems[1]) + "]");
  ASSERT_EQ(outcome.http_status, 200);
  const json::Value* results = outcome.body.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0].Find("status")->AsInt(), 200);
  EXPECT_EQ((*results)[2].Find("status")->AsInt(), 200);
  // The bad item's status and body match what sequential /query answers.
  QueryOutcome alone = sequential.HandleQuery(bad);
  EXPECT_EQ((*results)[1].Find("status")->AsInt(), alone.http_status);
  EXPECT_EQ(alone.http_status, 400);
  EXPECT_TRUE(Normalized(*(*results)[1].Find("body")) ==
              Normalized(alone.body))
      << (*results)[1].Find("body")->Dump() << "\nvs " << alone.body.Dump();
}

TEST(BatchEquivalenceTest, ExpiredItemDeadlineIsAPerItem504) {
  collection::Collection collection = MakeCollection();
  ServiceOptions options;
  options.enable_debug_sleep = true;
  QueryService service(collection, options);
  QueryOutcome outcome = service.HandleQueryBatch(StrFormat(
      R"([%s,{"terms":["xquery"],"deadline_ms":1,"debug_sleep_ms":50}])",
      kMixedItems[0]));
  ASSERT_EQ(outcome.http_status, 200);
  const json::Value* results = outcome.body.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].Find("status")->AsInt(), 200);
  EXPECT_EQ((*results)[1].Find("status")->AsInt(), 504);
  const json::Value* error = (*results)[1].Find("body")->Find("error");
  ASSERT_NE(error, nullptr);
}

TEST(BatchEquivalenceTest, DuplicateItemsHitTheResultCacheInsideOneBatch) {
  collection::Collection collection = MakeCollection();
  ServiceOptions options;
  options.result_cache_bytes = 1 << 20;
  QueryService service(collection, options);
  QueryOutcome outcome = service.HandleQueryBatch(StrFormat(
      "[%s,%s]", kMixedItems[0], kMixedItems[0]));
  ASSERT_EQ(outcome.http_status, 200);
  const json::Value* results = outcome.body.Find("results");
  ASSERT_EQ(results->size(), 2u);
  const json::Value* first = (*results)[0].Find("body");
  const json::Value* second = (*results)[1].Find("body");
  EXPECT_EQ(first->Find("result_cache"), nullptr);
  ASSERT_NE(second->Find("result_cache"), nullptr);
  EXPECT_EQ(second->Find("result_cache")->AsString(), "hit");
  const json::Value* batch = outcome.body.Find("batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->Find("items")->AsInt(), 2);
  EXPECT_EQ(batch->Find("result_cache_hits")->AsInt(), 1);
  EXPECT_EQ(batch->Find("evaluated")->AsInt(), 1);
}

TEST(BatchEquivalenceTest, BatchSectionReportsGroupsAndSharing) {
  collection::Collection collection = MakeCollection();
  QueryService service(collection, {});
  // Items 0 and 1 share "xquery"; item 2 is term-disjoint.
  QueryOutcome outcome = service.HandleQueryBatch(
      R"([{"terms":["xquery","optimization"]},)"
      R"({"terms":["xquery"]},{"terms":["unrelated"]}])");
  ASSERT_EQ(outcome.http_status, 200);
  const json::Value* batch = outcome.body.Find("batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->Find("items")->AsInt(), 3);
  EXPECT_EQ(batch->Find("groups")->AsInt(), 2);
  EXPECT_EQ(batch->Find("evaluated")->AsInt(), 3);
  // "xquery" is scanned once per document instead of twice.
  EXPECT_GT(batch->Find("subplans_shared")->AsInt(), 0);
  EXPECT_GT(batch->Find("postings_shared")->AsInt(), 0);
}

TEST(BatchEquivalenceTest, EnvelopeErrorsAreWholeRequest400s) {
  collection::Collection collection = MakeCollection();
  ServiceOptions options;
  options.batch_max_items = 2;
  QueryService service(collection, options);
  EXPECT_EQ(service.HandleQueryBatch("not json").http_status, 400);
  EXPECT_EQ(service.HandleQueryBatch("42").http_status, 400);
  EXPECT_EQ(service.HandleQueryBatch("[]").http_status, 400);
  EXPECT_EQ(service.HandleQueryBatch(R"({"queries":[]})").http_status, 400);
  EXPECT_EQ(
      service.HandleQueryBatch(R"({"nope":[{"terms":["x"]}]})").http_status,
      400);
  // Three items against a two-item cap: rejected whole, no partial results.
  QueryOutcome capped = service.HandleQueryBatch(
      R"([{"terms":["a"]},{"terms":["b"]},{"terms":["c"]}])");
  EXPECT_EQ(capped.http_status, 400);
  EXPECT_EQ(capped.body.Find("results"), nullptr);
  // The {"queries": [...]} envelope form works.
  QueryOutcome wrapped = service.HandleQueryBatch(
      R"({"queries":[{"terms":["xquery"]}]})");
  EXPECT_EQ(wrapped.http_status, 200);
  ASSERT_NE(wrapped.body.Find("results"), nullptr);
  EXPECT_EQ(wrapped.body.Find("results")->size(), 1u);
}

TEST(BatchEquivalenceTest, HttpEndpointAndMetricsSection) {
  collection::Collection collection = MakeCollection();
  ServerOptions options;
  options.workers = 2;
  Server server(collection, options);
  ASSERT_TRUE(server.Start().ok());

  const std::string body = MixedBatchBody();
  std::string request = StrFormat(
      "POST /query_batch HTTP/1.1\r\nHost: t\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      body.size());
  request += body;
  auto raw = HttpRoundTrip("127.0.0.1", server.port(), request);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto response = ParseHttpResponse(*raw);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  auto parsed = json::Parse(response->body);
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("results"), nullptr);
  EXPECT_EQ(parsed->Find("results")->size(), std::size(kMixedItems));

  // GET is refused with Allow: POST.
  auto bad = HttpRoundTrip(
      "127.0.0.1", server.port(),
      "GET /query_batch HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(bad.ok());
  auto bad_response = ParseHttpResponse(*bad);
  ASSERT_TRUE(bad_response.ok());
  EXPECT_EQ(bad_response->status, 405);

  // /metrics exposes the batch section with this batch recorded.
  auto metrics_raw = HttpRoundTrip(
      "127.0.0.1", server.port(),
      "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(metrics_raw.ok());
  auto metrics_response = ParseHttpResponse(*metrics_raw);
  ASSERT_TRUE(metrics_response.ok());
  auto metrics = json::Parse(metrics_response->body);
  ASSERT_TRUE(metrics.ok());
  const json::Value* batch = metrics->Find("batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->Find("batches")->AsInt(), 1);
  EXPECT_EQ(batch->Find("items")->AsInt(),
            static_cast<int64_t>(std::size(kMixedItems)));
  const json::Value* sizes = batch->Find("size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->Find("count")->AsInt(), 1);
  server.Shutdown();
}

}  // namespace
}  // namespace xfrag::server
