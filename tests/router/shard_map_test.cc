// Shard-map config parser: the valid forms, every structured-error class
// (malformed JSON with byte offsets, overlapping/gapped document ranges,
// duplicate endpoints, zero shards, bad endpoints/weights/fields), and a
// deterministic mutation-fuzz corpus — truncations, byte flips, and token
// swaps of a valid config must produce a clean error or a valid map, never
// a crash or a structurally broken ShardMap. Mirrors the strictness bar set
// by tests/common/json_test.cc for the wire parser.

#include "router/shard_map.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "common/strings.h"

namespace xfrag::router {
namespace {

constexpr const char* kValidMap = R"({"shards": [
  {"endpoint": "127.0.0.1:9001", "documents": {"begin": 0, "count": 40}},
  {"endpoint": "127.0.0.1:9002", "documents": {"begin": 40, "count": 30},
   "weight": 2.5},
  {"endpoint": "127.0.0.1:9003", "documents": {"begin": 70, "count": 50}}
]})";

/// Checks the invariants every successfully parsed map must satisfy —
/// the mutation fuzzer leans on this to catch "parsed but broken" outcomes.
void ExpectWellFormed(const ShardMap& map) {
  ASSERT_FALSE(map.shards.empty());
  size_t next = 0;
  for (const ShardInfo& shard : map.shards) {
    EXPECT_EQ(shard.doc_begin, next);
    EXPECT_GT(shard.doc_count, 0u);
    EXPECT_GE(shard.port, 1u);
    EXPECT_FALSE(shard.host.empty());
    EXPECT_GT(shard.weight, 0.0);
    next = shard.doc_begin + shard.doc_count;
  }
  EXPECT_EQ(map.total_documents, next);
}

TEST(ShardMapTest, ParsesValidMap) {
  auto map = ParseShardMap(kValidMap);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  ASSERT_EQ(map->shards.size(), 3u);
  EXPECT_EQ(map->total_documents, 120u);
  EXPECT_EQ(map->shards[0].Endpoint(), "127.0.0.1:9001");
  EXPECT_EQ(map->shards[1].weight, 2.5);
  EXPECT_EQ(map->shards[2].doc_begin, 70u);
  EXPECT_EQ(map->shards[2].doc_count, 50u);
  ExpectWellFormed(*map);
}

TEST(ShardMapTest, SortsShardsListedOutOfOrder) {
  auto map = ParseShardMap(R"({"shards": [
    {"endpoint": "h:2", "documents": {"begin": 10, "count": 5}},
    {"endpoint": "h:1", "documents": {"begin": 0, "count": 10}}
  ]})");
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map->shards[0].port, 1u);
  EXPECT_EQ(map->shards[1].port, 2u);
  ExpectWellFormed(*map);
}

TEST(ShardMapTest, MalformedJsonReportsByteOffset) {
  // The parse stops at the stray ']' — the error must carry that offset,
  // matching the {"error", "offset"} contract of the /query 400 bodies.
  std::string text = R"({"shards": ]})";
  auto map = ParseShardMap(text);
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kParseError);
  EXPECT_NE(map.status().message().find("offset 11"), std::string::npos)
      << map.status().ToString();
}

TEST(ShardMapTest, TruncatedJsonReportsOffsetAtEnd) {
  std::string text = R"({"shards": [{"endpoint": "a:1")";
  auto map = ParseShardMap(text);
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kParseError);
  EXPECT_NE(map.status().message().find("offset"), std::string::npos);
}

TEST(ShardMapTest, RejectsZeroShards) {
  auto map = ParseShardMap(R"({"shards": []})");
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(map.status().message().find("non-empty"), std::string::npos);
}

TEST(ShardMapTest, RejectsMissingShardsField) {
  auto map = ParseShardMap(R"({})");
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardMapTest, RejectsUnknownTopLevelField) {
  auto map = ParseShardMap(
      R"({"shards": [{"endpoint": "a:1",
          "documents": {"begin": 0, "count": 1}}], "replicas": 2})");
  ASSERT_FALSE(map.ok());
  EXPECT_NE(map.status().message().find("replicas"), std::string::npos);
}

TEST(ShardMapTest, RejectsOverlappingRanges) {
  auto map = ParseShardMap(R"({"shards": [
    {"endpoint": "a:1", "documents": {"begin": 0, "count": 10}},
    {"endpoint": "b:2", "documents": {"begin": 5, "count": 10}}
  ]})");
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(map.status().message().find("overlap"), std::string::npos);
  EXPECT_NE(map.status().message().find("document 5"), std::string::npos);
}

TEST(ShardMapTest, RejectsGapBetweenRanges) {
  auto map = ParseShardMap(R"({"shards": [
    {"endpoint": "a:1", "documents": {"begin": 0, "count": 10}},
    {"endpoint": "b:2", "documents": {"begin": 12, "count": 3}}
  ]})");
  ASSERT_FALSE(map.ok());
  EXPECT_NE(map.status().message().find("gap"), std::string::npos);
  EXPECT_NE(map.status().message().find("[10, 12)"), std::string::npos);
}

TEST(ShardMapTest, RejectsRangeNotStartingAtZero) {
  auto map = ParseShardMap(R"({"shards": [
    {"endpoint": "a:1", "documents": {"begin": 1, "count": 10}}
  ]})");
  ASSERT_FALSE(map.ok());
  EXPECT_NE(map.status().message().find("gap"), std::string::npos);
}

TEST(ShardMapTest, RejectsDuplicateEndpoints) {
  auto map = ParseShardMap(R"({"shards": [
    {"endpoint": "a:1", "documents": {"begin": 0, "count": 10}},
    {"endpoint": "a:1", "documents": {"begin": 10, "count": 10}}
  ]})");
  ASSERT_FALSE(map.ok());
  EXPECT_NE(map.status().message().find("duplicate endpoint"),
            std::string::npos);
  EXPECT_NE(map.status().message().find("shards[1]"), std::string::npos);
}

TEST(ShardMapTest, RejectsBadEndpoints) {
  for (const char* endpoint :
       {"", "nohost", ":80", "h:", "h:0", "h:65536", "h:12x", "h:-1"}) {
    auto map = ParseShardMap(StrFormat(
        R"({"shards": [{"endpoint": "%s",
            "documents": {"begin": 0, "count": 1}}]})",
        endpoint));
    EXPECT_FALSE(map.ok()) << "endpoint '" << endpoint << "' accepted";
    if (!map.ok()) {
      EXPECT_EQ(map.status().code(), StatusCode::kInvalidArgument);
      EXPECT_NE(map.status().message().find("shards[0]"), std::string::npos);
    }
  }
}

TEST(ShardMapTest, RejectsBadDocumentRanges) {
  for (const char* documents :
       {R"({"begin": 0})", R"({"count": 1})", R"({"begin": -1, "count": 1})",
        R"({"begin": 0, "count": 0})", R"({"begin": 0.5, "count": 1})",
        R"({"begin": 0, "count": 1, "end": 2})", R"([0, 1])"}) {
    auto map = ParseShardMap(StrFormat(
        R"({"shards": [{"endpoint": "a:1", "documents": %s}]})", documents));
    EXPECT_FALSE(map.ok()) << "documents " << documents << " accepted";
  }
}

TEST(ShardMapTest, RejectsBadWeightsAndUnknownShardFields) {
  for (const char* extra :
       {R"("weight": 0)", R"("weight": -1)", R"("weight": "heavy")",
        R"("replica_of": "a:2")"}) {
    auto map = ParseShardMap(StrFormat(
        R"({"shards": [{"endpoint": "a:1",
            "documents": {"begin": 0, "count": 1}, %s}]})",
        extra));
    EXPECT_FALSE(map.ok()) << "shard field " << extra << " accepted";
  }
}

TEST(ShardMapTest, RejectsMissingEndpointOrDocuments) {
  EXPECT_FALSE(
      ParseShardMap(
          R"({"shards": [{"documents": {"begin": 0, "count": 1}}]})")
          .ok());
  EXPECT_FALSE(ParseShardMap(R"({"shards": [{"endpoint": "a:1"}]})").ok());
  EXPECT_FALSE(ParseShardMap(R"({"shards": [42]})").ok());
}

// ---- Mutation fuzzing -----------------------------------------------------

TEST(ShardMapFuzzTest, EveryTruncationIsErrorOrValid) {
  std::string base = kValidMap;
  for (size_t len = 0; len < base.size(); ++len) {
    auto map = ParseShardMap(base.substr(0, len));
    if (map.ok()) ExpectWellFormed(*map);  // parsed ⇒ structurally sound
  }
}

TEST(ShardMapFuzzTest, RandomByteFlipsNeverCrashOrYieldBrokenMaps) {
  std::string base = kValidMap;
  Rng rng(0x5eed5a17ULL);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = base;
    int flips = 1 + static_cast<int>(rng.Next() % 3);
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Next() % mutated.size();
      mutated[pos] = static_cast<char>(rng.Next() % 256);
    }
    auto map = ParseShardMap(mutated);
    if (map.ok()) ExpectWellFormed(*map);
  }
}

TEST(ShardMapFuzzTest, RandomTokenSwapsNeverCrashOrYieldBrokenMaps) {
  // Structure-aware mutations: splice JSON-ish tokens into random positions
  // — more likely than byte flips to reach the semantic validators.
  const char* tokens[] = {"\"begin\"", "\"count\"", "0",      "40",
                          "-3",        "{",         "}",      "[",
                          "]",         ",",         ":",      "\"\"",
                          "null",      "1e99",      "\"a:1\"", "true"};
  std::string base = kValidMap;
  Rng rng(0xf00dcafe);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = base;
    const char* token = tokens[rng.Next() % (sizeof(tokens) /
                                             sizeof(tokens[0]))];
    size_t pos = rng.Next() % mutated.size();
    mutated = mutated.substr(0, pos) + token + mutated.substr(pos);
    auto map = ParseShardMap(mutated);
    if (map.ok()) ExpectWellFormed(*map);
  }
}

}  // namespace
}  // namespace xfrag::router
