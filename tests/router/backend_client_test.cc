// BackendClient against a live in-process xfragd: keep-alive pool reuse,
// transparent retry on a stale pooled connection (server idle-closed it),
// bounded connect-failure retries, per-call deadlines, and cross-thread
// cancellation of an in-flight exchange via shutdown(2).

#include "router/backend_client.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "collection/collection.h"
#include "common/json.h"
#include "server/server.h"

namespace xfrag::router {
namespace {

class BackendClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        collection_.AddXml("a.xml", "<doc><par>alpha beta</par></doc>").ok());
  }

  std::unique_ptr<server::Server> StartServer(server::ServerOptions options) {
    auto srv = std::make_unique<server::Server>(collection_, options);
    auto started = srv->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return srv;
  }

  collection::Collection collection_;
};

TEST_F(BackendClientTest, ReusesPooledConnectionAcrossCalls) {
  auto srv = StartServer({});
  BackendClient client("127.0.0.1", srv->port(), {});
  std::string request = client.BuildRequest("GET", "/healthz", "");

  for (int i = 0; i < 3; ++i) {
    auto response = client.Call(request, /*deadline_ms=*/5000, nullptr);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->reused_connection, i > 0);
    auto body = json::Parse(response->body);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body->Find("status")->AsString(), "ok");
  }
  auto stats = client.Stats();
  EXPECT_EQ(stats.connects, 1u);
  EXPECT_EQ(stats.reuses, 2u);
  EXPECT_EQ(stats.stale_retries, 0u);
  EXPECT_EQ(stats.pooled, 1u);
  srv->Shutdown();
}

TEST_F(BackendClientTest, RetriesTransparentlyWhenPooledConnectionWentStale) {
  server::ServerOptions options;
  options.keep_alive_idle_timeout_ms = 100;
  auto srv = StartServer(options);
  BackendClient client("127.0.0.1", srv->port(), {});
  std::string request = client.BuildRequest("GET", "/healthz", "");

  ASSERT_TRUE(client.Call(request, 5000, nullptr).ok());
  // Let the server idle-close the pooled connection, then call again: the
  // client must detect the dead connection before any response byte and
  // silently redial instead of surfacing an error.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto response = client.Call(request, 5000, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_FALSE(response->reused_connection);
  auto stats = client.Stats();
  EXPECT_EQ(stats.stale_retries, 1u);
  EXPECT_EQ(stats.connects, 2u);
  srv->Shutdown();
}

TEST_F(BackendClientTest, ConnectFailureIsBoundedAndAttributed) {
  // Bind-then-close to get a port with (almost certainly) no listener.
  uint16_t dead_port;
  {
    auto srv = StartServer({});
    dead_port = srv->port();
    srv->Shutdown();
  }
  BackendClient::Options options;
  options.connect_timeout_ms = 200;
  options.max_connect_attempts = 2;
  BackendClient client("127.0.0.1", dead_port, options);
  auto response =
      client.Call(client.BuildRequest("GET", "/healthz", ""), 1000, nullptr);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(client.Stats().connects, 0u);
}

TEST_F(BackendClientTest, DeadlineCapsSlowExchange) {
  server::ServerOptions options;
  options.service.enable_debug_sleep = true;
  auto srv = StartServer(options);
  BackendClient client("127.0.0.1", srv->port(), {});
  std::string request = client.BuildRequest(
      "POST", "/query", R"({"terms":["alpha"],"debug_sleep_ms":2000})");

  auto start = std::chrono::steady_clock::now();
  auto response = client.Call(request, /*deadline_ms=*/200, nullptr);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_FALSE(response.ok());
  EXPECT_LT(elapsed, 1500) << "deadline did not cap the exchange";
  srv->Shutdown();
}

TEST_F(BackendClientTest, CancelFromAnotherThreadAbortsInFlightCall) {
  server::ServerOptions options;
  options.service.enable_debug_sleep = true;
  auto srv = StartServer(options);
  BackendClient client("127.0.0.1", srv->port(), {});
  std::string request = client.BuildRequest(
      "POST", "/query", R"({"terms":["alpha"],"debug_sleep_ms":5000})");

  auto cancel = std::make_shared<CallCancel>();
  StatusOr<BackendResponse> response = Status::Internal("not run");
  std::thread caller([&] { response = client.Call(request, 30000, cancel); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cancel->Cancel();
  caller.join();
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(cancel->canceled());
  // A canceled connection must never be returned to the pool.
  EXPECT_EQ(client.Stats().pooled, 0u);
  srv->Shutdown();
}

TEST_F(BackendClientTest, PreCanceledCallFailsWithoutTouchingTheNetwork) {
  auto srv = StartServer({});
  BackendClient client("127.0.0.1", srv->port(), {});
  auto cancel = std::make_shared<CallCancel>();
  cancel->Cancel();
  auto response =
      client.Call(client.BuildRequest("GET", "/healthz", ""), 5000, cancel);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(client.Stats().connects, 0u);
  srv->Shutdown();
}

}  // namespace
}  // namespace xfrag::router
