// Cross-shard merge unit tests: full-mode concatenation with document-index
// globalization, exact top-k (score, doc) merge order, the answer_count /
// truncated identities under per-shard truncation, field-wise metric sums,
// explain concatenation, the partial object, and shard-attributed errors
// for malformed shard bodies. The end-to-end byte-identity contract is
// covered separately by router_test against live servers.

#include "router/merge.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"

namespace xfrag::router {
namespace {

json::Value ParseOrDie(const std::string& text) {
  auto value = json::Parse(text);
  EXPECT_TRUE(value.ok()) << value.status().ToString() << " in " << text;
  return std::move(*value);
}

/// A minimal well-formed shard /query body.
json::Value ShardBodyJson(const std::string& answers,
                          int evaluated, int skipped, int count,
                          const std::string& metrics =
                              R"({"ops": 1, "nodes": 10})") {
  return ParseOrDie(
      std::string(R"({"query": "//a", "documents": 0, )") +
      R"("documents_evaluated": )" + std::to_string(evaluated) +
      R"(, "documents_skipped": )" + std::to_string(skipped) +
      R"(, "answer_count": )" + std::to_string(count) +
      R"(, "answers": )" + answers + R"(, "metrics": )" + metrics +
      R"(, "elapsed_ms": 3})");
}

TEST(MergeTest, FullModeConcatenatesAndGlobalizesDocumentIndexes) {
  std::vector<ShardBody> bodies;
  bodies.push_back(
      {0, 0,
       ShardBodyJson(R"([{"document_index": 0, "path": "/a"},
                         {"document_index": 1, "path": "/a/b"}])",
                     2, 0, 2)});
  bodies.push_back(
      {1, 2,
       ShardBodyJson(R"([{"document_index": 1, "path": "/a/c"}])", 2, 1, 1)});

  auto merged = MergeQueryBodies(std::move(bodies), MergePlan{}, 4, {});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->Find("documents")->AsInt(), 4);
  EXPECT_EQ(merged->Find("documents_evaluated")->AsInt(), 4);
  EXPECT_EQ(merged->Find("documents_skipped")->AsInt(), 1);
  EXPECT_EQ(merged->Find("answer_count")->AsInt(), 3);
  const json::Value* answers = merged->Find("answers");
  ASSERT_EQ(answers->size(), 3u);
  EXPECT_EQ((*answers)[0].Find("document_index")->AsInt(), 0);
  EXPECT_EQ((*answers)[1].Find("document_index")->AsInt(), 1);
  EXPECT_EQ((*answers)[2].Find("document_index")->AsInt(), 3);  // 1 + base 2
  EXPECT_EQ((*answers)[2].Find("path")->AsString(), "/a/c");
  EXPECT_EQ(merged->Find("ranked"), nullptr);
  EXPECT_EQ(merged->Find("truncated"), nullptr);
  EXPECT_EQ(merged->Find("partial"), nullptr);
  EXPECT_EQ(merged->Find("elapsed_ms"), nullptr);  // stamped by the caller
}

TEST(MergeTest, RankedMergeOrdersByScoreThenGlobalDocument) {
  // Shard 0 (docs 0-1) and shard 1 (docs 2-3); scores interleave and tie.
  std::vector<ShardBody> bodies;
  bodies.push_back(
      {0, 0,
       ShardBodyJson(R"([{"document_index": 1, "score": 0.9},
                         {"document_index": 0, "score": 0.5}])",
                     2, 0, 2)});
  bodies.push_back(
      {1, 2,
       ShardBodyJson(R"([{"document_index": 0, "score": 0.9},
                         {"document_index": 1, "score": 0.7}])",
                     2, 0, 2)});

  MergePlan plan;
  plan.rank = true;
  auto merged = MergeQueryBodies(std::move(bodies), plan, 4, {});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged->Find("ranked")->AsBool());
  EXPECT_EQ(merged->Find("top_k"), nullptr);  // rank without top_k
  const json::Value* answers = merged->Find("answers");
  ASSERT_EQ(answers->size(), 4u);
  // 0.9@doc1 before 0.9@doc2 (score tie → lower global doc first).
  EXPECT_EQ((*answers)[0].Find("document_index")->AsInt(), 1);
  EXPECT_EQ((*answers)[1].Find("document_index")->AsInt(), 2);
  EXPECT_EQ((*answers)[2].Find("document_index")->AsInt(), 3);
  EXPECT_EQ((*answers)[3].Find("document_index")->AsInt(), 0);
}

TEST(MergeTest, TopKClampsAnswerCountAndEmission) {
  // Σ shard counts = 5 but k = 3: answer_count must clamp to 3 and only the
  // global top 3 emit, exercising min(k, Σ min(k, hᵢ)) == min(k, Σ hᵢ).
  std::vector<ShardBody> bodies;
  bodies.push_back(
      {0, 0,
       ShardBodyJson(R"([{"document_index": 0, "score": 0.8},
                         {"document_index": 1, "score": 0.4},
                         {"document_index": 2, "score": 0.2}])",
                     3, 0, 3)});
  bodies.push_back(
      {1, 3,
       ShardBodyJson(R"([{"document_index": 0, "score": 0.6},
                         {"document_index": 1, "score": 0.3}])",
                     2, 0, 2)});

  MergePlan plan;
  plan.rank = true;
  plan.top_k = 3;
  auto merged = MergeQueryBodies(std::move(bodies), plan, 5, {});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->Find("top_k")->AsInt(), 3);
  EXPECT_EQ(merged->Find("answer_count")->AsInt(), 3);
  const json::Value* answers = merged->Find("answers");
  ASSERT_EQ(answers->size(), 3u);
  EXPECT_EQ((*answers)[0].Find("score")->AsDouble(), 0.8);
  EXPECT_EQ((*answers)[1].Find("document_index")->AsInt(), 3);  // 0.6
  EXPECT_EQ((*answers)[2].Find("document_index")->AsInt(), 1);  // 0.4
}

TEST(MergeTest, MaxAnswersTruncatesAndSetsFlag) {
  std::vector<ShardBody> bodies;
  bodies.push_back(
      {0, 0,
       ShardBodyJson(R"([{"document_index": 0}, {"document_index": 1}])", 2, 0,
                     2)});
  bodies.push_back(
      {1, 2, ShardBodyJson(R"([{"document_index": 0}])", 1, 0, 1)});

  MergePlan plan;
  plan.max_answers = 2;
  auto merged = MergeQueryBodies(std::move(bodies), plan, 3, {});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // answer_count reports the full total; answers emit only max_answers.
  EXPECT_EQ(merged->Find("answer_count")->AsInt(), 3);
  EXPECT_TRUE(merged->Find("truncated")->AsBool());
  EXPECT_EQ(merged->Find("answers")->size(), 2u);
}

TEST(MergeTest, MetricsSumFieldWiseInFirstShardKeyOrder) {
  std::vector<ShardBody> bodies;
  bodies.push_back({0, 0,
                    ShardBodyJson("[]", 1, 0, 0,
                                  R"({"ops": 2, "nodes": 100, "joins": 3})")});
  bodies.push_back({1, 1,
                    ShardBodyJson("[]", 1, 0, 0,
                                  R"({"ops": 5, "nodes": 40, "joins": 0})")});

  auto merged = MergeQueryBodies(std::move(bodies), MergePlan{}, 2, {});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const json::Value* metrics = merged->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("ops")->AsInt(), 7);
  EXPECT_EQ(metrics->Find("nodes")->AsInt(), 140);
  EXPECT_EQ(metrics->Find("joins")->AsInt(), 3);
  // Key order must match the shard (= single-node) rendering exactly.
  EXPECT_EQ(metrics->Dump(), R"({"ops":7,"nodes":140,"joins":3})");
}

TEST(MergeTest, ExplainEntriesConcatenateInShardOrder) {
  auto with_explain = [](json::Value body, const std::string& explain) {
    body.Set("explain", ParseOrDie(explain));
    return body;
  };
  std::vector<ShardBody> bodies;
  bodies.push_back({0, 0,
                    with_explain(ShardBodyJson("[]", 1, 0, 0),
                                 R"([{"op": "scan", "rows": 1}])")});
  bodies.push_back({1, 1,
                    with_explain(ShardBodyJson("[]", 1, 0, 0),
                                 R"([{"op": "scan", "rows": 2}])")});

  auto merged = MergeQueryBodies(std::move(bodies), MergePlan{}, 2, {});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const json::Value* explain = merged->Find("explain");
  ASSERT_NE(explain, nullptr);
  ASSERT_EQ(explain->size(), 2u);
  EXPECT_EQ((*explain)[0].Find("rows")->AsInt(), 1);
  EXPECT_EQ((*explain)[1].Find("rows")->AsInt(), 2);
}

TEST(MergeTest, MissingShardsProducePartialObject) {
  std::vector<ShardBody> bodies;
  bodies.push_back({1, 5, ShardBodyJson("[]", 5, 0, 0)});

  auto merged = MergeQueryBodies(std::move(bodies), MergePlan{}, 15, {0, 2});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // documents still reports the full corpus size from the shard map.
  EXPECT_EQ(merged->Find("documents")->AsInt(), 15);
  const json::Value* partial = merged->Find("partial");
  ASSERT_NE(partial, nullptr);
  const json::Value* missing = partial->Find("missing_shards");
  ASSERT_NE(missing, nullptr);
  ASSERT_EQ(missing->size(), 2u);
  EXPECT_EQ((*missing)[0].AsInt(), 0);
  EXPECT_EQ((*missing)[1].AsInt(), 2);
  // partial is the last field so a caller-stamped elapsed_ms follows it.
  std::string dump = merged->Dump();
  const std::string tail = R"("partial":{"missing_shards":[0,2]}})";
  ASSERT_GE(dump.size(), tail.size());
  EXPECT_EQ(dump.substr(dump.size() - tail.size()), tail) << dump;
}

TEST(MergeTest, RejectsZeroBodies) {
  auto merged = MergeQueryBodies({}, MergePlan{}, 0, {});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeTest, RejectsBodyMissingRequiredField) {
  json::Value body = ShardBodyJson("[]", 1, 0, 0);
  body.Remove("answer_count");
  std::vector<ShardBody> bodies;
  bodies.push_back({3, 0, std::move(body)});
  auto merged = MergeQueryBodies(std::move(bodies), MergePlan{}, 1, {});
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("shard 3"), std::string::npos);
  EXPECT_NE(merged.status().message().find("answer_count"), std::string::npos);
}

TEST(MergeTest, RejectsRankedAnswerWithoutScore) {
  std::vector<ShardBody> bodies;
  bodies.push_back({0, 0, ShardBodyJson(R"([{"document_index": 0}])", 1, 0, 1)});
  MergePlan plan;
  plan.top_k = 5;
  auto merged = MergeQueryBodies(std::move(bodies), plan, 1, {});
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("score"), std::string::npos);
}

TEST(MergeTest, RejectsAnswerWithoutDocumentIndex) {
  std::vector<ShardBody> bodies;
  bodies.push_back({0, 0, ShardBodyJson(R"([{"path": "/a"}])", 1, 0, 1)});
  auto merged = MergeQueryBodies(std::move(bodies), MergePlan{}, 1, {});
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("document_index"),
            std::string::npos);
}

}  // namespace
}  // namespace xfrag::router
