// The distributed top-k equivalence suite: the router's two-phase bound
// exchange (probe → global k-th-score floor → refine with "score_floor" +
// mid-query POST /threshold raises) is a pure work saver — answers must be
// byte-identical to a single combined xfragd with the exchange on AND off,
// over randomized queries, shard counts {1, 2, 4}, k in {1, 3, 10, 50}, and
// a deliberately ties-heavy corpus (replicated document shapes, so score
// ties straddle shard boundaries and floors equal real answer scores).
//
// Work metrics legitimately differ under the exchange (that is the point),
// so comparisons here normalize "metrics" away; the strict metric-inclusive
// contract lives in router_integration_test.cc with the exchange disabled.
//
// Fault injection rides along: a shard killed before or during the exchange
// must yield either the complete byte-identical answer or an exact partial
// (the true top-k over the surviving shards' documents) — never a wrong
// result — and dropped threshold updates must be harmless. The POST
// /threshold endpoint contract (unknown ids, strict 400s) is pinned here
// too. Everything is loopback and hermetic, so the whole file runs under
// TSan (scripts/check.sh router stage).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collection/collection.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "router/router.h"
#include "server/http.h"
#include "server/net.h"
#include "server/server.h"

namespace xfrag::router {
namespace {

constexpr size_t kTotalDocs = 16;

const char* Word(size_t n) {
  static const char* vocab[] = {"algebra", "query",   "fragment",
                                "ranking", "xml",     "join"};
  return vocab[n % (sizeof(vocab) / sizeof(vocab[0]))];
}

/// Ties-heavy document `i`: only four distinct bodies replicated across the
/// corpus, so identical fragments (and identical scores) appear on every
/// shard and the global k-th score is usually a multi-way tie.
std::string MakeTiesDoc(size_t i) {
  size_t shape = i % 4;
  std::string xml = StrFormat("<paper><title>%s %s</title>", Word(shape),
                              Word(shape + 2));
  size_t sections = 2 + shape % 2;
  for (size_t s = 0; s < sections; ++s) {
    xml += StrFormat("<section>%s", Word(shape + s));
    for (size_t p = 0; p < 2 + (shape + s) % 2; ++p) {
      xml += StrFormat("<par>%s %s</par>", Word(shape * 2 + s + p),
                       Word(shape + p));
    }
    xml += "</section>";
  }
  xml += "</paper>";
  return xml;
}

class DistributedTopKTestBase : public ::testing::Test {
 protected:
  /// Builds the 16-document corpus partitioned contiguously over
  /// `shard_count` shards, plus the combined single-node collection.
  void BuildCorpus(size_t shard_count) {
    ASSERT_EQ(kTotalDocs % shard_count, 0u);
    docs_per_shard_ = kTotalDocs / shard_count;
    combined_ = std::make_unique<collection::Collection>();
    shard_collections_.clear();
    for (size_t s = 0; s < shard_count; ++s) {
      shard_collections_.push_back(
          std::make_unique<collection::Collection>());
    }
    for (size_t i = 0; i < kTotalDocs; ++i) {
      std::string name = StrFormat("d%02zu.xml", i);
      std::string xml = MakeTiesDoc(i);
      ASSERT_TRUE(combined_->AddXml(name, xml).ok());
      ASSERT_TRUE(
          shard_collections_[i / docs_per_shard_]->AddXml(name, xml).ok());
    }
  }

  std::unique_ptr<server::Server> StartNode(
      const collection::Collection& collection,
      server::ServerOptions options = {}) {
    auto node = std::make_unique<server::Server>(collection, options);
    auto started = node->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return node;
  }

  std::vector<std::unique_ptr<server::Server>> StartShards(
      server::ServerOptions options = {}) {
    std::vector<std::unique_ptr<server::Server>> shards;
    for (auto& collection : shard_collections_) {
      shards.push_back(StartNode(*collection, options));
    }
    return shards;
  }

  ShardMap MapFor(
      const std::vector<std::unique_ptr<server::Server>>& shards) const {
    ShardMap map;
    for (size_t s = 0; s < shards.size(); ++s) {
      ShardInfo info;
      info.host = "127.0.0.1";
      info.port = shards[s]->port();
      info.doc_begin = s * docs_per_shard_;
      info.doc_count = docs_per_shard_;
      map.shards.push_back(std::move(info));
    }
    map.total_documents = kTotalDocs;
    return map;
  }

  static std::unique_ptr<Router> StartRouter(ShardMap map,
                                             RouterOptions options) {
    auto router = std::make_unique<Router>(std::move(map), options);
    auto started = router->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return router;
  }

  /// Hedging and health probes off: this suite isolates the bound exchange.
  static RouterOptions QuietRouterOptions() {
    RouterOptions options;
    options.enable_hedging = false;
    options.health_check_interval_ms = 0;
    return options;
  }

  static StatusOr<server::HttpResponse> Post(uint16_t port,
                                             const std::string& path,
                                             const std::string& body,
                                             int timeout_ms = 30000) {
    std::string request = StrFormat(
        "POST %s HTTP/1.1\r\nHost: t\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        path.c_str(), body.size());
    request += body;
    auto raw = server::HttpRoundTrip("127.0.0.1", port, request, timeout_ms);
    if (!raw.ok()) return raw.status();
    return server::ParseHttpResponse(*raw);
  }

  static StatusOr<server::HttpResponse> Get(uint16_t port,
                                            const std::string& path) {
    std::string request = StrFormat(
        "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        path.c_str());
    auto raw = server::HttpRoundTrip("127.0.0.1", port, request);
    if (!raw.ok()) return raw.status();
    return server::ParseHttpResponse(*raw);
  }

  /// The answer-exactness normalization: zero the timing and drop the work
  /// "metrics" (the exchange changes work, never answers). Everything else —
  /// answers, scores, order, counts, truncation — must agree byte for byte.
  static std::string NormalizedTopK(const std::string& body) {
    auto parsed = json::Parse(body);
    EXPECT_TRUE(parsed.ok()) << body;
    if (!parsed.ok()) return body;
    parsed->Set("elapsed_ms", 0);
    parsed->Remove("metrics");
    return parsed->Dump();
  }

  /// The "answers" array alone, for comparisons where the top-level corpus
  /// fields legitimately differ (partial results vs a survivors-only node).
  /// "document_index" is dropped too: the survivors-only oracle renumbers
  /// its documents, while names, fragments, and scores must agree exactly.
  static std::string AnswersOnly(const std::string& body) {
    auto parsed = json::Parse(body);
    EXPECT_TRUE(parsed.ok()) << body;
    if (!parsed.ok()) return body;
    const json::Value* answers = parsed->Find("answers");
    EXPECT_NE(answers, nullptr) << body;
    if (answers == nullptr) return body;
    json::Value normalized = json::Value::Array();
    for (const json::Value& answer : answers->items()) {
      json::Value copy = json::Value::Object();
      for (const auto& [key, value] : answer.members()) {
        if (key != "document_index") copy.Set(key, value);
      }
      normalized.Append(std::move(copy));
    }
    return normalized.Dump();
  }

  static int64_t FragmentJoins(const std::string& body) {
    auto parsed = json::Parse(body);
    EXPECT_TRUE(parsed.ok()) << body;
    if (!parsed.ok()) return -1;
    const json::Value* metrics = parsed->Find("metrics");
    EXPECT_NE(metrics, nullptr) << body;
    if (metrics == nullptr) return -1;
    return metrics->Find("fragment_joins")->AsInt();
  }

  /// One randomized ranked query with the given k. No "explain" here (the
  /// strict suite covers it); term/filter/strategy/max_answers all vary.
  static std::string RandomTopKBody(Rng* rng, int64_t k) {
    json::Value body = json::Value::Object();
    json::Value terms = json::Value::Array();
    size_t term_count = 1 + rng->Uniform(2);
    for (size_t t = 0; t < term_count; ++t) {
      terms.Append(std::string(Word(rng->Uniform(6))));
    }
    body.Set("terms", std::move(terms));
    if (rng->Chance(0.3)) {
      static const char* filters[] = {"size<=3", "height<=2", "size<=5"};
      body.Set("filter", std::string(filters[rng->Uniform(3)]));
    }
    if (rng->Chance(0.4)) {
      static const char* strategies[] = {"pushdown", "reduced", "naive"};
      body.Set("strategy", std::string(strategies[rng->Uniform(3)]));
    }
    if (rng->Chance(0.5)) body.Set("rank", true);
    body.Set("top_k", k);
    if (rng->Chance(0.2)) {
      body.Set("max_answers", static_cast<int64_t>(rng->Uniform(5)));
    }
    return body.Dump();
  }

  static bool WaitUntil(const std::function<bool()>& pred, int timeout_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  std::unique_ptr<collection::Collection> combined_;
  std::vector<std::unique_ptr<collection::Collection>> shard_collections_;
  size_t docs_per_shard_ = 0;
};

class DistributedTopKTest : public DistributedTopKTestBase,
                            public ::testing::WithParamInterface<size_t> {
 protected:
  void SetUp() override { BuildCorpus(GetParam()); }
};

// The core distributed-equivalence contract: for every shard count and every
// k, the router's top-k — exchange on and exchange off — is byte-identical
// to the combined node after dropping the work metrics, and across the run
// the exchange materializes no more joins than the plain scatter.
TEST_P(DistributedTopKTest, RandomizedTopKByteIdenticalExchangeOnAndOff) {
  auto combined_node = StartNode(*combined_);
  auto shards = StartShards();
  RouterOptions exchange_off = QuietRouterOptions();
  exchange_off.enable_bound_exchange = false;
  auto router_on = StartRouter(MapFor(shards), QuietRouterOptions());
  auto router_off = StartRouter(MapFor(shards), exchange_off);

  Rng rng(0xd15e ^ GetParam());
  int compared = 0;
  int64_t joins_on = 0;
  int64_t joins_off = 0;
  for (int64_t k : {int64_t{1}, int64_t{3}, int64_t{10}, int64_t{50}}) {
    for (int q = 0; q < 18; ++q) {
      std::string body = RandomTopKBody(&rng, k);
      // Warm the shards' fixed-point caches through both routers first: the
      // join-count comparison below must reflect floor pruning, not which
      // router happened to pay the one-time closure cost.
      (void)Post(router_on->port(), "/query", body);
      (void)Post(router_off->port(), "/query", body);
      auto from_combined = Post(combined_node->port(), "/query", body);
      auto from_on = Post(router_on->port(), "/query", body);
      auto from_off = Post(router_off->port(), "/query", body);
      ASSERT_TRUE(from_combined.ok()) << from_combined.status().ToString();
      ASSERT_TRUE(from_on.ok()) << from_on.status().ToString();
      ASSERT_TRUE(from_off.ok()) << from_off.status().ToString();
      ASSERT_EQ(from_on->status, 200) << body << "\n" << from_on->body;
      ASSERT_EQ(from_off->status, 200) << body;
      ASSERT_EQ(from_combined->status, 200) << body;
      std::string want = NormalizedTopK(from_combined->body);
      EXPECT_EQ(NormalizedTopK(from_on->body), want)
          << "exchange on, k=" << k << ": " << body;
      EXPECT_EQ(NormalizedTopK(from_off->body), want)
          << "exchange off, k=" << k << ": " << body;
      // The exchange is a work saver: across the run it must materialize no
      // more joins than the plain scatter. (Aggregate, not per query — the
      // resume phase's self-seeded floor restarts after the probe documents,
      // so a single query may locally do a handful of extra joins.)
      joins_on += FragmentJoins(from_on->body);
      joins_off += FragmentJoins(from_off->body);
      ++compared;
    }
  }
  EXPECT_GE(compared, 72);
  EXPECT_LE(joins_on, joins_off);

  if (GetParam() > 1) {
    // The exchange actually engaged: probes yielded floors that were pushed.
    EXPECT_GT(router_on->bounds_pushed(), 0u);
  }
  EXPECT_EQ(router_off->bounds_pushed(), 0u);
  // Fire-and-forget raises may be dropped, never over-counted.
  EXPECT_GE(router_on->threshold_updates_sent(),
            router_on->threshold_updates_applied());
  EXPECT_EQ(router_on->bound_exchange_fallbacks(), 0u);
  EXPECT_EQ(router_on->partials_served(), 0u);

  router_on->Shutdown();
  router_off->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
  combined_node->Shutdown();
}

// Ties straddling shard boundaries: with four replicated document shapes,
// the k-th score is a multi-way tie, the pushed floor equals a real answer
// score, and the canonical (score desc, document order asc) merge must still
// reproduce the combined node exactly — floors prune strictly below only.
TEST_P(DistributedTopKTest, TiesAtTheFloorSurviveTheExchange) {
  auto combined_node = StartNode(*combined_);
  auto shards = StartShards();
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());

  for (int64_t k : {int64_t{1}, int64_t{3}, int64_t{10}, int64_t{50}}) {
    for (const char* term : {"algebra", "query", "join"}) {
      std::string body = StrFormat(
          R"({"terms":["%s"],"top_k":%lld})", term,
          static_cast<long long>(k));
      auto from_combined = Post(combined_node->port(), "/query", body);
      auto from_router = Post(router->port(), "/query", body);
      ASSERT_TRUE(from_combined.ok() && from_router.ok());
      ASSERT_EQ(from_router->status, 200) << from_router->body;
      EXPECT_EQ(NormalizedTopK(from_router->body),
                NormalizedTopK(from_combined->body))
          << "k=" << k << " term=" << term;
    }
  }

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
  combined_node->Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Shards, DistributedTopKTest,
                         ::testing::Values(size_t{1}, size_t{2}, size_t{4}));

/// Fault injection and protocol-contract tests at a fixed four-shard layout.
class DistributedTopKFaultTest : public DistributedTopKTestBase {
 protected:
  void SetUp() override { BuildCorpus(4); }

  /// A combined node over the documents of the surviving shards only — the
  /// oracle for "exact partial" answers.
  std::unique_ptr<collection::Collection> SurvivorsWithout(
      size_t dead_shard) const {
    auto survivors = std::make_unique<collection::Collection>();
    for (size_t i = 0; i < kTotalDocs; ++i) {
      if (i / docs_per_shard_ == dead_shard) continue;
      auto added = survivors->AddXml(StrFormat("d%02zu.xml", i),
                                     MakeTiesDoc(i));
      EXPECT_TRUE(added.ok());
    }
    return survivors;
  }
};

// A shard dead before the query: the probe and the refine both miss it, the
// router falls back to a plain re-scatter (floors seeded from the dead
// shard's probe could be unsound for a partial answer), and the partial
// result must be the exact top-k over the surviving documents.
TEST_F(DistributedTopKFaultTest, DeadShardFallsBackToExactPartial) {
  auto shards = StartShards();
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());
  constexpr size_t kDead = 2;
  shards[kDead]->Shutdown();

  auto survivors = SurvivorsWithout(kDead);
  auto survivor_node = StartNode(*survivors);
  const std::string body = R"({"terms":["algebra","query"],"top_k":5})";

  auto degraded = Post(router->port(), "/query", body);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_EQ(degraded->status, 200) << degraded->body;
  auto parsed = json::Parse(degraded->body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* partial = parsed->Find("partial");
  ASSERT_NE(partial, nullptr) << degraded->body;
  ASSERT_EQ(partial->Find("missing_shards")->size(), 1u);
  EXPECT_EQ((*partial->Find("missing_shards"))[0].AsInt(),
            static_cast<int64_t>(kDead));
  EXPECT_GE(router->bound_exchange_fallbacks(), 1u);

  auto oracle = Post(survivor_node->port(), "/query", body);
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(oracle->status, 200);
  EXPECT_EQ(AnswersOnly(degraded->body), AnswersOnly(oracle->body))
      << "partial answers are not the exact top-k over the survivors";

  // The same query under require_complete refuses the partial instead.
  auto refused = Post(
      router->port(), "/query",
      R"({"terms":["algebra","query"],"top_k":5,"require_complete":true})");
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status, 504) << refused->body;

  router->Shutdown();
  for (size_t s = 0; s < shards.size(); ++s) {
    if (s != kDead) shards[s]->Shutdown();
  }
  survivor_node->Shutdown();
}

// A shard killed mid-exchange (after probing started, racing the refine and
// any in-flight threshold updates): the result must be either the complete
// byte-identical answer or an exact partial over the survivors — never a
// wrong or mixed result. Dropped threshold updates must be harmless.
TEST_F(DistributedTopKFaultTest, ShardKilledMidExchangeIsNeverWrong) {
  server::ServerOptions slow;
  slow.service.enable_debug_sleep = true;
  auto shards = StartShards(slow);
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());
  constexpr size_t kVictim = 3;

  const std::string slow_body =
      R"({"terms":["algebra","query"],"top_k":5,"debug_sleep_ms":150})";
  const std::string plain_body = R"({"terms":["algebra","query"],"top_k":5})";

  StatusOr<server::HttpResponse> response = Status::Internal("unset");
  std::thread client([&] {
    response = Post(router->port(), "/query", slow_body);
  });
  // Let the exchange get under way, then yank the victim shard. Depending on
  // timing the kill lands during the probe, the refine, or after resolution.
  WaitUntil([&] { return router->bounds_pushed() > 0; }, 2000);
  shards[kVictim]->Shutdown();
  client.join();

  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200) << response->body;
  auto parsed = json::Parse(response->body);
  ASSERT_TRUE(parsed.ok());

  if (parsed->Find("partial") == nullptr) {
    // The victim resolved before dying: the answer must be complete & exact.
    auto combined_node = StartNode(*combined_);
    auto oracle = Post(combined_node->port(), "/query", plain_body);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(NormalizedTopK(response->body), NormalizedTopK(oracle->body));
    combined_node->Shutdown();
  } else {
    const json::Value* missing = parsed->Find("partial")->Find("missing_shards");
    ASSERT_EQ(missing->size(), 1u);
    EXPECT_EQ((*missing)[0].AsInt(), static_cast<int64_t>(kVictim));
    auto survivors = SurvivorsWithout(kVictim);
    auto survivor_node = StartNode(*survivors);
    auto oracle = Post(survivor_node->port(), "/query", plain_body);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(AnswersOnly(response->body), AnswersOnly(oracle->body))
        << "mid-exchange kill produced a non-exact partial";
    survivor_node->Shutdown();
  }
  EXPECT_GE(router->threshold_updates_sent(),
            router->threshold_updates_applied());

  router->Shutdown();
  for (size_t s = 0; s < shards.size(); ++s) {
    if (s != kVictim) shards[s]->Shutdown();
  }
}

// The shard-side POST /threshold contract: unknown query ids are a no-op
// acknowledgement (the query may have finished already), malformed bodies
// are strict 400s, and the endpoint is POST-only.
TEST_F(DistributedTopKFaultTest, ThresholdEndpointContract) {
  auto node = StartNode(*shard_collections_[0]);

  auto unknown = Post(node->port(), "/threshold",
                      R"({"query_id":"xr-nope-1","score_floor":1.5})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 200) << unknown->body;
  auto parsed = json::Parse(unknown->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->Find("updated")->AsBool());

  for (const char* bad : {
           R"({"query_id":"x"})",                       // missing floor
           R"({"score_floor":1.0})",                    // missing id
           R"({"query_id":"","score_floor":1.0})",      // empty id
           R"({"query_id":"x","score_floor":"high"})",  // non-numeric floor
           R"({"query_id":"x","score_floor":1.0,"extra":true})",
           R"([1,2,3])",
           R"({"query_id": )",
       }) {
    auto response = Post(node->port(), "/threshold", bad);
    ASSERT_TRUE(response.ok()) << bad;
    EXPECT_EQ(response->status, 400) << bad << " -> " << response->body;
  }

  auto wrong_method = Get(node->port(), "/threshold");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  node->Shutdown();
}

// The resume half of the probe/resume split: "skip_documents" is validated
// like the other shard-protocol fields, and a probe over the first N
// eligible documents plus a resume skipping them partition the node's work —
// the counters sum field by field to the plain request's, and every plain
// top-k answer appears in one of the two answer streams.
TEST_F(DistributedTopKFaultTest, SkipDocumentsResumePartitionsTheCorpus) {
  auto node = StartNode(*combined_);

  for (const char* bad : {
           R"({"terms":["algebra"],"skip_documents":1})",  // requires top_k
           R"({"terms":["algebra"],"top_k":3,"skip_documents":0})",
           R"({"terms":["algebra"],"top_k":3,"skip_documents":-2})",
           R"({"terms":["algebra"],"top_k":3,"skip_documents":1.5})",
           R"({"terms":["algebra"],"top_k":3,"skip_documents":"2"})",
           // A probe evaluates the first documents; a resume skips them.
           R"({"terms":["algebra"],"top_k":3,"probe_documents":1,)"
           R"("skip_documents":1})",
       }) {
    auto response = Post(node->port(), "/query", bad);
    ASSERT_TRUE(response.ok()) << bad;
    EXPECT_EQ(response->status, 400) << bad << " -> " << response->body;
  }

  auto body_for = [&](const char* extra) {
    return StrFormat(
        R"({"terms":["algebra","query"],"top_k":5%s})", extra);
  };
  auto plain = Post(node->port(), "/query", body_for(""));
  auto probe = Post(node->port(), "/query", body_for(",\"probe_documents\":3"));
  auto resume = Post(node->port(), "/query", body_for(",\"skip_documents\":3"));
  ASSERT_TRUE(plain.ok() && probe.ok() && resume.ok());
  ASSERT_EQ(plain->status, 200) << plain->body;
  ASSERT_EQ(probe->status, 200) << probe->body;
  ASSERT_EQ(resume->status, 200) << resume->body;
  auto plain_body = json::Parse(plain->body);
  auto probe_body = json::Parse(probe->body);
  auto resume_body = json::Parse(resume->body);
  ASSERT_TRUE(plain_body.ok() && probe_body.ok() && resume_body.ok());
  EXPECT_NE(probe_body->Find("probe"), nullptr);
  EXPECT_NE(resume_body->Find("resume"), nullptr);
  EXPECT_EQ(plain_body->Find("resume"), nullptr);

  // ("answer_count" is excluded: each half reports its own top-k cap, not a
  // partition of the plain count.)
  for (const char* counter : {"documents_evaluated", "documents_skipped"}) {
    EXPECT_EQ(probe_body->Find(counter)->AsInt() +
                  resume_body->Find(counter)->AsInt(),
              plain_body->Find(counter)->AsInt())
        << counter;
  }

  // Every plain top-k answer lives in exactly one half of the split (the
  // halves cover disjoint documents), rendered with identical bytes.
  std::vector<std::string> halves;
  for (const json::Value* answers :
       {probe_body->Find("answers"), resume_body->Find("answers")}) {
    ASSERT_NE(answers, nullptr);
    for (const json::Value& answer : answers->items()) {
      halves.push_back(answer.Dump());
    }
  }
  const json::Value* plain_answers = plain_body->Find("answers");
  ASSERT_NE(plain_answers, nullptr);
  EXPECT_GT(plain_answers->items().size(), 0u);
  for (const json::Value& answer : plain_answers->items()) {
    EXPECT_EQ(1, std::count(halves.begin(), halves.end(), answer.Dump()))
        << answer.Dump();
  }

  node->Shutdown();
}

// The router owns the shard-side protocol fields: clients may not inject
// them, and "bound_exchange" must be a proper bool.
TEST_F(DistributedTopKFaultTest, RouterRejectsClientSuppliedProtocolFields) {
  auto shards = StartShards();
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());

  for (const char* bad : {
           R"({"terms":["algebra"],"top_k":3,"score_floor":1.0})",
           R"({"terms":["algebra"],"top_k":3,"probe_documents":1})",
           R"({"terms":["algebra"],"top_k":3,"skip_documents":1})",
           R"({"terms":["algebra"],"top_k":3,"query_id":"mine"})",
           R"({"terms":["algebra"],"top_k":3,"bound_exchange":"yes"})",
       }) {
    auto response = Post(router->port(), "/query", bad);
    ASSERT_TRUE(response.ok()) << bad;
    EXPECT_EQ(response->status, 400) << bad << " -> " << response->body;
    auto parsed = json::Parse(response->body);
    ASSERT_TRUE(parsed.ok());
    EXPECT_NE(parsed->Find("error"), nullptr);
  }

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
}

// Per-request opt-out: "bound_exchange": false routes the query through the
// plain single-phase scatter (no probes, no pushed floors) and still matches
// the combined node exactly.
TEST_F(DistributedTopKFaultTest, BoundExchangeOptOutPerRequest) {
  auto combined_node = StartNode(*combined_);
  auto shards = StartShards();
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());

  auto opted_out = Post(
      router->port(), "/query",
      R"({"terms":["algebra","query"],"top_k":5,"bound_exchange":false})");
  ASSERT_TRUE(opted_out.ok());
  ASSERT_EQ(opted_out->status, 200) << opted_out->body;
  EXPECT_EQ(router->bounds_pushed(), 0u);

  auto oracle = Post(combined_node->port(), "/query",
                     R"({"terms":["algebra","query"],"top_k":5})");
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(NormalizedTopK(opted_out->body), NormalizedTopK(oracle->body));

  // Without the opt-out the same query engages the exchange.
  auto exchanged = Post(router->port(), "/query",
                        R"({"terms":["algebra","query"],"top_k":5})");
  ASSERT_TRUE(exchanged.ok());
  ASSERT_EQ(exchanged->status, 200);
  EXPECT_GT(router->bounds_pushed(), 0u);
  EXPECT_EQ(NormalizedTopK(exchanged->body), NormalizedTopK(oracle->body));

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
  combined_node->Shutdown();
}

}  // namespace
}  // namespace xfrag::router
