// Router batch scatter (/query_batch): an in-process Router fronting three
// xfragd shards must answer every batch item byte-identically — including
// the work metrics — to a single combined xfragd answering the same items
// as sequential /query requests. Also covers per-item and envelope-level
// validation, the require_complete batch envelope, degraded mode with a
// dead shard (per-item partial / 504), and the router /metrics "batch"
// section. Hermetic loopback, runs under TSan (`ctest -L router`).

#include "router/router.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algebra/ops.h"
#include "collection/collection.h"
#include "common/json.h"
#include "common/strings.h"
#include "server/http.h"
#include "server/net.h"
#include "server/server.h"

namespace xfrag::router {
namespace {

constexpr size_t kDocsPerShard = 4;
constexpr size_t kShards = 3;
constexpr size_t kTotalDocs = kDocsPerShard * kShards;

const char* Word(size_t n) {
  static const char* vocab[] = {"algebra",   "query",   "fragment",
                                "retrieval", "ranking", "optimization",
                                "index",     "xml",     "join",
                                "cost"};
  return vocab[n % (sizeof(vocab) / sizeof(vocab[0]))];
}

std::string MakeDoc(size_t i) {
  std::string xml =
      StrFormat("<paper><title>%s %s</title>", Word(i), Word(i + 3));
  for (size_t s = 0; s < 2 + i % 2; ++s) {
    xml += StrFormat("<section>%s", Word(i + s));
    for (size_t p = 0; p < 2 + s % 2; ++p) {
      xml += StrFormat("<par>%s %s %s</par>", Word(i * 2 + s + p),
                       Word(i + s * 3 + p), Word(p + 1));
    }
    xml += "</section>";
  }
  xml += "</paper>";
  return xml;
}

// A fixed mixed batch: a shared-term pair (one group), term-disjoint items,
// top-k, ranking, a filter, an exact duplicate, and one invalid item whose
// per-item 400 must match the combined node's /query 400.
const char* const kBatchItems[] = {
    R"({"terms":["algebra","query"]})",
    R"({"terms":["algebra"],"filter":"size<=3","strategy":"pushdown"})",
    R"({"terms":["ranking","fragment"],"top_k":3})",
    R"({"terms":["cost"],"rank":true,"max_answers":4})",
    R"({"terms":["algebra","query"]})",  // duplicate of item 0
    R"({"terms":["index"],"frobnicate":true})",  // per-item 400
};

std::string BatchBody() {
  std::string body = "[";
  for (size_t i = 0; i < std::size(kBatchItems); ++i) {
    if (i > 0) body += ",";
    body += kBatchItems[i];
  }
  body += "]";
  return body;
}

class RouterBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    combined_ = std::make_unique<collection::Collection>();
    for (size_t s = 0; s < kShards; ++s) {
      shard_collections_.push_back(std::make_unique<collection::Collection>());
    }
    for (size_t i = 0; i < kTotalDocs; ++i) {
      std::string name = StrFormat("d%02zu.xml", i);
      std::string xml = MakeDoc(i);
      ASSERT_TRUE(combined_->AddXml(name, xml).ok());
      ASSERT_TRUE(
          shard_collections_[i / kDocsPerShard]->AddXml(name, xml).ok());
    }
  }

  std::unique_ptr<server::Server> StartNode(
      const collection::Collection& collection,
      server::ServerOptions options = {}) {
    auto node = std::make_unique<server::Server>(collection, options);
    EXPECT_TRUE(node->Start().ok());
    return node;
  }

  std::vector<std::unique_ptr<server::Server>> StartShards(
      server::ServerOptions options = {}) {
    std::vector<std::unique_ptr<server::Server>> shards;
    for (size_t s = 0; s < kShards; ++s) {
      shards.push_back(StartNode(*shard_collections_[s], options));
    }
    return shards;
  }

  static ShardMap MapFor(
      const std::vector<std::unique_ptr<server::Server>>& shards) {
    ShardMap map;
    for (size_t s = 0; s < shards.size(); ++s) {
      ShardInfo info;
      info.host = "127.0.0.1";
      info.port = shards[s]->port();
      info.doc_begin = s * kDocsPerShard;
      info.doc_count = kDocsPerShard;
      map.shards.push_back(std::move(info));
    }
    map.total_documents = kTotalDocs;
    return map;
  }

  static std::unique_ptr<Router> StartRouter(ShardMap map,
                                             RouterOptions options) {
    auto router = std::make_unique<Router>(std::move(map), options);
    EXPECT_TRUE(router->Start().ok());
    return router;
  }

  static RouterOptions QuietRouterOptions() {
    RouterOptions options;
    options.enable_hedging = false;
    options.health_check_interval_ms = 0;
    return options;
  }

  /// Metric-strict comparisons need the same switches the single-query
  /// byte-identity test uses: cross-document floor seeding and DAG dedup
  /// change work counters between a sharded and a combined evaluation.
  static server::ServerOptions StrictNodeOptions() {
    server::ServerOptions options;
    options.service.enable_cross_document_floor = false;
    return options;
  }

  static StatusOr<server::HttpResponse> Post(uint16_t port,
                                             const std::string& target,
                                             const std::string& body,
                                             int timeout_ms = 30000) {
    std::string request = StrFormat(
        "POST %s HTTP/1.1\r\nHost: t\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        target.c_str(), body.size());
    request += body;
    auto raw = server::HttpRoundTrip("127.0.0.1", port, request, timeout_ms);
    if (!raw.ok()) return raw.status();
    return server::ParseHttpResponse(*raw);
  }

  static json::Value Normalized(const json::Value& body) {
    json::Value v = body;
    v.Set("elapsed_ms", 0);
    return v;
  }

  std::unique_ptr<collection::Collection> combined_;
  std::vector<std::unique_ptr<collection::Collection>> shard_collections_;
};

TEST_F(RouterBatchTest, BatchItemsByteIdenticalToCombinedSequential) {
  algebra::SetDagCompressionEnabled(false);
  struct SwitchRestore {
    ~SwitchRestore() { algebra::SetDagCompressionEnabled(true); }
  } restore;
  auto combined_node = StartNode(*combined_, StrictNodeOptions());
  auto shards = StartShards(StrictNodeOptions());
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());

  auto response = Post(router->port(), "/query_batch", BatchBody());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200) << response->body;
  auto parsed = json::Parse(response->body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* results = parsed->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), std::size(kBatchItems));

  for (size_t i = 0; i < std::size(kBatchItems); ++i) {
    auto sequential = Post(combined_node->port(), "/query", kBatchItems[i]);
    ASSERT_TRUE(sequential.ok());
    const json::Value& entry = (*results)[i];
    EXPECT_EQ(entry.Find("status")->AsInt(), sequential->status)
        << "item " << i;
    auto expected = json::Parse(sequential->body);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(Normalized(*entry.Find("body")) == Normalized(*expected))
        << "item " << i << "\nrouter: " << entry.Find("body")->Dump()
        << "\ncombined: " << expected->Dump();
  }
  EXPECT_EQ(router->partials_served(), 0u);

  // The router /metrics "batch" section saw this batch.
  auto raw = server::HttpRoundTrip(
      "127.0.0.1", router->port(),
      "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  auto metrics_response = server::ParseHttpResponse(*raw);
  ASSERT_TRUE(metrics_response.ok());
  auto metrics = json::Parse(metrics_response->body);
  ASSERT_TRUE(metrics.ok());
  const json::Value* router_metrics = metrics->Find("router");
  ASSERT_NE(router_metrics, nullptr);
  const json::Value* batch = router_metrics->Find("batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->Find("batches")->AsInt(), 1);
  EXPECT_EQ(batch->Find("items")->AsInt(),
            static_cast<int64_t>(std::size(kBatchItems)));

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
  combined_node->Shutdown();
}

TEST_F(RouterBatchTest, EnvelopeAndPerItemValidation) {
  auto shards = StartShards();
  RouterOptions options = QuietRouterOptions();
  options.batch_max_items = 2;
  auto router = StartRouter(MapFor(shards), options);

  // Envelope errors: whole-request 400s.
  EXPECT_EQ(Post(router->port(), "/query_batch", "nonsense")->status, 400);
  EXPECT_EQ(Post(router->port(), "/query_batch", "[]")->status, 400);
  EXPECT_EQ(Post(router->port(), "/query_batch", R"({"nope":1})")->status,
            400);
  EXPECT_EQ(Post(router->port(), "/query_batch",
                 R"([{"terms":["a"]},{"terms":["b"]},{"terms":["c"]}])")
                ->status,
            400);

  // Per-item errors come back per item: router-internal protocol fields,
  // batch-envelope switches on an item, and non-object items.
  auto response = Post(
      router->port(), "/query_batch",
      R"([{"terms":["algebra"],"score_floor":1.5},)"
      R"({"terms":["algebra"],"require_complete":true}])");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  auto parsed = json::Parse(response->body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* results = parsed->Find("results");
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].Find("status")->AsInt(), 400);
  EXPECT_EQ((*results)[1].Find("status")->AsInt(), 400);

  // GET is refused with 405.
  auto raw = server::HttpRoundTrip(
      "127.0.0.1", router->port(),
      "GET /query_batch HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  auto bad = server::ParseHttpResponse(*raw);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 405);

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
}

TEST_F(RouterBatchTest, DeadShardDegradesPerItem) {
  auto shards = StartShards();
  RouterOptions options = QuietRouterOptions();
  options.default_shard_deadline_ms = 2000;
  options.backend.connect_timeout_ms = 200;
  auto router = StartRouter(MapFor(shards), options);
  shards[1]->Shutdown();  // shard 1 refuses connections from here on

  const std::string batch =
      R"([{"terms":["algebra","query"]},{"terms":["ranking"],"top_k":2}])";

  // Default semantics: every item answers 200 with a per-item partial.
  auto response = Post(router->port(), "/query_batch", batch);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto parsed = json::Parse(response->body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* results = parsed->Find("results");
  ASSERT_EQ(results->size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const json::Value& entry = (*results)[i];
    EXPECT_EQ(entry.Find("status")->AsInt(), 200) << "item " << i;
    const json::Value* partial = entry.Find("body")->Find("partial");
    ASSERT_NE(partial, nullptr) << "item " << i;
    const json::Value* missing = partial->Find("missing_shards");
    ASSERT_NE(missing, nullptr);
    ASSERT_EQ(missing->size(), 1u);
    EXPECT_EQ((*missing)[0].AsInt(), 1);
  }
  EXPECT_GE(router->partials_served(), 2u);

  // require_complete on the batch envelope: every item answers 504.
  auto strict = Post(router->port(), "/query_batch",
                     StrFormat(R"({"queries":%s,"require_complete":true})",
                               batch.c_str()));
  ASSERT_TRUE(strict.ok());
  ASSERT_EQ(strict->status, 200) << strict->body;
  auto strict_parsed = json::Parse(strict->body);
  ASSERT_TRUE(strict_parsed.ok());
  const json::Value* strict_results = strict_parsed->Find("results");
  ASSERT_EQ(strict_results->size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const json::Value& entry = (*strict_results)[i];
    EXPECT_EQ(entry.Find("status")->AsInt(), 504) << "item " << i;
    const json::Value* missing =
        entry.Find("body")->Find("missing_shards");
    ASSERT_NE(missing, nullptr) << "item " << i;
    ASSERT_EQ(missing->size(), 1u);
    EXPECT_EQ((*missing)[0].AsInt(), 1);
  }

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
}

}  // namespace
}  // namespace xfrag::router
