// End-to-end tests of the scatter-gather tier: an in-process Router fronting
// three in-process xfragd shards, checked against a single combined xfragd
// hosting the same 12-document corpus. The core contract — ≥200 randomized
// queries (full + ranked top-k, filters, strategies, explain, max_answers)
// whose router responses are byte-identical to the combined node after
// normalizing "elapsed_ms" — plus degraded mode (shard killed mid-run →
// 200 + "partial" or 504 under "require_complete"), hedging, background
// health mark-down/up, and the /metrics//healthz//version surfaces.
//
// Everything runs on loopback in one process, so the whole suite is
// hermetic and runs under TSan (scripts/check.sh router stage).

#include "router/router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algebra/ops.h"
#include "collection/collection.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "server/http.h"
#include "server/net.h"
#include "server/server.h"

namespace xfrag::router {
namespace {

constexpr size_t kDocsPerShard = 4;
constexpr size_t kShards = 3;
constexpr size_t kTotalDocs = kDocsPerShard * kShards;

const char* Word(size_t n) {
  static const char* vocab[] = {"algebra",      "query", "fragment",
                                "retrieval",    "ranking", "optimization",
                                "index",        "xml",     "join",
                                "cost"};
  return vocab[n % (sizeof(vocab) / sizeof(vocab[0]))];
}

/// Deterministic document `i`: overlapping vocabulary across documents (so
/// queries match several shards) with varying structure (so sizes, heights
/// and scores differ).
std::string MakeDoc(size_t i) {
  std::string xml = StrFormat("<paper><title>%s %s</title>", Word(i),
                              Word(i + 3));
  size_t sections = 2 + i % 2;
  for (size_t s = 0; s < sections; ++s) {
    xml += StrFormat("<section>%s", Word(i + s));
    for (size_t p = 0; p < 2 + s % 2; ++p) {
      xml += StrFormat("<par>%s %s %s</par>", Word(i * 2 + s + p),
                       Word(i + s * 3 + p), Word(p + 1));
    }
    xml += "</section>";
  }
  xml += "</paper>";
  return xml;
}

class RouterIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    combined_ = std::make_unique<collection::Collection>();
    for (size_t s = 0; s < kShards; ++s) {
      shard_collections_.push_back(
          std::make_unique<collection::Collection>());
    }
    for (size_t i = 0; i < kTotalDocs; ++i) {
      std::string name = StrFormat("d%02zu.xml", i);
      std::string xml = MakeDoc(i);
      ASSERT_TRUE(combined_->AddXml(name, xml).ok());
      ASSERT_TRUE(
          shard_collections_[i / kDocsPerShard]->AddXml(name, xml).ok());
    }
  }

  std::unique_ptr<server::Server> StartNode(
      const collection::Collection& collection,
      server::ServerOptions options = {}) {
    auto node = std::make_unique<server::Server>(collection, options);
    auto started = node->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return node;
  }

  /// Starts the three shard servers (identical options).
  std::vector<std::unique_ptr<server::Server>> StartShards(
      server::ServerOptions options = {}) {
    std::vector<std::unique_ptr<server::Server>> shards;
    for (size_t s = 0; s < kShards; ++s) {
      shards.push_back(StartNode(*shard_collections_[s], options));
    }
    return shards;
  }

  static ShardMap MapFor(
      const std::vector<std::unique_ptr<server::Server>>& shards) {
    ShardMap map;
    for (size_t s = 0; s < shards.size(); ++s) {
      ShardInfo info;
      info.host = "127.0.0.1";
      info.port = shards[s]->port();
      info.doc_begin = s * kDocsPerShard;
      info.doc_count = kDocsPerShard;
      map.shards.push_back(std::move(info));
    }
    map.total_documents = kTotalDocs;
    return map;
  }

  static std::unique_ptr<Router> StartRouter(ShardMap map,
                                             RouterOptions options) {
    auto router = std::make_unique<Router>(std::move(map), options);
    auto started = router->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return router;
  }

  /// Byte-identity tests disable hedging (a hedge re-evaluates a query on
  /// one shard, which can race that shard's fixed-point cache warmth ahead
  /// of the combined node's) and health probes (noise).
  static RouterOptions QuietRouterOptions() {
    RouterOptions options;
    options.enable_hedging = false;
    options.health_check_interval_ms = 0;
    return options;
  }

  static StatusOr<server::HttpResponse> Post(uint16_t port,
                                             const std::string& body,
                                             int timeout_ms = 30000) {
    std::string request = StrFormat(
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        body.size());
    request += body;
    auto raw = server::HttpRoundTrip("127.0.0.1", port, request, timeout_ms);
    if (!raw.ok()) return raw.status();
    return server::ParseHttpResponse(*raw);
  }

  static StatusOr<server::HttpResponse> Get(uint16_t port,
                                            const std::string& path) {
    std::string request = StrFormat(
        "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        path.c_str());
    auto raw = server::HttpRoundTrip("127.0.0.1", port, request);
    if (!raw.ok()) return raw.status();
    return server::ParseHttpResponse(*raw);
  }

  /// Zeroes the timing field (the one permitted divergence) and re-dumps.
  static std::string Normalized(const std::string& body) {
    auto parsed = json::Parse(body);
    EXPECT_TRUE(parsed.ok()) << body;
    if (!parsed.ok()) return body;
    parsed->Set("elapsed_ms", 0);
    return parsed->Dump();
  }

  static bool WaitUntil(const std::function<bool()>& pred, int timeout_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  /// One randomized /query body. Roughly 1 in 10 is deliberately invalid
  /// (the shards' 400 must be forwarded verbatim and match the combined
  /// node's 400 byte for byte).
  static std::string RandomQueryBody(Rng* rng) {
    if (rng->Chance(0.05)) {
      return R"({"terms":["algebra"],"top_k":2,"rank":false})";  // 400
    }
    if (rng->Chance(0.05)) {
      return R"({"terms":["algebra"],"frobnicate":true})";  // 400
    }
    json::Value body = json::Value::Object();
    json::Value terms = json::Value::Array();
    size_t term_count = 1 + rng->Uniform(2);
    for (size_t t = 0; t < term_count; ++t) {
      terms.Append(std::string(Word(rng->Uniform(10))));
    }
    body.Set("terms", std::move(terms));
    if (rng->Chance(0.3)) {
      static const char* filters[] = {"size<=3", "height<=2", "size<=5"};
      body.Set("filter", std::string(filters[rng->Uniform(3)]));
    }
    if (rng->Chance(0.4)) {
      static const char* strategies[] = {"pushdown", "reduced", "naive"};
      body.Set("strategy", std::string(strategies[rng->Uniform(3)]));
    }
    switch (rng->Uniform(4)) {
      case 0:  // full mode
        break;
      case 1:
        body.Set("rank", true);
        break;
      case 2:
        body.Set("top_k", static_cast<int64_t>(1 + rng->Uniform(6)));
        break;
      case 3:
        body.Set("rank", true);
        body.Set("top_k", static_cast<int64_t>(1 + rng->Uniform(6)));
        break;
    }
    if (rng->Chance(0.2)) {
      body.Set("max_answers", static_cast<int64_t>(rng->Uniform(5)));
    }
    if (rng->Chance(0.15)) body.Set("explain", true);
    if (rng->Chance(0.1)) body.Set("xml", true);
    return body.Dump();
  }

  std::unique_ptr<collection::Collection> combined_;
  std::vector<std::unique_ptr<collection::Collection>> shard_collections_;
};

TEST_F(RouterIntegrationTest, RandomizedQueriesByteIdenticalToCombinedNode) {
  // This is the strict legacy contract: full bodies — including the work
  // "metrics" — must agree byte for byte. Bound exchange, cross-document
  // floor seeding, and document-class dedup legitimately change the work
  // counters (answers stay identical; tests/router/distributed_topk_test.cc
  // and RandomizedQueriesAnswersIdenticalWithDagCompression below prove
  // that), so all three are disabled here to keep the metric comparison
  // meaningful. Dedup in particular skips duplicate documents entirely on
  // the combined node, so their fixed-point caches run colder than the
  // shards' — visible in the metrics of EXPLAIN requests, which bypass
  // dedup.
  algebra::SetDagCompressionEnabled(false);
  struct SwitchRestore {
    ~SwitchRestore() { algebra::SetDagCompressionEnabled(true); }
  } restore;
  server::ServerOptions node_options;
  node_options.service.enable_cross_document_floor = false;
  auto combined_node = StartNode(*combined_, node_options);
  auto shards = StartShards(node_options);
  RouterOptions router_options = QuietRouterOptions();
  router_options.enable_bound_exchange = false;
  auto router = StartRouter(MapFor(shards), router_options);

  // Identical query sequences keep the per-document fixed-point caches on
  // both sides equally warm, so even the "metrics" object must agree.
  Rng rng(20260807);
  int compared = 0;
  for (int i = 0; i < 220; ++i) {
    std::string body = RandomQueryBody(&rng);
    auto from_combined = Post(combined_node->port(), body);
    auto from_router = Post(router->port(), body);
    ASSERT_TRUE(from_combined.ok()) << from_combined.status().ToString();
    ASSERT_TRUE(from_router.ok()) << from_router.status().ToString();
    ASSERT_EQ(from_router->status, from_combined->status) << body;
    EXPECT_EQ(Normalized(from_router->body), Normalized(from_combined->body))
        << "query " << i << ": " << body;
    ++compared;
  }
  EXPECT_GE(compared, 200);
  EXPECT_EQ(router->partials_served(), 0u);
  EXPECT_EQ(router->hedges_launched(), 0u);  // hedging disabled

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
  combined_node->Shutdown();
}

// DAG compression on (the default): this corpus has byte-identical document
// pairs (d10 == d00, d11 == d01) that the combined node deduplicates but the
// shards cannot (each shard holds one copy), so work metrics may drift on
// EXPLAIN requests — but every rendered answer must stay byte-identical.
TEST_F(RouterIntegrationTest, RandomizedQueriesAnswersIdenticalWithDagCompression) {
  server::ServerOptions node_options;
  node_options.service.enable_cross_document_floor = false;
  auto combined_node = StartNode(*combined_, node_options);
  auto shards = StartShards(node_options);
  RouterOptions router_options = QuietRouterOptions();
  router_options.enable_bound_exchange = false;
  auto router = StartRouter(MapFor(shards), router_options);

  // Work counters drift with dedup (the "metrics" object, and the physical
  // prefilter/top-k counts embedded in per-document EXPLAIN text, which
  // reflect fixed-point cache warmth); everything the answers are made of
  // must not.
  auto answers_only = [](const std::string& body) {
    auto parsed = json::Parse(body);
    EXPECT_TRUE(parsed.ok()) << body;
    if (!parsed.ok()) return body;
    parsed->Set("elapsed_ms", 0);
    parsed->Set("metrics", json::Value::Object());
    if (parsed->Find("explain") != nullptr) {
      parsed->Set("explain", json::Value::Array());
    }
    return parsed->Dump();
  };

  Rng rng(20260808);
  int compared = 0;
  for (int i = 0; i < 120; ++i) {
    std::string body = RandomQueryBody(&rng);
    auto from_combined = Post(combined_node->port(), body);
    auto from_router = Post(router->port(), body);
    ASSERT_TRUE(from_combined.ok()) << from_combined.status().ToString();
    ASSERT_TRUE(from_router.ok()) << from_router.status().ToString();
    ASSERT_EQ(from_router->status, from_combined->status) << body;
    EXPECT_EQ(answers_only(from_router->body),
              answers_only(from_combined->body))
        << "query " << i << ": " << body;
    ++compared;
  }
  EXPECT_GE(compared, 100);

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
  combined_node->Shutdown();
}

TEST_F(RouterIntegrationTest, ConcurrentClientsMatchPrecomputedResponses) {
  auto shards = StartShards();
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());

  // Warm every variant once, then capture the stable (warm-cache) response;
  // concurrent repeats must reproduce it exactly.
  std::vector<std::string> variants = {
      R"({"terms":["algebra","query"]})",
      R"({"terms":["fragment"],"strategy":"pushdown","filter":"size<=5"})",
      R"({"terms":["ranking"],"top_k":3})",
      R"({"terms":["xml","index"],"rank":true,"max_answers":2})",
  };
  std::vector<std::string> expected;
  for (const auto& body : variants) {
    ASSERT_TRUE(Post(router->port(), body).ok());
    auto stable = Post(router->port(), body);
    ASSERT_TRUE(stable.ok());
    ASSERT_EQ(stable->status, 200) << stable->body;
    expected.push_back(Normalized(stable->body));
  }

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        size_t v = static_cast<size_t>(c + r) % variants.size();
        auto response = Post(router->port(), variants[v]);
        if (!response.ok() || response->status != 200) {
          ++failures;
          continue;
        }
        if (Normalized(response->body) != expected[v]) ++mismatches;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
}

TEST_F(RouterIntegrationTest, KilledShardDegradesToPartialOr504) {
  auto shards = StartShards();
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());
  const std::string body = R"({"terms":["algebra"]})";

  auto before = Post(router->port(), body);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->status, 200);
  ASSERT_EQ(json::Parse(before->body)->Find("partial"), nullptr);

  shards[1]->Shutdown();  // kill the middle shard mid-run

  auto degraded = Post(router->port(), body);
  ASSERT_TRUE(degraded.ok());
  ASSERT_EQ(degraded->status, 200) << degraded->body;
  auto parsed = json::Parse(degraded->body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* partial = parsed->Find("partial");
  ASSERT_NE(partial, nullptr) << degraded->body;
  const json::Value* missing = partial->Find("missing_shards");
  ASSERT_NE(missing, nullptr);
  ASSERT_EQ(missing->size(), 1u);
  EXPECT_EQ((*missing)[0].AsInt(), 1);
  // The full corpus size is still reported; the answers must come only
  // from the surviving shards' document ranges.
  EXPECT_EQ(parsed->Find("documents")->AsInt(),
            static_cast<int64_t>(kTotalDocs));
  for (const json::Value& answer : parsed->Find("answers")->items()) {
    int64_t doc = answer.Find("document_index")->AsInt();
    EXPECT_TRUE(doc < 4 || doc >= 8) << "answer from the killed shard";
  }
  EXPECT_GE(router->partials_served(), 1u);

  // The same query under require_complete refuses the partial result.
  auto refused =
      Post(router->port(), R"({"terms":["algebra"],"require_complete":true})");
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status, 504) << refused->body;
  auto refused_body = json::Parse(refused->body);
  ASSERT_TRUE(refused_body.ok());
  ASSERT_NE(refused_body->Find("missing_shards"), nullptr);
  EXPECT_EQ((*refused_body->Find("missing_shards"))[0].AsInt(), 1);

  router->Shutdown();
  shards[0]->Shutdown();
  shards[2]->Shutdown();
}

TEST_F(RouterIntegrationTest, AllShardsDownYields504) {
  auto shards = StartShards();
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());
  for (auto& shard : shards) shard->Shutdown();

  auto response = Post(router->port(), R"({"terms":["algebra"]})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 504);
  auto parsed = json::Parse(response->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed->Find("error"), nullptr);
  EXPECT_EQ(parsed->Find("missing_shards")->size(), kShards);
  router->Shutdown();
}

TEST_F(RouterIntegrationTest, RouterRejectsMalformedRequests) {
  auto shards = StartShards();
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());

  auto bad_json = Post(router->port(), R"({"terms": )");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json->status, 400);
  auto parsed = json::Parse(bad_json->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed->Find("error"), nullptr);
  EXPECT_NE(parsed->Find("offset"), nullptr);

  auto bad_rc =
      Post(router->port(), R"({"terms":["a"],"require_complete":"yes"})");
  ASSERT_TRUE(bad_rc.ok());
  EXPECT_EQ(bad_rc->status, 400);

  auto wrong_method = Get(router->port(), "/query");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  auto unknown = Get(router->port(), "/nope");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 404);

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
}

TEST_F(RouterIntegrationTest, HedgeFiresOnStragglersAndStillCompletes) {
  server::ServerOptions shard_options;
  shard_options.service.enable_debug_sleep = true;
  auto shards = StartShards(shard_options);

  RouterOptions options;
  options.health_check_interval_ms = 0;
  options.hedge_default_delay_ms = 10;  // hedge well before the sleep ends
  auto router = StartRouter(MapFor(shards), options);

  auto response = Post(
      router->port(), R"({"terms":["algebra"],"debug_sleep_ms":200})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200) << response->body;
  EXPECT_GE(router->hedges_launched(), 1u);
  auto parsed = json::Parse(response->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("partial"), nullptr);  // slow, but complete

  auto metrics = Get(router->port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  auto metrics_body = json::Parse(metrics->body);
  ASSERT_TRUE(metrics_body.ok());
  EXPECT_GE(metrics_body->Find("router")
                ->Find("hedges")
                ->Find("launched")
                ->AsInt(),
            1);

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
}

TEST_F(RouterIntegrationTest, SlowShardsMissDeadlineButRouterNeverHangs) {
  server::ServerOptions shard_options;
  shard_options.service.enable_debug_sleep = true;
  auto shards = StartShards(shard_options);

  RouterOptions options = QuietRouterOptions();
  options.deadline_grace_ms = 20;
  auto router = StartRouter(MapFor(shards), options);

  // All shards sleep far past the request deadline: every leg times out, so
  // no shard resolves and the router must answer 504 promptly.
  auto start = std::chrono::steady_clock::now();
  auto response = Post(
      router->port(),
      R"({"terms":["algebra"],"debug_sleep_ms":3000,"deadline_ms":150})");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 504) << response->body;
  EXPECT_LT(elapsed, 2500) << "router waited past the deadline";

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
}

TEST_F(RouterIntegrationTest, HealthCheckerMarksShardsDownAndUp) {
  auto shards = StartShards();
  uint16_t port2 = shards[2]->port();

  RouterOptions options;
  options.enable_hedging = false;
  options.health_check_interval_ms = 25;
  options.health_check_timeout_ms = 250;
  options.backend.connect_timeout_ms = 250;
  auto router = StartRouter(MapFor(shards), options);

  ASSERT_TRUE(WaitUntil([&] { return router->HealthyShards() == kShards; },
                        5000));
  shards[2]->Shutdown();
  ASSERT_TRUE(WaitUntil(
      [&] { return router->HealthyShards() == kShards - 1; }, 5000));

  // Revive the shard on its old port (SO_REUSEADDR makes rebinding safe).
  server::ServerOptions revive;
  revive.port = port2;
  auto revived = StartNode(*shard_collections_[2], revive);
  ASSERT_TRUE(WaitUntil([&] { return router->HealthyShards() == kShards; },
                        5000));

  auto metrics = Get(router->port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  auto parsed = json::Parse(metrics->body);
  ASSERT_TRUE(parsed.ok());
  const json::Value* shard2 =
      &(*parsed->Find("router")->Find("shards"))[2];
  EXPECT_TRUE(shard2->Find("healthy")->AsBool());
  EXPECT_GE(shard2->Find("mark_downs")->AsInt(), 1);
  EXPECT_GE(shard2->Find("mark_ups")->AsInt(), 1);

  router->Shutdown();
  revived->Shutdown();
  shards[0]->Shutdown();
  shards[1]->Shutdown();
}

TEST_F(RouterIntegrationTest, ObservabilityEndpointsReportRouterShape) {
  auto shards = StartShards();
  auto router = StartRouter(MapFor(shards), QuietRouterOptions());
  ASSERT_TRUE(Post(router->port(), R"({"terms":["algebra"]})").ok());

  auto healthz = Get(router->port(), "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status, 200);
  auto health_body = json::Parse(healthz->body);
  ASSERT_TRUE(health_body.ok());
  EXPECT_EQ(health_body->Find("status")->AsString(), "ok");
  EXPECT_EQ(health_body->Find("shards")->AsInt(),
            static_cast<int64_t>(kShards));
  EXPECT_EQ(health_body->Find("documents")->AsInt(),
            static_cast<int64_t>(kTotalDocs));

  auto version = Get(router->port(), "/version");
  ASSERT_TRUE(version.ok());
  auto version_body = json::Parse(version->body);
  ASSERT_TRUE(version_body.ok());
  EXPECT_GE(version_body->Find("router_protocol_revision")->AsInt(), 1);

  auto metrics = Get(router->port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  auto metrics_body = json::Parse(metrics->body);
  ASSERT_TRUE(metrics_body.ok());
  const json::Value* router_section = metrics_body->Find("router");
  ASSERT_NE(router_section, nullptr);
  const json::Value* shard_list = router_section->Find("shards");
  ASSERT_NE(shard_list, nullptr);
  ASSERT_EQ(shard_list->size(), kShards);
  for (const json::Value& shard : shard_list->items()) {
    EXPECT_NE(shard.Find("endpoint"), nullptr);
    EXPECT_NE(shard.Find("pool"), nullptr);
    EXPECT_NE(shard.Find("latency_us"), nullptr);
    EXPECT_GE(shard.Find("requests")->AsInt(), 1);
  }

  router->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
}

}  // namespace
}  // namespace xfrag::router
