// Shared helpers for the test suites.

#ifndef XFRAG_TESTS_TESTUTIL_H_
#define XFRAG_TESTS_TESTUTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/fragment.h"
#include "algebra/fragment_set.h"
#include "common/rng.h"
#include "doc/document.h"

namespace xfrag::testutil {

/// Builds a document from a parent array; tags default to "n", texts empty.
inline doc::Document TreeFromParents(std::vector<doc::NodeId> parents) {
  std::vector<std::string> tags(parents.size(), "n");
  std::vector<std::string> texts(parents.size(), "");
  auto doc = doc::Document::FromParents(std::move(parents), std::move(tags),
                                        std::move(texts));
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

/// Builds a validated fragment; fails the test on invalid input.
inline algebra::Fragment Frag(const doc::Document& document,
                              std::vector<doc::NodeId> nodes) {
  auto fragment = algebra::Fragment::Create(document, std::move(nodes));
  EXPECT_TRUE(fragment.ok()) << fragment.status().ToString();
  return std::move(fragment).value();
}

/// Builds a set of single-node fragments.
inline algebra::FragmentSet Singles(std::vector<doc::NodeId> nodes) {
  algebra::FragmentSet out;
  for (doc::NodeId n : nodes) out.Insert(algebra::Fragment::Single(n));
  return out;
}

/// Random tree in *pre-order* numbering: node i attaches to one of the last
/// `window` nodes of the current rightmost path (which is exactly the set of
/// legal pre-order parents). window 1 ⇒ chain; larger windows ⇒ bushier,
/// shallower shapes.
inline doc::Document RandomTree(size_t n, size_t window, uint64_t seed) {
  Rng rng(seed);
  std::vector<doc::NodeId> parents{doc::kNoNode};
  std::vector<doc::NodeId> path{0};  // Rightmost path, root first.
  for (size_t i = 1; i < n; ++i) {
    size_t w = std::min(window, path.size());
    size_t index = path.size() - 1 - static_cast<size_t>(rng.Uniform(w));
    parents.push_back(path[index]);
    path.resize(index + 1);
    path.push_back(static_cast<doc::NodeId>(i));
  }
  return TreeFromParents(std::move(parents));
}

/// `count` distinct random single-node fragments of `document`.
inline algebra::FragmentSet RandomSingles(const doc::Document& document,
                                          size_t count, Rng* rng) {
  algebra::FragmentSet out;
  size_t guard = 0;
  while (out.size() < count && guard++ < count * 20) {
    out.Insert(algebra::Fragment::Single(
        static_cast<doc::NodeId>(rng->Uniform(document.size()))));
  }
  return out;
}

}  // namespace xfrag::testutil

#endif  // XFRAG_TESTS_TESTUTIL_H_
