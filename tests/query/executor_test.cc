// Direct executor coverage: each plan-node kind, pushed filters on scans,
// error propagation, and hand-built plans that differ from the engine's
// canonical shapes.

#include "query/executor.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "xml/parser.h"

namespace xfrag::query {
namespace {

using algebra::Fragment;
using algebra::FragmentSet;
namespace filters = algebra::filters;
using testutil::Frag;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dom = xml::Parse(
        "<r><a>x</a><b>x y<c>y</c></b><d>x y</d></r>");
    ASSERT_TRUE(dom.ok());
    auto d = doc::Document::FromDom(*dom);
    ASSERT_TRUE(d.ok());
    // Ids: r=0, a=1, b=2, c=3, d=4. x@{1,2,4}, y@{2,3,4}.
    document_ = std::make_unique<doc::Document>(std::move(d).value());
    text::IndexOptions options;
    options.index_tag_names = false;
    index_ = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*document_, options));
  }

  StatusOr<FragmentSet> Run(const PlanNode& plan) {
    return ExecutePlan(plan, *document_, *index_);
  }

  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<text::InvertedIndex> index_;
};

TEST_F(ExecutorTest, ScanReturnsPostingsAsSingles) {
  auto plan = MakeScan("x");
  auto result = Run(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->SetEquals(testutil::Singles({1, 2, 4})));
}

TEST_F(ExecutorTest, ScanOfUnknownTermIsEmpty) {
  auto plan = MakeScan("zzz");
  auto result = Run(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(ExecutorTest, ScanAppliesPushedFilter) {
  auto plan = MakeScan("x");
  plan->filter = filters::RootDepthAtLeast(1);  // Drops nothing here...
  auto all = Run(*plan);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  // ...but a tag filter does.
  plan->filter = filters::TagsWithin({"a", "b"});
  auto filtered = Run(*plan);
  ASSERT_TRUE(filtered.ok());
  EXPECT_TRUE(filtered->SetEquals(testutil::Singles({1, 2})));
}

TEST_F(ExecutorTest, SelectNode) {
  auto plan = MakeSelect(filters::SizeAtMost(1),
                         MakeFixedPoint(MakeScan("x"), /*reduced=*/false));
  auto result = Run(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->SetEquals(testutil::Singles({1, 2, 4})));
}

TEST_F(ExecutorTest, PairwiseJoinNode) {
  auto plan = MakePairwiseJoin(MakeScan("x"), MakeScan("y"));
  auto result = Run(*plan);
  ASSERT_TRUE(result.ok());
  // 3x3 combinations, deduplicated.
  EXPECT_TRUE(result->Contains(Frag(*document_, {2})));      // 2 ⋈ 2.
  EXPECT_TRUE(result->Contains(Frag(*document_, {2, 3})));   // 2 ⋈ 3.
  EXPECT_TRUE(result->Contains(Frag(*document_, {0, 1, 4})));  // 1 ⋈ 4.
  for (const Fragment& f : *result) {
    EXPECT_TRUE(algebra::Fragment::Create(*document_, f.nodes()).ok());
  }
}

TEST_F(ExecutorTest, PairwiseJoinNodeWithFilter) {
  auto plan = MakePairwiseJoin(MakeScan("x"), MakeScan("y"));
  plan->filter = filters::SizeAtMost(2);
  auto result = Run(*plan);
  ASSERT_TRUE(result.ok());
  for (const Fragment& f : *result) {
    EXPECT_LE(f.size(), 2u);
  }
  EXPECT_FALSE(result->Contains(Frag(*document_, {0, 1, 4})));
}

TEST_F(ExecutorTest, FixedPointVariantsAgree) {
  auto naive = MakeFixedPoint(MakeScan("y"), /*reduced=*/false);
  auto reduced = MakeFixedPoint(MakeScan("y"), /*reduced=*/true);
  auto naive_result = Run(*naive);
  auto reduced_result = Run(*reduced);
  ASSERT_TRUE(naive_result.ok());
  ASSERT_TRUE(reduced_result.ok());
  EXPECT_TRUE(naive_result->SetEquals(*reduced_result));
}

TEST_F(ExecutorTest, FixedPointWithFilterUsesFilteredClosure) {
  auto plan = MakeFixedPoint(MakeScan("x"), /*reduced=*/false);
  plan->filter = filters::SizeAtMost(1);
  auto result = Run(*plan);
  ASSERT_TRUE(result.ok());
  // Only the singles survive a size-1 closure.
  EXPECT_TRUE(result->SetEquals(testutil::Singles({1, 2, 4})));
}

TEST_F(ExecutorTest, PowersetNodeHonoursGuard) {
  auto plan = MakePowersetJoin(MakeScan("x"), MakeScan("y"));
  ExecutorOptions options;
  options.powerset.max_set_size = 2;  // x has 3 postings.
  auto result = ExecutePlan(*plan, *document_, *index_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ExecutorTest, ErrorPropagatesThroughParents) {
  // The guard failure below a Select must surface, not crash or be eaten.
  auto plan = MakeSelect(filters::True(),
                         MakePowersetJoin(MakeScan("x"), MakeScan("y")));
  ExecutorOptions options;
  options.powerset.max_set_size = 1;
  auto result = ExecutePlan(*plan, *document_, *index_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ExecutorTest, MetricsFlowThroughExecution) {
  auto plan = MakePairwiseJoin(MakeScan("x"), MakeScan("y"));
  algebra::OpMetrics metrics;
  auto result =
      ExecutePlan(*plan, *document_, *index_, ExecutorOptions{}, &metrics);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(metrics.fragment_joins, 9u);  // 3 × 3.
}

TEST_F(ExecutorTest, HandBuiltAsymmetricPlan) {
  // σ_{size<=3}( (x⁺ ⋈ y⁺) ⋈ scan(x) ) — a shape the engine never builds,
  // but the executor must evaluate mechanically.
  auto inner = MakePairwiseJoin(MakeFixedPoint(MakeScan("x"), true),
                                MakeFixedPoint(MakeScan("y"), true));
  auto plan = MakeSelect(filters::SizeAtMost(3),
                         MakePairwiseJoin(std::move(inner), MakeScan("x")));
  auto result = Run(*plan);
  ASSERT_TRUE(result.ok());
  for (const Fragment& f : *result) {
    EXPECT_LE(f.size(), 3u);
  }
  EXPECT_FALSE(result->empty());
}

}  // namespace
}  // namespace xfrag::query
