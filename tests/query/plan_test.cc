// Plan construction and the two rewrites: Theorem 2 (powerset → fixed
// points) and Theorem 3 (Figure 5's selection push-down).

#include "query/plan.h"

#include <gtest/gtest.h>

namespace xfrag::query {
namespace {

namespace filters = algebra::filters;

TEST(PlanBuildTest, TwoTermInitialPlanShape) {
  auto plan = BuildInitialPlan({"a", "b"}, filters::SizeAtMost(3));
  ASSERT_EQ(plan->kind, PlanNodeKind::kSelect);
  ASSERT_EQ(plan->children.size(), 1u);
  const PlanNode& join = *plan->children[0];
  EXPECT_EQ(join.kind, PlanNodeKind::kPowersetJoin);
  EXPECT_EQ(join.children[0]->kind, PlanNodeKind::kScanKeyword);
  EXPECT_EQ(join.children[0]->term, "a");
  EXPECT_EQ(join.children[1]->term, "b");
}

TEST(PlanBuildTest, SingleTermUsesFixedPoint) {
  auto plan = BuildInitialPlan({"solo"}, filters::True());
  ASSERT_EQ(plan->kind, PlanNodeKind::kSelect);
  EXPECT_EQ(plan->children[0]->kind, PlanNodeKind::kFixedPoint);
  EXPECT_EQ(plan->children[0]->children[0]->kind, PlanNodeKind::kScanKeyword);
}

TEST(PlanBuildTest, ThreeTermChain) {
  auto plan = BuildInitialPlan({"a", "b", "c"}, filters::True());
  // σ(((a ⋈* b) ⋈* c)).
  const PlanNode& outer = *plan->children[0];
  ASSERT_EQ(outer.kind, PlanNodeKind::kPowersetJoin);
  EXPECT_EQ(outer.children[1]->term, "c");
  const PlanNode& inner = *outer.children[0];
  ASSERT_EQ(inner.kind, PlanNodeKind::kPowersetJoin);
  EXPECT_EQ(inner.children[0]->term, "a");
  EXPECT_EQ(inner.children[1]->term, "b");
}

TEST(PlanRewriteTest, PowersetBecomesFixedPointsAndPairwiseJoin) {
  auto plan = BuildInitialPlan({"a", "b"}, filters::True());
  plan = RewritePowersetToFixedPoint(std::move(plan), /*reduced=*/true);
  const PlanNode& join = *plan->children[0];
  ASSERT_EQ(join.kind, PlanNodeKind::kPairwiseJoin);
  ASSERT_EQ(join.children[0]->kind, PlanNodeKind::kFixedPoint);
  EXPECT_TRUE(join.children[0]->fixed_point_reduced);
  ASSERT_EQ(join.children[1]->kind, PlanNodeKind::kFixedPoint);
  EXPECT_EQ(join.children[0]->children[0]->term, "a");
}

TEST(PlanRewriteTest, ChainedPowersetNeedsNoIntermediateClosure) {
  // ((F1 ⋈* F2) ⋈* F3) = F1⁺ ⋈ F2⁺ ⋈ F3⁺: the middle pairwise join is
  // already closed, so no fixed point is inserted above it (DESIGN.md).
  auto plan = BuildInitialPlan({"a", "b", "c"}, filters::True());
  plan = RewritePowersetToFixedPoint(std::move(plan), /*reduced=*/false);
  const PlanNode& outer = *plan->children[0];
  ASSERT_EQ(outer.kind, PlanNodeKind::kPairwiseJoin);
  EXPECT_EQ(outer.children[0]->kind, PlanNodeKind::kPairwiseJoin);
  EXPECT_EQ(outer.children[1]->kind, PlanNodeKind::kFixedPoint);
}

TEST(PlanRewriteTest, PushDownAttachesAntiMonotonicConjunct) {
  auto filter = filters::And(filters::SizeAtMost(3), filters::SizeAtLeast(2));
  auto plan = BuildInitialPlan({"a", "b"}, filter);
  plan = RewritePowersetToFixedPoint(std::move(plan), false);
  plan = PushDownSelection(std::move(plan));

  // Top select keeps only the residue.
  ASSERT_EQ(plan->kind, PlanNodeKind::kSelect);
  EXPECT_EQ(plan->filter->ToString(), "size>=2");

  const PlanNode& join = *plan->children[0];
  ASSERT_EQ(join.kind, PlanNodeKind::kPairwiseJoin);
  ASSERT_NE(join.filter, nullptr);
  EXPECT_EQ(join.filter->ToString(), "size<=3");
  for (const auto& child : join.children) {
    ASSERT_EQ(child->kind, PlanNodeKind::kFixedPoint);
    ASSERT_NE(child->filter, nullptr);
    EXPECT_EQ(child->filter->ToString(), "size<=3");
    // Scans also filtered (Figure 5's lowest σ level).
    ASSERT_NE(child->children[0]->filter, nullptr);
  }
}

TEST(PlanRewriteTest, NoPushDownWithoutAntiMonotonicConjunct) {
  auto plan = BuildInitialPlan({"a", "b"}, filters::SizeAtLeast(2));
  plan = RewritePowersetToFixedPoint(std::move(plan), false);
  plan = PushDownSelection(std::move(plan));
  EXPECT_EQ(plan->filter->ToString(), "size>=2");
  EXPECT_EQ(plan->children[0]->filter, nullptr);
}

TEST(PlanCloneTest, DeepCopyIsIndependent) {
  auto plan = BuildInitialPlan({"a", "b"}, filters::SizeAtMost(3));
  auto copy = plan->Clone();
  EXPECT_EQ(copy->ToString(), plan->ToString());
  copy = RewritePowersetToFixedPoint(std::move(copy), false);
  EXPECT_NE(copy->ToString(), plan->ToString());
  EXPECT_EQ(plan->children[0]->kind, PlanNodeKind::kPowersetJoin);
}

TEST(PlanToStringTest, AnnotatedRenderingAppendsSuffixes) {
  auto plan = BuildInitialPlan({"a", "b"}, filters::SizeAtMost(3));
  std::string annotated = plan->ToStringAnnotated([](const PlanNode& node) {
    return node.kind == PlanNodeKind::kScanKeyword
               ? "(rows=7)"
               : std::string();
  });
  EXPECT_NE(annotated.find("Scan[keyword=a] (rows=7)"), std::string::npos);
  EXPECT_NE(annotated.find("Scan[keyword=b] (rows=7)"), std::string::npos);
  // Non-scan lines carry no suffix.
  EXPECT_EQ(annotated.find("PowersetJoin (rows"), std::string::npos);
  // The un-annotated rendering is unchanged by the feature.
  EXPECT_EQ(plan->ToString().find("(rows"), std::string::npos);
}

TEST(PlanToStringTest, RendersTree) {
  auto plan = BuildInitialPlan({"a", "b"}, filters::SizeAtMost(3));
  std::string repr = plan->ToString();
  EXPECT_NE(repr.find("Select[size<=3]"), std::string::npos);
  EXPECT_NE(repr.find("PowersetJoin"), std::string::npos);
  EXPECT_NE(repr.find("Scan[keyword=a]"), std::string::npos);
  EXPECT_NE(repr.find("Scan[keyword=b]"), std::string::npos);
}

}  // namespace
}  // namespace xfrag::query
