// Ranking (§6 incorporation point): density beats sprawl, rare terms beat
// common ones, determinism, and the paper example's target ordering.

#include "query/ranking.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "gen/paper_document.h"
#include "query/engine.h"
#include "xml/parser.h"

namespace xfrag::query {
namespace {

using algebra::Fragment;
using algebra::FragmentSet;
using testutil::Frag;

struct RankFixture {
  std::unique_ptr<doc::Document> document;
  std::unique_ptr<text::InvertedIndex> index;

  static RankFixture FromXml(std::string_view xml_text) {
    RankFixture fixture;
    auto dom = xml::Parse(xml_text);
    EXPECT_TRUE(dom.ok());
    auto d = doc::Document::FromDom(*dom);
    EXPECT_TRUE(d.ok());
    fixture.document = std::make_unique<doc::Document>(std::move(d).value());
    text::IndexOptions options;
    options.index_tag_names = false;
    fixture.index = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*fixture.document, options));
    return fixture;
  }
};

TEST(RankingTest, DenseSmallFragmentOutranksPaddedSprawl) {
  // Node 1 carries both terms; the sprawling fragment has the *same*
  // keyword evidence plus padding nodes, so normalization must demote it.
  RankFixture f = RankFixture::FromXml(
      "<r><a>k1 k2</a><b>pad</b><c>pad</c><d>pad</d></r>");
  FragmentSet answers{Fragment::Single(1),
                      Frag(*f.document, {0, 1, 2, 3, 4})};
  auto ranked = RankAnswers(answers, {"k1", "k2"}, *f.document, *f.index);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].fragment, Fragment::Single(1));
  EXPECT_GT(ranked[0].score, ranked[1].score);
}

TEST(RankingTest, RareTermsWeighMore) {
  // 'rare' occurs once; 'common' occurs in four nodes. Fragments matching
  // only one term each: the rare match should score higher.
  RankFixture f = RankFixture::FromXml(
      "<r><a>rare</a><b>common</b><c>common</c><d>common</d>"
      "<e>common</e></r>");
  FragmentSet answers{Fragment::Single(1), Fragment::Single(2)};
  auto ranked =
      RankAnswers(answers, {"rare", "common"}, *f.document, *f.index);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].fragment, Fragment::Single(1));
}

TEST(RankingTest, MoreMatchingNodesScoreHigher) {
  RankFixture f = RankFixture::FromXml(
      "<r><a><b>k1</b><c>k1</c></a><d><e>k1</e><f>pad</f></d></r>");
  // Both fragments have 3 nodes; the first contains two k1 nodes.
  FragmentSet answers{Frag(*f.document, {1, 2, 3}),
                      Frag(*f.document, {4, 5, 6})};
  auto ranked = RankAnswers(answers, {"k1"}, *f.document, *f.index);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].fragment, Frag(*f.document, {1, 2, 3}));
}

TEST(RankingTest, SizePenaltyZeroDisablesNormalization) {
  RankFixture f = RankFixture::FromXml(
      "<r><a>k1</a><b><c>k1</c><d>k1</d></b></r>");
  FragmentSet answers{Fragment::Single(1), Frag(*f.document, {2, 3, 4})};
  RankingOptions no_penalty;
  no_penalty.size_penalty = 0.0;
  auto ranked =
      RankAnswers(answers, {"k1"}, *f.document, *f.index, no_penalty);
  // Without a size penalty, two matching nodes beat one.
  EXPECT_EQ(ranked[0].fragment, Frag(*f.document, {2, 3, 4}));
  // With the default penalty the compact single node wins or ties; either
  // way the ordering must flip or stay deterministic — assert the scores
  // are computed differently.
  auto penalized = RankAnswers(answers, {"k1"}, *f.document, *f.index);
  EXPECT_NE(ranked[0].score, penalized[0].score);
}

TEST(RankingTest, DeterministicTieBreaking) {
  RankFixture f = RankFixture::FromXml(
      "<r><a>k1</a><b>k1</b><c>k1</c></r>");
  FragmentSet answers{Fragment::Single(3), Fragment::Single(1),
                      Fragment::Single(2)};
  auto first = RankAnswers(answers, {"k1"}, *f.document, *f.index);
  auto second = RankAnswers(answers, {"k1"}, *f.document, *f.index);
  ASSERT_EQ(first.size(), 3u);
  // Equal scores: canonical fragment order.
  EXPECT_EQ(first[0].fragment, Fragment::Single(1));
  EXPECT_EQ(first[1].fragment, Fragment::Single(2));
  EXPECT_EQ(first[2].fragment, Fragment::Single(3));
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].fragment, second[i].fragment);
    EXPECT_EQ(first[i].score, second[i].score);
  }
}

TEST(RankingTest, EmptyAnswersYieldEmptyRanking) {
  RankFixture f = RankFixture::FromXml("<r>k1</r>");
  EXPECT_TRUE(
      RankAnswers(FragmentSet(), {"k1"}, *f.document, *f.index).empty());
}

TEST(RankingTest, PaperExampleTargetRanksAboveDistantJoins) {
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  QueryEngine engine(*document, index);
  Query q;
  q.terms = {"xquery", "optimization"};
  // No size filter: all 7 unique Table-1 fragments are answers.
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->answers.size(), 7u);
  auto ranked = RankAnswers(result->answers, q.terms, *document, index);
  // The self-contained target ⟨n16,n17,n18⟩ — the fragment the paper calls
  // "more intuitive and more appropriate" — must rank first: it has the
  // most keyword-dense compact evidence.
  Fragment target = Fragment::FromSortedUnchecked({16, 17, 18});
  EXPECT_EQ(ranked.front().fragment, target);
  // Every root-spanning distant join scores below the target, and the
  // bottom of the ranking is one of them (weak evidence spread over the
  // whole document path).
  for (const auto& answer : ranked) {
    if (answer.fragment.size() >= 8) {
      EXPECT_LT(answer.score, ranked.front().score);
    }
  }
  EXPECT_GE(ranked.back().fragment.size(), 8u);
}

}  // namespace
}  // namespace xfrag::query
