// End-to-end reproduction of the paper's Section 4 running example and
// Table 1 on the reconstructed Figure-1 document.

#include <gtest/gtest.h>

#include "../testutil.h"
#include "algebra/ops.h"
#include "gen/paper_document.h"
#include "query/engine.h"

namespace xfrag::query {
namespace {

using algebra::Fragment;
using algebra::FragmentSet;
using testutil::Frag;

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto document = gen::BuildPaperDocument();
    ASSERT_TRUE(document.ok()) << document.status().ToString();
    document_ = std::make_unique<doc::Document>(std::move(document).value());
    index_ = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*document_));
    engine_ = std::make_unique<QueryEngine>(*document_, *index_);
  }

  Query PaperQuery(uint32_t beta = 3) const {
    Query q;
    q.terms = {"xquery", "optimization"};
    q.filter = algebra::filters::SizeAtMost(beta);
    return q;
  }

  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(PaperExampleTest, BaseSelectionsMatchSection4) {
  // F1 = σ_{keyword=XQuery}(F) = {⟨n17⟩, ⟨n18⟩}
  EXPECT_EQ(index_->Lookup("xquery"), (std::vector<doc::NodeId>{17, 18}));
  // F2 = σ_{keyword=optimization}(F) = {⟨n16⟩, ⟨n17⟩, ⟨n81⟩}
  EXPECT_EQ(index_->Lookup("optimization"),
            (std::vector<doc::NodeId>{16, 17, 81}));
}

TEST_F(PaperExampleTest, Table1CandidateFragments) {
  // The 7 unique fragments of Table 1 (rows 1–7), produced by F1 ⋈* F2.
  const doc::Document& d = *document_;
  FragmentSet f1 = testutil::Singles({17, 18});
  FragmentSet f2 = testutil::Singles({16, 17, 81});
  auto result = algebra::PowersetJoinBruteForce(d, f1, f2);
  ASSERT_TRUE(result.ok());

  FragmentSet expected{
      Frag(d, {16, 17, 18}),                          // Row 1: f17 ⋈ f18.
      Frag(d, {16, 17}),                              // Row 2: f16 ⋈ f17.
      Frag(d, {16, 18}),                              // Row 3: f16 ⋈ f18.
      Fragment::Single(17),                           // Row 4: f17.
      Frag(d, {0, 1, 14, 16, 17, 79, 80, 81}),        // Row 5: f17 ⋈ f81.
      Frag(d, {0, 1, 14, 16, 18, 79, 80, 81}),        // Row 6: f18 ⋈ f81.
      Frag(d, {0, 1, 14, 16, 17, 18, 79, 80, 81}),    // Row 7: f17⋈f18⋈f81.
  };
  EXPECT_TRUE(result->SetEquals(expected))
      << "got " << result->ToString();
}

TEST_F(PaperExampleTest, Table1RowByRowJoins) {
  const doc::Document& d = *document_;
  auto single = [](doc::NodeId n) { return Fragment::Single(n); };
  // Row 1.
  EXPECT_EQ(algebra::Join(d, single(17), single(18)), Frag(d, {16, 17, 18}));
  // Row 2.
  EXPECT_EQ(algebra::Join(d, single(16), single(17)), Frag(d, {16, 17}));
  // Row 3.
  EXPECT_EQ(algebra::Join(d, single(16), single(18)), Frag(d, {16, 18}));
  // Row 5.
  EXPECT_EQ(algebra::Join(d, single(17), single(81)),
            Frag(d, {0, 1, 14, 16, 17, 79, 80, 81}));
  // Row 6.
  EXPECT_EQ(algebra::Join(d, single(18), single(81)),
            Frag(d, {0, 1, 14, 16, 18, 79, 80, 81}));
  // Row 7.
  EXPECT_EQ(
      algebra::Join(d, algebra::Join(d, single(17), single(18)), single(81)),
      Frag(d, {0, 1, 14, 16, 17, 18, 79, 80, 81}));
  // Row 8 duplicates row 1 (f16 ⋈ f17 ⋈ f18 absorbs f16).
  EXPECT_EQ(
      algebra::Join(d, algebra::Join(d, single(16), single(17)), single(18)),
      Frag(d, {16, 17, 18}));
  // §4.3: f16 ⋈ f81 — the join the push-down strategy prunes early.
  EXPECT_EQ(algebra::Join(d, single(16), single(81)),
            Frag(d, {0, 1, 14, 16, 79, 80, 81}));
}

TEST_F(PaperExampleTest, FinalAnswerUnderSizeFilter) {
  // With β = 3, exactly rows 1–4 survive; the target ⟨n16,n17,n18⟩ is
  // among them.
  const doc::Document& d = *document_;
  FragmentSet expected{
      Frag(d, {16, 17, 18}),
      Frag(d, {16, 17}),
      Frag(d, {16, 18}),
      Fragment::Single(17),
  };
  for (Strategy strategy :
       {Strategy::kBruteForce, Strategy::kFixedPointNaive,
        Strategy::kFixedPointReduced, Strategy::kPushDown}) {
    EvalOptions options;
    options.strategy = strategy;
    auto result = engine_->Evaluate(PaperQuery(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->answers.SetEquals(expected))
        << "strategy " << StrategyName(strategy) << ": "
        << result->answers.ToString();
  }
}

TEST_F(PaperExampleTest, SetReductionSection42) {
  // §4.2: ⊖(F2) = {f17, f81}; F1 is already reduced (cardinality 2).
  const doc::Document& d = *document_;
  FragmentSet f2 = testutil::Singles({16, 17, 81});
  FragmentSet reduced2 = algebra::Reduce(d, f2);
  EXPECT_TRUE(reduced2.SetEquals(testutil::Singles({17, 81})))
      << reduced2.ToString();
  FragmentSet f1 = testutil::Singles({17, 18});
  EXPECT_TRUE(algebra::Reduce(d, f1).SetEquals(f1));

  // F1⁺ = {f17, f18, f17 ⋈ f18}.
  FragmentSet fp1 = algebra::FixedPointReduced(d, f1);
  FragmentSet expected_fp1{Fragment::Single(17), Fragment::Single(18),
                           Frag(d, {16, 17, 18})};
  EXPECT_TRUE(fp1.SetEquals(expected_fp1)) << fp1.ToString();

  // F2⁺ = {f16, f17, f81, f16⋈f17, f16⋈f81, f17⋈f81} (f16⋈f17⋈f81 coincides
  // with f16 ⋈ f81 ∪ ... — six distinct fragments in total).
  FragmentSet fp2 = algebra::FixedPointReduced(d, f2);
  FragmentSet expected_fp2{
      Fragment::Single(16),
      Fragment::Single(17),
      Fragment::Single(81),
      Frag(d, {16, 17}),
      Frag(d, {0, 1, 14, 16, 79, 80, 81}),
      Frag(d, {0, 1, 14, 16, 17, 79, 80, 81}),
  };
  EXPECT_TRUE(fp2.SetEquals(expected_fp2)) << fp2.ToString();

  // Theorem 2 on the running example: F1⁺ ⋈ F2⁺ = F1 ⋈* F2.
  auto brute = algebra::PowersetJoinBruteForce(d, f1, f2);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(algebra::PairwiseJoin(d, fp1, fp2).SetEquals(*brute));
}

TEST_F(PaperExampleTest, PushDownPrunesTheF16F81Join) {
  // §4.3: with size ≤ 3 pushed down, the expensive joins through n0 (rows
  // 5–7, 9–11 of Table 1) are never materialized into the join inputs —
  // the pushed-down run performs strictly fewer joins than the late-filter
  // run and rejects fragments eagerly.
  EvalOptions pushed;
  pushed.strategy = Strategy::kPushDown;
  auto with_push = engine_->Evaluate(PaperQuery(), pushed);
  ASSERT_TRUE(with_push.ok());

  EvalOptions late;
  late.strategy = Strategy::kFixedPointNaive;
  auto without_push = engine_->Evaluate(PaperQuery(), late);
  ASSERT_TRUE(without_push.ok());

  EXPECT_TRUE(with_push->answers.SetEquals(without_push->answers));
  EXPECT_LT(with_push->metrics.fragment_joins,
            without_push->metrics.fragment_joins);
  EXPECT_GT(with_push->metrics.filter_rejections, 0u);
}

TEST_F(PaperExampleTest, LeafStrictModeIsSubsetOfAlgebraic) {
  EvalOptions algebraic;
  algebraic.strategy = Strategy::kFixedPointNaive;
  auto a = engine_->Evaluate(PaperQuery(), algebraic);
  ASSERT_TRUE(a.ok());

  EvalOptions strict = algebraic;
  strict.answer_mode = AnswerMode::kLeafStrict;
  auto s = engine_->Evaluate(PaperQuery(), strict);
  ASSERT_TRUE(s.ok());

  for (const Fragment& f : s->answers) {
    EXPECT_TRUE(a->answers.Contains(f));
  }
  // Row 3, ⟨n16,n18⟩, violates Definition 8's leaf condition: its only leaf
  // n18 lacks 'optimization'. Row 4, ⟨n17⟩, satisfies it (n17 has both).
  EXPECT_FALSE(s->answers.Contains(Frag(*document_, {16, 18})));
  EXPECT_TRUE(s->answers.Contains(Fragment::Single(17)));
  EXPECT_TRUE(s->answers.Contains(Frag(*document_, {16, 17, 18})));
}

TEST_F(PaperExampleTest, ExplainDescribesStrategy) {
  EvalOptions options;
  options.strategy = Strategy::kPushDown;
  auto result = engine_->Evaluate(PaperQuery(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->explain.find("push-down"), std::string::npos);
  EXPECT_NE(result->explain.find("Scan[keyword=xquery]"), std::string::npos);
  EXPECT_EQ(result->strategy_used, Strategy::kPushDown);
}

}  // namespace
}  // namespace xfrag::query
