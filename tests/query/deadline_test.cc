// Per-request deadlines through the whole evaluation stack: a tripped
// CancelToken turns Evaluate into kDeadlineExceeded, partial metrics still
// flow through EvalOptions::metrics_sink, partial fixed points never reach
// the cross-query cache, and the unbounded powerset enumeration honours
// cancellation mid-flight.

#include <gtest/gtest.h>

#include <memory>

#include "algebra/ops.h"
#include "common/cancel.h"
#include "gen/paper_document.h"
#include "query/engine.h"
#include "query/fixed_point_cache.h"
#include "text/inverted_index.h"

namespace xfrag::query {
namespace {

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto document = gen::BuildPaperDocument();
    ASSERT_TRUE(document.ok());
    document_ = std::make_unique<doc::Document>(std::move(document).value());
    index_ = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*document_));
    engine_ = std::make_unique<QueryEngine>(*document_, *index_);
  }

  Query PaperQuery() const {
    Query q;
    q.terms = {"xquery", "optimization"};
    q.filter = algebra::filters::SizeAtMost(3);
    return q;
  }

  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(DeadlineTest, TrippedTokenFailsEvaluate) {
  for (Strategy strategy :
       {Strategy::kBruteForce, Strategy::kFixedPointNaive,
        Strategy::kFixedPointReduced, Strategy::kPushDown}) {
    CancelToken cancel;
    cancel.Cancel();
    EvalOptions options;
    options.strategy = strategy;
    options.executor.cancel = &cancel;
    auto result = engine_->Evaluate(PaperQuery(), options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << result.status().ToString();
  }
}

TEST_F(DeadlineTest, UntrippedTokenChangesNothing) {
  CancelToken cancel;  // armed with no deadline: never trips
  EvalOptions with_token;
  with_token.executor.cancel = &cancel;
  auto guarded = engine_->Evaluate(PaperQuery(), with_token);
  auto plain = engine_->Evaluate(PaperQuery());
  ASSERT_TRUE(guarded.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(guarded->answers.SetEquals(plain->answers));
  EXPECT_TRUE(guarded->metrics == plain->metrics);
}

TEST_F(DeadlineTest, MetricsSinkReceivesMetricsOnFailure) {
  CancelToken cancel;
  cancel.Cancel();
  algebra::OpMetrics sink;
  sink.fragment_joins = 999;  // must be overwritten, not merged
  EvalOptions options;
  options.executor.cancel = &cancel;
  options.metrics_sink = &sink;
  auto result = engine_->Evaluate(PaperQuery(), options);
  ASSERT_FALSE(result.ok());
  // A token tripped before the first plan node means zero work was done —
  // and the sink must say so rather than keep its previous contents.
  EXPECT_EQ(sink.fragment_joins, 0u);
}

TEST_F(DeadlineTest, MetricsSinkMatchesResultOnSuccess) {
  algebra::OpMetrics sink;
  EvalOptions options;
  options.metrics_sink = &sink;
  auto result = engine_->Evaluate(PaperQuery(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(sink == result->metrics);
  EXPECT_GT(sink.fragment_joins, 0u);
}

TEST_F(DeadlineTest, CancelledRunsNeverPolluteTheCache) {
  FixedPointCache cache;
  CancelToken cancel;
  cancel.Cancel();
  EvalOptions options;
  options.strategy = Strategy::kFixedPointReduced;
  options.executor.fixed_point_cache = &cache;
  options.executor.cancel = &cancel;
  auto result = engine_->Evaluate(PaperQuery(), options);
  ASSERT_FALSE(result.ok());
  // The cancelled run computed (at most) partial closures; none may be
  // published where a later query would read them as complete.
  EXPECT_EQ(cache.size(), 0u);

  // A subsequent un-cancelled run through the same cache must match a run
  // with no cache at all.
  EvalOptions clean;
  clean.strategy = Strategy::kFixedPointReduced;
  clean.executor.fixed_point_cache = &cache;
  auto warm = engine_->Evaluate(PaperQuery(), clean);
  auto reference = engine_->Evaluate(PaperQuery());
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(warm->answers.SetEquals(reference->answers));
  EXPECT_GT(cache.size(), 0u);
}

algebra::FragmentSet ScanTerm(const text::InvertedIndex& index,
                              const std::string& term) {
  algebra::FragmentSet out;
  for (doc::NodeId n : index.Lookup(term)) {
    out.Insert(algebra::Fragment::Single(n));
  }
  return out;
}

TEST(PowersetDeadlineTest, BruteForceJoinHonoursCancellation) {
  // Build operands directly so the kernel (not the executor) is under test.
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  algebra::FragmentSet f1 = ScanTerm(index, "xquery");
  algebra::FragmentSet f2 = ScanTerm(index, "optimization");
  ASSERT_FALSE(f1.empty());
  ASSERT_FALSE(f2.empty());

  CancelToken cancel;
  cancel.Cancel();
  algebra::PowersetJoinOptions options;
  options.cancel = &cancel;
  algebra::OpMetrics metrics;
  auto joined =
      algebra::PowersetJoinBruteForce(*document, f1, f2, options, &metrics);
  ASSERT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kDeadlineExceeded);

  // The same call without the token succeeds.
  algebra::PowersetJoinOptions unbounded;
  auto full =
      algebra::PowersetJoinBruteForce(*document, f1, f2, unbounded, &metrics);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->empty());
}

TEST(PowersetDeadlineTest, FixedPointKernelsReturnPartialSetOnCancel) {
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  algebra::FragmentSet seed = ScanTerm(index, "xquery");
  ASSERT_FALSE(seed.empty());

  CancelToken cancel;
  cancel.Cancel();
  algebra::OpMetrics metrics;
  algebra::FragmentSet partial =
      algebra::FixedPointNaive(*document, seed, &metrics, &cancel);
  // A pre-tripped token stops before the first iteration: the kernel hands
  // back (a subset of) the closure rather than looping to convergence.
  algebra::FragmentSet full = algebra::FixedPointNaive(*document, seed);
  EXPECT_LE(partial.size(), full.size());
}

}  // namespace
}  // namespace xfrag::query
