// Optimizer: reduction-factor computation/estimation and strategy choice
// (the paper's §5 sketch).

#include "query/optimizer.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "gen/corpus.h"
#include "query/engine.h"

namespace xfrag::query {
namespace {

using algebra::Fragment;
using algebra::FragmentSet;
using testutil::TreeFromParents;

doc::Document Fig4Tree() {
  return TreeFromParents({doc::kNoNode, 0, 0, 2, 3, 3, 2, 6});
}

TEST(ReductionFactorTest, Figure4SetReducesByTwoFifths) {
  doc::Document d = Fig4Tree();
  FragmentSet f = testutil::Singles({1, 3, 5, 6, 7});
  // |F| = 5, |⊖(F)| = 3 ⇒ RF = (5 − 3) / 5 = 0.4.
  EXPECT_DOUBLE_EQ(ReductionFactor(d, f), 0.4);
}

TEST(ReductionFactorTest, DegenerateSets) {
  doc::Document d = Fig4Tree();
  EXPECT_DOUBLE_EQ(ReductionFactor(d, FragmentSet()), 0.0);
  EXPECT_DOUBLE_EQ(ReductionFactor(d, testutil::Singles({4})), 0.0);
  EXPECT_DOUBLE_EQ(ReductionFactor(d, testutil::Singles({4, 5})), 0.0);
}

TEST(ReductionFactorTest, ScatteredSiblingsDoNotReduce) {
  // Leaves of a star tree: no join of two subsumes a third (all joins pass
  // only through the root).
  std::vector<doc::NodeId> parents{doc::kNoNode, 0, 0, 0, 0, 0};
  doc::Document d = TreeFromParents(std::move(parents));
  FragmentSet f = testutil::Singles({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(ReductionFactor(d, f), 0.0);
}

TEST(ReductionFactorTest, ChainInteriorFullyReduces) {
  // On a chain 0-1-2-...-9, nodes {2,...,7} ⊆ 1 ⋈ 8, so only the extremes
  // survive: RF = (k − 2) / k.
  std::vector<doc::NodeId> parents{doc::kNoNode};
  for (doc::NodeId i = 1; i < 10; ++i) parents.push_back(i - 1);
  doc::Document d = TreeFromParents(std::move(parents));
  FragmentSet f = testutil::Singles({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_DOUBLE_EQ(ReductionFactor(d, f), 6.0 / 8.0);
}

TEST(EstimateReductionFactorTest, ExactWhenSampleCoversSet) {
  doc::Document d = Fig4Tree();
  FragmentSet f = testutil::Singles({1, 3, 5, 6, 7});
  EXPECT_DOUBLE_EQ(EstimateReductionFactor(d, f, 10, 1), 0.4);
}

TEST(EstimateReductionFactorTest, SampledEstimateTracksClusteredCorpora) {
  // Clustered keyword placement should estimate a high RF; scattered
  // placement a low one.
  gen::CorpusProfile profile;
  profile.target_nodes = 400;
  profile.seed = 5;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(6);
  auto clustered = gen::PlantKeyword(&raw, "clusterkw", 40,
                                     gen::PlantMode::kClustered, &rng);
  auto scattered = gen::PlantKeyword(&raw, "scatterkw", 40,
                                     gen::PlantMode::kScattered, &rng);
  ASSERT_GE(clustered.size(), 10u);
  ASSERT_GE(scattered.size(), 10u);
  auto document = gen::Materialize(raw);
  ASSERT_TRUE(document.ok());

  FragmentSet clustered_set, scattered_set;
  for (doc::NodeId n : clustered) clustered_set.Insert(Fragment::Single(n));
  for (doc::NodeId n : scattered) scattered_set.Insert(Fragment::Single(n));
  double rf_clustered = EstimateReductionFactor(*document, clustered_set, 12, 9);
  double rf_scattered = EstimateReductionFactor(*document, scattered_set, 12, 9);
  EXPECT_GT(rf_clustered, rf_scattered);
}

class ChooseStrategyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gen::CorpusProfile profile;
    profile.target_nodes = 300;
    profile.seed = 11;
    raw_ = gen::GenerateRaw(profile);
    Rng rng(12);
    gen::PlantKeyword(&raw_, "clusterkw", 30, gen::PlantMode::kClustered,
                      &rng);
    gen::PlantKeyword(&raw_, "scatterkw", 30, gen::PlantMode::kScattered,
                      &rng);
    gen::PlantKeyword(&raw_, "rarekw", 2, gen::PlantMode::kScattered, &rng);
    gen::PlantKeyword(&raw_, "midkw", 5, gen::PlantMode::kScattered, &rng);
    auto document = gen::Materialize(raw_);
    ASSERT_TRUE(document.ok());
    document_ = std::make_unique<doc::Document>(std::move(document).value());
    index_ = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*document_));
  }

  gen::RawCorpus raw_;
  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<text::InvertedIndex> index_;
};

TEST_F(ChooseStrategyTest, AntiMonotonicFilterTriggersPushDown) {
  Query q;
  q.terms = {"clusterkw", "scatterkw"};
  q.filter = algebra::filters::SizeAtMost(4);
  PlanDecision decision = ChooseStrategy(q, *document_, *index_);
  EXPECT_EQ(decision.strategy, Strategy::kPushDown);
  EXPECT_NE(decision.rationale.find("Theorem 3"), std::string::npos);
  EXPECT_EQ(decision.anti_monotonic->ToString(), "size<=4");
}

TEST_F(ChooseStrategyTest, MixedFilterStillPushesAntiPart) {
  Query q;
  q.terms = {"clusterkw"};
  q.filter = algebra::filters::And(algebra::filters::SizeAtMost(4),
                                   algebra::filters::SizeAtLeast(2));
  PlanDecision decision = ChooseStrategy(q, *document_, *index_);
  EXPECT_EQ(decision.strategy, Strategy::kPushDown);
  EXPECT_EQ(decision.residue->ToString(), "size>=2");
}

TEST_F(ChooseStrategyTest, TinyBaseSetsChooseBruteForce) {
  Query q;
  q.terms = {"rarekw"};
  PlanDecision decision = ChooseStrategy(q, *document_, *index_);
  EXPECT_EQ(decision.strategy, Strategy::kBruteForce);
}

TEST_F(ChooseStrategyTest, HighRfChoosesReducedFixedPoint) {
  Query q;
  q.terms = {"clusterkw"};
  OptimizerOptions options;
  options.rf_threshold = 0.2;
  PlanDecision decision = ChooseStrategy(q, *document_, *index_, options);
  EXPECT_EQ(decision.strategy, Strategy::kFixedPointReduced)
      << decision.rationale;
  ASSERT_FALSE(decision.estimated_rf.empty());
  EXPECT_GE(decision.estimated_rf[0], options.rf_threshold);
}

TEST_F(ChooseStrategyTest, LowRfChoosesNaiveFixedPoint) {
  Query q;
  q.terms = {"scatterkw"};
  OptimizerOptions options;
  options.rf_threshold = 0.9;  // Force the threshold above the estimate.
  PlanDecision decision = ChooseStrategy(q, *document_, *index_, options);
  EXPECT_EQ(decision.strategy, Strategy::kFixedPointNaive)
      << decision.rationale;
}

TEST_F(ChooseStrategyTest, AutoStrategyProducesSameAnswersAsExplicit) {
  QueryEngine engine(*document_, *index_);
  Query q;
  // Small posting lists: the explicit reference strategy runs an
  // *unfiltered* naive fixed point, which is exponential in |Fi|.
  q.terms = {"midkw", "rarekw"};
  q.filter = algebra::filters::SizeAtMost(6);

  EvalOptions automatic;  // Defaults to kAuto.
  auto auto_result = engine.Evaluate(q, automatic);
  ASSERT_TRUE(auto_result.ok()) << auto_result.status().ToString();
  EXPECT_NE(auto_result->strategy_used, Strategy::kAuto);

  EvalOptions manual;
  manual.strategy = Strategy::kFixedPointNaive;
  auto manual_result = engine.Evaluate(q, manual);
  ASSERT_TRUE(manual_result.ok());
  EXPECT_TRUE(auto_result->answers.SetEquals(manual_result->answers));
}

TEST(StrategyNameTest, AllNamesStable) {
  EXPECT_EQ(StrategyName(Strategy::kBruteForce), "brute-force");
  EXPECT_EQ(StrategyName(Strategy::kFixedPointNaive), "fixed-point-naive");
  EXPECT_EQ(StrategyName(Strategy::kFixedPointReduced),
            "fixed-point-reduced");
  EXPECT_EQ(StrategyName(Strategy::kPushDown), "push-down");
  EXPECT_EQ(StrategyName(Strategy::kAuto), "auto");
}

}  // namespace
}  // namespace xfrag::query
