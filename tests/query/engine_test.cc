// QueryEngine behaviour beyond the paper example: error handling, missing
// terms, single/multi-term queries, answer-mode semantics, metrics.

#include "query/engine.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "xml/parser.h"

namespace xfrag::query {
namespace {

using algebra::Fragment;
using testutil::Frag;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dom = xml::Parse(R"(
      <book>
        <chapter>alpha
          <section>beta gamma
            <par>alpha delta</par>
            <par>beta</par>
          </section>
          <section>delta
            <par>gamma</par>
          </section>
        </chapter>
        <chapter>epsilon
          <par>alpha epsilon</par>
        </chapter>
      </book>)");
    ASSERT_TRUE(dom.ok()) << dom.status().ToString();
    auto d = doc::Document::FromDom(*dom);
    ASSERT_TRUE(d.ok());
    document_ = std::make_unique<doc::Document>(std::move(d).value());
    // Node ids (pre-order): book=0, chapter=1, section=2, par=3, par=4,
    // section=5, par=6, chapter=7, par=8.
    text::IndexOptions options;
    options.index_tag_names = false;
    index_ = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*document_, options));
    engine_ = std::make_unique<QueryEngine>(*document_, *index_);
  }

  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(EngineTest, EmptyQueryRejected) {
  Query q;
  auto result = engine_->Evaluate(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, UnknownTermYieldsEmptyAnswer) {
  Query q;
  q.terms = {"alpha", "nonexistent"};
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->answers.empty());
}

TEST_F(EngineTest, SingleTermQueryReturnsFixedPointOfPostings) {
  Query q;
  q.terms = {"gamma"};  // Nodes 2 and 6.
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok());
  // F⁺ of {⟨2⟩, ⟨6⟩}: both singles plus their join ⟨1,2,5,6⟩.
  EXPECT_EQ(result->answers.size(), 3u);
  EXPECT_TRUE(result->answers.Contains(Fragment::Single(2)));
  EXPECT_TRUE(result->answers.Contains(Fragment::Single(6)));
  EXPECT_TRUE(result->answers.Contains(Frag(*document_, {1, 2, 5, 6})));
}

TEST_F(EngineTest, TermsAreCaseFolded) {
  Query q;
  q.terms = {"ALPHA", "Beta"};
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answers.empty());
}

TEST_F(EngineTest, ThreeTermQueryAllStrategiesAgree) {
  Query q;
  q.terms = {"alpha", "beta", "gamma"};
  q.filter = algebra::filters::SizeAtMost(4);
  algebra::FragmentSet reference;
  bool first = true;
  for (Strategy strategy :
       {Strategy::kBruteForce, Strategy::kFixedPointNaive,
        Strategy::kFixedPointReduced, Strategy::kPushDown}) {
    EvalOptions options;
    options.strategy = strategy;
    auto result = engine_->Evaluate(q, options);
    ASSERT_TRUE(result.ok())
        << StrategyName(strategy) << ": " << result.status().ToString();
    if (first) {
      reference = result->answers;
      first = false;
    } else {
      EXPECT_TRUE(result->answers.SetEquals(reference))
          << StrategyName(strategy);
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST_F(EngineTest, EveryAnswerContainsAllTerms) {
  Query q;
  q.terms = {"alpha", "delta"};
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->answers.empty());
  for (const Fragment& f : result->answers) {
    for (const auto& term : q.terms) {
      bool found = false;
      for (doc::NodeId n : f.nodes()) {
        if (index_->Contains(term, n)) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << term << " missing from " << f.ToString();
    }
  }
}

TEST_F(EngineTest, AnswersAreValidFragments) {
  Query q;
  q.terms = {"alpha", "epsilon"};
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok());
  for (const Fragment& f : result->answers) {
    EXPECT_TRUE(algebra::Fragment::Create(*document_, f.nodes()).ok());
  }
}

TEST_F(EngineTest, LeafStrictFiltersInternalOnlyWitnesses) {
  Query q;
  q.terms = {"beta", "delta"};  // beta: 2, 4; delta: 3, 5.
  EvalOptions strict;
  strict.answer_mode = AnswerMode::kLeafStrict;
  strict.strategy = Strategy::kFixedPointNaive;
  auto result = engine_->Evaluate(q, strict);
  ASSERT_TRUE(result.ok());
  for (const Fragment& f : result->answers) {
    auto leaves = algebra::FragmentLeaves(f, *document_);
    for (const auto& term : q.terms) {
      bool on_leaf = false;
      for (doc::NodeId leaf : leaves) {
        if (index_->Contains(term, leaf)) on_leaf = true;
      }
      EXPECT_TRUE(on_leaf) << term << " not on a leaf of " << f.ToString();
    }
  }
}

TEST_F(EngineTest, BruteForceGuardSurfacesResourceExhausted) {
  Query q;
  q.terms = {"alpha", "beta"};
  EvalOptions options;
  options.strategy = Strategy::kBruteForce;
  options.executor.powerset.max_set_size = 1;  // alpha has 3 postings.
  auto result = engine_->Evaluate(q, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EngineTest, MetricsAccumulate) {
  Query q;
  q.terms = {"alpha", "beta"};
  q.filter = algebra::filters::SizeAtMost(3);
  EvalOptions options;
  options.strategy = Strategy::kPushDown;
  auto result = engine_->Evaluate(q, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.fragment_joins, 0u);
  EXPECT_GT(result->metrics.filter_evals, 0u);
  EXPECT_GE(result->elapsed_ms, 0.0);
}

TEST_F(EngineTest, ExplainAnalyzeReportsCardinalities) {
  Query q;
  q.terms = {"alpha", "beta"};
  q.filter = algebra::filters::SizeAtMost(3);
  EvalOptions options;
  options.strategy = Strategy::kPushDown;
  options.analyze = true;
  auto result = engine_->Evaluate(q, options);
  ASSERT_TRUE(result.ok());
  // Every line of the plan rendering carries a rows= annotation.
  EXPECT_NE(result->explain.find("Scan[keyword=alpha]"), std::string::npos);
  EXPECT_NE(result->explain.find("(rows="), std::string::npos);
  // The scans' cardinalities equal the filtered posting counts (alpha has
  // 3 postings, all size-1 so none filtered).
  EXPECT_NE(result->explain.find("Scan[keyword=alpha][push=size<=3] (rows=3)"),
            std::string::npos)
      << result->explain;
  // Without analyze, no annotations.
  options.analyze = false;
  auto plain = engine_->Evaluate(q, options);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->explain.find("(rows="), std::string::npos);
}

TEST_F(EngineTest, BuildPlanRejectsAuto) {
  Query q;
  q.terms = {"alpha"};
  EXPECT_FALSE(engine_->BuildPlan(q, Strategy::kAuto).ok());
}

TEST_F(EngineTest, SingleNodeDocument) {
  auto d = doc::Document::FromParents({doc::kNoNode}, {"root"},
                                      {"alpha beta"});
  ASSERT_TRUE(d.ok());
  auto index = text::InvertedIndex::Build(*d);
  QueryEngine engine(*d, index);
  Query q;
  q.terms = {"alpha", "beta"};
  for (Strategy strategy :
       {Strategy::kBruteForce, Strategy::kFixedPointNaive,
        Strategy::kPushDown}) {
    EvalOptions options;
    options.strategy = strategy;
    auto result = engine.Evaluate(q, options);
    ASSERT_TRUE(result.ok()) << StrategyName(strategy);
    ASSERT_EQ(result->answers.size(), 1u);
    EXPECT_EQ(result->answers[0], Fragment::Single(0));
  }
}

TEST_F(EngineTest, UbiquitousTermWithTightFilter) {
  // A term present in every node: the filtered closure must stay bounded
  // and every answer respects the filter.
  // Chain of 40 nodes, every node contains 'common', the root also
  // contains 'special'.
  std::vector<doc::NodeId> parents{doc::kNoNode};
  std::vector<std::string> tags{"n"}, texts{"common special"};
  for (doc::NodeId i = 1; i < 40; ++i) {
    parents.push_back(i - 1);
    tags.push_back("n");
    texts.push_back("common");
  }
  auto d = doc::Document::FromParents(parents, tags, texts);
  ASSERT_TRUE(d.ok());
  auto index = text::InvertedIndex::Build(*d);
  ASSERT_EQ(index.Lookup("common").size(), 40u);
  QueryEngine engine(*d, index);
  Query q;
  q.terms = {"common", "special"};
  q.filter = algebra::filters::SizeAtMost(2);
  EvalOptions options;
  options.strategy = Strategy::kPushDown;
  auto result = engine.Evaluate(q, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 'special' only at the root (node 0); answers: ⟨0⟩ and ⟨0,1⟩.
  EXPECT_EQ(result->answers.size(), 2u);
  for (const Fragment& f : result->answers) {
    EXPECT_LE(f.size(), 2u);
    EXPECT_TRUE(f.ContainsNode(0));
  }
}

TEST_F(EngineTest, WholeDocumentAsAnswer) {
  // Keywords at the extreme leaves force the root-spanning fragment.
  auto dom = xml::Parse("<r><a><b>left</b></a><c><d>right</d></c></r>");
  ASSERT_TRUE(dom.ok());
  auto d = doc::Document::FromDom(*dom);
  ASSERT_TRUE(d.ok());
  text::IndexOptions idx_options;
  idx_options.index_tag_names = false;
  auto index = text::InvertedIndex::Build(*d, idx_options);
  QueryEngine engine(*d, index);
  Query q;
  q.terms = {"left", "right"};
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0].size(), 5u);  // The whole document.
}

TEST_F(EngineTest, DuplicateTermBehavesLikeSelfJoin) {
  Query q;
  q.terms = {"gamma", "gamma"};
  auto result = engine_->Evaluate(q);
  ASSERT_TRUE(result.ok());
  // F ⋈* F over gamma's postings {2, 6} = F⁺.
  EXPECT_EQ(result->answers.size(), 3u);
}

}  // namespace
}  // namespace xfrag::query
