// Cross-query fixed-point memoization: hits skip the closure computation
// entirely, keys distinguish filters and variants, and cached answers are
// identical to cold ones.

#include "query/fixed_point_cache.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "gen/paper_document.h"
#include "query/engine.h"

namespace xfrag::query {
namespace {

class FixedPointCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto document = gen::BuildPaperDocument();
    ASSERT_TRUE(document.ok());
    document_ = std::make_unique<doc::Document>(std::move(document).value());
    index_ = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*document_));
    engine_ = std::make_unique<QueryEngine>(*document_, *index_);
  }

  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(FixedPointCacheTest, SecondEvaluationSkipsJoins) {
  FixedPointCache cache;
  Query q;
  q.terms = {"xquery", "optimization"};
  q.filter = algebra::filters::SizeAtMost(3);
  EvalOptions options;
  options.strategy = Strategy::kPushDown;
  options.executor.fixed_point_cache = &cache;

  auto cold = engine_->Evaluate(q, options);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cache.size(), 2u);  // One closure per term.
  EXPECT_EQ(cache.hits(), 0u);
  uint64_t cold_joins = cold->metrics.fragment_joins;

  auto warm = engine_->Evaluate(q, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_TRUE(warm->answers.SetEquals(cold->answers));
  // Warm run only performs the final chain joins, strictly fewer.
  EXPECT_LT(warm->metrics.fragment_joins, cold_joins);
}

TEST_F(FixedPointCacheTest, SharedTermsReuseAcrossDifferentQueries) {
  FixedPointCache cache;
  EvalOptions options;
  options.strategy = Strategy::kFixedPointNaive;
  options.executor.fixed_point_cache = &cache;

  Query q1;
  q1.terms = {"xquery", "optimization"};
  ASSERT_TRUE(engine_->Evaluate(q1, options).ok());
  size_t after_first = cache.size();

  Query q2;
  q2.terms = {"xquery", "relational"};  // Shares 'xquery'.
  ASSERT_TRUE(engine_->Evaluate(q2, options).ok());
  EXPECT_EQ(cache.hits(), 1u);  // The shared term hit.
  EXPECT_GT(cache.size(), after_first);
}

TEST_F(FixedPointCacheTest, DifferentFiltersUseDifferentEntries) {
  FixedPointCache cache;
  EvalOptions options;
  options.strategy = Strategy::kPushDown;
  options.executor.fixed_point_cache = &cache;

  Query q;
  q.terms = {"xquery", "optimization"};
  q.filter = algebra::filters::SizeAtMost(3);
  auto beta3 = engine_->Evaluate(q, options);
  ASSERT_TRUE(beta3.ok());

  q.filter = algebra::filters::SizeAtMost(8);
  auto beta8 = engine_->Evaluate(q, options);
  ASSERT_TRUE(beta8.ok());
  // No false sharing: the filtered closures differ, so the second query
  // must not have hit the first query's entries.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_GT(beta8->answers.size(), beta3->answers.size());
}

TEST_F(FixedPointCacheTest, VariantsUseDifferentEntries) {
  FixedPointCache cache;
  Query q;
  q.terms = {"xquery", "optimization"};
  EvalOptions naive;
  naive.strategy = Strategy::kFixedPointNaive;
  naive.executor.fixed_point_cache = &cache;
  ASSERT_TRUE(engine_->Evaluate(q, naive).ok());

  EvalOptions reduced;
  reduced.strategy = Strategy::kFixedPointReduced;
  reduced.executor.fixed_point_cache = &cache;
  auto result = engine_->Evaluate(q, reduced);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(cache.hits(), 0u);  // Different variant, different keys.
  EXPECT_EQ(cache.size(), 4u);
}

TEST_F(FixedPointCacheTest, CachedAnswersEqualUncached) {
  FixedPointCache cache;
  Query q;
  q.terms = {"xquery", "optimization"};
  q.filter = algebra::filters::And(algebra::filters::SizeAtMost(4),
                                   algebra::filters::HeightAtMost(2));
  EvalOptions with_cache;
  with_cache.strategy = Strategy::kPushDown;
  with_cache.executor.fixed_point_cache = &cache;
  EvalOptions without_cache;
  without_cache.strategy = Strategy::kPushDown;

  auto cached_cold = engine_->Evaluate(q, with_cache);
  auto cached_warm = engine_->Evaluate(q, with_cache);
  auto plain = engine_->Evaluate(q, without_cache);
  ASSERT_TRUE(cached_cold.ok());
  ASSERT_TRUE(cached_warm.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(cached_warm->answers.SetEquals(plain->answers));
  EXPECT_TRUE(cached_cold->answers.SetEquals(plain->answers));
}

TEST_F(FixedPointCacheTest, ClearResets) {
  FixedPointCache cache;
  Query q;
  q.terms = {"xquery"};
  EvalOptions options;
  options.strategy = Strategy::kFixedPointNaive;
  options.executor.fixed_point_cache = &cache;
  ASSERT_TRUE(engine_->Evaluate(q, options).ok());
  EXPECT_GT(cache.size(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

algebra::FragmentSet SingleSet(doc::NodeId n) {
  algebra::FragmentSet set;
  set.Insert(algebra::Fragment::Single(n));
  return set;
}

TEST(FixedPointCacheLimitsTest, MaxEntriesEvictsLeastRecentlyUsed) {
  FixedPointCacheLimits limits;
  limits.max_entries = 2;
  FixedPointCache cache(limits);
  EXPECT_TRUE(cache.Insert("a", SingleSet(1)));
  EXPECT_TRUE(cache.Insert("b", SingleSet(2)));
  // Touch "a": "b" becomes the coldest entry.
  ASSERT_NE(cache.Find("a"), nullptr);
  EXPECT_TRUE(cache.Insert("c", SingleSet(3)));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Find("b"), nullptr);
  EXPECT_NE(cache.Find("a"), nullptr);
  EXPECT_NE(cache.Find("c"), nullptr);
}

TEST(FixedPointCacheLimitsTest, MaxBytesEvictsUntilUnderBudget) {
  // Measure one entry's approximate footprint, then budget for two.
  FixedPointCache probe;
  ASSERT_TRUE(probe.Insert("p", SingleSet(1)));
  const size_t entry_bytes = probe.bytes();
  ASSERT_GT(entry_bytes, 0u);

  FixedPointCacheLimits limits;
  limits.max_bytes = entry_bytes * 2 + entry_bytes / 2;
  FixedPointCache cache(limits);
  EXPECT_TRUE(cache.Insert("a", SingleSet(1)));
  EXPECT_TRUE(cache.Insert("b", SingleSet(2)));
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(cache.Insert("c", SingleSet(3)));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), limits.max_bytes);
}

TEST(FixedPointCacheLimitsTest, EvictedEntrySurvivesForHolders) {
  FixedPointCacheLimits limits;
  limits.max_entries = 1;
  FixedPointCache cache(limits);
  ASSERT_TRUE(cache.Insert("a", SingleSet(7)));
  auto held = cache.Find("a");
  ASSERT_NE(held, nullptr);
  ASSERT_TRUE(cache.Insert("b", SingleSet(8)));  // evicts "a"
  EXPECT_EQ(cache.Find("a"), nullptr);
  // The shared_ptr keeps the closure alive for the running evaluation.
  EXPECT_TRUE(held->Contains(algebra::Fragment::Single(7)));
}

TEST(FixedPointCacheLimitsTest, UnlimitedByDefault) {
  FixedPointCache cache;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        cache.Insert("k" + std::to_string(i), SingleSet(doc::NodeId(i))));
  }
  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(FixedPointCacheLimitsTest, FirstInsertWinsUnderLimits) {
  FixedPointCacheLimits limits;
  limits.max_entries = 4;
  FixedPointCache cache(limits);
  EXPECT_TRUE(cache.Insert("k", SingleSet(1)));
  EXPECT_FALSE(cache.Insert("k", SingleSet(2)));
  auto found = cache.Find("k");
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->Contains(algebra::Fragment::Single(1)));
}

}  // namespace
}  // namespace xfrag::query
