// Batched evaluation (query/batch.h): EvaluateBatch must be byte-identical
// per item — answers, insertion order, and every deterministic metric — to
// evaluating the same queries one by one, while the shared scan memo
// actually shares work inside term-connected groups. Also covers the
// union-find grouping (disjoint terms → separate groups, transitive sharing
// and case folding → one group) and null-item error isolation.

#include "query/batch.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/engine.h"
#include "text/inverted_index.h"
#include "xml/parser.h"

namespace xfrag::query {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dom = xml::Parse(R"(
      <book>
        <chapter>alpha
          <section>beta gamma
            <par>alpha delta</par>
            <par>beta</par>
          </section>
          <section>delta
            <par>gamma</par>
          </section>
        </chapter>
        <chapter>epsilon
          <par>alpha epsilon</par>
        </chapter>
      </book>)");
    ASSERT_TRUE(dom.ok()) << dom.status().ToString();
    auto d = doc::Document::FromDom(*dom);
    ASSERT_TRUE(d.ok());
    document_ = std::make_unique<doc::Document>(std::move(d).value());
    index_ = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*document_, {}));
    engine_ = std::make_unique<QueryEngine>(*document_, *index_);
  }

  static Query MakeQuery(std::vector<std::string> terms) {
    Query q;
    q.terms = std::move(terms);
    return q;
  }

  // Asserts batch item `batch` is byte-identical to the lone evaluation
  // `alone`: same answers in the same insertion order, same deterministic
  // metrics, same strategy.
  static void ExpectIdentical(const EvalResult& batch,
                              const EvalResult& alone,
                              const std::string& context) {
    ASSERT_EQ(batch.answers.size(), alone.answers.size()) << context;
    for (size_t i = 0; i < batch.answers.size(); ++i) {
      EXPECT_TRUE(batch.answers[i] == alone.answers[i])
          << context << " answer " << i;
    }
    EXPECT_TRUE(batch.metrics == alone.metrics) << context;
    EXPECT_EQ(batch.strategy_used, alone.strategy_used) << context;
  }

  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(BatchTest, MatchesSequentialEvaluationAcrossStrategiesAndTopK) {
  const Query queries[] = {
      MakeQuery({"alpha"}),
      MakeQuery({"alpha", "beta"}),
      MakeQuery({"gamma", "delta"}),
      MakeQuery({"alpha", "epsilon"}),
      MakeQuery({"alpha", "beta"}),  // exact duplicate of item 1
  };
  const Strategy strategies[] = {Strategy::kFixedPointNaive,
                                 Strategy::kFixedPointReduced,
                                 Strategy::kPushDown};
  for (Strategy strategy : strategies) {
    for (int top_k : {-1, 2}) {
      EvalOptions options;
      options.strategy = strategy;
      options.top_k = top_k;
      std::vector<BatchItem> items;
      for (const Query& q : queries) items.push_back(BatchItem{&q, options});

      BatchEvalStats stats;
      auto batched = EvaluateBatch(*document_, *index_, items,
                                   /*document_index=*/0, &stats);
      ASSERT_EQ(batched.size(), items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        auto alone = engine_->Evaluate(queries[i], options);
        ASSERT_TRUE(alone.ok()) << alone.status().ToString();
        ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
        ExpectIdentical(*batched[i], *alone,
                        "strategy " + std::to_string(static_cast<int>(strategy)) +
                            " top_k " + std::to_string(top_k) + " item " +
                            std::to_string(i));
      }
      // "alpha" connects items 0, 1, 3, 4; item 2's {gamma, delta} touches
      // no other item: exactly two groups.
      EXPECT_EQ(stats.groups, 2u);
      // "alpha" is scanned by items 0, 1, 3, 4 and "beta" by 1 and 4: the
      // memo must have answered at least the repeats.
      EXPECT_GT(stats.subplans_shared, 0u);
    }
  }
}

TEST_F(BatchTest, SharedScansAreMemoizedWithinAGroup) {
  const Query a = MakeQuery({"alpha", "beta"});
  const Query b = MakeQuery({"beta", "gamma"});
  EvalOptions options;
  std::vector<BatchItem> items = {{&a, options}, {&b, options}};
  BatchEvalStats stats;
  auto results =
      EvaluateBatch(*document_, *index_, items, /*document_index=*/0, &stats);
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(stats.groups, 1u);  // "beta" links the two items
  // Item b's "beta" scan is answered from the memo.
  EXPECT_GE(stats.subplans_shared, 1u);
}

TEST_F(BatchTest, GroupingIsByConnectedComponentsWithCaseFolding) {
  const Query a = MakeQuery({"Alpha"});
  const Query b = MakeQuery({"gamma"});
  const Query c = MakeQuery({"ALPHA", "gamma"});  // links a and b
  const Query d = MakeQuery({"epsilon"});
  std::vector<const Query*> queries = {&a, &b, &c, &d};
  auto groups = GroupQueriesByTerms(queries);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(groups[1], (std::vector<size_t>{3}));
}

TEST_F(BatchTest, NullItemFailsAloneWithoutPoisoningTheBatch) {
  const Query a = MakeQuery({"alpha"});
  EvalOptions options;
  std::vector<BatchItem> items = {{&a, options}, {nullptr, options},
                                  {&a, options}};
  auto results = EvaluateBatch(*document_, *index_, items);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[2].ok());
}

TEST_F(BatchTest, ScanMemoKeyFoldsCaseAndSeparatesDocuments) {
  EXPECT_EQ(ScanMemo::Key(3, "AlPhA", "size<=2"),
            ScanMemo::Key(3, "alpha", "size<=2"));
  EXPECT_NE(ScanMemo::Key(3, "alpha", "size<=2"),
            ScanMemo::Key(4, "alpha", "size<=2"));
  EXPECT_NE(ScanMemo::Key(3, "alpha", "size<=2"),
            ScanMemo::Key(3, "alpha", ""));
}

}  // namespace
}  // namespace xfrag::query
