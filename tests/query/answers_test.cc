// Overlap-aware answer presentation (§5) and fragment-to-XML extraction.

#include "query/answers.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "gen/corpus.h"
#include "gen/paper_document.h"
#include "query/engine.h"

namespace xfrag::query {
namespace {

using algebra::Fragment;
using algebra::FragmentSet;
using testutil::Frag;
using testutil::TreeFromParents;

doc::Document Fixture() {
  //        0
  //       / \.
  //      1   5
  //     /|\   \.
  //    2 3 4   6
  return TreeFromParents({doc::kNoNode, 0, 1, 1, 1, 0, 5});
}

TEST(MaximalAnswersTest, DropsContainedAnswers) {
  doc::Document d = Fixture();
  FragmentSet answers{Frag(d, {1, 2, 3}), Frag(d, {1, 2}),
                      Fragment::Single(2), Frag(d, {5, 6})};
  FragmentSet maximal = MaximalAnswers(answers);
  EXPECT_EQ(maximal.size(), 2u);
  EXPECT_TRUE(maximal.Contains(Frag(d, {1, 2, 3})));
  EXPECT_TRUE(maximal.Contains(Frag(d, {5, 6})));
}

TEST(MaximalAnswersTest, IncomparableAnswersAllKept) {
  doc::Document d = Fixture();
  FragmentSet answers{Frag(d, {1, 2}), Frag(d, {1, 3}), Frag(d, {1, 4})};
  EXPECT_TRUE(MaximalAnswers(answers).SetEquals(answers));
}

TEST(MaximalAnswersTest, EmptyAndSingleton) {
  doc::Document d = Fixture();
  EXPECT_TRUE(MaximalAnswers(FragmentSet()).empty());
  FragmentSet one{Fragment::Single(3)};
  EXPECT_TRUE(MaximalAnswers(one).SetEquals(one));
}

TEST(GroupOverlappingAnswersTest, AttachesSubFragmentsToTargets) {
  doc::Document d = Fixture();
  FragmentSet answers{Frag(d, {1, 2, 3}), Frag(d, {1, 2}),
                      Fragment::Single(3), Frag(d, {5, 6}),
                      Fragment::Single(6)};
  auto groups = GroupOverlappingAnswers(answers);
  ASSERT_EQ(groups.size(), 2u);
  // Canonical target order: ⟨1,2,3⟩ then ⟨5,6⟩.
  EXPECT_EQ(groups[0].target, Frag(d, {1, 2, 3}));
  ASSERT_EQ(groups[0].overlaps.size(), 2u);
  EXPECT_EQ(groups[0].overlaps[0], Frag(d, {1, 2}));  // Largest first.
  EXPECT_EQ(groups[0].overlaps[1], Fragment::Single(3));
  EXPECT_EQ(groups[1].target, Frag(d, {5, 6}));
  ASSERT_EQ(groups[1].overlaps.size(), 1u);
  EXPECT_EQ(groups[1].overlaps[0], Fragment::Single(6));
}

TEST(GroupOverlappingAnswersTest, AnswerInMultipleTargetsAttachedOnce) {
  doc::Document d = Fixture();
  // ⟨1,2⟩ and ⟨1,3⟩ both contain ⟨1⟩.
  FragmentSet answers{Frag(d, {1, 2}), Frag(d, {1, 3}), Fragment::Single(1)};
  auto groups = GroupOverlappingAnswers(answers);
  ASSERT_EQ(groups.size(), 2u);
  size_t attachments = groups[0].overlaps.size() + groups[1].overlaps.size();
  EXPECT_EQ(attachments, 1u);
}

TEST(GroupOverlappingAnswersTest, PaperExampleGroupsUnderTarget) {
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  QueryEngine engine(*document, index);
  Query q;
  q.terms = {"xquery", "optimization"};
  q.filter = algebra::filters::SizeAtMost(3);
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok());
  // The four Table-1 answers collapse into one group: the target
  // ⟨n16,n17,n18⟩ with its three overlapping sub-answers (§4.1/§5).
  auto groups = GroupOverlappingAnswers(result->answers);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].target,
            Fragment::FromSortedUnchecked({16, 17, 18}));
  EXPECT_EQ(groups[0].overlaps.size(), 3u);
}

TEST(GroupOverlappingAnswersTest, GroupsPartitionTheAnswerSet) {
  // Property on random corpora: targets + overlaps contain every answer
  // exactly once, targets are maximal, overlaps lie inside their target.
  for (uint64_t seed : {11ull, 12ull, 13ull}) {
    gen::CorpusProfile profile;
    profile.target_nodes = 250;
    profile.seed = seed;
    gen::RawCorpus raw = gen::GenerateRaw(profile);
    Rng rng(seed ^ 0x6e);
    gen::PlantKeyword(&raw, "kwone", 5, gen::PlantMode::kClustered, &rng);
    gen::PlantKeyword(&raw, "kwtwo", 4, gen::PlantMode::kClustered, &rng);
    auto dsor = gen::Materialize(raw);
    ASSERT_TRUE(dsor.ok());
    auto index = text::InvertedIndex::Build(*dsor);
    QueryEngine engine(*dsor, index);
    Query q;
    q.terms = {"kwone", "kwtwo"};
    q.filter = algebra::filters::SizeAtMost(8);
    auto result = engine.Evaluate(q);
    ASSERT_TRUE(result.ok());

    auto groups = GroupOverlappingAnswers(result->answers);
    size_t counted = 0;
    FragmentSet seen;
    for (const auto& group : groups) {
      EXPECT_TRUE(result->answers.Contains(group.target));
      EXPECT_TRUE(seen.Insert(group.target));
      ++counted;
      for (const auto& overlap : group.overlaps) {
        EXPECT_TRUE(group.target.ContainsFragment(overlap));
        EXPECT_NE(overlap, group.target);
        EXPECT_TRUE(result->answers.Contains(overlap));
        EXPECT_TRUE(seen.Insert(overlap));
        ++counted;
      }
    }
    EXPECT_EQ(counted, result->answers.size()) << "seed " << seed;
  }
}

TEST(FragmentToXmlTest, RendersMemberNodesOnly) {
  auto dsor = doc::Document::FromParents(
      {doc::kNoNode, 0, 0, 2}, {"sec", "par", "par", "em"},
      {"", "first", "second", "x"});
  ASSERT_TRUE(dsor.ok());
  doc::Document d = std::move(dsor).value();
  Fragment f = Frag(d, {0, 1});
  std::string xml_text = FragmentToXml(f, d);
  EXPECT_NE(xml_text.find("<sec>"), std::string::npos);
  EXPECT_NE(xml_text.find("<par>first</par>"), std::string::npos);
  EXPECT_EQ(xml_text.find("second"), std::string::npos);  // Elided.
  EXPECT_EQ(xml_text.find("<!--"), std::string::npos);    // No marks.
}

TEST(FragmentToXmlTest, MarksElisionsWhenRequested) {
  auto dsor = doc::Document::FromParents(
      {doc::kNoNode, 0, 0}, {"sec", "par", "par"}, {"", "kept", "dropped"});
  ASSERT_TRUE(dsor.ok());
  doc::Document d = std::move(dsor).value();
  Fragment f = Frag(d, {0, 1});
  std::string xml_text = FragmentToXml(f, d, /*mark_elisions=*/true);
  EXPECT_NE(xml_text.find("<!-- ... -->"), std::string::npos);
}

TEST(FragmentToXmlTest, EscapesText) {
  auto dsor = doc::Document::FromParents({doc::kNoNode}, {"p"}, {"a < b & c"});
  ASSERT_TRUE(dsor.ok());
  doc::Document d = std::move(dsor).value();
  std::string xml_text = FragmentToXml(Fragment::Single(0), d);
  EXPECT_NE(xml_text.find("a &lt; b &amp; c"), std::string::npos);
}

TEST(FragmentToXmlTest, SingleNode) {
  auto dsor = doc::Document::FromParents({doc::kNoNode}, {"par"}, {"text"});
  ASSERT_TRUE(dsor.ok());
  doc::Document d = std::move(dsor).value();
  EXPECT_EQ(FragmentToXml(Fragment::Single(0), d), "<par>text</par>\n");
}

}  // namespace
}  // namespace xfrag::query
