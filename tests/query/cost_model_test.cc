// The §5 cost model: size heuristics, input gathering, strategy ranking on
// clear-cut cases, and agreement of the cost-based auto mode with explicit
// strategies.

#include "query/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../testutil.h"
#include "gen/corpus.h"
#include "gen/paper_document.h"
#include "query/engine.h"

namespace xfrag::query {
namespace {

TEST(CostModelTest, FixedPointSizeHeuristic) {
  CostModel model;
  // Degenerate sets.
  EXPECT_DOUBLE_EQ(model.EstimateFixedPointSize(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.EstimateFixedPointSize(1, 0.0), 1.0);
  // RF = 0: all members independent, 2^n − 1 subset joins.
  EXPECT_DOUBLE_EQ(model.EstimateFixedPointSize(4, 0.0), 15.0);
  // RF = 0.5 on 8 members: 2^4 − 1 + 4 absorbed.
  EXPECT_DOUBLE_EQ(model.EstimateFixedPointSize(8, 0.5), 19.0);
  // Monotone: higher RF ⇒ smaller closure.
  EXPECT_LT(model.EstimateFixedPointSize(12, 0.8),
            model.EstimateFixedPointSize(12, 0.2));
  // Capped.
  CostParameters parameters;
  parameters.fixed_point_cap = 100.0;
  CostModel capped(parameters);
  EXPECT_DOUBLE_EQ(capped.EstimateFixedPointSize(30, 0.0), 100.0);
}

TEST(CostModelTest, CalibrationProducesPositiveCosts) {
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  CostParameters parameters = CostModel::Calibrate(*document);
  EXPECT_GT(parameters.join_ns, 0.0);
  EXPECT_GT(parameters.filter_ns, 0.0);
  // Joins are more expensive than filter evaluations.
  EXPECT_GT(parameters.join_ns, parameters.filter_ns / 10.0);
}

TEST(CostModelTest, BruteForceCheapestForTinySets) {
  CostModel model;
  CostInputs inputs;
  inputs.base_sizes = {2, 2};
  inputs.rf_estimates = {0.0, 0.0};
  auto costs = model.EstimateAll(inputs);
  ASSERT_FALSE(costs.empty());
  // With 2x2 postings, subset enumeration (~20 joins) should be at or near
  // the top; at minimum it must be finite and within 2x of the best.
  double best = costs.front().nanos;
  for (const auto& cost : costs) {
    if (cost.strategy == Strategy::kBruteForce) {
      EXPECT_LT(cost.nanos, best * 4 + 1);
    }
  }
}

TEST(CostModelTest, BruteForceRefusedBeyondGuard) {
  CostModel model;
  CostInputs inputs;
  inputs.base_sizes = {30, 30};
  inputs.rf_estimates = {0.0, 0.0};
  auto costs = model.EstimateAll(inputs, /*brute_force_limit=*/12);
  for (const auto& cost : costs) {
    if (cost.strategy == Strategy::kBruteForce) {
      EXPECT_TRUE(std::isinf(cost.nanos));
    }
  }
  // And it sorts last.
  EXPECT_NE(costs.front().strategy, Strategy::kBruteForce);
}

TEST(CostModelTest, PushDownWinsAtLowSelectivity) {
  CostModel model;
  CostInputs inputs;
  inputs.base_sizes = {12, 12};
  inputs.rf_estimates = {0.0, 0.0};
  inputs.has_anti_monotonic = true;
  inputs.anti_monotonic_selectivity = 0.05;
  auto costs = model.EstimateAll(inputs);
  EXPECT_EQ(costs.front().strategy, Strategy::kPushDown)
      << costs.front().detail;
}

TEST(CostModelTest, PushDownInapplicableWithoutAntiMonotonicConjunct) {
  CostModel model;
  CostInputs inputs;
  inputs.base_sizes = {8, 8};
  inputs.rf_estimates = {0.1, 0.1};
  inputs.has_anti_monotonic = false;
  auto costs = model.EstimateAll(inputs);
  for (const auto& cost : costs) {
    if (cost.strategy == Strategy::kPushDown) {
      EXPECT_TRUE(std::isinf(cost.nanos));
    }
  }
}

TEST(CostModelTest, ReducedBeatsNaiveAtHighRf) {
  CostModel model;
  CostInputs inputs;
  inputs.base_sizes = {14};
  inputs.rf_estimates = {0.8};
  auto costs = model.EstimateAll(inputs);
  double naive = 0, reduced = 0;
  for (const auto& cost : costs) {
    if (cost.strategy == Strategy::kFixedPointNaive) naive = cost.nanos;
    if (cost.strategy == Strategy::kFixedPointReduced) reduced = cost.nanos;
  }
  EXPECT_LT(reduced, naive);
  // At high RF the saving is substantial (more than one iteration's worth).
  EXPECT_LT(reduced, naive * 0.95);

  // At RF = 0 the two nearly coincide: the ⊖ pass costs n²/2 extra joins
  // but saves the final convergence-check iteration — consistent with the
  // measured benches, where reduced is never a big loss, only a small one
  // or a wash (§3.1.4's "it depends").
  inputs.rf_estimates = {0.0};
  costs = model.EstimateAll(inputs);
  for (const auto& cost : costs) {
    if (cost.strategy == Strategy::kFixedPointNaive) naive = cost.nanos;
    if (cost.strategy == Strategy::kFixedPointReduced) reduced = cost.nanos;
  }
  EXPECT_NEAR(reduced / naive, 1.0, 0.15);
}

class CostBasedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gen::CorpusProfile profile;
    profile.target_nodes = 400;
    profile.seed = 21;
    gen::RawCorpus raw = gen::GenerateRaw(profile);
    Rng rng(22);
    gen::PlantKeyword(&raw, "kwone", 6, gen::PlantMode::kClustered, &rng);
    gen::PlantKeyword(&raw, "kwtwo", 5, gen::PlantMode::kScattered, &rng);
    auto document = gen::Materialize(raw);
    ASSERT_TRUE(document.ok());
    document_ = std::make_unique<doc::Document>(std::move(document).value());
    index_ = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*document_));
  }

  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<text::InvertedIndex> index_;
};

TEST_F(CostBasedEngineTest, GatherInputsReflectsQuery) {
  CostModel model;
  Query q;
  q.terms = {"kwone", "kwtwo"};
  q.filter = algebra::filters::SizeAtMost(4);
  CostInputs inputs = model.GatherInputs(q, *document_, *index_);
  ASSERT_EQ(inputs.base_sizes.size(), 2u);
  EXPECT_EQ(inputs.base_sizes[0], index_->Lookup("kwone").size());
  EXPECT_EQ(inputs.base_sizes[1], index_->Lookup("kwtwo").size());
  EXPECT_TRUE(inputs.has_anti_monotonic);
  EXPECT_GE(inputs.anti_monotonic_selectivity, 0.0);
  EXPECT_LE(inputs.anti_monotonic_selectivity, 1.0);
  // Clustered kwone should report a higher RF than scattered kwtwo.
  ASSERT_EQ(inputs.rf_estimates.size(), 2u);
  EXPECT_GE(inputs.rf_estimates[0], inputs.rf_estimates[1]);
}

TEST_F(CostBasedEngineTest, CostBasedAutoAgreesWithExplicitAnswers) {
  QueryEngine engine(*document_, *index_);
  Query q;
  q.terms = {"kwone", "kwtwo"};
  q.filter = algebra::filters::SizeAtMost(5);

  EvalOptions cost_based;
  cost_based.optimizer.use_cost_model = true;
  auto auto_result = engine.Evaluate(q, cost_based);
  ASSERT_TRUE(auto_result.ok()) << auto_result.status().ToString();
  EXPECT_NE(auto_result->explain.find("cost model ranking"),
            std::string::npos);

  EvalOptions manual;
  manual.strategy = Strategy::kPushDown;
  auto manual_result = engine.Evaluate(q, manual);
  ASSERT_TRUE(manual_result.ok());
  EXPECT_TRUE(auto_result->answers.SetEquals(manual_result->answers));
}

TEST_F(CostBasedEngineTest, DecisionListsAllStrategies) {
  Query q;
  q.terms = {"kwone", "kwtwo"};
  q.filter = algebra::filters::SizeAtMost(4);
  PlanDecision decision =
      ChooseStrategyCostBased(q, *document_, *index_, CostModel());
  EXPECT_NE(decision.rationale.find("push-down"), std::string::npos);
  EXPECT_NE(decision.rationale.find("fixed-point-naive"), std::string::npos);
  EXPECT_NE(decision.rationale.find("fixed-point-reduced"),
            std::string::npos);
  EXPECT_NE(decision.rationale.find("brute-force"), std::string::npos);
  EXPECT_EQ(decision.estimated_rf.size(), 2u);
}

}  // namespace
}  // namespace xfrag::query
