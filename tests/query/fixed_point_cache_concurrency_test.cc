// FixedPointCache under concurrency: the cache is shared by every worker of
// the collection engine's pool, so Find/Insert must stay coherent when
// hammered from many threads — entries are published once, pointers stay
// valid, and hit/miss counters add up exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "query/fixed_point_cache.h"

namespace xfrag::query {
namespace {

using algebra::Fragment;
using algebra::FragmentSet;

// A distinguishable payload per key: {⟨key⟩, ⟨key+1⟩}.
FragmentSet PayloadFor(int key) {
  FragmentSet out;
  out.Insert(Fragment::Single(static_cast<doc::NodeId>(key)));
  out.Insert(Fragment::Single(static_cast<doc::NodeId>(key + 1)));
  return out;
}

TEST(FixedPointCacheConcurrencyTest, HammeredFindInsertStaysCoherent) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 16;
  constexpr int kIterations = 400;

  FixedPointCache cache;
  std::atomic<uint64_t> observed_misses{0};
  std::atomic<uint64_t> observed_finds{0};
  std::atomic<int> wrong_payloads{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Every thread walks the keys at its own offset, so each key is
        // looked up concurrently by several threads at once.
        int key = (i + t) % kKeys;
        std::string key_string = "term" + std::to_string(key);
        observed_finds.fetch_add(1);
        std::shared_ptr<const FragmentSet> found = cache.Find(key_string);
        if (found == nullptr) {
          observed_misses.fetch_add(1);
          cache.Insert(key_string, PayloadFor(key));
        } else if (!found->SetEquals(PayloadFor(key))) {
          // Never expected: an entry must only ever hold its own payload.
          wrong_payloads.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong_payloads.load(), 0);
  // Exactly one entry per key, regardless of racing inserts.
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
  // Counter coherence: every Find was either a hit or a miss, and the
  // cache's own tallies agree with what the threads observed.
  EXPECT_EQ(cache.hits() + cache.misses(), observed_finds.load());
  EXPECT_EQ(cache.misses(), observed_misses.load());
  // At least one miss per key (the first touch), at most kThreads (every
  // thread missing before any insert published).
  EXPECT_GE(cache.misses(), static_cast<uint64_t>(kKeys));
  EXPECT_LE(cache.misses(), static_cast<uint64_t>(kKeys) * kThreads);
  // Every key ended up with its own payload.
  for (int key = 0; key < kKeys; ++key) {
    std::shared_ptr<const FragmentSet> found =
        cache.Find("term" + std::to_string(key));
    ASSERT_NE(found, nullptr) << "term" << key;
    EXPECT_TRUE(found->SetEquals(PayloadFor(key)));
  }
}

TEST(FixedPointCacheConcurrencyTest, PointersStayValidWhileOthersInsert) {
  FixedPointCache cache;
  cache.Insert("stable", PayloadFor(100));
  std::shared_ptr<const FragmentSet> pinned = cache.Find("stable");
  ASSERT_NE(pinned, nullptr);

  // Concurrent writers flood the table with other keys (forcing rehashes)
  // and racing re-inserts of "stable" with a *different* payload, which
  // first-wins semantics must ignore.
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        cache.Insert("k" + std::to_string(t) + "_" + std::to_string(i),
                     PayloadFor(i));
        EXPECT_FALSE(cache.Insert("stable", PayloadFor(999)));
      }
    });
  }
  for (auto& writer : writers) writer.join();

  // The pinned pointer is still the published entry with the original value
  // (unbounded limits: nothing is ever evicted, so identity holds too).
  EXPECT_TRUE(pinned->SetEquals(PayloadFor(100)));
  EXPECT_EQ(cache.Find("stable").get(), pinned.get());
  EXPECT_EQ(cache.size(), 4u * 500u + 1u);
}

TEST(FixedPointCacheConcurrencyTest, InsertIsFirstWins) {
  FixedPointCache cache;
  EXPECT_TRUE(cache.Insert("k", PayloadFor(1)));
  EXPECT_FALSE(cache.Insert("k", PayloadFor(2)));
  std::shared_ptr<const FragmentSet> found = cache.Find("k");
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->SetEquals(PayloadFor(1)));
}

}  // namespace
}  // namespace xfrag::query
