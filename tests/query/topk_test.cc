// The engine-level top-k contract (EvalOptions::top_k): for every k, every
// strategy, every answer mode, and every parallelism level, Evaluate returns
// exactly the length-min(k, |A|) prefix of RankAnswers over the full answer
// set — same fragments, bit-identical scores, ties broken by canonical
// fragment order.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "query/engine.h"
#include "query/ranking.h"
#include "xml/parser.h"

namespace xfrag::query {
namespace {

struct Fixture {
  std::unique_ptr<doc::Document> document;
  std::unique_ptr<text::InvertedIndex> index;
  std::unique_ptr<QueryEngine> engine;

  static Fixture FromXml(std::string_view xml_text) {
    Fixture fixture;
    auto dom = xml::Parse(xml_text);
    EXPECT_TRUE(dom.ok());
    auto d = doc::Document::FromDom(*dom);
    EXPECT_TRUE(d.ok());
    fixture.document = std::make_unique<doc::Document>(std::move(d).value());
    fixture.index = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*fixture.document));
    fixture.engine =
        std::make_unique<QueryEngine>(*fixture.document, *fixture.index);
    return fixture;
  }
};

// A document with a rich answer set: both terms scattered at several depths
// so joins of different shapes (and scores) all qualify.
constexpr const char* kDoc = R"(
  <lib>
    <shelf>
      <book>alpha beta</book>
      <book>alpha</book>
      <book>beta</book>
    </shelf>
    <shelf>
      <book>alpha<note>beta</note></book>
      <crate><box>alpha</box><box>beta beta</box></crate>
    </shelf>
    <attic>alpha beta alpha</attic>
  </lib>)";

// Many identical single-node answers: every score ties, so the prefix is
// decided purely by canonical fragment order.
constexpr const char* kTieDoc = R"(
  <r>
    <a>alpha beta</a><a>alpha beta</a><a>alpha beta</a>
    <a>alpha beta</a><a>alpha beta</a><a>alpha beta</a>
  </r>)";

std::vector<RankedAnswer> FullReference(const Fixture& f, const Query& q,
                                        EvalOptions options) {
  options.top_k = -1;
  auto result = f.engine->Evaluate(q, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return RankAnswers(result->answers, q.terms, *f.document, *f.index,
                     options.ranking);
}

void ExpectPrefix(const Fixture& f, const Query& q, const EvalOptions& options,
                  size_t k, const char* what) {
  std::vector<RankedAnswer> reference = FullReference(f, q, options);
  EvalOptions topk = options;
  topk.top_k = static_cast<int64_t>(k);
  auto result = f.engine->Evaluate(q, topk);
  ASSERT_TRUE(result.ok()) << what << ": " << result.status().ToString();
  const size_t expect = std::min(k, reference.size());
  ASSERT_EQ(result->ranked.size(), expect) << what << " k=" << k;
  for (size_t i = 0; i < expect; ++i) {
    EXPECT_EQ(result->ranked[i].fragment, reference[i].fragment)
        << what << " k=" << k << " position " << i;
    EXPECT_EQ(result->ranked[i].score, reference[i].score)
        << what << " k=" << k << " position " << i;
  }
  // The answer set mirrors the ranked prefix.
  EXPECT_EQ(result->answers.size(), expect) << what;
  for (size_t i = 0; i < expect; ++i) {
    EXPECT_TRUE(result->answers.Contains(result->ranked[i].fragment)) << what;
  }
}

TEST(TopKEngineTest, PrefixEquivalenceForEveryK) {
  Fixture f = Fixture::FromXml(kDoc);
  Query q;
  q.terms = {"alpha", "beta"};
  EvalOptions options;
  const size_t all = FullReference(f, q, options).size();
  ASSERT_GT(all, 3u);
  for (size_t k : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, all, all + 5}) {
    ExpectPrefix(f, q, options, k, "default strategy");
  }
}

TEST(TopKEngineTest, PrefixEquivalenceAcrossStrategies) {
  Fixture f = Fixture::FromXml(kDoc);
  Query q;
  q.terms = {"alpha", "beta"};
  auto filter = ParseFilterExpression("size<=4");
  ASSERT_TRUE(filter.ok());
  q.filter = *filter;
  for (Strategy strategy :
       {Strategy::kBruteForce, Strategy::kFixedPointNaive,
        Strategy::kFixedPointReduced, Strategy::kPushDown, Strategy::kAuto}) {
    EvalOptions options;
    options.strategy = strategy;
    for (size_t k : {size_t{1}, size_t{4}, size_t{100}}) {
      ExpectPrefix(f, q, options, k,
                   ("strategy " + std::to_string(static_cast<int>(strategy)))
                       .c_str());
    }
  }
}

TEST(TopKEngineTest, PrefixEquivalenceUnderLeafStrictMode) {
  Fixture f = Fixture::FromXml(kDoc);
  Query q;
  q.terms = {"alpha", "beta"};
  EvalOptions options;
  options.strategy = Strategy::kPushDown;
  options.answer_mode = AnswerMode::kLeafStrict;
  // The reference path must apply the same mode: compare against the
  // leaf-strict full evaluation.
  options.top_k = -1;
  auto full = f.engine->Evaluate(q, options);
  ASSERT_TRUE(full.ok());
  auto reference =
      RankAnswers(full->answers, q.terms, *f.document, *f.index);
  ASSERT_FALSE(reference.empty());
  for (size_t k : {size_t{1}, size_t{2}, reference.size()}) {
    EvalOptions topk = options;
    topk.top_k = static_cast<int64_t>(k);
    auto result = f.engine->Evaluate(q, topk);
    ASSERT_TRUE(result.ok());
    const size_t expect = std::min(k, reference.size());
    ASSERT_EQ(result->ranked.size(), expect);
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(result->ranked[i].fragment, reference[i].fragment);
      EXPECT_EQ(result->ranked[i].score, reference[i].score);
    }
  }
}

TEST(TopKEngineTest, TieHeavyPrefixFollowsCanonicalOrder) {
  Fixture f = Fixture::FromXml(kTieDoc);
  Query q;
  q.terms = {"alpha", "beta"};
  EvalOptions options;
  options.strategy = Strategy::kPushDown;
  auto filter = ParseFilterExpression("size<=1");
  ASSERT_TRUE(filter.ok());
  q.filter = *filter;
  std::vector<RankedAnswer> reference = FullReference(f, q, options);
  ASSERT_EQ(reference.size(), 6u);
  for (size_t i = 1; i < reference.size(); ++i) {
    // All six singles tie on score...
    ASSERT_EQ(reference[i].score, reference[0].score);
    // ...so the order is the canonical fragment order.
    ASSERT_TRUE(reference[i - 1].fragment < reference[i].fragment);
  }
  for (size_t k : {size_t{1}, size_t{3}, size_t{5}}) {
    ExpectPrefix(f, q, options, k, "tie-heavy");
  }
}

TEST(TopKEngineTest, BitIdenticalAcrossParallelism) {
  Fixture f = Fixture::FromXml(kDoc);
  Query q;
  q.terms = {"alpha", "beta"};
  EvalOptions serial;
  serial.strategy = Strategy::kPushDown;
  serial.top_k = 5;
  auto baseline = f.engine->Evaluate(q, serial);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->ranked.size(), 5u);
  for (unsigned parallelism : {2u, 4u, 8u}) {
    EvalOptions options = serial;
    options.executor.parallelism = parallelism;
    auto result = f.engine->Evaluate(q, options);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->ranked.size(), baseline->ranked.size())
        << "parallelism " << parallelism;
    for (size_t i = 0; i < baseline->ranked.size(); ++i) {
      EXPECT_EQ(result->ranked[i].fragment, baseline->ranked[i].fragment)
          << "parallelism " << parallelism << " position " << i;
      EXPECT_EQ(result->ranked[i].score, baseline->ranked[i].score)
          << "parallelism " << parallelism << " position " << i;
    }
  }
}

TEST(TopKEngineTest, RankingOptionsFlowThroughTheBoundedPath) {
  Fixture f = Fixture::FromXml(kDoc);
  Query q;
  q.terms = {"alpha", "beta"};
  EvalOptions options;
  options.strategy = Strategy::kPushDown;
  options.ranking.size_penalty = 0.0;  // no normalization: big joins win
  const size_t all = FullReference(f, q, options).size();
  for (size_t k : {size_t{1}, size_t{3}, all}) {
    ExpectPrefix(f, q, options, k, "size_penalty=0");
  }
}

TEST(TopKEngineTest, MissingTermYieldsEmptyRankedResult) {
  Fixture f = Fixture::FromXml(kDoc);
  Query q;
  q.terms = {"alpha", "nosuchterm"};
  EvalOptions options;
  options.top_k = 3;
  auto result = f.engine->Evaluate(q, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ranked.empty());
  EXPECT_TRUE(result->answers.empty());
}

}  // namespace
}  // namespace xfrag::query
