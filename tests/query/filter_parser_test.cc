#include <gtest/gtest.h>

#include "../testutil.h"
#include "query/query.h"
#include "text/inverted_index.h"

namespace xfrag::query {
namespace {

using algebra::FilterContext;
using algebra::Fragment;
using testutil::Frag;
using testutil::TreeFromParents;

TEST(FilterParserTest, Atoms) {
  EXPECT_EQ((*ParseFilterExpression("size<=3"))->ToString(), "size<=3");
  EXPECT_EQ((*ParseFilterExpression("size>=2"))->ToString(), "size>=2");
  EXPECT_EQ((*ParseFilterExpression("height<=1"))->ToString(), "height<=1");
  EXPECT_EQ((*ParseFilterExpression("span<=9"))->ToString(), "span<=9");
  EXPECT_EQ((*ParseFilterExpression("true"))->ToString(), "true");
  EXPECT_EQ((*ParseFilterExpression("keyword=xquery"))->ToString(),
            "keyword=xquery");
  EXPECT_EQ((*ParseFilterExpression("root_tag=section"))->ToString(),
            "root_tag=section");
  EXPECT_EQ((*ParseFilterExpression("equal_depth(a,b)"))->ToString(),
            "equal_depth(a,b)");
  EXPECT_EQ((*ParseFilterExpression("distance<=4"))->ToString(),
            "distance<=4");
  EXPECT_EQ((*ParseFilterExpression("root_depth>=2"))->ToString(),
            "root_depth>=2");
  EXPECT_EQ((*ParseFilterExpression("root_depth<=2"))->ToString(),
            "root_depth<=2");
  EXPECT_EQ((*ParseFilterExpression("tags_within(sec,par)"))->ToString(),
            "tags_within(par,sec)");
}

TEST(FilterParserTest, NewAtomAntiMonotonicity) {
  EXPECT_TRUE((*ParseFilterExpression("distance<=4"))->anti_monotonic());
  EXPECT_TRUE((*ParseFilterExpression("root_depth>=2"))->anti_monotonic());
  EXPECT_FALSE((*ParseFilterExpression("root_depth<=2"))->anti_monotonic());
  EXPECT_TRUE(
      (*ParseFilterExpression("tags_within(sec,par)"))->anti_monotonic());
}

TEST(FilterParserTest, NewAtomErrors) {
  EXPECT_FALSE(ParseFilterExpression("distance>=4").ok());
  EXPECT_FALSE(ParseFilterExpression("root_depth=2").ok());
  EXPECT_FALSE(ParseFilterExpression("tags_within()").ok());
  EXPECT_FALSE(ParseFilterExpression("tags_within(a,)").ok());
  EXPECT_FALSE(ParseFilterExpression("tags_within(a").ok());
}

TEST(FilterParserTest, WhitespaceAndCaseInsensitiveKeywords) {
  auto f = ParseFilterExpression("  SIZE <= 3  AND  Height <= 2 ");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->ToString(), "(size<=3 & height<=2)");
}

TEST(FilterParserTest, OperatorsAndPrecedence) {
  // '&' binds tighter than '|'.
  auto f = ParseFilterExpression("size<=1 | size<=2 & height<=3");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->ToString(), "(size<=1 | (size<=2 & height<=3))");
}

TEST(FilterParserTest, ParenthesesOverridePrecedence) {
  auto f = ParseFilterExpression("(size<=1 | size<=2) & height<=3");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->ToString(), "((size<=1 | size<=2) & height<=3)");
}

TEST(FilterParserTest, Negation) {
  auto f = ParseFilterExpression("!size<=2");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->ToString(), "!size<=2");
  auto g = ParseFilterExpression("not (size<=2 & true)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ((*g)->ToString(), "!(size<=2 & true)");
}

TEST(FilterParserTest, WordOperators) {
  auto f = ParseFilterExpression("size<=3 and height<=2 or true");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->ToString(), "((size<=3 & height<=2) | true)");
}

TEST(FilterParserTest, ParsedFilterEvaluates) {
  doc::Document d = TreeFromParents({doc::kNoNode, 0, 1, 1});
  FilterContext ctx{&d, nullptr};
  auto f = ParseFilterExpression("size<=2 & height<=1");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE((*f)->Matches(Frag(d, {1, 2}), ctx));
  EXPECT_FALSE((*f)->Matches(Frag(d, {0, 1, 2}), ctx));
}

TEST(FilterParserTest, Errors) {
  EXPECT_FALSE(ParseFilterExpression("").ok());
  EXPECT_FALSE(ParseFilterExpression("size<3").ok());
  EXPECT_FALSE(ParseFilterExpression("size<=").ok());
  EXPECT_FALSE(ParseFilterExpression("size<=x").ok());
  EXPECT_FALSE(ParseFilterExpression("height>=1").ok());
  EXPECT_FALSE(ParseFilterExpression("(size<=1").ok());
  EXPECT_FALSE(ParseFilterExpression("size<=1 size<=2").ok());
  EXPECT_FALSE(ParseFilterExpression("bogus<=1").ok());
  EXPECT_FALSE(ParseFilterExpression("equal_depth(a)").ok());
  EXPECT_FALSE(ParseFilterExpression("size<=99999999999").ok());
  EXPECT_FALSE(ParseFilterExpression("keyword=").ok());
}

TEST(FilterParserTest, AntiMonotonicityFlagsSurviveParsing) {
  EXPECT_TRUE((*ParseFilterExpression("size<=3 & height<=2"))
                  ->anti_monotonic());
  EXPECT_FALSE((*ParseFilterExpression("size>=3"))->anti_monotonic());
  EXPECT_FALSE((*ParseFilterExpression("!size<=3"))->anti_monotonic());
}

TEST(QueryToStringTest, Rendering) {
  Query q;
  q.terms = {"xquery", "optimization"};
  q.filter = *ParseFilterExpression("size<=3");
  EXPECT_EQ(q.ToString(), "Q_{size<=3}{xquery, optimization}");
}

}  // namespace
}  // namespace xfrag::query
