#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace xfrag::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  auto tokens = Tokenize("XQuery, Optimization; and (joins)!");
  EXPECT_EQ(tokens, (std::vector<std::string>{"xquery", "optimization", "and",
                                              "joins"}));
}

TEST(TokenizerTest, DigitsAreTokenChars) {
  auto tokens = Tokenize("section 2.3 has n17");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"section", "2", "3", "has", "n17"}));
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ,;! ").empty());
}

TEST(TokenizerTest, StopwordRemoval) {
  TokenizerOptions options;
  options.remove_stopwords = true;
  auto tokens = Tokenize("the algebra of the fragments", options);
  EXPECT_EQ(tokens, (std::vector<std::string>{"algebra", "fragments"}));
}

TEST(TokenizerTest, StopwordsKeptByDefault) {
  auto tokens = Tokenize("the algebra");
  EXPECT_EQ(tokens, (std::vector<std::string>{"the", "algebra"}));
}

TEST(TokenizerTest, MinTokenLength) {
  TokenizerOptions options;
  options.min_token_length = 3;
  auto tokens = Tokenize("a an and ands", options);
  EXPECT_EQ(tokens, (std::vector<std::string>{"and", "ands"}));
}

TEST(TokenizerTest, NonAsciiBytesSurvive) {
  auto tokens = Tokenize("caf\xC3\xA9 lattes");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "caf\xC3\xA9");
}

TEST(TokenizerTest, PluralFolding) {
  TokenizerOptions options;
  options.fold_plurals = true;
  auto tokens = Tokenize("plans queries class gas its", options);
  // "its" is length 3, below the folding threshold.
  EXPECT_EQ(tokens, (std::vector<std::string>{"plan", "querie", "class",
                                              "gas", "its"}));
}

TEST(FoldPluralTest, Rules) {
  EXPECT_EQ(FoldPlural("plans"), "plan");
  EXPECT_EQ(FoldPlural("class"), "class");   // "ss" kept.
  EXPECT_EQ(FoldPlural("gas"), "gas");       // Length <= 3 kept.
  EXPECT_EQ(FoldPlural("as"), "as");
  EXPECT_EQ(FoldPlural("trees"), "tree");
  EXPECT_EQ(FoldPlural("plan"), "plan");     // No trailing s.
}

TEST(IsStopwordTest, KnownWords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_FALSE(IsStopword("xquery"));
  EXPECT_FALSE(IsStopword(""));
}

}  // namespace
}  // namespace xfrag::text
