#include "text/inverted_index.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xfrag::text {
namespace {

doc::Document MakeDoc(std::string_view xml_text) {
  auto dom = xml::Parse(xml_text);
  EXPECT_TRUE(dom.ok()) << dom.status().ToString();
  auto d = doc::Document::FromDom(*dom);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

TEST(InvertedIndexTest, PostingsAreSortedNodeIds) {
  doc::Document d = MakeDoc(
      "<a>alpha<b>beta alpha</b><c>gamma</c><d>alpha</d></a>");
  InvertedIndex index = InvertedIndex::Build(d);
  EXPECT_EQ(index.Lookup("alpha"), (std::vector<doc::NodeId>{0, 1, 3}));
  EXPECT_EQ(index.Lookup("beta"), (std::vector<doc::NodeId>{1}));
  EXPECT_EQ(index.Lookup("gamma"), (std::vector<doc::NodeId>{2}));
}

TEST(InvertedIndexTest, MissingTermYieldsEmpty) {
  doc::Document d = MakeDoc("<a>alpha</a>");
  InvertedIndex index = InvertedIndex::Build(d);
  EXPECT_TRUE(index.Lookup("nothere").empty());
  EXPECT_EQ(index.DocumentFrequency("nothere"), 0u);
}

TEST(InvertedIndexTest, LookupFoldsCase) {
  doc::Document d = MakeDoc("<a>XQuery Optimization</a>");
  InvertedIndex index = InvertedIndex::Build(d);
  EXPECT_EQ(index.Lookup("XQUERY").size(), 1u);
  EXPECT_EQ(index.Lookup("xquery").size(), 1u);
  EXPECT_EQ(index.Lookup("Optimization").size(), 1u);
}

TEST(InvertedIndexTest, TagNamesIndexedByDefault) {
  doc::Document d = MakeDoc("<article><par>x</par></article>");
  InvertedIndex index = InvertedIndex::Build(d);
  EXPECT_EQ(index.Lookup("article"), (std::vector<doc::NodeId>{0}));
  EXPECT_EQ(index.Lookup("par"), (std::vector<doc::NodeId>{1}));
}

TEST(InvertedIndexTest, TagNamesExcludedWhenConfigured) {
  doc::Document d = MakeDoc("<article><par>x</par></article>");
  IndexOptions options;
  options.index_tag_names = false;
  InvertedIndex index = InvertedIndex::Build(d, options);
  EXPECT_TRUE(index.Lookup("article").empty());
  EXPECT_EQ(index.Lookup("x"), (std::vector<doc::NodeId>{1}));
}

TEST(InvertedIndexTest, AttributeValuesIndexed) {
  doc::Document d = MakeDoc("<a id=\"marker42\">text</a>");
  InvertedIndex index = InvertedIndex::Build(d);
  EXPECT_EQ(index.Lookup("marker42"), (std::vector<doc::NodeId>{0}));
}

TEST(InvertedIndexTest, DuplicateWordsInNodeIndexedOnce) {
  doc::Document d = MakeDoc("<a>echo echo echo</a>");
  InvertedIndex index = InvertedIndex::Build(d);
  EXPECT_EQ(index.Lookup("echo").size(), 1u);
}

TEST(InvertedIndexTest, ContainsMembership) {
  doc::Document d = MakeDoc("<a>alpha<b>beta</b></a>");
  InvertedIndex index = InvertedIndex::Build(d);
  EXPECT_TRUE(index.Contains("alpha", 0));
  EXPECT_FALSE(index.Contains("alpha", 1));
  EXPECT_TRUE(index.Contains("beta", 1));
  EXPECT_FALSE(index.Contains("beta", 0));  // Parent text is node-local.
}

TEST(InvertedIndexTest, TextIsNodeLocalNotSubtree) {
  // The paper's keywords(n) is per-component: a section does not inherit the
  // words of its paragraphs.
  doc::Document d = MakeDoc("<sec><par>inner</par></sec>");
  InvertedIndex index = InvertedIndex::Build(d);
  EXPECT_EQ(index.Lookup("inner"), (std::vector<doc::NodeId>{1}));
}

TEST(InvertedIndexTest, PluralFoldingAppliesAtIndexAndQueryTime) {
  doc::Document d = MakeDoc("<a>relational plans<b>one plan</b></a>");
  IndexOptions options;
  options.index_tag_names = false;
  options.tokenizer.fold_plurals = true;
  InvertedIndex index = InvertedIndex::Build(d, options);
  // Both surface forms land on the folded term, queryable by either form.
  EXPECT_EQ(index.Lookup("plan"), (std::vector<doc::NodeId>{0, 1}));
  EXPECT_EQ(index.Lookup("plans"), (std::vector<doc::NodeId>{0, 1}));
  EXPECT_EQ(index.Lookup("PLANS"), (std::vector<doc::NodeId>{0, 1}));
  // Without folding, the forms stay distinct.
  IndexOptions plain;
  plain.index_tag_names = false;
  InvertedIndex unfolded = InvertedIndex::Build(d, plain);
  EXPECT_EQ(unfolded.Lookup("plans"), (std::vector<doc::NodeId>{0}));
  EXPECT_EQ(unfolded.Lookup("plan"), (std::vector<doc::NodeId>{1}));
}

TEST(InvertedIndexTest, CountsAreConsistent) {
  doc::Document d = MakeDoc("<a>x y<b>y z</b></a>");
  IndexOptions options;
  options.index_tag_names = false;
  InvertedIndex index = InvertedIndex::Build(d, options);
  EXPECT_EQ(index.term_count(), 3u);    // x, y, z.
  EXPECT_EQ(index.posting_count(), 4u); // x@0 y@0 y@1 z@1.
  auto terms = index.Terms();
  EXPECT_EQ(terms.size(), 3u);
}

}  // namespace
}  // namespace xfrag::text
