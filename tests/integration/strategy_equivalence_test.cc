// Cross-strategy equivalence on generated corpora: all four evaluation
// strategies must return identical answer sets for identical queries, over a
// sweep of corpus shapes, keyword placements and filters.

#include <gtest/gtest.h>

#include "../testutil.h"
#include "gen/corpus.h"
#include "query/engine.h"

namespace xfrag::query {
namespace {

struct EquivalenceCase {
  size_t nodes;
  size_t count1;
  size_t count2;
  gen::PlantMode mode1;
  gen::PlantMode mode2;
  const char* filter;
  uint64_t seed;
};

class StrategyEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(StrategyEquivalenceTest, AllStrategiesAgree) {
  const auto& param = GetParam();
  gen::CorpusProfile profile;
  profile.target_nodes = param.nodes;
  profile.seed = param.seed;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(param.seed ^ 0xeeee);
  auto planted1 =
      gen::PlantKeyword(&raw, "kwone", param.count1, param.mode1, &rng);
  auto planted2 =
      gen::PlantKeyword(&raw, "kwtwo", param.count2, param.mode2, &rng);
  ASSERT_FALSE(planted1.empty());
  ASSERT_FALSE(planted2.empty());
  auto document = gen::Materialize(raw);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  QueryEngine engine(*document, index);

  Query q;
  q.terms = {"kwone", "kwtwo"};
  auto filter = ParseFilterExpression(param.filter);
  ASSERT_TRUE(filter.ok()) << filter.status().ToString();
  q.filter = *filter;

  algebra::FragmentSet reference;
  bool first = true;
  for (Strategy strategy :
       {Strategy::kBruteForce, Strategy::kFixedPointNaive,
        Strategy::kFixedPointReduced, Strategy::kPushDown}) {
    EvalOptions options;
    options.strategy = strategy;
    options.executor.powerset.max_set_size = algebra::kMaxPowersetSetSize;
    auto result = engine.Evaluate(q, options);
    if (!result.ok() &&
        result.status().code() == StatusCode::kResourceExhausted) {
      continue;  // Brute force legitimately refuses very large bases.
    }
    ASSERT_TRUE(result.ok())
        << StrategyName(strategy) << ": " << result.status().ToString();
    if (first) {
      reference = result->answers;
      first = false;
    } else {
      EXPECT_TRUE(result->answers.SetEquals(reference))
          << StrategyName(strategy) << " got " << result->answers.size()
          << " answers, reference " << reference.size();
    }
  }
  ASSERT_FALSE(first) << "no strategy produced a result";

  // Invariant: every answer satisfies the filter and contains both keywords.
  algebra::FilterContext ctx{document.operator->(), &index};
  for (const algebra::Fragment& f : reference) {
    EXPECT_TRUE(q.filter->Matches(f, ctx));
    bool has1 = false, has2 = false;
    for (doc::NodeId n : f.nodes()) {
      has1 = has1 || index.Contains("kwone", n);
      has2 = has2 || index.Contains("kwtwo", n);
    }
    EXPECT_TRUE(has1 && has2) << f.ToString();
  }
}

TEST(ThreeTermEquivalenceTest, AllStrategiesAgreeOnThreeTerms) {
  for (uint64_t seed : {301ull, 302ull, 303ull}) {
    gen::CorpusProfile profile;
    profile.target_nodes = 250;
    profile.seed = seed;
    gen::RawCorpus raw = gen::GenerateRaw(profile);
    Rng rng(seed ^ 0x333);
    gen::PlantKeyword(&raw, "kwone", 4, gen::PlantMode::kClustered, &rng);
    gen::PlantKeyword(&raw, "kwtwo", 3, gen::PlantMode::kScattered, &rng);
    gen::PlantKeyword(&raw, "kwthree", 3, gen::PlantMode::kSiblings, &rng);
    auto document = gen::Materialize(raw);
    ASSERT_TRUE(document.ok());
    auto index = text::InvertedIndex::Build(*document);
    QueryEngine engine(*document, index);

    Query q;
    q.terms = {"kwone", "kwtwo", "kwthree"};
    q.filter = algebra::filters::SizeAtMost(10);

    algebra::FragmentSet reference;
    bool first = true;
    for (Strategy strategy :
         {Strategy::kBruteForce, Strategy::kFixedPointNaive,
          Strategy::kFixedPointReduced, Strategy::kPushDown}) {
      EvalOptions options;
      options.strategy = strategy;
      auto result = engine.Evaluate(q, options);
      if (!result.ok() &&
          result.status().code() == StatusCode::kResourceExhausted) {
        // Brute force legitimately refuses: the *intermediate* powerset
        // result of the first two terms can exceed the subset guard.
        continue;
      }
      ASSERT_TRUE(result.ok())
          << StrategyName(strategy) << " seed " << seed << ": "
          << result.status().ToString();
      if (first) {
        reference = result->answers;
        first = false;
      } else {
        EXPECT_TRUE(result->answers.SetEquals(reference))
            << StrategyName(strategy) << " seed " << seed;
      }
    }
    // Every answer contains all three keywords.
    for (const algebra::Fragment& f : reference) {
      int covered = 0;
      for (const char* term : {"kwone", "kwtwo", "kwthree"}) {
        for (doc::NodeId n : f.nodes()) {
          if (index.Contains(term, n)) {
            ++covered;
            break;
          }
        }
      }
      EXPECT_EQ(covered, 3) << f.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpora, StrategyEquivalenceTest,
    ::testing::Values(
        EquivalenceCase{150, 4, 4, gen::PlantMode::kScattered,
                        gen::PlantMode::kScattered, "size<=5", 101},
        EquivalenceCase{150, 5, 3, gen::PlantMode::kClustered,
                        gen::PlantMode::kScattered, "size<=8", 102},
        EquivalenceCase{250, 6, 6, gen::PlantMode::kClustered,
                        gen::PlantMode::kClustered, "size<=10 & height<=4",
                        103},
        EquivalenceCase{250, 5, 5, gen::PlantMode::kSiblings,
                        gen::PlantMode::kSiblings, "span<=40", 104},
        EquivalenceCase{400, 7, 4, gen::PlantMode::kClustered,
                        gen::PlantMode::kSiblings,
                        "size<=6 & size>=2", 105},
        EquivalenceCase{400, 8, 8, gen::PlantMode::kClustered,
                        gen::PlantMode::kClustered, "true", 106},
        EquivalenceCase{120, 3, 3, gen::PlantMode::kScattered,
                        gen::PlantMode::kScattered, "height<=2", 107},
        EquivalenceCase{300, 6, 5, gen::PlantMode::kScattered,
                        gen::PlantMode::kClustered,
                        "size<=12 | height<=1", 108}));

}  // namespace
}  // namespace xfrag::query
