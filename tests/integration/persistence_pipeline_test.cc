// Cross-module pipeline: corpus → XML text → parse → index → persist →
// reload → collection → query. Every stage must preserve query answers.

#include <gtest/gtest.h>

#include <cstdio>

#include "collection/collection_engine.h"
#include "gen/corpus.h"
#include "query/engine.h"
#include "storage/storage.h"
#include "xml/parser.h"

namespace xfrag {
namespace {

TEST(PersistencePipelineTest, AnswersSurviveEveryRepresentation) {
  // Build a corpus with planted keywords.
  gen::CorpusProfile profile;
  profile.target_nodes = 500;
  profile.seed = 4242;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(4243);
  gen::PlantKeyword(&raw, "kwone", 6, gen::PlantMode::kClustered, &rng);
  gen::PlantKeyword(&raw, "kwtwo", 5, gen::PlantMode::kScattered, &rng);

  query::Query q;
  q.terms = {"kwone", "kwtwo"};
  q.filter = algebra::filters::SizeAtMost(6);

  // Path A: direct materialization.
  auto direct = gen::Materialize(raw);
  ASSERT_TRUE(direct.ok());
  auto direct_index = text::InvertedIndex::Build(*direct);
  query::QueryEngine direct_engine(*direct, direct_index);
  auto direct_result = direct_engine.Evaluate(q);
  ASSERT_TRUE(direct_result.ok());

  // Path B: through XML text.
  auto dom = xml::Parse(gen::ToXml(raw));
  ASSERT_TRUE(dom.ok());
  auto parsed = doc::Document::FromDom(*dom);
  ASSERT_TRUE(parsed.ok());
  auto parsed_index = text::InvertedIndex::Build(*parsed);
  query::QueryEngine parsed_engine(*parsed, parsed_index);
  auto parsed_result = parsed_engine.Evaluate(q);
  ASSERT_TRUE(parsed_result.ok());
  EXPECT_TRUE(parsed_result->answers.SetEquals(direct_result->answers));

  // Path C: through a persisted bundle.
  std::string path = ::testing::TempDir() + "/xfrag_pipeline_test.xdb";
  ASSERT_TRUE(storage::SaveBundleToFile(path, *direct, &direct_index).ok());
  auto bundle = storage::LoadBundleFromFile(path);
  ASSERT_TRUE(bundle.ok());
  ASSERT_TRUE(bundle->index.has_value());
  query::QueryEngine bundle_engine(bundle->document, *bundle->index);
  auto bundle_result = bundle_engine.Evaluate(q);
  ASSERT_TRUE(bundle_result.ok());
  EXPECT_TRUE(bundle_result->answers.SetEquals(direct_result->answers));
  std::remove(path.c_str());

  // Path D: through a collection (single member).
  collection::Collection library;
  ASSERT_TRUE(library.Add("only", std::move(*direct)).ok());
  collection::CollectionEngine collection_engine(library);
  auto collection_result = collection_engine.Evaluate(q);
  ASSERT_TRUE(collection_result.ok());
  algebra::FragmentSet collection_answers;
  for (const auto& answer : collection_result->answers) {
    collection_answers.Insert(answer.fragment);
  }
  EXPECT_TRUE(collection_answers.SetEquals(direct_result->answers));
}

TEST(PersistencePipelineTest, RebuiltIndexMatchesPersistedIndex) {
  gen::CorpusProfile profile;
  profile.target_nodes = 300;
  profile.seed = 777;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  auto document = gen::Materialize(raw);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);

  std::string data = storage::WriteBundle(*document, &index);
  auto bundle = storage::ReadBundle(data);
  ASSERT_TRUE(bundle.ok());
  ASSERT_TRUE(bundle->index.has_value());

  // An index rebuilt from the reloaded document equals the persisted one.
  auto rebuilt = text::InvertedIndex::Build(bundle->document);
  EXPECT_EQ(rebuilt.term_count(), bundle->index->term_count());
  EXPECT_EQ(rebuilt.posting_count(), bundle->index->posting_count());
  for (const auto& term : rebuilt.Terms()) {
    EXPECT_EQ(rebuilt.Lookup(term), bundle->index->Lookup(term)) << term;
  }
}

}  // namespace
}  // namespace xfrag
