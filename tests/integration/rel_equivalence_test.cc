// The relational backend must return exactly the same answers as the native
// engine for the anti-monotonic structural filters it supports.

#include <gtest/gtest.h>

#include "../testutil.h"
#include "gen/corpus.h"
#include "query/engine.h"
#include "rel/engine.h"

namespace xfrag {
namespace {

struct RelCase {
  size_t nodes;
  size_t count1;
  size_t count2;
  uint32_t beta;
  uint64_t seed;
};

class RelEquivalenceTest : public ::testing::TestWithParam<RelCase> {};

TEST_P(RelEquivalenceTest, NativeAndRelationalAnswersMatch) {
  const auto& param = GetParam();
  gen::CorpusProfile profile;
  profile.target_nodes = param.nodes;
  profile.seed = param.seed;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(param.seed ^ 0x12e1);
  gen::PlantKeyword(&raw, "kwone", param.count1, gen::PlantMode::kClustered,
                    &rng);
  gen::PlantKeyword(&raw, "kwtwo", param.count2, gen::PlantMode::kScattered,
                    &rng);
  auto document = gen::Materialize(raw);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);

  // Native.
  query::QueryEngine native(*document, index);
  query::Query q;
  q.terms = {"kwone", "kwtwo"};
  q.filter = algebra::filters::SizeAtMost(param.beta);
  query::EvalOptions options;
  options.strategy = query::Strategy::kPushDown;
  auto native_result = native.Evaluate(q, options);
  ASSERT_TRUE(native_result.ok()) << native_result.status().ToString();

  // Relational.
  auto rel_engine = rel::RelationalEngine::Create(*document, index);
  ASSERT_TRUE(rel_engine.ok());
  rel::RelFilter filter;
  filter.size_at_most = param.beta;
  auto rel_result = rel_engine->Evaluate({"kwone", "kwtwo"}, filter);
  ASSERT_TRUE(rel_result.ok()) << rel_result.status().ToString();

  EXPECT_TRUE(rel_result->SetEquals(native_result->answers))
      << "native " << native_result->answers.size() << " vs relational "
      << rel_result->size();
}

TEST_P(RelEquivalenceTest, HeightFilterAgreesAcrossBackends) {
  const auto& param = GetParam();
  gen::CorpusProfile profile;
  profile.target_nodes = param.nodes;
  profile.seed = param.seed ^ 0xbeef;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(param.seed ^ 0x5e5e);
  gen::PlantKeyword(&raw, "kwone", param.count1, gen::PlantMode::kSiblings,
                    &rng);
  gen::PlantKeyword(&raw, "kwtwo", param.count2, gen::PlantMode::kClustered,
                    &rng);
  auto document = gen::Materialize(raw);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);

  query::QueryEngine native(*document, index);
  query::Query q;
  q.terms = {"kwone", "kwtwo"};
  q.filter = algebra::filters::HeightAtMost(3);
  query::EvalOptions options;
  options.strategy = query::Strategy::kPushDown;
  auto native_result = native.Evaluate(q, options);
  ASSERT_TRUE(native_result.ok());

  auto rel_engine = rel::RelationalEngine::Create(*document, index);
  ASSERT_TRUE(rel_engine.ok());
  rel::RelFilter filter;
  filter.height_at_most = 3;
  auto rel_result = rel_engine->Evaluate({"kwone", "kwtwo"}, filter);
  ASSERT_TRUE(rel_result.ok());

  EXPECT_TRUE(rel_result->SetEquals(native_result->answers));
}

INSTANTIATE_TEST_SUITE_P(Corpora, RelEquivalenceTest,
                         ::testing::Values(RelCase{120, 4, 4, 6, 201},
                                           RelCase{200, 5, 4, 8, 202},
                                           RelCase{300, 6, 5, 5, 203},
                                           RelCase{400, 6, 6, 10, 204}));

}  // namespace
}  // namespace xfrag
