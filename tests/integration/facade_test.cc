// The umbrella header must compile standalone and expose the documented
// five-minute-tour workflow.

#include "xfrag.h"

#include <gtest/gtest.h>

namespace {

TEST(FacadeTest, FiveMinuteTourCompilesAndRuns) {
  auto dom = xfrag::xml::Parse(
      "<article><par>XQuery plans benefit from optimization.</par>"
      "<par>unrelated</par></article>");
  ASSERT_TRUE(dom.ok());
  auto document = xfrag::doc::Document::FromDom(*dom);
  ASSERT_TRUE(document.ok());
  auto index = xfrag::text::InvertedIndex::Build(*document);
  xfrag::query::QueryEngine engine(*document, index);

  xfrag::query::Query q;
  q.terms = {"xquery", "optimization"};
  q.filter = *xfrag::query::ParseFilterExpression("size<=3");
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0], xfrag::algebra::Fragment::Single(1));
}

}  // namespace
