// Full-pipeline integration: XML text → parser → document → index → query
// engine → answers, including comparisons against the LCA baselines and the
// paper's keyword-split scenarios of Figure 2.

#include <gtest/gtest.h>

#include <thread>

#include "../testutil.h"
#include "baseline/lca_baselines.h"
#include "gen/corpus.h"
#include "query/engine.h"
#include "xml/parser.h"

namespace xfrag {
namespace {

using algebra::Fragment;
using testutil::Frag;

// Parses XML text all the way into an engine-ready (document, index) pair.
struct Pipeline {
  std::unique_ptr<doc::Document> document;
  std::unique_ptr<text::InvertedIndex> index;

  static Pipeline FromXml(std::string_view xml_text) {
    Pipeline p;
    auto dom = xml::Parse(xml_text);
    EXPECT_TRUE(dom.ok()) << dom.status().ToString();
    auto d = doc::Document::FromDom(*dom);
    EXPECT_TRUE(d.ok());
    p.document = std::make_unique<doc::Document>(std::move(d).value());
    text::IndexOptions options;
    options.index_tag_names = false;
    p.index = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*p.document, options));
    return p;
  }
};

TEST(EndToEndTest, XmlToAnswersPipeline) {
  Pipeline p = Pipeline::FromXml(R"(
    <article>
      <section>
        <par>databases need indexes</par>
        <par>trees need traversals</par>
      </section>
      <section>
        <par>indexes on trees</par>
      </section>
    </article>)");
  // Ids: article=0, section=1, par=2, par=3, section=4, par=5.
  query::QueryEngine engine(*p.document, *p.index);
  query::Query q;
  q.terms = {"indexes", "trees"};
  q.filter = algebra::filters::SizeAtMost(4);
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // ⟨n5⟩ has both; ⟨n1,n2,n3⟩ combines the two paragraphs; ⟨n4,n5⟩ etc.
  EXPECT_TRUE(result->answers.Contains(Fragment::Single(5)));
  EXPECT_TRUE(result->answers.Contains(Frag(*p.document, {1, 2, 3})));
  for (const Fragment& f : result->answers) {
    EXPECT_LE(f.size(), 4u);
  }
}

// Figure 2 of the paper: however two keywords are split across the target
// subtree's nodes — same node, sibling nodes, ancestor/descendant, cousins —
// the algebra retrieves the target fragment.
TEST(EndToEndTest, Figure2KeywordSplitVariations) {
  struct SplitCase {
    const char* xml;
    std::vector<doc::NodeId> target;
  };
  std::vector<SplitCase> cases = {
      // Both keywords in one node.
      {"<r><a>k1 k2</a><b>noise</b></r>", {1}},
      // Keywords on two siblings: target is parent + both.
      {"<r><a><b>k1</b><c>k2</c></a></r>", {1, 2, 3}},
      // Ancestor/descendant split.
      {"<r><a>k1<b><c>k2</c></b></a></r>", {1, 2, 3}},
      // Cousins: join passes through the grandparent.
      {"<r><a><b>k1</b></a><c><d>k2</d></c></r>", {0, 1, 2, 3, 4}},
      // Deep vs shallow occurrence.
      {"<r><a><b><c>k1</c></b><d>k2</d></a></r>", {1, 2, 3, 4}},
  };
  for (const auto& test_case : cases) {
    Pipeline p = Pipeline::FromXml(test_case.xml);
    query::QueryEngine engine(*p.document, *p.index);
    query::Query q;
    q.terms = {"k1", "k2"};
    auto result = engine.Evaluate(q);
    ASSERT_TRUE(result.ok()) << test_case.xml;
    Fragment target = Frag(*p.document, test_case.target);
    EXPECT_TRUE(result->answers.Contains(target))
        << "target " << target.ToString() << " missing for " << test_case.xml
        << "; got " << result->answers.ToString();
  }
}

TEST(EndToEndTest, AlgebraAnswersSupersetOfSlcaSubtreeRoots) {
  // Every SLCA is the root of some algebraic answer when no filter prunes
  // it: the join of the match nodes below an SLCA is contained in its
  // subtree and rooted at... the SLCA itself exactly when the matches
  // require it. Weaker, robust form: for every SLCA v there exists an
  // unfiltered answer fragment fully inside v's subtree.
  gen::CorpusProfile profile;
  profile.target_nodes = 250;
  profile.seed = 77;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(78);
  gen::PlantKeyword(&raw, "kwone", 5, gen::PlantMode::kClustered, &rng);
  gen::PlantKeyword(&raw, "kwtwo", 5, gen::PlantMode::kClustered, &rng);
  auto document = gen::Materialize(raw);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);

  query::QueryEngine engine(*document, index);
  query::Query q;
  q.terms = {"kwone", "kwtwo"};
  query::EvalOptions options;
  options.strategy = query::Strategy::kFixedPointNaive;
  auto result = engine.Evaluate(q, options);
  ASSERT_TRUE(result.ok());

  baseline::LcaBaselines baselines(*document, index);
  auto slca = baselines.Slca({"kwone", "kwtwo"});
  ASSERT_TRUE(slca.ok());
  for (doc::NodeId v : *slca) {
    bool covered = false;
    for (const Fragment& f : result->answers) {
      if (document->IsAncestorOrSelf(v, f.root()) &&
          f.nodes().back() < v + document->subtree_size(v)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "no answer inside subtree of SLCA " << v;
  }
}

TEST(EndToEndTest, FilterMiniLanguageDrivesEndToEnd) {
  Pipeline p = Pipeline::FromXml(R"(
    <doc>
      <sec><par>alpha</par><par>beta</par></sec>
      <sec><par>alpha beta</par></sec>
    </doc>)");
  query::QueryEngine engine(*p.document, *p.index);
  query::Query q;
  q.terms = {"alpha", "beta"};
  auto filter = query::ParseFilterExpression("size<=1");
  ASSERT_TRUE(filter.ok());
  q.filter = *filter;
  auto result = engine.Evaluate(q);
  ASSERT_TRUE(result.ok());
  // Only the single node containing both keywords survives size<=1.
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0].size(), 1u);
}

TEST(EndToEndTest, ConstEngineIsSafeToShareAcrossThreads) {
  // QueryEngine::Evaluate is const and stateless; concurrent evaluations
  // over one engine must agree with a sequential run.
  gen::CorpusProfile profile;
  profile.target_nodes = 600;
  profile.seed = 4321;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(4322);
  gen::PlantKeyword(&raw, "kwone", 6, gen::PlantMode::kClustered, &rng);
  gen::PlantKeyword(&raw, "kwtwo", 5, gen::PlantMode::kScattered, &rng);
  auto document = gen::Materialize(raw);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  query::QueryEngine engine(*document, index);

  query::Query q;
  q.terms = {"kwone", "kwtwo"};
  q.filter = algebra::filters::SizeAtMost(6);
  query::EvalOptions options;
  options.strategy = query::Strategy::kPushDown;

  auto reference = engine.Evaluate(q, options);
  ASSERT_TRUE(reference.ok());

  constexpr int kThreads = 4;
  std::vector<algebra::FragmentSet> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto result = engine.Evaluate(q, options);
      if (result.ok()) results[static_cast<size_t>(t)] = result->answers;
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& answers : results) {
    EXPECT_TRUE(answers.SetEquals(reference->answers));
  }
}

TEST(EndToEndTest, LargeCorpusSmokeWithPushDown) {
  gen::CorpusProfile profile;
  profile.target_nodes = 3000;
  profile.seed = 99;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(100);
  gen::PlantKeyword(&raw, "kwone", 25, gen::PlantMode::kClustered, &rng);
  gen::PlantKeyword(&raw, "kwtwo", 25, gen::PlantMode::kScattered, &rng);
  auto document = gen::Materialize(raw);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  query::QueryEngine engine(*document, index);
  query::Query q;
  q.terms = {"kwone", "kwtwo"};
  q.filter = algebra::filters::And(algebra::filters::SizeAtMost(6),
                                   algebra::filters::HeightAtMost(3));
  query::EvalOptions options;
  options.strategy = query::Strategy::kPushDown;
  auto result = engine.Evaluate(q, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  algebra::FilterContext ctx{&*document, &index};
  for (const Fragment& f : result->answers) {
    EXPECT_TRUE(q.filter->Matches(f, ctx));
  }
}

}  // namespace
}  // namespace xfrag
