#include "doc/document.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xfrag::doc {
namespace {

// Fixture tree (ids are pre-order):
//        0
//       / \.
//      1   5
//     /|\   \.
//    2 3 4   6
//            |
//            7
Document MakeFixture() {
  auto doc = Document::FromParents(
      {kNoNode, 0, 1, 1, 1, 0, 5, 6},
      {"r", "a", "b", "c", "d", "e", "f", "g"},
      {"", "", "", "", "", "", "", ""});
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

TEST(DocumentTest, BasicShape) {
  Document d = MakeFixture();
  EXPECT_EQ(d.size(), 8u);
  EXPECT_EQ(d.root(), 0u);
  EXPECT_EQ(d.parent(0), kNoNode);
  EXPECT_EQ(d.parent(3), 1u);
  EXPECT_EQ(d.parent(7), 6u);
  EXPECT_EQ(d.depth(0), 0u);
  EXPECT_EQ(d.depth(2), 2u);
  EXPECT_EQ(d.depth(7), 3u);
  EXPECT_EQ(d.height(), 3u);
  EXPECT_EQ(d.tag(5), "e");
}

TEST(DocumentTest, ChildrenInOrder) {
  Document d = MakeFixture();
  auto as_vector = [](std::span<const NodeId> span) {
    return std::vector<NodeId>(span.begin(), span.end());
  };
  EXPECT_EQ(as_vector(d.children(0)), (std::vector<NodeId>{1, 5}));
  EXPECT_EQ(as_vector(d.children(1)), (std::vector<NodeId>{2, 3, 4}));
  EXPECT_TRUE(d.children(2).empty());
}

TEST(DocumentTest, SubtreeSizes) {
  Document d = MakeFixture();
  EXPECT_EQ(d.subtree_size(0), 8u);
  EXPECT_EQ(d.subtree_size(1), 4u);
  EXPECT_EQ(d.subtree_size(5), 3u);
  EXPECT_EQ(d.subtree_size(7), 1u);
}

TEST(DocumentTest, AncestorTests) {
  Document d = MakeFixture();
  EXPECT_TRUE(d.IsAncestorOrSelf(0, 7));
  EXPECT_TRUE(d.IsAncestorOrSelf(3, 3));
  EXPECT_FALSE(d.IsAncestor(3, 3));
  EXPECT_TRUE(d.IsAncestor(1, 4));
  EXPECT_FALSE(d.IsAncestor(1, 5));
  EXPECT_FALSE(d.IsAncestor(4, 1));
  EXPECT_TRUE(d.IsAncestor(5, 7));
}

TEST(DocumentTest, Lca) {
  Document d = MakeFixture();
  EXPECT_EQ(d.Lca(2, 4), 1u);
  EXPECT_EQ(d.Lca(2, 7), 0u);
  EXPECT_EQ(d.Lca(6, 7), 6u);
  EXPECT_EQ(d.Lca(3, 3), 3u);
  EXPECT_EQ(d.Lca(0, 5), 0u);
}

TEST(DocumentTest, LcaOfMany) {
  Document d = MakeFixture();
  EXPECT_EQ(d.Lca(std::vector<NodeId>{2, 3, 4}), 1u);
  EXPECT_EQ(d.Lca(std::vector<NodeId>{2, 7}), 0u);
  EXPECT_EQ(d.Lca(std::vector<NodeId>{6}), 6u);
}

TEST(DocumentTest, PathToAncestor) {
  Document d = MakeFixture();
  EXPECT_EQ(d.PathToAncestor(7, 0), (std::vector<NodeId>{7, 6, 5, 0}));
  EXPECT_EQ(d.PathToAncestor(3, 3), (std::vector<NodeId>{3}));
  EXPECT_EQ(d.PathToAncestor(4, 1), (std::vector<NodeId>{4, 1}));
}

TEST(DocumentTest, Distance) {
  Document d = MakeFixture();
  EXPECT_EQ(d.Distance(2, 4), 2u);
  EXPECT_EQ(d.Distance(2, 7), 5u);
  EXPECT_EQ(d.Distance(0, 0), 0u);
  EXPECT_EQ(d.Distance(6, 7), 1u);
}

TEST(DocumentTest, SingleNodeDocument) {
  auto d = Document::FromParents({kNoNode}, {"only"}, {"text"});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 1u);
  EXPECT_EQ(d->Lca(0, 0), 0u);
  EXPECT_EQ(d->subtree_size(0), 1u);
  EXPECT_EQ(d->height(), 0u);
}

TEST(DocumentTest, RejectsEmpty) {
  EXPECT_FALSE(Document::FromParents({}, {}, {}).ok());
}

TEST(DocumentTest, RejectsMismatchedArrays) {
  EXPECT_FALSE(Document::FromParents({kNoNode}, {"a", "b"}, {""}).ok());
}

TEST(DocumentTest, RejectsNonPreOrderParent) {
  // Node 1's parent is 2 (> 1): not a pre-order numbering.
  EXPECT_FALSE(
      Document::FromParents({kNoNode, 2, 0}, {"a", "b", "c"}, {"", "", ""})
          .ok());
}

TEST(DocumentTest, RejectsNonContiguousSubtreeNumbering) {
  // parents {-, 0, 0, 1}: node 3 claims parent 1, but node 2 (1's sibling)
  // was emitted in between, so subtree(1) would be {1, 3} — not a
  // contiguous id range, hence not a pre-order numbering.
  auto d = Document::FromParents({kNoNode, 0, 0, 1},
                                 {"a", "b", "c", "d"}, {"", "", "", ""});
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.status().message().find("rightmost path"), std::string::npos);
}

TEST(DocumentTest, RejectsRootWithParent) {
  EXPECT_FALSE(Document::FromParents({0}, {"a"}, {""}).ok());
}

TEST(DocumentTest, FromDomFlattensElementsOnly) {
  auto dom = xml::Parse(
      "<a id=\"r\">head<b>x<!-- note --></b>mid<c><d/></c>tail</a>");
  ASSERT_TRUE(dom.ok());
  auto d = Document::FromDom(*dom);
  ASSERT_TRUE(d.ok());
  // Elements: a(0), b(1), c(2), d(3).
  ASSERT_EQ(d->size(), 4u);
  EXPECT_EQ(d->tag(0), "a");
  EXPECT_EQ(d->tag(1), "b");
  EXPECT_EQ(d->tag(2), "c");
  EXPECT_EQ(d->tag(3), "d");
  EXPECT_EQ(d->parent(3), 2u);
  // Node text: direct text plus attribute values.
  EXPECT_EQ(d->text(0), "headmidtail r");
  EXPECT_EQ(d->text(1), "x");
}

TEST(DocumentTest, FromDomRejectsEmptyDom) {
  xml::XmlDocument empty;
  EXPECT_FALSE(Document::FromDom(empty).ok());
}

TEST(DocumentTest, DeepChainDocument) {
  // A pathological chain: 0 -> 1 -> 2 -> ... -> 99.
  std::vector<NodeId> parents{kNoNode};
  std::vector<std::string> tags{"n"}, texts{""};
  for (NodeId i = 1; i < 100; ++i) {
    parents.push_back(i - 1);
    tags.push_back("n");
    texts.push_back("");
  }
  auto d = Document::FromParents(parents, tags, texts);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->height(), 99u);
  EXPECT_EQ(d->Lca(99, 50), 50u);
  EXPECT_EQ(d->Distance(99, 0), 99u);
  EXPECT_EQ(d->subtree_size(0), 100u);
}

TEST(DocumentTest, WideFlatDocument) {
  // Root with 200 leaf children.
  std::vector<NodeId> parents{kNoNode};
  std::vector<std::string> tags{"r"}, texts{""};
  for (NodeId i = 1; i <= 200; ++i) {
    parents.push_back(0);
    tags.push_back("leaf");
    texts.push_back("");
  }
  auto d = Document::FromParents(parents, tags, texts);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->height(), 1u);
  EXPECT_EQ(d->Lca(1, 200), 0u);
  EXPECT_EQ(d->children(0).size(), 200u);
}

}  // namespace
}  // namespace xfrag::doc
