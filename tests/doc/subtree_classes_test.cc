// Build-time subtree hash-consing (doc/subtree_classes.h): interning is
// structural (tags + texts + child classes), class ids are comparable across
// documents sharing one interner, and the per-document index exposes the
// duplication anchors the class-aware kernels key on.

#include "doc/subtree_classes.h"

#include <gtest/gtest.h>

#include "gen/corpus.h"

namespace xfrag::doc {
namespace {

// Fixture with two byte-identical subtrees (ids are pre-order):
//        0 r
//      / | \.
//  1 a   4 a   7 c
//  / \   / \.
// 2b 3b 5b 6b
// Nodes 1..3 and 4..6 are isomorphic including texts; node 7 is unique.
Document MakeTwinFixture() {
  auto doc = Document::FromParents(
      {kNoNode, 0, 1, 1, 0, 4, 4, 0},
      {"r", "a", "b", "b", "a", "b", "b", "c"},
      {"", "x", "y", "z", "x", "y", "z", "w"});
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

TEST(SubtreeClassesTest, IsomorphicSubtreesShareAClass) {
  Document d = MakeTwinFixture();
  SubtreeClassInterner interner;
  SubtreeClassIndex index = SubtreeClassIndex::Build(d, &interner);
  ASSERT_EQ(index.size(), d.size());
  EXPECT_EQ(index.class_of(1), index.class_of(4));
  EXPECT_EQ(index.class_of(2), index.class_of(5));
  EXPECT_EQ(index.class_of(3), index.class_of(6));
  // Same tag, different text → different class.
  EXPECT_NE(index.class_of(2), index.class_of(3));
  // Distinct-content nodes get distinct classes.
  EXPECT_NE(index.class_of(7), index.class_of(1));
  EXPECT_NE(index.class_of(0), index.class_of(1));
}

TEST(SubtreeClassesTest, DupAnchorIsTheHighestDuplicatedAncestor) {
  Document d = MakeTwinFixture();
  SubtreeClassInterner interner;
  SubtreeClassIndex index = SubtreeClassIndex::Build(d, &interner);
  EXPECT_TRUE(index.has_duplication());
  // Everything inside a duplicated 'a' subtree anchors at that subtree root.
  EXPECT_EQ(index.dup_anchor(1), 1u);
  EXPECT_EQ(index.dup_anchor(2), 1u);
  EXPECT_EQ(index.dup_anchor(3), 1u);
  EXPECT_EQ(index.dup_anchor(4), 4u);
  EXPECT_EQ(index.dup_anchor(5), 4u);
  EXPECT_EQ(index.dup_anchor(6), 4u);
  // The root and the unique 'c' child are outside every duplicated subtree.
  EXPECT_EQ(index.dup_anchor(0), kNoNode);
  EXPECT_EQ(index.dup_anchor(7), kNoNode);
  EXPECT_EQ(index.duplicated_nodes(), 6u);
  // Only the *anchor* class counts: the duplicated "y"/"z" leaves live
  // inside the duplicated 'a' subtrees and are covered by that anchor.
  EXPECT_EQ(index.duplicated_classes(), 1u);
}

TEST(SubtreeClassesTest, DuplicateFreeDocumentBypasses) {
  auto doc = Document::FromParents({kNoNode, 0, 1, 0},
                                   {"r", "a", "b", "c"},
                                   {"", "p", "q", "s"});
  ASSERT_TRUE(doc.ok());
  SubtreeClassInterner interner;
  SubtreeClassIndex index = SubtreeClassIndex::Build(*doc, &interner);
  EXPECT_FALSE(index.has_duplication());
  EXPECT_EQ(index.duplicated_nodes(), 0u);
  EXPECT_EQ(index.duplicated_classes(), 0u);
  for (NodeId n = 0; n < doc->size(); ++n) {
    EXPECT_EQ(index.dup_anchor(n), kNoNode) << "node " << n;
  }
}

TEST(SubtreeClassesTest, RootClassEqualAcrossIdenticalDocuments) {
  SubtreeClassInterner interner;
  Document a = MakeTwinFixture();
  Document b = MakeTwinFixture();
  SubtreeClassIndex ia = SubtreeClassIndex::Build(a, &interner);
  SubtreeClassIndex ib = SubtreeClassIndex::Build(b, &interner);
  EXPECT_EQ(ia.root_class(), ib.root_class());

  auto other = Document::FromParents({kNoNode, 0}, {"r", "a"}, {"", "other"});
  ASSERT_TRUE(other.ok());
  SubtreeClassIndex ic = SubtreeClassIndex::Build(*other, &interner);
  EXPECT_NE(ia.root_class(), ic.root_class());

  // Two interned copies of the twin fixture: every class occurs at least
  // twice collection-wide, and the root class exactly twice.
  EXPECT_EQ(interner.occurrences(ia.root_class()), 2u);
  EXPECT_EQ(interner.class_nodes(ia.root_class()), a.size());
}

TEST(SubtreeClassesTest, UniqueSubtreeNodesCountsDeduplicatedForest) {
  Document d = MakeTwinFixture();
  SubtreeClassInterner interner;
  SubtreeClassIndex index = SubtreeClassIndex::Build(d, &interner);
  // Classes: r(8 nodes), a(3), b"y"(1), b"z"(1), c(1) → 14 unique nodes of
  // 8 corpus nodes (nested duplicates share structure; see the accessor's
  // doc comment for why this is the raw class-table sum, not the headline
  // ratio).
  EXPECT_EQ(interner.size(), 5u);
  EXPECT_EQ(interner.unique_subtree_nodes(), 14u);
}

TEST(SubtreeClassesTest, GeneratedStampedCorpusHasDuplication) {
  gen::CorpusProfile profile;
  profile.target_nodes = 300;
  profile.seed = 77;
  profile.duplication = 0.5;
  auto document = gen::Materialize(gen::GenerateRaw(profile));
  ASSERT_TRUE(document.ok());
  SubtreeClassInterner interner;
  SubtreeClassIndex index = SubtreeClassIndex::Build(*document, &interner);
  EXPECT_TRUE(index.has_duplication());
  EXPECT_GT(index.duplicated_nodes(), 0u);
}

}  // namespace
}  // namespace xfrag::doc
