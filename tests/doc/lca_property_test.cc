// Property tests: the O(1) sparse-table LCA agrees with a reference
// parent-walking implementation on randomly generated trees.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "doc/document.h"

namespace xfrag::doc {
namespace {

// Reference LCA by walking parents upward.
NodeId ReferenceLca(const Document& d, NodeId a, NodeId b) {
  while (a != b) {
    if (d.depth(a) >= d.depth(b)) {
      a = d.parent(a);
    } else {
      b = d.parent(b);
    }
  }
  return a;
}

// Random tree in pre-order numbering: node i attaches to one of the last
// `window` nodes of the current rightmost path (the set of legal pre-order
// parents); window=1 gives chains, large windows give bushy shapes.
Document RandomTree(size_t n, size_t window, uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> parents{kNoNode};
  std::vector<NodeId> path{0};
  std::vector<std::string> tags{"n"}, texts{""};
  for (size_t i = 1; i < n; ++i) {
    size_t w = std::min(window, path.size());
    size_t index = path.size() - 1 - static_cast<size_t>(rng.Uniform(w));
    parents.push_back(path[index]);
    path.resize(index + 1);
    path.push_back(static_cast<NodeId>(i));
    tags.push_back("n");
    texts.push_back("");
  }
  auto doc = Document::FromParents(parents, tags, texts);
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

struct LcaCase {
  size_t nodes;
  size_t window;
  uint64_t seed;
};

class LcaPropertyTest : public ::testing::TestWithParam<LcaCase> {};

TEST_P(LcaPropertyTest, MatchesReferenceOnRandomPairs) {
  const LcaCase& param = GetParam();
  Document d = RandomTree(param.nodes, param.window, param.seed);
  Rng rng(param.seed ^ 0xabcdef);
  for (int trial = 0; trial < 500; ++trial) {
    NodeId a = static_cast<NodeId>(rng.Uniform(d.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(d.size()));
    EXPECT_EQ(d.Lca(a, b), ReferenceLca(d, a, b))
        << "a=" << a << " b=" << b << " n=" << param.nodes;
  }
}

TEST_P(LcaPropertyTest, LcaIsCommonAncestorAndDeepest) {
  const LcaCase& param = GetParam();
  Document d = RandomTree(param.nodes, param.window, param.seed);
  Rng rng(param.seed ^ 0x123456);
  for (int trial = 0; trial < 200; ++trial) {
    NodeId a = static_cast<NodeId>(rng.Uniform(d.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(d.size()));
    NodeId l = d.Lca(a, b);
    EXPECT_TRUE(d.IsAncestorOrSelf(l, a));
    EXPECT_TRUE(d.IsAncestorOrSelf(l, b));
    // No strict descendant of l is a common ancestor.
    for (NodeId child : d.children(l)) {
      EXPECT_FALSE(d.IsAncestorOrSelf(child, a) && d.IsAncestorOrSelf(child, b));
    }
  }
}

TEST_P(LcaPropertyTest, AncestorIntervalMatchesParentWalk) {
  const LcaCase& param = GetParam();
  Document d = RandomTree(param.nodes, param.window, param.seed);
  Rng rng(param.seed ^ 0x777);
  for (int trial = 0; trial < 200; ++trial) {
    NodeId a = static_cast<NodeId>(rng.Uniform(d.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(d.size()));
    bool walk = false;
    for (NodeId cur = b;; cur = d.parent(cur)) {
      if (cur == a) {
        walk = true;
        break;
      }
      if (cur == d.root()) break;
    }
    EXPECT_EQ(d.IsAncestorOrSelf(a, b), walk) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LcaPropertyTest,
    ::testing::Values(LcaCase{2, 1, 1}, LcaCase{17, 1, 2},    // Chain-ish.
                      LcaCase{64, 64, 3}, LcaCase{64, 4, 4},  // Star / bushy.
                      LcaCase{257, 16, 5}, LcaCase{1000, 50, 6},
                      LcaCase{1000, 2, 7}, LcaCase{4096, 1000, 8}));

}  // namespace
}  // namespace xfrag::doc
