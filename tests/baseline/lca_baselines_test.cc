// SLCA / ELCA / smallest-subtree baselines: exact cases, the brute-force
// oracle cross-check, and the paper's effectiveness argument (the target
// fragment ⟨n16,n17,n18⟩ is unreachable for the baselines).

#include "baseline/lca_baselines.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "gen/corpus.h"
#include "gen/paper_document.h"

namespace xfrag::baseline {
namespace {

using doc::NodeId;

// Fixture:
//          0 "x"
//         /    \.
//        1      4 "x y"
//       / \      \.
//  "x" 2   3 "y"  5 "y"
doc::Document MakeDoc() {
  auto d = doc::Document::FromParents(
      {doc::kNoNode, 0, 1, 1, 0, 4}, {"r", "a", "b", "c", "d", "e"},
      {"x", "", "x", "y", "x y", "y"});
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    document_ = std::make_unique<doc::Document>(MakeDoc());
    text::IndexOptions options;
    options.index_tag_names = false;
    index_ = std::make_unique<text::InvertedIndex>(
        text::InvertedIndex::Build(*document_, options));
    baselines_ = std::make_unique<LcaBaselines>(*document_, *index_);
  }

  std::unique_ptr<doc::Document> document_;
  std::unique_ptr<text::InvertedIndex> index_;
  std::unique_ptr<LcaBaselines> baselines_;
};

TEST_F(BaselineTest, SlcaTwoTerms) {
  // x: {0, 2, 4}; y: {3, 4, 5}.
  // Subtrees containing both: 0 (all), 1 (x@2, y@3), 4 (x@4, y@5).
  // Minimal: 1 and 4.
  auto slca = baselines_->Slca({"x", "y"});
  ASSERT_TRUE(slca.ok());
  EXPECT_EQ(*slca, (std::vector<NodeId>{1, 4}));
}

TEST_F(BaselineTest, SlcaSingleTermIsPostings) {
  auto slca = baselines_->Slca({"y"});
  ASSERT_TRUE(slca.ok());
  // Minimal subtrees containing y: exactly the posting nodes... except
  // ancestors of postings are non-minimal: y@{3,4,5}: 4 contains y itself
  // but child 5 also contains y ⇒ 4 not minimal.
  EXPECT_EQ(*slca, (std::vector<NodeId>{3, 5}));
}

TEST_F(BaselineTest, SlcaMissingTermEmpty) {
  auto slca = baselines_->Slca({"x", "zzz"});
  ASSERT_TRUE(slca.ok());
  EXPECT_TRUE(slca->empty());
}

TEST_F(BaselineTest, SlcaRejectsEmptyQuery) {
  EXPECT_FALSE(baselines_->Slca({}).ok());
}

TEST_F(BaselineTest, SlcaMatchesBruteForceOracle) {
  auto fast = baselines_->Slca({"x", "y"});
  auto oracle = baselines_->SlcaBruteForce({"x", "y"}, 10000);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(*fast, *oracle);
}

TEST_F(BaselineTest, BruteForceGuard) {
  auto result = baselines_->SlcaBruteForce({"x", "y"}, 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BaselineTest, ElcaIncludesExclusiveAncestors) {
  // ELCA for {x, y}: node 1 (x@2, y@3 exclusively), node 4 (x@4, y@5).
  // Node 0: its x-witnesses are 0 itself (not under 1 or 4)... x@0 has
  // lowest masked ancestor 0, but every y occurrence lies under a masked
  // descendant (3 under 1; 4,5 under 4) ⇒ 0 is NOT an ELCA.
  auto elca = baselines_->Elca({"x", "y"});
  ASSERT_TRUE(elca.ok());
  EXPECT_EQ(*elca, (std::vector<NodeId>{1, 4}));
}

TEST_F(BaselineTest, ElcaSupersetOfSlca) {
  auto slca = baselines_->Slca({"x", "y"});
  auto elca = baselines_->Elca({"x", "y"});
  ASSERT_TRUE(slca.ok());
  ASSERT_TRUE(elca.ok());
  for (NodeId n : *slca) {
    EXPECT_NE(std::find(elca->begin(), elca->end(), n), elca->end());
  }
}

TEST_F(BaselineTest, ElcaDetectsRootWithOwnWitness) {
  // Root text has both terms ⇒ root is an ELCA even though descendants
  // also contain them.
  auto d = doc::Document::FromParents({doc::kNoNode, 0}, {"r", "a"},
                                      {"x y", "x y"});
  ASSERT_TRUE(d.ok());
  text::IndexOptions options;
  options.index_tag_names = false;
  auto index = text::InvertedIndex::Build(*d, options);
  LcaBaselines baselines(*d, index);
  auto elca = baselines.Elca({"x", "y"});
  ASSERT_TRUE(elca.ok());
  EXPECT_EQ(*elca, (std::vector<NodeId>{0, 1}));
  auto slca = baselines.Slca({"x", "y"});
  ASSERT_TRUE(slca.ok());
  EXPECT_EQ(*slca, (std::vector<NodeId>{1}));
}

TEST_F(BaselineTest, SmallestSubtreeAnswersAreFullSubtrees) {
  auto answers = baselines_->SmallestSubtreeAnswers({"x", "y"});
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 2u);
  algebra::FragmentSet expected;
  expected.Insert(algebra::Fragment::FromSortedUnchecked({1, 2, 3}));
  expected.Insert(algebra::Fragment::FromSortedUnchecked({4, 5}));
  EXPECT_TRUE(answers->SetEquals(expected)) << answers->ToString();
}

TEST(BaselinePaperTest, SmallestSubtreeSemanticsMissesTheTargetFragment) {
  // The introduction's argument: for {XQuery, optimization} on Figure 1,
  // smallest-subtree semantics returns n17 alone; the self-contained target
  // ⟨n16,n17,n18⟩ is unreachable for SLCA-based baselines.
  auto document = gen::BuildPaperDocument();
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  LcaBaselines baselines(*document, index);

  auto slca = baselines.Slca({"xquery", "optimization"});
  ASSERT_TRUE(slca.ok());
  EXPECT_EQ(*slca, (std::vector<NodeId>{17}));

  auto answers = baselines.SmallestSubtreeAnswers({"xquery", "optimization"});
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0], algebra::Fragment::Single(17));
  algebra::Fragment target =
      algebra::Fragment::FromSortedUnchecked({16, 17, 18});
  EXPECT_FALSE(answers->Contains(target));
}

struct OracleCase {
  size_t nodes;
  uint64_t seed;
};

class SlcaOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(SlcaOracleTest, FastSlcaMatchesBruteForceOnRandomCorpora) {
  gen::CorpusProfile profile;
  profile.target_nodes = GetParam().nodes;
  profile.seed = GetParam().seed;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(GetParam().seed ^ 0x51ca);
  gen::PlantKeyword(&raw, "kwone", 6, gen::PlantMode::kScattered, &rng);
  gen::PlantKeyword(&raw, "kwtwo", 5, gen::PlantMode::kClustered, &rng);
  auto document = gen::Materialize(raw);
  ASSERT_TRUE(document.ok());
  auto index = text::InvertedIndex::Build(*document);
  LcaBaselines baselines(*document, index);

  auto fast = baselines.Slca({"kwone", "kwtwo"});
  auto oracle = baselines.SlcaBruteForce({"kwone", "kwtwo"}, 100000);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(*fast, *oracle);
}

INSTANTIATE_TEST_SUITE_P(Random, SlcaOracleTest,
                         ::testing::Values(OracleCase{50, 1}, OracleCase{120, 2},
                                           OracleCase{300, 3},
                                           OracleCase{600, 4}));

}  // namespace
}  // namespace xfrag::baseline
