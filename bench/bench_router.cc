// Scatter-gather tier benchmark: closed-loop loopback clients against an
// in-process xfrag_router fronting 1, 2, or 4 in-process xfragd shards that
// partition one ~100k-node planted corpus, in full and top-k(=10) modes —
// the throughput-scaling story — plus a hedging ablation where one shard
// sits behind a flaky TCP proxy that randomly stalls connections, showing
// what the single bounded hedge buys at the tail versus no hedging.
//
// Top-k runs twice per shard count: with the two-phase bound exchange
// ("topk10", the default) and without ("topk10-noexchange", the plain
// scatter that enumerates each shard's full bounded join) — the ablation
// that motivates distributed top-k (docs/SERVING.md). Every row posts its
// query once more after the measured run and asserts the router's response
// is byte-identical (modulo "elapsed_ms" and the work "metrics") to a
// combined single node holding the whole corpus, so a throughput number can
// never come from a wrong answer; the assertion also runs in smoke mode
// (XFRAG_BENCH_SMOKE=1, scripts/check.sh).
//
//   ./bench_router [requests_per_client] [total_nodes]
//
// Emits BENCH_router.json:
//   [{"shards": 2, "mode": "topk10", "clients": 8, "requests": 256,
//     "throughput_rps": ..., "latency_ms": {...}, "ok": 256,
//     "hedging": false, "hedges_launched": 0, "hedges_won": 0,
//     "bound_exchange": true, "exact": true,
//     "distributed_topk": {"bounds_pushed": ..., "probe_latency_us": {...},
//                          "refine_latency_us": {...}, ...}}, ...]

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "collection/collection.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "gen/corpus.h"
#include "router/router.h"
#include "server/http.h"
#include "server/net.h"
#include "server/server.h"

namespace {

using xfrag::bench::Banner;
using xfrag::bench::Cell;
using xfrag::bench::MakePlantedCorpus;
using xfrag::bench::PlantedCorpus;
using xfrag::bench::TablePrinter;

constexpr size_t kDocs = 8;  // partitions evenly across 1, 2, and 4 shards

double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p / 100.0 *
                                    static_cast<double>(sorted_ms.size()));
  if (rank >= sorted_ms.size()) rank = sorted_ms.size() - 1;
  return sorted_ms[rank];
}

/// \brief A loopback TCP forwarder that stalls a random fraction of
/// connections before relaying any bytes — a stand-in for the occasional
/// slow backend that hedging exists to paper over. Each accepted connection
/// rolls once: with probability `stall_probability` every byte in both
/// directions waits until `stall_ms` has passed.
class FlakyProxy {
 public:
  FlakyProxy(uint16_t target_port, double stall_probability, int stall_ms,
             uint64_t seed)
      : target_port_(target_port),
        stall_probability_(stall_probability),
        stall_ms_(stall_ms),
        rng_(seed) {}

  ~FlakyProxy() { Stop(); }

  xfrag::Status Start() {
    auto listener = xfrag::server::ListenTcp("127.0.0.1", 0);
    if (!listener.ok()) return listener.status();
    listener_ = std::move(*listener);
    auto port = xfrag::server::LocalPort(listener_.get());
    if (!port.ok()) return port.status();
    port_ = *port;
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return xfrag::Status::OK();
  }

  void Stop() {
    if (stopping_.exchange(true)) return;
    ::shutdown(listener_.get(), SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // weak_ptr: a finished connection has already closed its fd (and may
      // have been recycled by an unrelated socket); only live ones are shut.
      for (auto& weak : live_) {
        if (auto fd = weak.lock()) ::shutdown(fd->get(), SHUT_RDWR);
      }
    }
    for (auto& t : pumps_) t.join();
  }

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop() {
    while (!stopping_.load()) {
      int fd = ::accept(listener_.get(), nullptr, nullptr);
      if (fd < 0) break;
      auto client = std::make_shared<xfrag::server::UniqueFd>(fd);
      auto backend = xfrag::server::ConnectTcp("127.0.0.1", target_port_);
      if (!backend.ok()) continue;
      auto upstream =
          std::make_shared<xfrag::server::UniqueFd>(std::move(*backend));
      std::lock_guard<std::mutex> lock(mutex_);
      int delay = rng_.Chance(stall_probability_) ? stall_ms_ : 0;
      live_.push_back(client);
      live_.push_back(upstream);
      pumps_.emplace_back([client, upstream, delay] {
        Pump(client->get(), upstream->get(), delay);
      });
      pumps_.emplace_back([client, upstream] {
        Pump(upstream->get(), client->get(), 0);
      });
    }
  }

  /// Relays src → dst until either side closes; the stall delays the first
  /// forwarded byte (the whole request waits, like a congested backend).
  static void Pump(int src, int dst, int delay_ms) {
    char buf[16 * 1024];
    bool delayed = false;
    while (true) {
      auto n = xfrag::server::ReadSome(src, buf, sizeof(buf));
      if (!n.ok() || *n == 0) break;
      if (delay_ms > 0 && !delayed) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        delayed = true;
      }
      if (!xfrag::server::WriteAll(dst, std::string_view(buf, *n)).ok()) {
        break;
      }
    }
    ::shutdown(dst, SHUT_RDWR);
    ::shutdown(src, SHUT_RDWR);
  }

  uint16_t target_port_;
  double stall_probability_;
  int stall_ms_;
  xfrag::Rng rng_;

  xfrag::server::UniqueFd listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex mutex_;
  std::vector<std::thread> pumps_;
  std::vector<std::weak_ptr<xfrag::server::UniqueFd>> live_;
};

struct RunResult {
  int requests = 0;
  int ok = 0;
  double elapsed_s = 0.0;
  std::vector<double> latencies_ms;
};

RunResult RunClosedLoop(uint16_t port, int clients, int requests_per_client,
                        const std::string& body) {
  RunResult result;
  result.requests = clients * requests_per_client;
  std::atomic<int> ok{0};
  std::vector<std::vector<double>> per_client(clients);
  xfrag::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      per_client[c].reserve(requests_per_client);
      for (int r = 0; r < requests_per_client; ++r) {
        std::string request = xfrag::StrFormat(
            "POST /query HTTP/1.1\r\nHost: b\r\nContent-Length: %zu\r\n"
            "Connection: close\r\n\r\n",
            body.size());
        request += body;
        xfrag::Timer timer;
        auto raw = xfrag::server::HttpRoundTrip("127.0.0.1", port, request);
        per_client[c].push_back(timer.ElapsedMillis());
        if (!raw.ok()) continue;
        auto response = xfrag::server::ParseHttpResponse(*raw);
        if (response.ok() && response->status == 200) ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = wall.ElapsedMillis() / 1e3;
  result.ok = ok.load();
  for (auto& v : per_client) {
    result.latencies_ms.insert(result.latencies_ms.end(), v.begin(), v.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

/// Builds the shard collections for `shard_count` shards over `kDocs`
/// documents of ~`nodes_per_doc` nodes each. Document d lives on shard
/// d / (kDocs / shard_count); generation is deterministic in d, so every
/// shard count partitions the identical corpus.
std::vector<std::unique_ptr<xfrag::collection::Collection>> BuildShards(
    size_t shard_count, size_t nodes_per_doc) {
  std::vector<std::unique_ptr<xfrag::collection::Collection>> shards;
  size_t docs_per_shard = kDocs / shard_count;
  for (size_t s = 0; s < shard_count; ++s) {
    shards.push_back(std::make_unique<xfrag::collection::Collection>());
  }
  for (size_t d = 0; d < kDocs; ++d) {
    PlantedCorpus corpus =
        MakePlantedCorpus(nodes_per_doc, 8, xfrag::gen::PlantMode::kClustered,
                          8, xfrag::gen::PlantMode::kScattered,
                          /*seed=*/0x70c + d);
    auto status = shards[d / docs_per_shard]->Add(
        xfrag::StrFormat("doc%zu.xml", d), std::move(*corpus.document));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  return shards;
}

xfrag::router::ShardMap MapForPorts(const std::vector<uint16_t>& ports,
                                    size_t docs_per_shard) {
  xfrag::router::ShardMap map;
  for (size_t s = 0; s < ports.size(); ++s) {
    xfrag::router::ShardInfo info;
    info.host = "127.0.0.1";
    info.port = ports[s];
    info.doc_begin = s * docs_per_shard;
    info.doc_count = docs_per_shard;
    map.shards.push_back(std::move(info));
  }
  map.total_documents = ports.size() * docs_per_shard;
  return map;
}

double MeanMs(const RunResult& run) {
  double mean = 0.0;
  for (double ms : run.latencies_ms) mean += ms;
  if (!run.latencies_ms.empty()) {
    mean /= static_cast<double>(run.latencies_ms.size());
  }
  return mean;
}

xfrag::json::Value LatencyJson(const RunResult& run) {
  xfrag::json::Value latency = xfrag::json::Value::Object();
  latency.Set("mean", MeanMs(run));
  latency.Set("p50", Percentile(run.latencies_ms, 50));
  latency.Set("p95", Percentile(run.latencies_ms, 95));
  latency.Set("p99", Percentile(run.latencies_ms, 99));
  latency.Set("max",
              run.latencies_ms.empty() ? 0.0 : run.latencies_ms.back());
  return latency;
}

xfrag::StatusOr<xfrag::server::HttpResponse> PostQuery(
    uint16_t port, const std::string& body) {
  std::string request = xfrag::StrFormat(
      "POST /query HTTP/1.1\r\nHost: b\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      body.size());
  request += body;
  auto raw = xfrag::server::HttpRoundTrip("127.0.0.1", port, request);
  if (!raw.ok()) return raw.status();
  return xfrag::server::ParseHttpResponse(*raw);
}

/// Answer normalization for the exactness assertion: the timing and the
/// work "metrics" are the only fields a distributed evaluation may change.
std::string NormalizedBody(const std::string& body) {
  auto parsed = xfrag::json::Parse(body);
  if (!parsed.ok()) return body;
  parsed->Set("elapsed_ms", 0);
  parsed->Remove("metrics");
  return parsed->Dump();
}

/// Posts `body` to the router and the combined single node and compares the
/// normalized responses. A throughput row with a wrong answer is a bug, so
/// a mismatch aborts the benchmark (smoke mode included).
bool AssertExactAgainstCombined(uint16_t router_port, uint16_t combined_port,
                                const std::string& body, const char* label) {
  auto from_router = PostQuery(router_port, body);
  auto from_combined = PostQuery(combined_port, body);
  if (!from_router.ok() || from_router->status != 200 || !from_combined.ok() ||
      from_combined->status != 200) {
    std::fprintf(stderr, "exactness probe failed for %s\n", label);
    return false;
  }
  if (NormalizedBody(from_router->body) !=
      NormalizedBody(from_combined->body)) {
    std::fprintf(stderr,
                 "EXACTNESS VIOLATION (%s):\n  router:   %s\n  combined: %s\n",
                 label, from_router->body.c_str(),
                 from_combined->body.c_str());
    return false;
  }
  return true;
}

/// The "distributed_topk" section of the router's /metrics — bound-exchange
/// counters plus per-phase probe/refine/update latency histograms.
xfrag::json::Value RouterDistributedTopKMetrics(uint16_t port) {
  std::string request =
      "GET /metrics HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n";
  auto raw = xfrag::server::HttpRoundTrip("127.0.0.1", port, request);
  if (!raw.ok()) return xfrag::json::Value::Object();
  auto response = xfrag::server::ParseHttpResponse(*raw);
  if (!response.ok()) return xfrag::json::Value::Object();
  auto parsed = xfrag::json::Parse(response->body);
  if (!parsed.ok()) return xfrag::json::Value::Object();
  const xfrag::json::Value* router_section = parsed->Find("router");
  if (router_section == nullptr) return xfrag::json::Value::Object();
  const xfrag::json::Value* topk = router_section->Find("distributed_topk");
  return topk != nullptr ? *topk : xfrag::json::Value::Object();
}

}  // namespace

int main(int argc, char** argv) {
  int requests_per_client = argc > 1 ? std::atoi(argv[1]) : 32;
  size_t total_nodes = argc > 2 ? static_cast<size_t>(std::atol(argv[2]))
                                : 100000;
  int clients = 8;
  if (xfrag::bench::BenchSmokeMode()) {
    requests_per_client = std::min(requests_per_client, 2);
    total_nodes = std::min<size_t>(total_nodes, 4000);
    clients = 2;
  }
  size_t nodes_per_doc = total_nodes / kDocs;

  Banner("router scatter-gather scaling and hedging ablation");

  const std::string full_body =
      R"({"terms":["kwone","kwtwo"],"filter":"size<=4","strategy":"pushdown",)"
      R"("max_answers":64})";
  const std::string topk_body = R"({"terms":["kwone","kwtwo"],"top_k":10})";

  TablePrinter table({"shards", "mode", "clients", "requests", "rps",
                      "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms",
                      "ok"});
  xfrag::json::Value records = xfrag::json::Value::Array();

  // ---- Throughput scaling: 1 / 2 / 4 shards ------------------------------
  // Modes per shard count: full scatter, top-k with the two-phase bound
  // exchange (the default), and top-k with the exchange ablated. Every row
  // is exactness-checked against this combined single node.
  auto combined_collections = BuildShards(1, nodes_per_doc);
  xfrag::server::ServerOptions combined_options;
  combined_options.workers = 4;
  combined_options.queue_capacity = 1024;
  xfrag::server::Server combined_node(*combined_collections[0],
                                      combined_options);
  {
    auto started = combined_node.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
  }
  bool all_exact = true;

  struct ScalingMode {
    const char* name;
    const std::string* body;
    bool bound_exchange;
    bool is_topk;
  };
  const ScalingMode modes[] = {
      {"full", &full_body, true, false},
      {"topk10", &topk_body, true, true},
      {"topk10-noexchange", &topk_body, false, true},
  };

  for (size_t shard_count : {1u, 2u, 4u}) {
    auto collections = BuildShards(shard_count, nodes_per_doc);
    std::vector<std::unique_ptr<xfrag::server::Server>> shard_servers;
    std::vector<uint16_t> ports;
    for (auto& collection : collections) {
      xfrag::server::ServerOptions options;
      options.workers = 4;
      options.queue_capacity = 1024;
      shard_servers.push_back(
          std::make_unique<xfrag::server::Server>(*collection, options));
      auto started = shard_servers.back()->Start();
      if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
      }
      ports.push_back(shard_servers.back()->port());
    }

    for (const ScalingMode& mode : modes) {
      xfrag::router::RouterOptions router_options;
      router_options.workers = 16;
      router_options.queue_capacity = 1024;
      router_options.enable_hedging = false;  // scaling rows measure fan-out
      router_options.health_check_interval_ms = 0;
      router_options.enable_bound_exchange = mode.bound_exchange;
      xfrag::router::Router router(MapForPorts(ports, kDocs / shard_count),
                                   router_options);
      auto started = router.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
      }

      // Warm every shard's fixed-point caches before measuring.
      (void)RunClosedLoop(router.port(), 1, 2, *mode.body);
      RunResult run = RunClosedLoop(router.port(), clients,
                                    requests_per_client, *mode.body);
      double rps = run.elapsed_s > 0
                       ? static_cast<double>(run.requests) / run.elapsed_s
                       : 0.0;
      // No row ships without proof: the router's answer for this row's
      // query must match the combined node exactly.
      bool exact = AssertExactAgainstCombined(
          router.port(), combined_node.port(), *mode.body, mode.name);
      all_exact = all_exact && exact;

      table.AddRow({Cell(uint64_t(shard_count)), mode.name,
                    Cell(uint64_t(clients)), Cell(uint64_t(run.requests)),
                    Cell(rps, 0), Cell(MeanMs(run)),
                    Cell(Percentile(run.latencies_ms, 50)),
                    Cell(Percentile(run.latencies_ms, 95)),
                    Cell(Percentile(run.latencies_ms, 99)),
                    run.latencies_ms.empty()
                        ? Cell(0.0)
                        : Cell(run.latencies_ms.back()),
                    Cell(uint64_t(run.ok))});
      xfrag::json::Value record = xfrag::json::Value::Object();
      record.Set("shards", static_cast<uint64_t>(shard_count));
      record.Set("mode", mode.name);
      record.Set("clients", int64_t{clients});
      record.Set("requests", int64_t{run.requests});
      record.Set("throughput_rps", rps);
      record.Set("latency_ms", LatencyJson(run));
      record.Set("ok", int64_t{run.ok});
      record.Set("hedging", false);
      record.Set("hedges_launched", router.hedges_launched());
      record.Set("hedges_won", router.hedges_won());
      record.Set("bound_exchange", mode.bound_exchange);
      record.Set("exact", exact);
      if (mode.is_topk) {
        record.Set("distributed_topk",
                   RouterDistributedTopKMetrics(router.port()));
      }
      records.Append(std::move(record));
      router.Shutdown();
    }
    for (auto& shard : shard_servers) shard->Shutdown();
  }
  combined_node.Shutdown();

  // ---- Hedging ablation: 2 shards, one behind a flaky proxy --------------
  // The proxied shard answers instantly most of the time but a random 2%
  // of connections stall. Without hedging those stalls land straight on the
  // p99; with the single bounded hedge the router re-asks the straggler on
  // a fresh (likely unstalled) connection after a p95-derived delay. Shard
  // keep-alive is off so every request re-rolls the stall dice. Two knobs
  // matter for honesty: the cheap full-mode body keeps shard service time
  // well under the stall (hedging targets network stragglers — a duplicate
  // of a compute-heavy request could never beat the original on the same
  // saturated cores), and the stall rate sits below the hedge percentile
  // (a straggler as common as p95 would push p95 itself up to the stall,
  // and the adaptive delay would fire only after the stall had passed).
  {
    auto collections = BuildShards(2, nodes_per_doc);
    std::vector<std::unique_ptr<xfrag::server::Server>> shard_servers;
    std::vector<uint16_t> real_ports;
    for (size_t s = 0; s < collections.size(); ++s) {
      xfrag::server::ServerOptions options;
      options.workers = 4;
      options.queue_capacity = 1024;
      if (s == 1) options.keep_alive = false;
      shard_servers.push_back(
          std::make_unique<xfrag::server::Server>(*collections[s], options));
      auto started = shard_servers.back()->Start();
      if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
      }
      real_ports.push_back(shard_servers.back()->port());
    }
    int stall_ms = xfrag::bench::BenchSmokeMode() ? 40 : 150;
    FlakyProxy proxy(real_ports[1], /*stall_probability=*/0.02, stall_ms,
                     /*seed=*/0xf1a4);
    auto proxy_started = proxy.Start();
    if (!proxy_started.ok()) {
      std::fprintf(stderr, "%s\n", proxy_started.ToString().c_str());
      return 1;
    }

    for (bool hedging : {false, true}) {
      xfrag::router::RouterOptions router_options;
      router_options.workers = 16;
      router_options.queue_capacity = 1024;
      router_options.enable_hedging = hedging;
      router_options.hedge_default_delay_ms = stall_ms / 5;
      router_options.health_check_interval_ms = 0;
      xfrag::router::Router router(
          MapForPorts({real_ports[0], proxy.port()}, kDocs / 2),
          router_options);
      auto started = router.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
      }
      (void)RunClosedLoop(router.port(), 1, 2, full_body);
      RunResult run =
          RunClosedLoop(router.port(), clients, requests_per_client,
                        full_body);
      double rps = run.elapsed_s > 0
                       ? static_cast<double>(run.requests) / run.elapsed_s
                       : 0.0;
      std::string mode =
          hedging ? std::string("flaky+hedge") : std::string("flaky");
      table.AddRow({Cell(uint64_t(2)), mode, Cell(uint64_t(clients)),
                    Cell(uint64_t(run.requests)), Cell(rps, 0),
                    Cell(MeanMs(run)),
                    Cell(Percentile(run.latencies_ms, 50)),
                    Cell(Percentile(run.latencies_ms, 95)),
                    Cell(Percentile(run.latencies_ms, 99)),
                    run.latencies_ms.empty()
                        ? Cell(0.0)
                        : Cell(run.latencies_ms.back()),
                    Cell(uint64_t(run.ok))});
      xfrag::json::Value record = xfrag::json::Value::Object();
      record.Set("shards", uint64_t{2});
      record.Set("mode", mode);
      record.Set("clients", int64_t{clients});
      record.Set("requests", int64_t{run.requests});
      record.Set("throughput_rps", rps);
      record.Set("latency_ms", LatencyJson(run));
      record.Set("ok", int64_t{run.ok});
      record.Set("hedging", hedging);
      record.Set("hedges_launched", router.hedges_launched());
      record.Set("hedges_won", router.hedges_won());
      records.Append(std::move(record));
      router.Shutdown();
    }
    proxy.Stop();
    for (auto& shard : shard_servers) shard->Shutdown();
  }

  table.Print();
  const std::string path = xfrag::bench::BenchOutputPath("BENCH_router.json");
  std::ofstream out(path);
  out << records.Dump(2) << "\n";
  std::printf("wrote %s\n", path.c_str());
  if (!all_exact) {
    std::fprintf(stderr,
                 "bench_router: scaling row(s) failed the exactness check\n");
    return 1;
  }
  return 0;
}
