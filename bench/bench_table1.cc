// Regenerates Table 1 of the paper (the 11 candidate fragment sets of the
// running example {XQuery, optimization} on the Figure-1 document, with the
// duplicate and irrelevant markers), then times the three §4 evaluation
// strategies plus the reduced fixed point on that query.

#include <cstdio>
#include <map>

#include "algebra/ops.h"
#include "bench_util.h"
#include "gen/paper_document.h"
#include "query/engine.h"

using namespace xfrag;
using algebra::Fragment;
using algebra::FragmentSet;

int main() {
  auto document = gen::BuildPaperDocument();
  if (!document.ok()) return 1;
  auto index = text::InvertedIndex::Build(*document);
  const doc::Document& d = *document;

  bench::Banner(
      "Table 1: input fragment sets and their corresponding output fragments");

  // The 11 non-empty-subset combinations of F1 = {f17, f18} and
  // F2 = {f16, f17, f81}, in the paper's row order.
  struct Row {
    const char* label;
    std::vector<doc::NodeId> inputs;
  };
  const std::vector<Row> rows = {
      {"f17 |x| f18", {17, 18}},
      {"f16 |x| f17", {16, 17}},
      {"f16 |x| f18", {16, 18}},
      {"f17", {17}},
      {"f17 |x| f81", {17, 81}},
      {"f18 |x| f81", {18, 81}},
      {"f17 |x| f18 |x| f81", {17, 18, 81}},
      {"f16 |x| f17 |x| f18", {16, 17, 18}},
      {"f16 |x| f17 |x| f81", {16, 17, 81}},
      {"f16 |x| f18 |x| f81", {16, 18, 81}},
      {"f16 |x| f17 |x| f18 |x| f81", {16, 17, 18, 81}},
  };

  bench::TablePrinter table(
      {"No. / fragment set to be joined", "fragment generated after join",
       "irrelevant", "duplicate"});
  std::map<std::string, int> seen;
  int row_number = 1;
  for (const Row& row : rows) {
    Fragment acc = Fragment::Single(row.inputs[0]);
    for (size_t i = 1; i < row.inputs.size(); ++i) {
      acc = algebra::Join(d, acc, Fragment::Single(row.inputs[i]));
    }
    std::string repr = acc.ToString();
    bool duplicate = seen.count(repr) > 0;
    seen[repr] = 1;
    bool irrelevant = acc.size() > 3;  // The example's filter: size <= 3.
    table.AddRow({std::to_string(row_number++) + ". " + row.label, repr,
                  irrelevant ? "x" : "", duplicate ? "x" : ""});
  }
  table.Print();
  std::printf(
      "\n(7 unique fragments; 4 survive the size<=3 filter; the fragment of\n"
      "interest <n16,n17,n18> is row 1 — matches the paper's Table 1.)\n");

  bench::Banner("Section 4 strategies on the running example (beta = 3)");
  query::QueryEngine engine(d, index);
  query::Query q;
  q.terms = {"xquery", "optimization"};
  q.filter = algebra::filters::SizeAtMost(3);

  bench::TablePrinter timing({"strategy", "median ms", "fragment joins",
                              "filter evals", "rejections", "answers"});
  for (auto strategy :
       {query::Strategy::kBruteForce, query::Strategy::kFixedPointNaive,
        query::Strategy::kFixedPointReduced, query::Strategy::kPushDown}) {
    query::EvalOptions options;
    options.strategy = strategy;
    algebra::OpMetrics metrics;
    size_t answers = 0;
    double ms = bench::MedianMillis(
        [&] {
          auto result = engine.Evaluate(q, options);
          if (!result.ok()) std::abort();
          metrics = result->metrics;
          answers = result->answers.size();
        },
        9);
    timing.AddRow({std::string(query::StrategyName(strategy)),
                   bench::Cell(ms, 4), bench::Cell(metrics.fragment_joins),
                   bench::Cell(metrics.filter_evals),
                   bench::Cell(metrics.filter_rejections),
                   bench::Cell(answers)});
  }
  timing.Print();
  std::printf(
      "\nExpected shape (paper §4): identical answer sets everywhere. "
      "Push-down performs\nfewer joins than the unfiltered naive fixed point "
      "by rejecting the f16|x|f81\nfamily early (12 rejections above); on "
      "this 82-node toy the absolute differences\nare tiny — bench_fig5 "
      "shows the gap growing with document size (§4.3).\n");
  return 0;
}
