// Shared helpers for the paper-reproduction bench binaries: planted-corpus
// construction, median-of-N timing, and fixed-width table printing that
// mirrors the paper's presentation.

#ifndef XFRAG_BENCH_BENCH_UTIL_H_
#define XFRAG_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "doc/document.h"
#include "gen/corpus.h"
#include "text/inverted_index.h"

namespace xfrag::bench {

/// \brief One machine-readable benchmark measurement — the schema shared by
/// BENCH_parallel.json and BENCH_core.json.
///
/// `serial_ms` is the baseline timing and `parallel_ms` the candidate
/// (pooled kernel, prefiltered kernel, ...); for plain microbenchmarks both
/// hold the same measurement and the speedup is 1. `counters` appends extra
/// integer fields to the JSON object (e.g. "pairs_rejected_summary").
struct BenchRecord {
  BenchRecord() = default;
  BenchRecord(std::string op_in, size_t set1_in, size_t set2_in,
              unsigned threads_in, double serial_ms_in, double parallel_ms_in,
              bool equal_in)
      : op(std::move(op_in)),
        set1(set1_in),
        set2(set2_in),
        threads(threads_in),
        serial_ms(serial_ms_in),
        parallel_ms(parallel_ms_in),
        equal(equal_in) {}

  std::string op;
  size_t set1 = 0;
  size_t set2 = 0;
  unsigned threads = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool equal = false;
  std::vector<std::pair<std::string, uint64_t>> counters;

  double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

/// \brief Writes `records` to `path` as a JSON array.
///
/// With `merge` set (the default), records already in the file whose "op"
/// does not occur in `records` are kept — the fig3/fig4/fig5 binaries and
/// bench_summary_prefilter all contribute to one BENCH_core.json, each run
/// replacing only its own ops. Bare filenames are resolved through
/// BenchOutputPath() so artifacts land at the repo root, not in build/.
void WriteBenchJson(const std::vector<BenchRecord>& records,
                    const std::string& path, bool merge = true);

/// \brief Resolves where a BENCH_*.json artifact should be written.
///
/// Paths that already contain a '/' are returned unchanged. Otherwise the
/// precedence is: $XFRAG_BENCH_DIR if set, else the nearest ancestor of the
/// working directory containing ROADMAP.md (the repo root — benches normally
/// run from build/), else the working directory itself.
std::string BenchOutputPath(const std::string& filename);

/// \brief True when $XFRAG_BENCH_SMOKE=1: CI smoke runs that only check the
/// binaries work. MakePlantedCorpus caps corpora at ~2000 nodes / 128
/// occurrences and MedianMillis takes a single sample.
bool BenchSmokeMode();

/// A generated corpus with two planted query keywords, ready to query.
struct PlantedCorpus {
  std::unique_ptr<doc::Document> document;
  std::unique_ptr<text::InvertedIndex> index;
  std::vector<doc::NodeId> postings1;
  std::vector<doc::NodeId> postings2;
  /// The planted terms are always "kwone" and "kwtwo".
  static constexpr const char* kTerm1 = "kwone";
  static constexpr const char* kTerm2 = "kwtwo";
};

/// \brief Generates a corpus of ~`nodes` nodes and plants the two benchmark
/// keywords with the given counts/modes. Deterministic in `seed`.
PlantedCorpus MakePlantedCorpus(size_t nodes, size_t count1,
                                gen::PlantMode mode1, size_t count2,
                                gen::PlantMode mode2, uint64_t seed);

/// \brief Median wall-clock milliseconds of `fn` over `repeats` runs.
double MedianMillis(const std::function<void()>& fn, int repeats = 5);

/// \brief Fixed-width console table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cells are printed right-aligned except the first column.
  void AddRow(std::vector<std::string> cells);

  /// Renders everything to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style cell helpers. (size_t is uint64_t on this platform.)
std::string Cell(double value, int precision = 2);
std::string Cell(uint64_t value);

/// \brief Prints the "== <title> ==" banner used by all bench binaries.
void Banner(const std::string& title);

}  // namespace xfrag::bench

#endif  // XFRAG_BENCH_BENCH_UTIL_H_
