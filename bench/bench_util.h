// Shared helpers for the paper-reproduction bench binaries: planted-corpus
// construction, median-of-N timing, and fixed-width table printing that
// mirrors the paper's presentation.

#ifndef XFRAG_BENCH_BENCH_UTIL_H_
#define XFRAG_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "doc/document.h"
#include "gen/corpus.h"
#include "text/inverted_index.h"

namespace xfrag::bench {

/// A generated corpus with two planted query keywords, ready to query.
struct PlantedCorpus {
  std::unique_ptr<doc::Document> document;
  std::unique_ptr<text::InvertedIndex> index;
  std::vector<doc::NodeId> postings1;
  std::vector<doc::NodeId> postings2;
  /// The planted terms are always "kwone" and "kwtwo".
  static constexpr const char* kTerm1 = "kwone";
  static constexpr const char* kTerm2 = "kwtwo";
};

/// \brief Generates a corpus of ~`nodes` nodes and plants the two benchmark
/// keywords with the given counts/modes. Deterministic in `seed`.
PlantedCorpus MakePlantedCorpus(size_t nodes, size_t count1,
                                gen::PlantMode mode1, size_t count2,
                                gen::PlantMode mode2, uint64_t seed);

/// \brief Median wall-clock milliseconds of `fn` over `repeats` runs.
double MedianMillis(const std::function<void()>& fn, int repeats = 5);

/// \brief Fixed-width console table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cells are printed right-aligned except the first column.
  void AddRow(std::vector<std::string> cells);

  /// Renders everything to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style cell helpers. (size_t is uint64_t on this platform.)
std::string Cell(double value, int precision = 2);
std::string Cell(uint64_t value);

/// \brief Prints the "== <title> ==" banner used by all bench binaries.
void Banner(const std::string& title);

}  // namespace xfrag::bench

#endif  // XFRAG_BENCH_BENCH_UTIL_H_
