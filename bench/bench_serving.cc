// Serving-path benchmark: closed-loop loopback clients against an
// in-process xfragd Server, measuring end-to-end throughput and tail
// latency at 1, 4, and 16 concurrent clients. Each request travels the full
// stack — TCP accept, HTTP parse, JSON decode, per-document evaluation with
// shared fixed-point caches, JSON render — so the numbers bound what the
// daemon can sustain, not just what the algebra kernels can.
//
//   ./bench_serving [requests_per_client] [nodes_per_doc]
//
// Emits BENCH_serving.json:
//   [{"clients": 4, "requests": 200, "throughput_rps": ...,
//     "latency_ms": {"mean": .., "p50": .., "p95": .., "p99": .., "max": ..},
//     "ok": 200}, ...]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "collection/collection.h"
#include "common/json.h"
#include "common/strings.h"
#include "common/timer.h"
#include "gen/corpus.h"
#include "server/http.h"
#include "server/net.h"
#include "server/server.h"

namespace {

using xfrag::bench::Banner;
using xfrag::bench::Cell;
using xfrag::bench::MakePlantedCorpus;
using xfrag::bench::PlantedCorpus;
using xfrag::bench::TablePrinter;

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  size_t rank = static_cast<size_t>(p / 100.0 *
                                    static_cast<double>(sorted_ms->size()));
  if (rank >= sorted_ms->size()) rank = sorted_ms->size() - 1;
  return (*sorted_ms)[rank];
}

struct RunResult {
  int clients = 0;
  int requests = 0;
  int ok = 0;
  double elapsed_s = 0.0;
  std::vector<double> latencies_ms;
};

/// One request over a persistent connection: write, then parse one framed
/// response (keeping pipelined leftovers for the next exchange). Reconnects
/// when the pooled connection has gone away.
bool KeepAliveExchange(uint16_t port, const std::string& request,
                       xfrag::server::UniqueFd* conn, std::string* leftover) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!conn->valid()) {
      auto fresh = xfrag::server::ConnectTcp("127.0.0.1", port);
      if (!fresh.ok()) return false;
      *conn = std::move(*fresh);
      (void)xfrag::server::SetSocketTimeouts(conn->get(), 30000);
      leftover->clear();
    }
    if (!xfrag::server::WriteAll(conn->get(), request).ok()) {
      conn->Reset();
      continue;
    }
    xfrag::server::HttpResponseParser parser;
    auto state = parser.Feed(*leftover);
    char buf[16 * 1024];
    while (state == xfrag::server::HttpResponseParser::State::kNeedMore) {
      auto n = xfrag::server::ReadSome(conn->get(), buf, sizeof(buf));
      if (!n.ok() || *n == 0) break;
      state = parser.Feed(std::string_view(buf, *n));
    }
    if (state != xfrag::server::HttpResponseParser::State::kComplete) {
      conn->Reset();
      continue;  // stale keep-alive connection; retry once on a fresh one
    }
    *leftover = parser.TakeRemaining();
    if (!parser.response().keep_alive) conn->Reset();
    return parser.response().status == 200;
  }
  return false;
}

RunResult RunClosedLoop(uint16_t port, int clients, int requests_per_client,
                        const std::vector<std::string>& bodies,
                        bool keep_alive = false) {
  RunResult result;
  result.clients = clients;
  result.requests = clients * requests_per_client;
  std::atomic<int> ok{0};
  std::vector<std::vector<double>> per_client(clients);
  xfrag::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      per_client[c].reserve(requests_per_client);
      xfrag::server::UniqueFd conn;  // persistent across requests (keep-alive)
      std::string leftover;
      for (int r = 0; r < requests_per_client; ++r) {
        const std::string& body = bodies[(c + r) % bodies.size()];
        std::string request = xfrag::StrFormat(
            "POST /query HTTP/1.1\r\nHost: b\r\nContent-Length: %zu\r\n"
            "Connection: %s\r\n\r\n",
            body.size(), keep_alive ? "keep-alive" : "close");
        request += body;
        xfrag::Timer timer;
        if (keep_alive) {
          bool success = KeepAliveExchange(port, request, &conn, &leftover);
          per_client[c].push_back(timer.ElapsedMillis());
          if (success) ++ok;
          continue;
        }
        auto raw = xfrag::server::HttpRoundTrip("127.0.0.1", port, request);
        per_client[c].push_back(timer.ElapsedMillis());
        if (!raw.ok()) continue;
        auto response = xfrag::server::ParseHttpResponse(*raw);
        if (response.ok() && response->status == 200) ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = wall.ElapsedMillis() / 1e3;
  result.ok = ok.load();
  for (auto& v : per_client) {
    result.latencies_ms.insert(result.latencies_ms.end(), v.begin(), v.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int requests_per_client = argc > 1 ? std::atoi(argv[1]) : 64;
  size_t nodes = argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 4000;
  if (xfrag::bench::BenchSmokeMode()) {
    requests_per_client = std::min(requests_per_client, 4);
  }

  Banner("serving throughput and tail latency (xfragd stack)");

  // Four planted documents so collection-level skipping and per-document
  // caches both participate.
  xfrag::collection::Collection collection;
  for (int d = 0; d < 4; ++d) {
    PlantedCorpus corpus =
        MakePlantedCorpus(nodes, 8, xfrag::gen::PlantMode::kClustered, 8,
                          xfrag::gen::PlantMode::kScattered,
                          /*seed=*/0x5eed + d);
    auto status = collection.Add(xfrag::StrFormat("doc%d.xml", d),
                                 std::move(*corpus.document));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  xfrag::server::ServerOptions options;
  options.workers = 8;
  options.queue_capacity = 1024;  // measure service time, not shedding
  xfrag::server::Server server(collection, options);
  auto started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  // A second server with the worker linger disabled (park immediately
  // between keep-alive requests) isolates the reactor-churn regression the
  // linger fixes: at high client counts every exchange used to pay a park,
  // a self-pipe poll wakeup, and a fresh pool dispatch, which made
  // keep-alive SLOWER than per-request connections.
  xfrag::server::ServerOptions no_linger_options = options;
  no_linger_options.keep_alive_linger_ms = 0;
  xfrag::server::Server no_linger_server(collection, no_linger_options);
  started = no_linger_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  // Every body carries a filter and an answer cap: an unfiltered single-term
  // query materialises (and renders) the entire fixed-point closure, which
  // measures JSON throughput rather than the serving stack.
  const std::vector<std::string> bodies = {
      R"({"terms":["kwone","kwtwo"],"filter":"size<=4","strategy":"pushdown",)"
      R"("max_answers":64})",
      R"({"terms":["kwone"],"filter":"size<=2","strategy":"reduced",)"
      R"("max_answers":64})",
      R"({"terms":["kwone","kwtwo"],"filter":"size<=3 & height<=2",)"
      R"("max_answers":64})",
  };

  // Warm the per-document fixed-point caches so every measured configuration
  // sees the same steady state.
  (void)RunClosedLoop(server.port(), 1, static_cast<int>(bodies.size()),
                      bodies);
  (void)RunClosedLoop(no_linger_server.port(), 1,
                      static_cast<int>(bodies.size()), bodies);

  struct Config {
    const char* label;
    bool keep_alive;
    bool linger;
  };
  const Config configs[] = {
      // Per-request connections vs one keep-alive connection per client: the
      // delta is the accept/handshake/teardown cost the persistent path
      // saves. The no-linger row is the regression guard — without the
      // worker linger, keep-alive loses to close at high client counts.
      {"close", false, true},
      {"ka-nolinger", true, false},
      {"keep-alive", true, true},
  };
  TablePrinter table({"clients", "conn", "requests", "rps", "mean ms",
                      "p50 ms", "p95 ms", "p99 ms", "max ms", "ok"});
  xfrag::json::Value records = xfrag::json::Value::Array();
  for (int clients : {1, 4, 16}) {
    for (const Config& config : configs) {
      const bool keep_alive = config.keep_alive;
      uint16_t port =
          config.linger ? server.port() : no_linger_server.port();
      RunResult run = RunClosedLoop(port, clients, requests_per_client,
                                    bodies, keep_alive);
      double mean = 0.0;
      for (double ms : run.latencies_ms) mean += ms;
      if (!run.latencies_ms.empty()) {
        mean /= static_cast<double>(run.latencies_ms.size());
      }
      double rps = run.elapsed_s > 0
                       ? static_cast<double>(run.requests) / run.elapsed_s
                       : 0.0;
      double p50 = Percentile(&run.latencies_ms, 50);
      double p95 = Percentile(&run.latencies_ms, 95);
      double p99 = Percentile(&run.latencies_ms, 99);
      double max =
          run.latencies_ms.empty() ? 0.0 : run.latencies_ms.back();

      table.AddRow({Cell(uint64_t(clients)), std::string(config.label),
                    Cell(uint64_t(run.requests)), Cell(rps, 0), Cell(mean),
                    Cell(p50), Cell(p95), Cell(p99), Cell(max),
                    Cell(uint64_t(run.ok))});

      xfrag::json::Value record = xfrag::json::Value::Object();
      record.Set("clients", int64_t{clients});
      record.Set("keep_alive", keep_alive);
      record.Set("linger", config.linger);
      record.Set("requests", int64_t{run.requests});
      record.Set("throughput_rps", rps);
      xfrag::json::Value latency = xfrag::json::Value::Object();
      latency.Set("mean", mean);
      latency.Set("p50", p50);
      latency.Set("p95", p95);
      latency.Set("p99", p99);
      latency.Set("max", max);
      record.Set("latency_ms", std::move(latency));
      record.Set("ok", int64_t{run.ok});
      records.Append(std::move(record));
    }
  }
  server.Shutdown();
  no_linger_server.Shutdown();
  table.Print();

  const std::string path =
      xfrag::bench::BenchOutputPath("BENCH_serving.json");
  std::ofstream out(path);
  out << records.Dump(2) << "\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
