// Validation of the §5 cost model: for a grid of corpus configurations,
// compare the model's predicted strategy ranking against measured wall-clock
// ranking, and report prediction quality (top-1 agreement and rank
// correlation) — the concrete version of the paper's "the challenge for the
// optimizer would be to estimate RF accurately".

#include <cstdio>

#include "bench_util.h"
#include "query/cost_model.h"
#include "query/engine.h"

using namespace xfrag;

namespace {

struct Config {
  const char* label;
  gen::PlantMode mode;
  size_t count;
  uint32_t beta;  // 0 = no filter.
};

}  // namespace

int main() {
  bench::Banner("Cost model: predicted vs measured strategy ranking");
  const Config configs[] = {
      {"tiny/scattered/beta4", gen::PlantMode::kScattered, 3, 4},
      {"small/clustered/beta6", gen::PlantMode::kClustered, 7, 6},
      {"mid/clustered/beta6", gen::PlantMode::kClustered, 10, 6},
      {"mid/scattered/beta4", gen::PlantMode::kScattered, 9, 4},
      {"mid/clustered/nofilter", gen::PlantMode::kClustered, 10, 0},
      {"mid/scattered/nofilter", gen::PlantMode::kScattered, 9, 0},
      {"large/siblings/beta5", gen::PlantMode::kSiblings, 12, 5},
  };

  bench::TablePrinter table({"config", "predicted best", "measured best",
                             "agree", "pred 2nd", "meas 2nd"});
  int agreements = 0, total = 0;
  for (const Config& config : configs) {
    bench::PlantedCorpus corpus =
        bench::MakePlantedCorpus(4000, config.count, config.mode,
                                 config.count, config.mode,
                                 3000 + config.count);
    query::QueryEngine engine(*corpus.document, *corpus.index);
    query::Query q;
    q.terms = {bench::PlantedCorpus::kTerm1, bench::PlantedCorpus::kTerm2};
    if (config.beta > 0) {
      q.filter = algebra::filters::SizeAtMost(config.beta);
    }

    // Calibrate on the actual document, predict, and rank.
    query::CostModel model(query::CostModel::Calibrate(*corpus.document));
    query::CostInputs inputs =
        model.GatherInputs(q, *corpus.document, *corpus.index);
    auto predicted = model.EstimateAll(inputs);

    // Measure every applicable strategy.
    struct Measured {
      query::Strategy strategy;
      double ms;
    };
    std::vector<Measured> measured;
    for (auto strategy :
         {query::Strategy::kBruteForce, query::Strategy::kFixedPointNaive,
          query::Strategy::kFixedPointReduced, query::Strategy::kPushDown}) {
      query::EvalOptions options;
      options.strategy = strategy;
      options.executor.powerset.max_set_size = 12;
      auto probe = engine.Evaluate(q, options);
      if (!probe.ok()) continue;  // Guarded brute force / inapplicable.
      double ms = bench::MedianMillis(
          [&] {
            auto result = engine.Evaluate(q, options);
            if (!result.ok()) std::abort();
          },
          3);
      measured.push_back({strategy, ms});
    }
    std::sort(measured.begin(), measured.end(),
              [](const Measured& a, const Measured& b) { return a.ms < b.ms; });
    if (measured.empty()) continue;

    // Predicted ranking restricted to strategies that actually ran.
    std::vector<query::Strategy> predicted_order;
    for (const auto& cost : predicted) {
      for (const auto& m : measured) {
        if (m.strategy == cost.strategy) {
          predicted_order.push_back(cost.strategy);
          break;
        }
      }
    }
    bool agree = !predicted_order.empty() &&
                 predicted_order[0] == measured[0].strategy;
    ++total;
    if (agree) ++agreements;
    table.AddRow(
        {config.label,
         std::string(query::StrategyName(
             predicted_order.empty() ? query::Strategy::kAuto
                                     : predicted_order[0])),
         std::string(query::StrategyName(measured[0].strategy)),
         agree ? "yes" : "no",
         predicted_order.size() > 1
             ? std::string(query::StrategyName(predicted_order[1]))
             : "-",
         measured.size() > 1
             ? std::string(query::StrategyName(measured[1].strategy))
             : "-"});
  }
  table.Print();
  std::printf("\ntop-1 agreement: %d/%d configurations\n", agreements, total);
  std::printf(
      "Expected shape (§5): the model picks the measured winner on clear-cut "
      "configs;\ndisagreements cluster where strategies are within noise of "
      "each other — the\nregime the paper says needs a full cost model with "
      "implementation detail.\n");
  return 0;
}
