#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"

namespace xfrag::bench {

bool BenchSmokeMode() {
  const char* flag = std::getenv("XFRAG_BENCH_SMOKE");
  return flag != nullptr && flag[0] == '1' && flag[1] == '\0';
}

std::string BenchOutputPath(const std::string& filename) {
  if (filename.find('/') != std::string::npos) return filename;
  if (const char* dir = std::getenv("XFRAG_BENCH_DIR");
      dir != nullptr && dir[0] != '\0') {
    return (std::filesystem::path(dir) / filename).string();
  }
  std::error_code ec;
  std::filesystem::path cwd = std::filesystem::current_path(ec);
  if (!ec) {
    for (std::filesystem::path dir = cwd;; dir = dir.parent_path()) {
      if (std::filesystem::exists(dir / "ROADMAP.md", ec)) {
        return (dir / filename).string();
      }
      if (dir == dir.parent_path()) break;
    }
  }
  return filename;
}

PlantedCorpus MakePlantedCorpus(size_t nodes, size_t count1,
                                gen::PlantMode mode1, size_t count2,
                                gen::PlantMode mode2, uint64_t seed) {
  if (BenchSmokeMode()) {
    nodes = std::min<size_t>(nodes, 2000);
    count1 = std::min<size_t>(count1, 128);
    count2 = std::min<size_t>(count2, 128);
  }
  gen::CorpusProfile profile;
  profile.target_nodes = nodes;
  profile.seed = seed;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(seed ^ 0xbeac0);
  PlantedCorpus corpus;
  corpus.postings1 =
      gen::PlantKeyword(&raw, PlantedCorpus::kTerm1, count1, mode1, &rng);
  corpus.postings2 =
      gen::PlantKeyword(&raw, PlantedCorpus::kTerm2, count2, mode2, &rng);
  auto document = gen::Materialize(raw);
  if (!document.ok()) {
    std::fprintf(stderr, "corpus materialization failed: %s\n",
                 document.status().ToString().c_str());
    std::abort();
  }
  corpus.document = std::make_unique<doc::Document>(std::move(document).value());
  corpus.index = std::make_unique<text::InvertedIndex>(
      text::InvertedIndex::Build(*corpus.document));
  return corpus;
}

double MedianMillis(const std::function<void()>& fn, int repeats) {
  if (BenchSmokeMode()) repeats = 1;
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    Timer timer;
    fn();
    samples.push_back(timer.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      if (c == 0) {
        std::printf("%-*s", static_cast<int>(widths[c]) + 2, cell.c_str());
      } else {
        std::printf("%*s  ", static_cast<int>(widths[c]), cell.c_str());
      }
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 2;
  for (size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Cell(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string Cell(uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

void Banner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

namespace {

std::string RecordLine(const BenchRecord& r) {
  std::string line = StrFormat(
      "  {\"op\": \"%s\", \"set1\": %zu, \"set2\": %zu, \"threads\": %u, "
      "\"serial_ms\": %.4f, \"parallel_ms\": %.4f, \"speedup\": %.3f, "
      "\"equal\": %s",
      r.op.c_str(), r.set1, r.set2, r.threads, r.serial_ms, r.parallel_ms,
      r.speedup(), r.equal ? "true" : "false");
  for (const auto& [name, value] : r.counters) {
    line += StrFormat(", \"%s\": %llu", name.c_str(),
                      static_cast<unsigned long long>(value));
  }
  line += "}";
  return line;
}

// The files are only ever written by RecordLine (one object per line), so
// the "op" of an existing line can be recovered with plain string search.
std::string LineOp(const std::string& line) {
  const std::string key = "\"op\": \"";
  size_t start = line.find(key);
  if (start == std::string::npos) return "";
  start += key.size();
  size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

std::vector<std::string> ReadRecordLines(const std::string& path) {
  std::vector<std::string> lines;
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return lines;
  std::string content;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, got);
  }
  std::fclose(file);
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    // Strip a trailing comma so kept lines re-serialize cleanly.
    while (!line.empty() && (line.back() == ',' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.find('{') != std::string::npos) lines.push_back(line);
  }
  return lines;
}

}  // namespace

void WriteBenchJson(const std::vector<BenchRecord>& records,
                    const std::string& path_in, bool merge) {
  const std::string path = BenchOutputPath(path_in);
  std::vector<std::string> lines;
  if (merge) {
    std::vector<std::string> new_ops;
    for (const BenchRecord& r : records) new_ops.push_back(r.op);
    for (std::string& line : ReadRecordLines(path)) {
      const std::string op = LineOp(line);
      if (std::find(new_ops.begin(), new_ops.end(), op) == new_ops.end()) {
        lines.push_back(std::move(line));
      }
    }
  }
  for (const BenchRecord& r : records) lines.push_back(RecordLine(r));
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "[\n");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::fprintf(file, "%s%s\n", lines[i].c_str(),
                 i + 1 < lines.size() ? "," : "");
  }
  std::fprintf(file, "]\n");
  std::fclose(file);
  std::printf("\nwrote %zu records to %s (%zu total)\n", records.size(),
              path.c_str(), lines.size());
}

}  // namespace xfrag::bench
