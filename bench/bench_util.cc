#include "bench_util.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"

namespace xfrag::bench {

PlantedCorpus MakePlantedCorpus(size_t nodes, size_t count1,
                                gen::PlantMode mode1, size_t count2,
                                gen::PlantMode mode2, uint64_t seed) {
  gen::CorpusProfile profile;
  profile.target_nodes = nodes;
  profile.seed = seed;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(seed ^ 0xbeac0);
  PlantedCorpus corpus;
  corpus.postings1 =
      gen::PlantKeyword(&raw, PlantedCorpus::kTerm1, count1, mode1, &rng);
  corpus.postings2 =
      gen::PlantKeyword(&raw, PlantedCorpus::kTerm2, count2, mode2, &rng);
  auto document = gen::Materialize(raw);
  if (!document.ok()) {
    std::fprintf(stderr, "corpus materialization failed: %s\n",
                 document.status().ToString().c_str());
    std::abort();
  }
  corpus.document = std::make_unique<doc::Document>(std::move(document).value());
  corpus.index = std::make_unique<text::InvertedIndex>(
      text::InvertedIndex::Build(*corpus.document));
  return corpus;
}

double MedianMillis(const std::function<void()>& fn, int repeats) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    Timer timer;
    fn();
    samples.push_back(timer.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      if (c == 0) {
        std::printf("%-*s", static_cast<int>(widths[c]) + 2, cell.c_str());
      } else {
        std::printf("%*s  ", static_cast<int>(widths[c]), cell.c_str());
      }
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 2;
  for (size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Cell(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string Cell(uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

void Banner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace xfrag::bench
