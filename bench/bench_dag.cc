// DAG-compressed evaluation benchmark: the duplication sweep of ISSUE 7.
//
// Builds collections of kDocs documents at duplication rates {0.0, 0.3,
// 0.6, 0.9} — U = max(1, round(D * (1 - d))) unique documents repeated to
// fill D slots, each unique document additionally stamped with repeated
// subtree templates at rate d (gen::StampDuplicateSubtrees, keywords planted
// *before* stamping so the copies carry them) — and times the full
// QueryService request path with DAG compression off (baseline, serial_ms)
// vs on (candidate, parallel_ms) for a filtered pairwise join, a top-k
// query, and a single-term filtered fixed point. Every row asserts the two
// response bodies are byte-identical after stripping elapsed_ms and the
// physical dag:* counters (which exist only to report compression work).
//
//   ./bench_dag [nodes_per_doc]
//
// Emits BENCH_dag.json: one record per (duplication, op) with the off/on
// timings, the byte-identity verdict, and the replay counters.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "algebra/ops.h"
#include "bench_util.h"
#include "collection/collection.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "gen/corpus.h"
#include "server/service.h"

namespace {

using xfrag::Rng;
using xfrag::bench::Banner;
using xfrag::bench::BenchRecord;
using xfrag::bench::Cell;
using xfrag::bench::MedianMillis;
using xfrag::bench::TablePrinter;

constexpr size_t kDocs = 12;

// Restores the global compression switch whatever path exits the bench.
struct DagSwitchGuard {
  ~DagSwitchGuard() { xfrag::algebra::SetDagCompressionEnabled(true); }
};

size_t OccurrenceCount(const xfrag::gen::RawCorpus& raw,
                       const std::string& keyword) {
  size_t count = 0;
  for (const std::string& text : raw.texts) {
    if (text.find(keyword) != std::string::npos) ++count;
  }
  return count;
}

// One unique document: generated, planted, then stamped so the duplicate
// subtrees carry the planted keywords. Stamping replaces whole sibling
// subtrees, so planted occurrences can be multiplied (the donor carried
// them) or wiped (a replaced sibling did); a post-stamp top-up guarantees
// every template keeps a meaningful posting list — top-ups are part of the
// template, so same-template documents stay byte-identical.
xfrag::gen::RawCorpus MakeUniqueRaw(size_t nodes, double duplication,
                                    uint64_t seed) {
  xfrag::gen::CorpusProfile profile;
  profile.target_nodes = nodes;
  profile.seed = seed;
  xfrag::gen::RawCorpus raw = xfrag::gen::GenerateRaw(profile);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  xfrag::gen::PlantKeyword(&raw, "kwone", 16, xfrag::gen::PlantMode::kClustered,
                           &rng);
  xfrag::gen::PlantKeyword(&raw, "kwtwo", 16,
                           xfrag::gen::PlantMode::kScattered, &rng);
  if (duplication > 0.0) {
    xfrag::gen::StampDuplicateSubtrees(&raw, duplication, &rng);
    constexpr size_t kMinOccurrences = 12;
    for (const char* keyword : {"kwone", "kwtwo"}) {
      size_t have = OccurrenceCount(raw, keyword);
      if (have < kMinOccurrences) {
        xfrag::gen::PlantKeyword(&raw, keyword, kMinOccurrences - have,
                                 xfrag::gen::PlantMode::kScattered, &rng);
      }
    }
  }
  return raw;
}

// D documents cycling through U unique templates: document i is a fresh
// materialization of template i % U, so same-template documents are
// byte-identical (same subtree root class).
xfrag::collection::Collection MakeCollection(size_t nodes, double duplication,
                                             size_t* unique_out) {
  const size_t unique = std::max<size_t>(
      1, static_cast<size_t>(std::llround(
             static_cast<double>(kDocs) * (1.0 - duplication))));
  *unique_out = unique;
  std::vector<xfrag::gen::RawCorpus> templates;
  templates.reserve(unique);
  for (size_t u = 0; u < unique; ++u) {
    templates.push_back(MakeUniqueRaw(
        nodes, duplication,
        0xDA6 + 977 * u + static_cast<uint64_t>(duplication * 100)));
  }
  xfrag::collection::Collection collection;
  for (size_t i = 0; i < kDocs; ++i) {
    auto document = xfrag::gen::Materialize(templates[i % unique]);
    XFRAG_CHECK(document.ok());
    auto status = collection.Add(xfrag::StrFormat("doc%zu.xml", i),
                                 std::move(document).value());
    XFRAG_CHECK(status.ok());
  }
  return collection;
}

// Strips the fields that legitimately differ between a compressed and an
// uncompressed run: wall-clock, and the physical dag:* counters whose whole
// purpose is to report that compression happened.
xfrag::json::Value Normalized(const xfrag::json::Value& body) {
  xfrag::json::Value v = body;
  v.Remove("elapsed_ms");
  if (const xfrag::json::Value* metrics = v.Find("metrics")) {
    xfrag::json::Value m = *metrics;
    m.Set("classes_total", uint64_t{0});
    m.Set("class_pairs_considered", uint64_t{0});
    m.Set("answers_multiplied_out", uint64_t{0});
    v.Set("metrics", std::move(m));
  }
  return v;
}

uint64_t MetricsCounter(const xfrag::json::Value& body, const char* name) {
  const xfrag::json::Value* metrics = body.Find("metrics");
  if (metrics == nullptr) return 0;
  const xfrag::json::Value* counter = metrics->Find(name);
  return counter != nullptr ? static_cast<uint64_t>(counter->AsInt()) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t nodes = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 3000;
  if (xfrag::bench::BenchSmokeMode()) nodes = std::min<size_t>(nodes, 800);
  DagSwitchGuard restore_switch;

  Banner("DAG-compressed evaluation: duplication sweep (QueryService path)");

  struct OpSpec {
    const char* name;
    const char* body;
  };
  const OpSpec kOps[] = {
      {"pairwise_join",
       R"({"terms":["kwone","kwtwo"],"filter":"size<=4","strategy":"pushdown",)"
       R"("max_answers":32})"},
      {"top_k",
       R"({"terms":["kwone","kwtwo"],"filter":"size<=4","strategy":"pushdown",)"
       R"("top_k":5})"},
      {"fixed_point",
       R"({"terms":["kwone"],"filter":"size<=3","strategy":"pushdown",)"
       R"("max_answers":32})"},
  };

  TablePrinter table({"op", "dup", "docs", "unique", "off ms", "on ms",
                      "speedup", "identical", "pairs replayed"});
  std::vector<BenchRecord> records;
  bool all_identical = true;

  for (double duplication : {0.0, 0.3, 0.6, 0.9}) {
    size_t unique = 0;
    xfrag::collection::Collection collection =
        MakeCollection(nodes, duplication, &unique);
    // Two services so neither mode's fixed-point caches warm the other.
    // Cross-document floor off: with it on, per-document metrics depend on
    // the evaluation partition (documented precedent), which would make the
    // byte-compare below meaningless.
    xfrag::server::ServiceOptions service_options;
    service_options.enable_cross_document_floor = false;
    xfrag::server::QueryService service_off(collection, service_options);
    xfrag::server::QueryService service_on(collection, service_options);

    for (const OpSpec& op : kOps) {
      xfrag::algebra::SetDagCompressionEnabled(false);
      xfrag::json::Value body_off = service_off.HandleQuery(op.body).body;
      double off_ms =
          MedianMillis([&] { (void)service_off.HandleQuery(op.body); });

      xfrag::algebra::SetDagCompressionEnabled(true);
      xfrag::json::Value body_on = service_on.HandleQuery(op.body).body;
      double on_ms =
          MedianMillis([&] { (void)service_on.HandleQuery(op.body); });

      const bool identical = Normalized(body_off) == Normalized(body_on);
      all_identical = all_identical && identical;
      const uint64_t replayed =
          MetricsCounter(body_on, "class_pairs_considered");

      BenchRecord record(
          xfrag::StrFormat("dag_%s_d%02d", op.name,
                           static_cast<int>(duplication * 100 + 0.5)),
          kDocs, unique, /*threads=*/1, off_ms, on_ms, identical);
      record.counters.emplace_back("duplication_pct",
                                   static_cast<uint64_t>(duplication * 100));
      record.counters.emplace_back("documents", kDocs);
      record.counters.emplace_back("unique_documents", unique);
      record.counters.emplace_back("class_pairs_considered", replayed);
      record.counters.emplace_back(
          "answers_multiplied_out",
          MetricsCounter(body_on, "answers_multiplied_out"));
      records.push_back(std::move(record));

      table.AddRow({xfrag::StrFormat("%s", op.name), Cell(duplication, 1),
                    Cell(uint64_t{kDocs}), Cell(uint64_t{unique}),
                    Cell(off_ms), Cell(on_ms),
                    Cell(on_ms > 0 ? off_ms / on_ms : 0.0),
                    std::string(identical ? "yes" : "NO"), Cell(replayed)});
    }
  }

  table.Print();
  xfrag::bench::WriteBenchJson(records, "BENCH_dag.json", /*merge=*/false);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: compressed and uncompressed bodies diverged\n");
    return 1;
  }
  return 0;
}
