// Section 5: the reduction factor RF and the optimizer built on it.
// (a) Sweeps true RF and reports the sampled estimate's accuracy;
// (b) compares the optimizer's strategy choice against an oracle that times
//     every strategy, reporting the regret of choosing by estimated RF.

#include <cstdio>

#include "bench_util.h"
#include "query/engine.h"

using namespace xfrag;
using algebra::Fragment;
using algebra::FragmentSet;

int main() {
  bench::Banner("RF estimation accuracy (sample size 12 vs exact)");
  {
    bench::TablePrinter table({"placement", "|F|", "exact RF", "estimated RF",
                               "abs error", "estimate ms", "exact ms"});
    for (auto [label, mode, count] :
         {std::tuple{"clustered", gen::PlantMode::kClustered, size_t{24}},
          std::tuple{"clustered", gen::PlantMode::kClustered, size_t{48}},
          std::tuple{"siblings", gen::PlantMode::kSiblings, size_t{24}},
          std::tuple{"scattered", gen::PlantMode::kScattered, size_t{24}},
          std::tuple{"scattered", gen::PlantMode::kScattered, size_t{48}}}) {
      bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
          6000, count, mode, 2, gen::PlantMode::kScattered,
          500 + count);
      FragmentSet base;
      for (doc::NodeId n : corpus.postings1) base.Insert(Fragment::Single(n));

      double exact = 0, estimate = 0;
      double exact_ms = bench::MedianMillis(
          [&] { exact = query::ReductionFactor(*corpus.document, base); }, 3);
      double estimate_ms = bench::MedianMillis(
          [&] {
            estimate = query::EstimateReductionFactor(*corpus.document, base,
                                                      12, 9);
          },
          3);
      table.AddRow({label, bench::Cell(base.size()), bench::Cell(exact, 2),
                    bench::Cell(estimate, 2),
                    bench::Cell(std::abs(exact - estimate), 2),
                    bench::Cell(estimate_ms, 3), bench::Cell(exact_ms, 3)});
    }
    table.Print();
    std::printf("\nExpected shape (§5): sampling is much cheaper than exact "
                "⊖ on large posting\nlists and separates high-RF (clustered) "
                "from low-RF (scattered) reliably; the\nestimate is what the "
                "optimizer's v-threshold test consumes.\n");
  }

  bench::Banner("Optimizer choice vs oracle (no filter, so push-down is out)");
  {
    bench::TablePrinter table({"placement", "|Fi|", "naive ms", "reduced ms",
                               "optimizer chose", "oracle best", "regret %"});
    for (auto [label, mode, count] :
         {std::tuple{"clustered", gen::PlantMode::kClustered, size_t{8}},
          std::tuple{"clustered", gen::PlantMode::kClustered, size_t{12}},
          std::tuple{"siblings", gen::PlantMode::kSiblings, size_t{10}},
          std::tuple{"scattered", gen::PlantMode::kScattered, size_t{8}},
          std::tuple{"scattered", gen::PlantMode::kScattered, size_t{10}}}) {
      bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
          4000, count, mode, count, mode, 700 + count);
      query::QueryEngine engine(*corpus.document, *corpus.index);
      query::Query q;
      q.terms = {bench::PlantedCorpus::kTerm1, bench::PlantedCorpus::kTerm2};
      // No filter: the optimizer must decide naive vs reduced via RF.

      auto time_strategy = [&](query::Strategy strategy) {
        query::EvalOptions options;
        options.strategy = strategy;
        return bench::MedianMillis(
            [&] {
              auto result = engine.Evaluate(q, options);
              if (!result.ok()) std::abort();
            },
            3);
      };
      double naive_ms = time_strategy(query::Strategy::kFixedPointNaive);
      double reduced_ms = time_strategy(query::Strategy::kFixedPointReduced);

      query::PlanDecision decision =
          query::ChooseStrategy(q, *corpus.document, *corpus.index);
      query::Strategy oracle = naive_ms <= reduced_ms
                                   ? query::Strategy::kFixedPointNaive
                                   : query::Strategy::kFixedPointReduced;
      double chosen_ms = decision.strategy == query::Strategy::kFixedPointNaive
                             ? naive_ms
                             : decision.strategy ==
                                       query::Strategy::kFixedPointReduced
                                   ? reduced_ms
                                   : std::min(naive_ms, reduced_ms);
      double best_ms = std::min(naive_ms, reduced_ms);
      double regret =
          best_ms > 0 ? (chosen_ms - best_ms) / best_ms * 100.0 : 0.0;
      table.AddRow({label, bench::Cell(count), bench::Cell(naive_ms, 3),
                    bench::Cell(reduced_ms, 3),
                    std::string(query::StrategyName(decision.strategy)),
                    std::string(query::StrategyName(oracle)),
                    bench::Cell(regret, 1)});
    }
    table.Print();
    std::printf("\nExpected shape (§5): the RF-threshold rule tracks the "
                "oracle on clearly\nclustered or clearly scattered data; "
                "regret concentrates near the threshold,\nmotivating the "
                "paper's call for a full cost model.\n");
  }
  return 0;
}
