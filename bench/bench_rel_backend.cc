// The [13] claim: the algebra runs on a relational platform. Compares the
// native engine against the relational backend (shredded node/kw tables, all
// structural access through index scans) on the paper document and generated
// corpora, reporting time, fragment joins, and row fetches (a proxy for the
// page accesses a real DBMS would pay).

#include <cstdio>

#include "bench_util.h"
#include "gen/paper_document.h"
#include "query/engine.h"
#include "rel/engine.h"

using namespace xfrag;

int main() {
  bench::Banner("Native vs relational backend: paper document, beta = 3");
  {
    auto document = gen::BuildPaperDocument();
    if (!document.ok()) return 1;
    auto index = text::InvertedIndex::Build(*document);

    query::QueryEngine native(*document, index);
    query::Query q;
    q.terms = {"xquery", "optimization"};
    q.filter = algebra::filters::SizeAtMost(3);
    query::EvalOptions options;
    options.strategy = query::Strategy::kPushDown;
    size_t native_answers = 0;
    double native_ms = bench::MedianMillis(
        [&] {
          auto result = native.Evaluate(q, options);
          if (!result.ok()) std::abort();
          native_answers = result->answers.size();
        },
        9);

    auto rel_engine = rel::RelationalEngine::Create(*document, index);
    if (!rel_engine.ok()) return 1;
    rel::RelFilter filter;
    filter.size_at_most = 3;
    size_t rel_answers = 0;
    double rel_ms = bench::MedianMillis(
        [&] {
          auto result = rel_engine->Evaluate({"xquery", "optimization"},
                                             filter);
          if (!result.ok()) std::abort();
          rel_answers = result->size();
        },
        9);

    bench::TablePrinter table({"backend", "ms", "answers", "node fetches",
                               "kw probes"});
    table.AddRow({"native", bench::Cell(native_ms, 4),
                  bench::Cell(native_answers), "-", "-"});
    table.AddRow({"relational", bench::Cell(rel_ms, 4),
                  bench::Cell(rel_answers),
                  bench::Cell(rel_engine->metrics().node_fetches),
                  bench::Cell(rel_engine->metrics().kw_probes)});
    table.Print();
  }

  bench::Banner("Native vs relational: corpus sweep (beta = 5, push-down)");
  {
    bench::TablePrinter table({"nodes", "native ms", "rel ms", "slowdown",
                               "node fetches", "answers equal"});
    for (size_t nodes : {500u, 1500u, 4000u, 10000u}) {
      bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
          nodes, 8, gen::PlantMode::kClustered, 8, gen::PlantMode::kScattered,
          40 + nodes);
      query::QueryEngine native(*corpus.document, *corpus.index);
      query::Query q;
      q.terms = {bench::PlantedCorpus::kTerm1, bench::PlantedCorpus::kTerm2};
      q.filter = algebra::filters::SizeAtMost(5);
      query::EvalOptions options;
      options.strategy = query::Strategy::kPushDown;
      algebra::FragmentSet native_answers;
      double native_ms = bench::MedianMillis(
          [&] {
            auto result = native.Evaluate(q, options);
            if (!result.ok()) std::abort();
            native_answers = result->answers;
          },
          5);

      auto rel_engine =
          rel::RelationalEngine::Create(*corpus.document, *corpus.index);
      if (!rel_engine.ok()) return 1;
      rel::RelFilter filter;
      filter.size_at_most = 5;
      algebra::FragmentSet rel_answers;
      double rel_ms = bench::MedianMillis(
          [&] {
            auto result = rel_engine->Evaluate(
                {bench::PlantedCorpus::kTerm1, bench::PlantedCorpus::kTerm2},
                filter);
            if (!result.ok()) std::abort();
            rel_answers = *result;
          },
          5);

      table.AddRow(
          {bench::Cell(nodes), bench::Cell(native_ms, 3),
           bench::Cell(rel_ms, 3),
           bench::Cell(rel_ms / (native_ms > 0 ? native_ms : 1e-9), 1),
           bench::Cell(rel_engine->metrics().node_fetches),
           rel_answers.SetEquals(native_answers) ? "yes" : "NO"});
    }
    table.Print();
    std::printf(
        "\nExpected shape: identical answers; the relational backend pays a "
        "constant\nfactor for per-row index probes (the paper's [13] "
        "implementability claim, not a\nperformance one). Fetch counts are "
        "what a DBMS cost model would estimate.\n");
  }
  return 0;
}
