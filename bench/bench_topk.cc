// Top-k ablation: score-bounded evaluation (EvalOptions::top_k) against the
// full pipeline — Evaluate + RankAnswers + take-k — on corpora where most
// candidate joins produce answers that cannot reach the top of the ranking
// and a sound score upper bound rejects them in O(1).
//
// Corpus shape: a root-to-leaf keyword chain of length L grafted onto a
// generated document, every chain node carrying both query terms. The
// filtered closure of the chain is exactly its O(L²) contiguous segments;
// the join of two segments is their covering segment, so the candidate space
// is the O(L⁴) pairs of segments, which dedup down to the O(L²) answers. The
// full pipeline must materialize, dedup, and score every pair. The bounded
// kernel's upper bound for a pair equals its covering segment's true score
// (a chain's pre-order interval contains precisely its own postings), and
// segment scores grow with length — so once the heap holds the k longest
// segments, the near-diagonal majority of pairs (short covers) is rejected
// without materializing anything. Both paths share a pre-warmed
// FixedPointCache — the serving configuration — so the measured difference
// is enumeration + ranking, not the (identical) closure computation.
//
// Rows: top_k ∈ {1, 10, all} × corpus sizes. "all" ranks the complete answer
// set through the top-k path (k = |A|) — it bounds the heap overhead when
// nothing can be pruned. Every row asserts that the top-k result is the
// exact length-k prefix of the full ranked evaluation (scores bit-identical,
// ties by canonical fragment order); any mismatch fails the run with exit 1.
//
// Records go to BENCH_topk.json with the pair counters
// (pairs_considered / pairs_rejected_summary / pairs_rejected_score).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "doc/document.h"
#include "gen/corpus.h"
#include "query/engine.h"
#include "query/fixed_point_cache.h"
#include "text/inverted_index.h"

using namespace xfrag;

namespace {

constexpr const char* kTerm1 = "kwone";
constexpr const char* kTerm2 = "kwtwo";

struct TopKCorpus {
  std::unique_ptr<doc::Document> document;
  std::unique_ptr<text::InvertedIndex> index;
  size_t chains = 0;
  size_t postings = 0;
};

// Grafts `chain_count` deep keyword chains onto a generated corpus: each
// chain is a path of `chain_length` nodes, every node carrying both terms,
// hanging under a deep host leaf in its own depth-2 subtree.
//
// Why chains: the filtered closure of a planted chain is exactly its set of
// contiguous segments — O(L²) fragments, no combinatorial blow-up — and the
// join of any two segments is their covering segment, so every candidate
// pair's score upper bound equals the covering segment's true score (the
// pre-order interval of a chain contains precisely its own postings).
// Segment scores grow with length, so once the heap holds the k longest
// segments, every pair whose cover falls short is rejected in O(1) — the
// vast near-diagonal majority. The full pipeline still materializes, dedups,
// and ranks all of them.
TopKCorpus MakeTopKCorpus(size_t nodes, size_t chain_count,
                          size_t chain_length, uint64_t seed) {
  gen::CorpusProfile profile;
  profile.target_nodes = nodes;
  profile.seed = seed;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  const size_t n = raw.size();

  std::vector<uint32_t> depth(n, 0);
  std::vector<uint32_t> subtree(n, 1);
  for (size_t i = 1; i < n; ++i) depth[i] = depth[raw.parents[i]] + 1;
  for (size_t i = n; i-- > 1;) subtree[raw.parents[i]] += subtree[i];

  // One host per depth-2 subtree, evenly spread: the deepest node of the
  // subtree (a leaf, so the chain splices right after it in pre-order).
  std::vector<doc::NodeId> d2roots;
  for (size_t i = 0; i < n; ++i) {
    if (depth[i] == 2) d2roots.push_back(static_cast<doc::NodeId>(i));
  }
  chain_count = std::min(chain_count, d2roots.size());
  std::vector<doc::NodeId> hosts;
  for (size_t c = 0; c < chain_count; ++c) {
    doc::NodeId root = d2roots[(2 * c + 1) * d2roots.size() / (2 * chain_count)];
    doc::NodeId host = root;
    for (size_t i = root; i < root + subtree[root]; ++i) {
      if (depth[i] > depth[host]) host = static_cast<doc::NodeId>(i);
    }
    hosts.push_back(host);
  }

  // Splice the chains in (hosts are leaves, so "right after the host" keeps
  // the numbering a valid pre-order). A short unplanted stem separates the
  // planted run from the host's own text.
  gen::RawCorpus grafted;
  std::vector<doc::NodeId> remap(n);
  size_t postings = 0;
  const std::string planted_text = std::string(kTerm1) + " " + kTerm2;
  for (size_t i = 0; i < n; ++i) {
    remap[i] = static_cast<doc::NodeId>(grafted.size());
    grafted.parents.push_back(i == 0 ? raw.parents[0]
                                     : remap[raw.parents[i]]);
    grafted.tags.push_back(std::move(raw.tags[i]));
    grafted.texts.push_back(std::move(raw.texts[i]));
    for (size_t c = 0; c < hosts.size(); ++c) {
      if (hosts[c] != i) continue;
      const size_t stem = 2;
      doc::NodeId parent = remap[i];
      for (size_t j = 0; j < stem + chain_length; ++j) {
        doc::NodeId id = static_cast<doc::NodeId>(grafted.size());
        grafted.parents.push_back(parent);
        grafted.tags.push_back("deep");
        grafted.texts.push_back(j < stem ? std::string() : planted_text);
        if (j >= stem) ++postings;
        parent = id;
      }
    }
  }

  TopKCorpus corpus;
  corpus.chains = hosts.size();
  corpus.postings = postings;
  auto document = gen::Materialize(grafted);
  if (!document.ok()) {
    std::fprintf(stderr, "corpus materialization failed: %s\n",
                 document.status().ToString().c_str());
    std::abort();
  }
  corpus.document =
      std::make_unique<doc::Document>(std::move(document).value());
  corpus.index = std::make_unique<text::InvertedIndex>(
      text::InvertedIndex::Build(*corpus.document));
  return corpus;
}

// The exact top-k contract: same fragments, bit-identical scores, in order.
bool PrefixIdentical(const std::vector<query::RankedAnswer>& full,
                     const std::vector<query::RankedAnswer>& topk, size_t k) {
  const size_t expect = std::min(k, full.size());
  if (topk.size() != expect) return false;
  for (size_t i = 0; i < expect; ++i) {
    if (topk[i].score != full[i].score) return false;
    if (!(topk[i].fragment == full[i].fragment)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> sizes = {25000, 50000, 100000};
  if (argc > 1) {
    sizes.clear();
    for (int i = 1; i < argc; ++i) {
      sizes.push_back(static_cast<size_t>(std::atol(argv[i])));
    }
  }
  const bool smoke = bench::BenchSmokeMode();
  if (smoke) sizes = {2500};

  std::vector<bench::BenchRecord> records;
  bool all_identical = true;

  for (size_t nodes : sizes) {
    // A longer keyword run on bigger corpora: the answer set (and the work
    // the full pipeline must spend on it) grows, while top-k still only
    // materializes the pairs that can reach the k best.
    const size_t chain_count = 1;
    const size_t chain_length = smoke ? 8 : 28 + 8 * (nodes / 50000);
    TopKCorpus corpus = MakeTopKCorpus(nodes, chain_count, chain_length,
                                       /*seed=*/0x70cull + nodes);
    const doc::Document& d = *corpus.document;
    query::QueryEngine engine(d, *corpus.index);

    query::Query q;
    q.terms = {kTerm1, kTerm2};
    // Anti-monotone, pushed below the joins. Every segment pair passes:
    // covers are at most chain_length nodes.
    auto filter = query::ParseFilterExpression(
        "size<=" + std::to_string(chain_length));
    if (!filter.ok()) {
      std::fprintf(stderr, "%s\n", filter.status().ToString().c_str());
      return 1;
    }
    q.filter = *filter;

    // Serving configuration: closures memoized once, shared by both paths.
    query::FixedPointCache fp_cache;
    query::EvalOptions options;
    options.strategy = query::Strategy::kPushDown;
    options.executor.fixed_point_cache = &fp_cache;

    auto warm = engine.Evaluate(q, options);
    if (!warm.ok()) {
      std::fprintf(stderr, "%s\n", warm.status().ToString().c_str());
      return 1;
    }
    const size_t answer_count = warm->answers.size();

    bench::Banner(StrFormat(
        "top-k vs full ranked evaluation: %zu nodes, %zu postings, "
        "%zu chains, |A|=%zu",
        nodes, corpus.postings, corpus.chains, answer_count));
    bench::TablePrinter table({"k", "full ms", "top-k ms", "speedup", "pairs",
                               "cut size", "cut score", "identical"});

    // The baseline every row is measured (and checked) against.
    std::vector<query::RankedAnswer> full_ranked;
    double full_ms = bench::MedianMillis([&] {
      auto result = engine.Evaluate(q, options);
      if (!result.ok()) std::abort();
      full_ranked =
          query::RankAnswers(result->answers, q.terms, d, *corpus.index);
    });

    for (size_t k : {size_t{1}, size_t{10}, answer_count}) {
      query::EvalOptions topk_options = options;
      topk_options.top_k = static_cast<int64_t>(k);
      std::vector<query::RankedAnswer> topk_ranked;
      algebra::OpMetrics metrics;
      double topk_ms = bench::MedianMillis([&] {
        auto result = engine.Evaluate(q, topk_options);
        if (!result.ok()) std::abort();
        topk_ranked = std::move(result->ranked);
        metrics = result->metrics;
      });
      const bool identical = PrefixIdentical(full_ranked, topk_ranked, k);
      all_identical = all_identical && identical;

      const std::string label = k == answer_count ? "all" : std::to_string(k);
      bench::BenchRecord record{
          StrFormat("TopK/k=%s/nodes=%zu", label.c_str(), nodes),
          answer_count,
          k,
          1,
          full_ms,
          topk_ms,
          identical};
      record.counters = {
          {"pairs_considered", metrics.pairs_considered},
          {"pairs_rejected_summary", metrics.pairs_rejected_summary},
          {"pairs_rejected_score", metrics.pairs_rejected_score},
          {"answers_full", answer_count}};
      records.push_back(record);
      table.AddRow({label, bench::Cell(full_ms, 3), bench::Cell(topk_ms, 3),
                    bench::Cell(record.speedup(), 2),
                    bench::Cell(metrics.pairs_considered),
                    bench::Cell(metrics.pairs_rejected_summary),
                    bench::Cell(metrics.pairs_rejected_score),
                    identical ? "yes" : "NO"});
    }
    table.Print();
  }

  bench::WriteBenchJson(records, "BENCH_topk.json");

  if (!all_identical) {
    std::fprintf(stderr, "TOP-K PREFIX EQUIVALENCE FAILED\n");
    return 1;
  }
  return 0;
}
