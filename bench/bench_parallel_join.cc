// Serial vs pooled algebra kernels: sweeps worker count × fragment-set size
// for PairwiseJoin (plus Reduce and the naive fixed point) and emits both
// the usual console table and a machine-readable BENCH_parallel.json (via
// the shared bench_util record writer), the first point of the
// parallel-kernel perf trajectory. Every timed pair also
// cross-checks that the pooled result is bit-identical to the serial one.

#include <cstdio>
#include <string>
#include <vector>

#include "algebra/ops.h"
#include "algebra/ops_parallel.h"
#include "bench_util.h"
#include "common/thread_pool.h"

using namespace xfrag;
using algebra::Fragment;
using algebra::FragmentSet;

namespace {

// Insertion-order-sensitive equality (the kernels' bit-identical contract).
bool Identical(const FragmentSet& a, const FragmentSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

FragmentSet Postings(const std::vector<doc::NodeId>& nodes, size_t limit) {
  FragmentSet out;
  for (doc::NodeId n : nodes) {
    if (out.size() >= limit) break;
    out.Insert(Fragment::Single(n));
  }
  return out;
}

}  // namespace

int main() {
  bench::Banner(
      "Parallel algebra kernels: serial vs pooled, threads x |F| sweep");
  std::printf(
      "hardware_concurrency: %u (speedups are bounded by physical cores; "
      "the\nbit-identical check is meaningful at any core count)\n\n",
      std::thread::hardware_concurrency());

  std::vector<bench::BenchRecord> records;

  // --- PairwiseJoin: the headline sweep. --------------------------------
  bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
      24000, 512, gen::PlantMode::kScattered, 512, gen::PlantMode::kScattered,
      7);
  const doc::Document& d = *corpus.document;

  bench::TablePrinter join_table(
      {"op", "|F1|", "|F2|", "threads", "serial ms", "pooled ms", "speedup",
       "identical"});
  for (size_t size : {64u, 128u, 256u, 512u}) {
    FragmentSet f1 = Postings(corpus.postings1, size);
    FragmentSet f2 = Postings(corpus.postings2, size);
    FragmentSet serial_result;
    double serial_ms = bench::MedianMillis(
        [&] { serial_result = algebra::PairwiseJoin(d, f1, f2); }, 3);
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      FragmentSet pooled_result;
      double pooled_ms = bench::MedianMillis(
          [&] {
            pooled_result = algebra::PairwiseJoinParallel(d, f1, f2, &pool);
          },
          3);
      bench::BenchRecord record{"PairwiseJoin",  f1.size(), f2.size(),
                                threads,         serial_ms, pooled_ms,
                                Identical(serial_result, pooled_result)};
      records.push_back(record);
      join_table.AddRow({record.op, bench::Cell(record.set1),
                         bench::Cell(record.set2),
                         bench::Cell(uint64_t{record.threads}),
                         bench::Cell(record.serial_ms, 3),
                         bench::Cell(record.parallel_ms, 3),
                         bench::Cell(record.speedup(), 2),
                         record.equal ? "yes" : "NO"});
    }
  }
  join_table.Print();

  // --- Reduce: quadratic joins + cubic subsumption scans. ---------------
  bench::Banner("Reduce (Definition 10), clustered members");
  bench::PlantedCorpus reduce_corpus = bench::MakePlantedCorpus(
      12000, 96, gen::PlantMode::kClustered, 2, gen::PlantMode::kScattered,
      17);
  bench::TablePrinter reduce_table(
      {"op", "|F|", "threads", "serial ms", "pooled ms", "speedup",
       "identical"});
  for (size_t size : {48u, 96u}) {
    FragmentSet f = Postings(reduce_corpus.postings1, size);
    FragmentSet serial_result;
    double serial_ms = bench::MedianMillis(
        [&] { serial_result = algebra::Reduce(*reduce_corpus.document, f); },
        3);
    for (unsigned threads : {2u, 4u, 8u}) {
      ThreadPool pool(threads);
      FragmentSet pooled_result;
      double pooled_ms = bench::MedianMillis(
          [&] {
            pooled_result =
                algebra::ReduceParallel(*reduce_corpus.document, f, &pool);
          },
          3);
      bench::BenchRecord record{"Reduce",  f.size(),  0,
                                threads,   serial_ms, pooled_ms,
                                Identical(serial_result, pooled_result)};
      records.push_back(record);
      reduce_table.AddRow(
          {record.op, bench::Cell(record.set1),
           bench::Cell(uint64_t{record.threads}),
           bench::Cell(record.serial_ms, 3), bench::Cell(record.parallel_ms, 3),
           bench::Cell(record.speedup(), 2), record.equal ? "yes" : "NO"});
    }
  }
  reduce_table.Print();

  // --- FixedPointNaive: pooled iterations + interned working set. -------
  bench::Banner("FixedPointNaive (Definition 9), clustered members");
  bench::PlantedCorpus fp_corpus = bench::MakePlantedCorpus(
      12000, 14, gen::PlantMode::kClustered, 2, gen::PlantMode::kScattered,
      27);
  bench::TablePrinter fp_table({"op", "|F|", "threads", "serial ms",
                                "pooled ms", "speedup", "identical"});
  {
    FragmentSet f = Postings(fp_corpus.postings1, 14);
    FragmentSet serial_result;
    double serial_ms = bench::MedianMillis(
        [&] {
          serial_result = algebra::FixedPointNaive(*fp_corpus.document, f);
        },
        3);
    for (unsigned threads : {2u, 4u, 8u}) {
      ThreadPool pool(threads);
      FragmentSet pooled_result;
      double pooled_ms = bench::MedianMillis(
          [&] {
            pooled_result = algebra::FixedPointNaiveParallel(
                *fp_corpus.document, f, &pool);
          },
          3);
      bench::BenchRecord record{"FixedPointNaive", f.size(), 0,
                                threads,           serial_ms, pooled_ms,
                                Identical(serial_result, pooled_result)};
      records.push_back(record);
      fp_table.AddRow(
          {record.op, bench::Cell(record.set1),
           bench::Cell(uint64_t{record.threads}),
           bench::Cell(record.serial_ms, 3), bench::Cell(record.parallel_ms, 3),
           bench::Cell(record.speedup(), 2), record.equal ? "yes" : "NO"});
    }
  }
  fp_table.Print();

  bench::WriteBenchJson(records, "BENCH_parallel.json", /*merge=*/false);

  for (const bench::BenchRecord& record : records) {
    if (!record.equal) {
      std::fprintf(stderr, "BIT-IDENTICAL CHECK FAILED: %s threads=%u\n",
                   record.op.c_str(), record.threads);
      return 1;
    }
  }
  return 0;
}
