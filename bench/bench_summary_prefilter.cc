// Ablation of the summary prefilters: the same filtered-join and reduce
// kernels run with SetSummaryPrefilterEnabled(false) as the baseline
// ("serial_ms") and enabled as the candidate ("parallel_ms"), on identical
// inputs. Results must be bit-identical either way — the prefilters only
// skip physical work the filter would have rejected anyway (Theorem 3's
// anti-monotonic bounds) or subsumption tests that cannot succeed.
//
// The headline rows are the filtered pairwise joins over scattered keywords
// at tight size filters (β ≤ 8): almost every candidate pair's O(1) size
// lower bound already exceeds β, so the prefiltered kernel never merges node
// vectors for them. Records (with the prefilter counters) go to
// BENCH_core.json via the shared writer.

#include <cstdio>
#include <string>
#include <vector>

#include "algebra/ops.h"
#include "bench_util.h"

using namespace xfrag;
using algebra::Fragment;
using algebra::FragmentSet;

namespace {

// Insertion-order-sensitive equality (the kernels' bit-identical contract).
bool Identical(const FragmentSet& a, const FragmentSet& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

FragmentSet Postings(const std::vector<doc::NodeId>& nodes, size_t limit) {
  FragmentSet out;
  for (doc::NodeId n : nodes) {
    if (out.size() >= limit) break;
    out.Insert(Fragment::Single(n));
  }
  return out;
}

}  // namespace

int main() {
  std::vector<bench::BenchRecord> records;
  bool all_identical = true;

  // --- Filtered pairwise join: scattered keywords, tight size filters. ----
  bench::Banner(
      "PairwiseJoinFiltered: summary prefilter off vs on (scattered, "
      "size<=beta)");
  {
    bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
        24000, 512, gen::PlantMode::kScattered, 512,
        gen::PlantMode::kScattered, 7);
    const doc::Document& d = *corpus.document;
    algebra::FilterContext context{&d, corpus.index.get()};
    bench::TablePrinter table({"|F|", "beta", "off ms", "on ms", "speedup",
                               "pairs", "rejected O(1)", "identical"});
    for (size_t size : {128u, 256u}) {
      FragmentSet f1 = Postings(corpus.postings1, size);
      FragmentSet f2 = Postings(corpus.postings2, size);
      for (uint32_t beta : {2u, 4u, 8u}) {
        auto filter = algebra::filters::SizeAtMost(beta);
        algebra::SetSummaryPrefilterEnabled(false);
        FragmentSet off_result;
        double off_ms = bench::MedianMillis([&] {
          off_result =
              algebra::PairwiseJoinFiltered(d, f1, f2, filter, context);
        });
        algebra::SetSummaryPrefilterEnabled(true);
        algebra::OpMetrics metrics;
        FragmentSet on_result;
        double on_ms = bench::MedianMillis([&] {
          metrics.Reset();
          on_result = algebra::PairwiseJoinFiltered(d, f1, f2, filter,
                                                    context, &metrics);
        });
        bool identical = Identical(off_result, on_result);
        all_identical = all_identical && identical;
        bench::BenchRecord record{
            "PrefilterPairwiseJoin/beta=" + std::to_string(beta),
            size,
            size,
            1,
            off_ms,
            on_ms,
            identical};
        record.counters = {
            {"pairs_considered", metrics.pairs_considered},
            {"pairs_rejected_summary", metrics.pairs_rejected_summary}};
        records.push_back(record);
        table.AddRow({bench::Cell(uint64_t{size}),
                      bench::Cell(uint64_t{beta}), bench::Cell(off_ms, 3),
                      bench::Cell(on_ms, 3), bench::Cell(record.speedup(), 2),
                      bench::Cell(metrics.pairs_considered),
                      bench::Cell(metrics.pairs_rejected_summary),
                      identical ? "yes" : "NO"});
      }
    }
    table.Print();
  }

  // --- Filtered fixed point: the powerset-join push-down plan's loop. -----
  bench::Banner(
      "FixedPointFiltered (powerset-join push-down): prefilter off vs on "
      "(scattered)");
  {
    bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
        24000, 48, gen::PlantMode::kScattered, 2, gen::PlantMode::kScattered,
        17);
    const doc::Document& d = *corpus.document;
    algebra::FilterContext context{&d, corpus.index.get()};
    bench::TablePrinter table({"|F|", "filter", "off ms", "on ms", "speedup",
                               "rejected O(1)", "identical"});
    for (size_t size : {24u, 48u}) {
      FragmentSet f = Postings(corpus.postings1, size);
      for (uint32_t beta : {4u, 8u}) {
        auto filter = algebra::filters::SizeAtMost(beta);
        algebra::SetSummaryPrefilterEnabled(false);
        FragmentSet off_result;
        double off_ms = bench::MedianMillis([&] {
          off_result = algebra::FixedPointFiltered(d, f, filter, context);
        });
        algebra::SetSummaryPrefilterEnabled(true);
        algebra::OpMetrics metrics;
        FragmentSet on_result;
        double on_ms = bench::MedianMillis([&] {
          metrics.Reset();
          on_result = algebra::FixedPointFiltered(d, f, filter, context,
                                                  &metrics);
        });
        bool identical = Identical(off_result, on_result);
        all_identical = all_identical && identical;
        bench::BenchRecord record{
            "PrefilterFixedPoint/beta=" + std::to_string(beta),
            f.size(),
            0,
            1,
            off_ms,
            on_ms,
            identical};
        record.counters = {
            {"pairs_considered", metrics.pairs_considered},
            {"pairs_rejected_summary", metrics.pairs_rejected_summary}};
        records.push_back(record);
        table.AddRow({bench::Cell(f.size()),
                      "size<=" + std::to_string(beta),
                      bench::Cell(off_ms, 3), bench::Cell(on_ms, 3),
                      bench::Cell(record.speedup(), 2),
                      bench::Cell(metrics.pairs_rejected_summary),
                      identical ? "yes" : "NO"});
      }
    }
    table.Print();
  }

  // --- Reduce: all-pairs std::includes vs the interval/size index. --------
  bench::Banner("Reduce: candidate index off vs on (clustered members)");
  {
    bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
        12000, 96, gen::PlantMode::kClustered, 2, gen::PlantMode::kScattered,
        17);
    const doc::Document& d = *corpus.document;
    bench::TablePrinter table({"|F|", "off ms", "on ms", "speedup",
                               "checks skipped", "identical"});
    for (size_t size : {48u, 96u}) {
      FragmentSet f = Postings(corpus.postings1, size);
      algebra::SetSummaryPrefilterEnabled(false);
      FragmentSet off_result;
      double off_ms =
          bench::MedianMillis([&] { off_result = algebra::Reduce(d, f); });
      algebra::SetSummaryPrefilterEnabled(true);
      algebra::OpMetrics metrics;
      FragmentSet on_result;
      double on_ms = bench::MedianMillis([&] {
        metrics.Reset();
        on_result = algebra::Reduce(d, f, &metrics);
      });
      bool identical = Identical(off_result, on_result);
      all_identical = all_identical && identical;
      bench::BenchRecord record{"PrefilterReduce", size,  0, 1,
                                off_ms,            on_ms, identical};
      record.counters = {
          {"subsume_checks_skipped", metrics.subsume_checks_skipped}};
      records.push_back(record);
      table.AddRow({bench::Cell(uint64_t{size}), bench::Cell(off_ms, 3),
                    bench::Cell(on_ms, 3), bench::Cell(record.speedup(), 2),
                    bench::Cell(metrics.subsume_checks_skipped),
                    identical ? "yes" : "NO"});
    }
    table.Print();
  }

  bench::WriteBenchJson(records, "BENCH_core.json");

  if (!all_identical) {
    std::fprintf(stderr, "ABLATION EQUIVALENCE FAILED\n");
    return 1;
  }
  return 0;
}
