// Figure 8 / Section 1 effectiveness claim: the algebraic model retrieves
// the self-contained "fragment of interest" that smallest-subtree (SLCA)
// semantics cannot return. Measures target recall and answer-set sizes for
// xfrag vs SLCA/ELCA/smallest-subtree on (a) the Figure-1 document and
// (b) planted-target corpora where the true answer is a subsection whose
// two paragraphs split the query keywords.

#include <cstdio>

#include "baseline/lca_baselines.h"
#include "bench_util.h"
#include "gen/corpus.h"
#include "gen/paper_document.h"
#include "query/engine.h"

using namespace xfrag;
using algebra::Fragment;
using algebra::FragmentSet;

namespace {

// Builds a corpus with one planted target: a parent with two child
// paragraphs, one containing kwone, the other kwtwo, plus `noise`
// occurrences of each keyword elsewhere. Returns (document ready corpus,
// target fragment nodes).
struct TargetInstance {
  std::unique_ptr<doc::Document> document;
  std::unique_ptr<text::InvertedIndex> index;
  std::vector<doc::NodeId> target;
};

TargetInstance MakeTargetInstance(size_t nodes, size_t noise, uint64_t seed) {
  gen::CorpusProfile profile;
  profile.target_nodes = nodes;
  profile.seed = seed;
  gen::RawCorpus raw = gen::GenerateRaw(profile);
  Rng rng(seed ^ 0xf18);

  // Find a parent with >= 2 children to host the split target.
  std::vector<std::vector<doc::NodeId>> children(raw.size());
  for (size_t i = 1; i < raw.size(); ++i) {
    children[raw.parents[i]].push_back(static_cast<doc::NodeId>(i));
  }
  doc::NodeId host = 0;
  for (size_t i = raw.size(); i-- > 0;) {
    if (children[i].size() >= 2) {
      host = static_cast<doc::NodeId>(i);
      // Prefer a deep host: keep scanning smaller ids only if none found.
      if (rng.Chance(0.7)) break;
    }
  }
  doc::NodeId left = children[host][0];
  doc::NodeId right = children[host][1];
  raw.texts[left] += " kwone";
  raw.texts[right] += " kwtwo";

  // Noise occurrences, scattered, away from the host subtree.
  std::vector<doc::NodeId> pool;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (i == host || i == left || i == right) continue;
    pool.push_back(static_cast<doc::NodeId>(i));
  }
  rng.Shuffle(&pool);
  for (size_t i = 0; i < noise && 2 * i + 1 < pool.size(); ++i) {
    raw.texts[pool[2 * i]] += " kwone";
    raw.texts[pool[2 * i + 1]] += " kwtwo";
  }

  TargetInstance instance;
  auto document = gen::Materialize(raw);
  if (!document.ok()) std::abort();
  instance.document =
      std::make_unique<doc::Document>(std::move(document).value());
  instance.index = std::make_unique<text::InvertedIndex>(
      text::InvertedIndex::Build(*instance.document));
  instance.target = {host, left, right};
  return instance;
}

}  // namespace

int main() {
  bench::Banner("Figure 8 on the paper's own document");
  {
    auto document = gen::BuildPaperDocument();
    if (!document.ok()) return 1;
    auto index = text::InvertedIndex::Build(*document);
    Fragment target = Fragment::FromSortedUnchecked({16, 17, 18});

    query::QueryEngine engine(*document, index);
    query::Query q;
    q.terms = {"xquery", "optimization"};
    q.filter = algebra::filters::SizeAtMost(3);
    auto xfrag_result = engine.Evaluate(q);
    baseline::LcaBaselines baselines(*document, index);
    auto subtree_answers =
        baselines.SmallestSubtreeAnswers({"xquery", "optimization"});
    if (!xfrag_result.ok() || !subtree_answers.ok()) return 1;

    bench::TablePrinter table(
        {"system", "answers", "returns <n16,n17,n18>?"});
    table.AddRow({"xfrag (beta=3)", bench::Cell(xfrag_result->answers.size()),
                  xfrag_result->answers.Contains(target) ? "yes" : "no"});
    table.AddRow({"smallest-subtree (SLCA)",
                  bench::Cell(subtree_answers->size()),
                  subtree_answers->Contains(target) ? "yes" : "no"});
    table.Print();
  }

  bench::Banner(
      "Planted split-keyword targets: recall of the self-contained fragment");
  {
    bench::TablePrinter table({"nodes", "noise", "xfrag recall",
                               "xfrag answers", "slca recall", "slca answers",
                               "elca answers", "xfrag ms", "slca ms"});
    for (auto [nodes, noise] : {std::pair<size_t, size_t>{500, 2},
                                {2000, 4},
                                {8000, 6},
                                {20000, 8}}) {
      int trials = 5;
      int xfrag_hits = 0, slca_hits = 0;
      double xfrag_answers = 0, slca_answers = 0, elca_answers = 0;
      double xfrag_ms = 0, slca_ms = 0;
      for (int t = 0; t < trials; ++t) {
        TargetInstance instance =
            MakeTargetInstance(nodes, noise, 1000 + static_cast<uint64_t>(t));
        Fragment target = Fragment::FromSortedUnchecked(
            std::vector<doc::NodeId>(instance.target.begin(),
                                     instance.target.end()));

        query::QueryEngine engine(*instance.document, *instance.index);
        query::Query q;
        q.terms = {"kwone", "kwtwo"};
        q.filter = algebra::filters::SizeAtMost(3);
        query::EvalOptions options;
        options.strategy = query::Strategy::kPushDown;
        FragmentSet answers;
        xfrag_ms += bench::MedianMillis(
            [&] {
              auto result = engine.Evaluate(q, options);
              if (!result.ok()) std::abort();
              answers = result->answers;
            },
            3);
        if (answers.Contains(target)) ++xfrag_hits;
        xfrag_answers += static_cast<double>(answers.size());

        baseline::LcaBaselines baselines(*instance.document, *instance.index);
        FragmentSet subtree_answers;
        slca_ms += bench::MedianMillis(
            [&] {
              auto result =
                  baselines.SmallestSubtreeAnswers({"kwone", "kwtwo"});
              if (!result.ok()) std::abort();
              subtree_answers = *result;
            },
            3);
        if (subtree_answers.Contains(target)) ++slca_hits;
        slca_answers += static_cast<double>(subtree_answers.size());
        auto elca = baselines.Elca({"kwone", "kwtwo"});
        if (elca.ok()) elca_answers += static_cast<double>(elca->size());
      }
      table.AddRow(
          {bench::Cell(nodes), bench::Cell(noise),
           bench::Cell(static_cast<double>(xfrag_hits) / trials, 2),
           bench::Cell(xfrag_answers / trials, 1),
           bench::Cell(static_cast<double>(slca_hits) / trials, 2),
           bench::Cell(slca_answers / trials, 1),
           bench::Cell(elca_answers / trials, 1),
           bench::Cell(xfrag_ms / trials, 2),
           bench::Cell(slca_ms / trials, 2)});
    }
    table.Print();
    std::printf(
        "\nExpected shape (§1): xfrag recall 1.00 — the parent+two-paragraph "
        "target is an\nalgebraic join answer. SLCA recall ~0: the baseline "
        "returns whole subtrees rooted\nat LCA nodes, which equal the target "
        "only when the host has exactly two children\n(and never returns the "
        "paper's intermediate self-contained fragments).\n");
  }
  return 0;
}
