// Substrate throughput microbenchmarks (google-benchmark): XML parse,
// document flattening, index construction, serialization, and bundle
// save/load. These are the fixed costs every query session pays once.

#include <benchmark/benchmark.h>

#include "doc/document.h"
#include "gen/corpus.h"
#include "storage/storage.h"
#include "text/inverted_index.h"
#include "xml/parser.h"
#include "xml/serializer.h"

using namespace xfrag;

namespace {

std::string CorpusXml(size_t nodes) {
  gen::CorpusProfile profile;
  profile.target_nodes = nodes;
  profile.seed = nodes;
  return gen::ToXml(gen::GenerateRaw(profile));
}

void BM_XmlParse(benchmark::State& state) {
  std::string xml_text = CorpusXml(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto dom = xml::Parse(xml_text);
    if (!dom.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(dom);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml_text.size()));
}
BENCHMARK(BM_XmlParse)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_DomToDocument(benchmark::State& state) {
  std::string xml_text = CorpusXml(static_cast<size_t>(state.range(0)));
  auto dom = xml::Parse(xml_text);
  if (!dom.ok()) return;
  for (auto _ : state) {
    auto document = doc::Document::FromDom(*dom);
    benchmark::DoNotOptimize(document);
  }
}
BENCHMARK(BM_DomToDocument)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_IndexBuild(benchmark::State& state) {
  std::string xml_text = CorpusXml(static_cast<size_t>(state.range(0)));
  auto dom = xml::Parse(xml_text);
  auto document = doc::Document::FromDom(*dom);
  for (auto _ : state) {
    auto index = text::InvertedIndex::Build(*document);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Serialize(benchmark::State& state) {
  std::string xml_text = CorpusXml(static_cast<size_t>(state.range(0)));
  auto dom = xml::Parse(xml_text);
  for (auto _ : state) {
    std::string out = xml::Serialize(*dom);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Serialize)->Arg(1000)->Arg(10000);

void BM_BundleWrite(benchmark::State& state) {
  std::string xml_text = CorpusXml(static_cast<size_t>(state.range(0)));
  auto dom = xml::Parse(xml_text);
  auto document = doc::Document::FromDom(*dom);
  auto index = text::InvertedIndex::Build(*document);
  for (auto _ : state) {
    std::string data = storage::WriteBundle(*document, &index);
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_BundleWrite)->Arg(1000)->Arg(10000);

void BM_BundleRead(benchmark::State& state) {
  std::string xml_text = CorpusXml(static_cast<size_t>(state.range(0)));
  auto dom = xml::Parse(xml_text);
  auto document = doc::Document::FromDom(*dom);
  auto index = text::InvertedIndex::Build(*document);
  std::string data = storage::WriteBundle(*document, &index);
  for (auto _ : state) {
    auto bundle = storage::ReadBundle(data);
    if (!bundle.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(bundle);
  }
  state.SetLabel("bundle bytes: " + std::to_string(data.size()));
}
BENCHMARK(BM_BundleRead)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
