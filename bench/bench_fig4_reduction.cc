// Figure 4 / §3.1.4 / §5: when is fragment set reduction worth it?
// Sweeps the reduction factor RF by controlling keyword dispersion and
// compares fixed-point computation with convergence checking (naive,
// §3.1.1) against the Theorem-1 reduced-iteration algorithm (§3.1.2),
// reporting RF, iteration counts, join counts and wall-clock time.
// Contributes its records to BENCH_core.json via the shared writer.

#include <cstdio>

#include "algebra/ops.h"
#include "bench_util.h"
#include "common/rng.h"
#include "query/optimizer.h"

using namespace xfrag;
using algebra::Fragment;
using algebra::FragmentSet;

namespace {

// Builds a fragment set over a chain-plus-leaves tree whose RF is
// controlled directly: `interior` of the members lie on one root path (they
// get absorbed by the join of the two extremes ⇒ eliminated by ⊖), and
// `scattered` members are leaves of distinct subtrees (never eliminated).
struct RfInstance {
  std::unique_ptr<doc::Document> document;
  FragmentSet set;
  double exact_rf = 0.0;
};

RfInstance MakeInstance(size_t interior, size_t scattered, uint64_t seed) {
  // Tree: a spine 0→1→...→S of length S = interior+2, plus `scattered`
  // star branches hanging off the root.
  size_t spine = interior + 2;
  std::vector<doc::NodeId> parents{doc::kNoNode};
  for (size_t i = 1; i < spine; ++i) {
    parents.push_back(static_cast<doc::NodeId>(i - 1));
  }
  // Each scattered member: a 2-node branch root→(b)→(leaf) directly under
  // node 0 so no member's path covers another.
  std::vector<doc::NodeId> leaf_ids;
  for (size_t s = 0; s < scattered; ++s) {
    parents.push_back(0);  // Branch node b.
    doc::NodeId b = static_cast<doc::NodeId>(parents.size() - 1);
    parents.push_back(b);  // Leaf.
    leaf_ids.push_back(static_cast<doc::NodeId>(parents.size() - 1));
  }
  std::vector<std::string> tags(parents.size(), "n"), texts(parents.size(), "");
  auto document = doc::Document::FromParents(parents, tags, texts);
  RfInstance instance;
  instance.document =
      std::make_unique<doc::Document>(std::move(document).value());

  // Members: spine nodes 1..spine-1 (the interior ones get eliminated by
  // the join of 1 and spine-1), plus the scattered leaves.
  for (size_t i = 1; i < spine; ++i) {
    instance.set.Insert(Fragment::Single(static_cast<doc::NodeId>(i)));
  }
  for (doc::NodeId leaf : leaf_ids) {
    instance.set.Insert(Fragment::Single(leaf));
  }
  (void)seed;
  instance.exact_rf =
      query::ReductionFactor(*instance.document, instance.set);
  return instance;
}

}  // namespace

int main() {
  bench::Banner(
      "Fixed point: naive convergence checking vs Theorem-1 reduction "
      "(Figure 4, Sections 3.1.1-3.1.4, 5)");
  std::printf("Fixed member count; RF swept by moving members from scattered "
              "leaves onto one spine.\n\n");

  bench::TablePrinter table({"members", "RF", "naive iters", "naive joins",
                             "naive ms", "reduced iters", "reduced joins",
                             "reduced ms", "|F+|", "equal"});
  std::vector<bench::BenchRecord> records;
  const size_t total = 12;
  for (size_t interior = 0; interior + 2 <= total; interior += 2) {
    size_t scattered = total - 2 - interior;
    RfInstance instance = MakeInstance(interior, scattered, 1);
    const doc::Document& d = *instance.document;

    algebra::OpMetrics naive_metrics;
    FragmentSet naive_result;
    double naive_ms = bench::MedianMillis(
        [&] {
          naive_metrics.Reset();
          naive_result = algebra::FixedPointNaive(d, instance.set,
                                                  &naive_metrics);
        },
        5);

    algebra::OpMetrics reduced_metrics;
    FragmentSet reduced_result;
    double reduced_ms = bench::MedianMillis(
        [&] {
          reduced_metrics.Reset();
          reduced_result = algebra::FixedPointReduced(d, instance.set,
                                                      &reduced_metrics);
        },
        5);

    table.AddRow({bench::Cell(instance.set.size()),
                  bench::Cell(instance.exact_rf, 2),
                  bench::Cell(naive_metrics.fixed_point_iterations),
                  bench::Cell(naive_metrics.fragment_joins),
                  bench::Cell(naive_ms, 3),
                  bench::Cell(reduced_metrics.fixed_point_iterations),
                  bench::Cell(reduced_metrics.fragment_joins),
                  bench::Cell(reduced_ms, 3),
                  bench::Cell(naive_result.size()),
                  naive_result.SetEquals(reduced_result) ? "yes" : "NO"});
    bench::BenchRecord record{"FixedPointReduction",
                              instance.set.size(),
                              interior,
                              1,
                              naive_ms,
                              reduced_ms,
                              naive_result.SetEquals(reduced_result)};
    record.counters = {
        {"naive_joins", naive_metrics.fragment_joins},
        {"reduced_joins", reduced_metrics.fragment_joins},
        {"subsume_checks_skipped", reduced_metrics.subsume_checks_skipped}};
    records.push_back(record);
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper §3.1.4/§5): at high RF the reduced form "
      "needs far fewer\niterations (|reduce(F)| − 1) than naive convergence "
      "checking; at RF ≈ 0 the\n⊖ overhead makes reduction a wash or a loss "
      "— exactly the trade-off the\npaper's optimizer discussion "
      "anticipates.\n");

  bench::Banner("Reduction on clustered vs scattered corpora (sanity)");
  bench::TablePrinter corpus_table(
      {"placement", "|F|", "|reduce(F)|", "RF", "reduce ms"});
  for (auto [label, mode] :
       {std::pair{"clustered", gen::PlantMode::kClustered},
        std::pair{"siblings", gen::PlantMode::kSiblings},
        std::pair{"scattered", gen::PlantMode::kScattered}}) {
    bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
        4000, 14, mode, 2, gen::PlantMode::kScattered, 99);
    FragmentSet f;
    for (doc::NodeId n : corpus.postings1) f.Insert(Fragment::Single(n));
    FragmentSet reduced;
    double ms = bench::MedianMillis(
        [&] { reduced = algebra::Reduce(*corpus.document, f); }, 5);
    double rf = f.size() < 2
                    ? 0.0
                    : static_cast<double>(f.size() - reduced.size()) /
                          static_cast<double>(f.size());
    corpus_table.AddRow({label, bench::Cell(f.size()),
                         bench::Cell(reduced.size()), bench::Cell(rf, 2),
                         bench::Cell(ms, 3)});
    bench::BenchRecord record{std::string("ReduceCorpus/") + label,
                              f.size(),
                              reduced.size(),
                              1,
                              ms,
                              ms,
                              true};
    records.push_back(record);
  }
  corpus_table.Print();

  bench::WriteBenchJson(records, "BENCH_core.json");
  return 0;
}
