// Figure-3 operation microbenchmarks: fragment join, LCA, pairwise fragment
// join, powerset fragment join (brute-force Definition 6 vs the Theorem-2
// fixed-point form on identical inputs), and Reduce, as functions of fragment
// size, set cardinality, and tree shape. Establishes the raw operator costs
// that the strategy-level benches build on, and contributes its records to
// BENCH_core.json through the shared bench_util writer.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/ops.h"
#include "bench_util.h"
#include "common/rng.h"

using namespace xfrag;
using algebra::Fragment;
using algebra::FragmentSet;

namespace {

// Deterministic random tree shared across measurements.
const doc::Document& SharedTree(size_t nodes) {
  static std::map<size_t, std::unique_ptr<doc::Document>> cache;
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    Rng rng(nodes * 2654435761u + 17);
    std::vector<doc::NodeId> parents{doc::kNoNode};
    std::vector<doc::NodeId> path{0};  // Rightmost path: legal parents.
    for (size_t i = 1; i < nodes; ++i) {
      size_t w = std::min<size_t>(32, path.size());
      size_t index = path.size() - 1 - static_cast<size_t>(rng.Uniform(w));
      parents.push_back(path[index]);
      path.resize(index + 1);
      path.push_back(static_cast<doc::NodeId>(i));
    }
    std::vector<std::string> tags(nodes, "n"), texts(nodes, "");
    auto d = doc::Document::FromParents(parents, tags, texts);
    it = cache.emplace(nodes, std::make_unique<doc::Document>(
                                  std::move(d).value()))
             .first;
  }
  return *it->second;
}

Fragment RandomFragment(const doc::Document& d, size_t joins, Rng* rng) {
  Fragment f =
      Fragment::Single(static_cast<doc::NodeId>(rng->Uniform(d.size())));
  for (size_t i = 0; i < joins; ++i) {
    f = algebra::Join(
        d, f,
        Fragment::Single(static_cast<doc::NodeId>(rng->Uniform(d.size()))));
  }
  return f;
}

FragmentSet RandomSingles(const doc::Document& d, size_t count, uint64_t seed) {
  Rng rng(seed);
  FragmentSet out;
  while (out.size() < count) {
    out.Insert(Fragment::Single(static_cast<doc::NodeId>(rng.Uniform(d.size()))));
  }
  return out;
}

// A single-measurement record: baseline and candidate are the same timing.
bench::BenchRecord Micro(const std::string& op, size_t set1, size_t set2,
                         double ms) {
  bench::BenchRecord r{op, set1, set2, /*threads=*/1, ms, ms, /*equal=*/true};
  return r;
}

}  // namespace

int main() {
  std::vector<bench::BenchRecord> records;

  // --- Fragment join: batched random pairs, nodes × accumulated joins. ----
  bench::Banner("Fragment join (Definition 4), 4096 joins per cell");
  bench::TablePrinter join_table({"nodes", "frag joins", "batch ms"});
  constexpr int kJoinBatch = 4096;
  for (size_t nodes : {1000u, 100000u}) {
    const doc::Document& d = SharedTree(nodes);
    for (size_t frag_joins : {0u, 3u, 8u}) {
      Rng rng(7);
      std::vector<std::pair<Fragment, Fragment>> pairs;
      for (int i = 0; i < 64; ++i) {
        pairs.emplace_back(RandomFragment(d, frag_joins, &rng),
                           RandomFragment(d, frag_joins, &rng));
      }
      size_t sink = 0;
      double ms = bench::MedianMillis([&] {
        for (int i = 0; i < kJoinBatch; ++i) {
          const auto& [f1, f2] = pairs[static_cast<size_t>(i) & 63];
          sink += algebra::Join(d, f1, f2).size();
        }
      });
      if (sink == static_cast<size_t>(-1)) std::printf("!");
      join_table.AddRow({bench::Cell(uint64_t{nodes}),
                         bench::Cell(uint64_t{frag_joins}),
                         bench::Cell(ms, 3)});
      records.push_back(Micro("FragmentJoin", nodes, frag_joins, ms));
    }
  }
  join_table.Print();

  // --- LCA: the O(1) primitive under everything. --------------------------
  bench::Banner("LCA lookups, 65536 per cell");
  bench::TablePrinter lca_table({"nodes", "batch ms"});
  for (size_t nodes : {1000u, 100000u, 1000000u}) {
    const doc::Document& d = SharedTree(nodes);
    Rng rng(11);
    size_t sink = 0;
    double ms = bench::MedianMillis([&] {
      for (int i = 0; i < 65536; ++i) {
        doc::NodeId a = static_cast<doc::NodeId>(rng.Uniform(d.size()));
        doc::NodeId b = static_cast<doc::NodeId>(rng.Uniform(d.size()));
        sink += d.Lca(a, b);
      }
    });
    if (sink == static_cast<size_t>(-1)) std::printf("!");
    lca_table.AddRow({bench::Cell(uint64_t{nodes}), bench::Cell(ms, 3)});
    records.push_back(Micro("Lca", nodes, 0, ms));
  }
  lca_table.Print();

  // --- Pairwise join: |F|² scaling. ---------------------------------------
  bench::Banner("Pairwise join (Definition 5)");
  bench::TablePrinter pw_table({"|F|", "ms"});
  {
    const doc::Document& d = SharedTree(10000);
    for (size_t size : {4u, 16u, 64u, 256u}) {
      FragmentSet f1 = RandomSingles(d, size, 13);
      FragmentSet f2 = RandomSingles(d, size, 14);
      double ms =
          bench::MedianMillis([&] { algebra::PairwiseJoin(d, f1, f2); });
      pw_table.AddRow({bench::Cell(uint64_t{size}), bench::Cell(ms, 3)});
      records.push_back(Micro("PairwiseJoin", size, size, ms));
    }
  }
  pw_table.Print();

  // --- Powerset join: brute force vs the Theorem-2 fixed-point form. ------
  bench::Banner("Powerset join (Definition 6): brute force vs Theorem 2");
  bench::TablePrinter ps_table(
      {"|F|", "brute ms", "fixed-point ms", "speedup", "equal"});
  {
    const doc::Document& d = SharedTree(10000);
    for (size_t size : {2u, 4u, 6u, 8u, 10u}) {
      FragmentSet f1 = RandomSingles(d, size, 17);
      FragmentSet f2 = RandomSingles(d, size, 18);
      FragmentSet brute_result;
      double brute_ms = bench::MedianMillis([&] {
        auto result = algebra::PowersetJoinBruteForce(d, f1, f2);
        if (result.ok()) brute_result = std::move(result).value();
      });
      FragmentSet fp_result;
      double fp_ms = bench::MedianMillis(
          [&] { fp_result = algebra::PowersetJoinViaFixedPoint(d, f1, f2); });
      bench::BenchRecord record{"PowersetJoin", size,     size, 1,
                                brute_ms,       fp_ms,
                                brute_result.SetEquals(fp_result)};
      ps_table.AddRow({bench::Cell(uint64_t{size}), bench::Cell(brute_ms, 3),
                       bench::Cell(fp_ms, 3), bench::Cell(record.speedup(), 2),
                       record.equal ? "yes" : "NO"});
      records.push_back(record);
    }
  }
  ps_table.Print();

  // --- Reduce: quadratic joins + indexed subsumption. ---------------------
  bench::Banner("Reduce (Definition 10)");
  bench::TablePrinter reduce_table({"|F|", "ms"});
  {
    const doc::Document& d = SharedTree(10000);
    for (size_t size : {4u, 8u, 16u, 32u}) {
      FragmentSet f = RandomSingles(d, size, 19);
      double ms = bench::MedianMillis([&] { algebra::Reduce(d, f); });
      reduce_table.AddRow({bench::Cell(uint64_t{size}), bench::Cell(ms, 3)});
      records.push_back(Micro("Reduce/fig3", size, 0, ms));
    }
  }
  reduce_table.Print();

  bench::WriteBenchJson(records, "BENCH_core.json");

  for (const bench::BenchRecord& record : records) {
    if (!record.equal) {
      std::fprintf(stderr, "EQUIVALENCE CHECK FAILED: %s |F|=%zu\n",
                   record.op.c_str(), record.set1);
      return 1;
    }
  }
  return 0;
}
