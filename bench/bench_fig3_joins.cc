// Figure-3 operation microbenchmarks (google-benchmark): fragment join,
// pairwise fragment join, and powerset fragment join as functions of
// fragment size, set cardinality, and tree shape. Establishes the raw
// operator costs that the strategy-level benches build on.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "algebra/ops.h"
#include "bench_util.h"
#include "common/rng.h"

using namespace xfrag;
using algebra::Fragment;
using algebra::FragmentSet;

namespace {

// Deterministic random tree shared across iterations.
const doc::Document& SharedTree(size_t nodes) {
  static std::map<size_t, std::unique_ptr<doc::Document>> cache;
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    Rng rng(nodes * 2654435761u + 17);
    std::vector<doc::NodeId> parents{doc::kNoNode};
    std::vector<doc::NodeId> path{0};  // Rightmost path: legal parents.
    for (size_t i = 1; i < nodes; ++i) {
      size_t w = std::min<size_t>(32, path.size());
      size_t index = path.size() - 1 - static_cast<size_t>(rng.Uniform(w));
      parents.push_back(path[index]);
      path.resize(index + 1);
      path.push_back(static_cast<doc::NodeId>(i));
    }
    std::vector<std::string> tags(nodes, "n"), texts(nodes, "");
    auto d = doc::Document::FromParents(parents, tags, texts);
    it = cache.emplace(nodes, std::make_unique<doc::Document>(
                                  std::move(d).value()))
             .first;
  }
  return *it->second;
}

Fragment RandomFragment(const doc::Document& d, size_t joins, Rng* rng) {
  Fragment f =
      Fragment::Single(static_cast<doc::NodeId>(rng->Uniform(d.size())));
  for (size_t i = 0; i < joins; ++i) {
    f = algebra::Join(
        d, f, Fragment::Single(static_cast<doc::NodeId>(rng->Uniform(d.size()))));
  }
  return f;
}

void BM_FragmentJoin(benchmark::State& state) {
  const doc::Document& d = SharedTree(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  std::vector<std::pair<Fragment, Fragment>> pairs;
  for (int i = 0; i < 64; ++i) {
    pairs.emplace_back(RandomFragment(d, static_cast<size_t>(state.range(1)), &rng),
                       RandomFragment(d, static_cast<size_t>(state.range(1)), &rng));
  }
  size_t cursor = 0;
  for (auto _ : state) {
    const auto& [f1, f2] = pairs[cursor++ & 63];
    benchmark::DoNotOptimize(algebra::Join(d, f1, f2));
  }
  state.SetLabel("nodes=" + std::to_string(state.range(0)) +
                 " frag_joins=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_FragmentJoin)
    ->Args({1000, 0})
    ->Args({1000, 3})
    ->Args({1000, 8})
    ->Args({100000, 0})
    ->Args({100000, 3})
    ->Args({100000, 8});

void BM_Lca(benchmark::State& state) {
  const doc::Document& d = SharedTree(static_cast<size_t>(state.range(0)));
  Rng rng(11);
  for (auto _ : state) {
    doc::NodeId a = static_cast<doc::NodeId>(rng.Uniform(d.size()));
    doc::NodeId b = static_cast<doc::NodeId>(rng.Uniform(d.size()));
    benchmark::DoNotOptimize(d.Lca(a, b));
  }
}
BENCHMARK(BM_Lca)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_PairwiseJoin(benchmark::State& state) {
  const doc::Document& d = SharedTree(10000);
  Rng rng(13);
  FragmentSet f1, f2;
  for (int64_t i = 0; i < state.range(0); ++i) {
    f1.Insert(Fragment::Single(static_cast<doc::NodeId>(rng.Uniform(d.size()))));
    f2.Insert(Fragment::Single(static_cast<doc::NodeId>(rng.Uniform(d.size()))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::PairwiseJoin(d, f1, f2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PairwiseJoin)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_PowersetJoinBruteForce(benchmark::State& state) {
  const doc::Document& d = SharedTree(10000);
  Rng rng(17);
  FragmentSet f1, f2;
  for (int64_t i = 0; i < state.range(0); ++i) {
    f1.Insert(Fragment::Single(static_cast<doc::NodeId>(rng.Uniform(d.size()))));
    f2.Insert(Fragment::Single(static_cast<doc::NodeId>(rng.Uniform(d.size()))));
  }
  for (auto _ : state) {
    auto result = algebra::PowersetJoinBruteForce(d, f1, f2);
    if (!result.ok()) state.SkipWithError("guard triggered");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("exponential in set size");
}
BENCHMARK(BM_PowersetJoinBruteForce)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_PowersetJoinViaFixedPoint(benchmark::State& state) {
  const doc::Document& d = SharedTree(10000);
  Rng rng(17);  // Same seed as brute force: identical inputs.
  FragmentSet f1, f2;
  for (int64_t i = 0; i < state.range(0); ++i) {
    f1.Insert(Fragment::Single(static_cast<doc::NodeId>(rng.Uniform(d.size()))));
    f2.Insert(Fragment::Single(static_cast<doc::NodeId>(rng.Uniform(d.size()))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::PowersetJoinViaFixedPoint(d, f1, f2));
  }
  state.SetLabel("Theorem-2 form of the same inputs");
}
BENCHMARK(BM_PowersetJoinViaFixedPoint)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_Reduce(benchmark::State& state) {
  const doc::Document& d = SharedTree(10000);
  Rng rng(19);
  FragmentSet f;
  for (int64_t i = 0; i < state.range(0); ++i) {
    f.Insert(Fragment::Single(static_cast<doc::NodeId>(rng.Uniform(d.size()))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::Reduce(d, f));
  }
}
BENCHMARK(BM_Reduce)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
