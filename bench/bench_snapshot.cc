// Snapshot bootstrap evaluation: the cost of becoming ready to serve, the
// whole point of the mmap snapshot store. For three corpus sizes the same
// collection is stood up two ways —
//
//   parse-build   parse every XML document, build its inverted index, and
//                 hash-cons its subtree classes (what xfragd does today
//                 without --snapshot)
//   snapshot-open mmap the snapshot written once up front, in both
//                 validated (default) and trusted (--trust-snapshot) modes
//
// — and the first-query latency after each bootstrap is measured, cold
// (fresh service, lazy posting runs still encoded) and warm. Each record's
// `equal` asserts the two bootstraps answer a /query byte-identically.
//
// Emits BENCH_snapshot.json: serial_ms = parse-build, parallel_ms =
// validated snapshot open, so `speedup` is the bootstrap ratio the roadmap
// targets (>= 50x). Open times and byte totals come from the same
// StatsRegistry record GET /metrics serves, not a bench-local stopwatch.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "collection/collection.h"
#include "common/timer.h"
#include "gen/corpus.h"
#include "server/service.h"
#include "server/stats.h"
#include "storage/snapshot.h"
#include "xml/serializer.h"

using namespace xfrag;

namespace {

/// Renders a built document back to XML text, the input shape the
/// parse-build path starts from.
void AppendElement(const doc::Document& document, doc::NodeId node,
                   std::string* out) {
  out->append("<");
  out->append(document.tag(node));
  out->append(">");
  std::string_view text = document.text(node);
  if (!text.empty()) out->append(xml::EscapeText(text));
  for (doc::NodeId child : document.children(node)) {
    AppendElement(document, child, out);
  }
  out->append("</");
  out->append(document.tag(node));
  out->append(">");
}

struct Corpus {
  collection::Collection collection;
  std::vector<std::string> names;
  std::vector<std::string> xml;
  size_t total_nodes = 0;
};

Corpus MakeCorpus(size_t documents, size_t nodes_each) {
  Corpus corpus;
  for (size_t i = 0; i < documents; ++i) {
    gen::CorpusProfile profile;
    profile.target_nodes = nodes_each;
    profile.seed = 9100 + i;
    gen::RawCorpus raw = gen::GenerateRaw(profile);
    Rng rng(9200 + i);
    gen::PlantKeyword(&raw, "kwone", 8, gen::PlantMode::kClustered, &rng);
    gen::PlantKeyword(&raw, "kwtwo", 6, gen::PlantMode::kScattered, &rng);
    auto document = gen::Materialize(raw);
    if (!document.ok()) std::abort();
    std::string name = "doc" + std::to_string(i) + ".xml";
    std::string xml_text;
    AppendElement(*document, 0, &xml_text);
    corpus.total_nodes += document->size();
    corpus.names.push_back(name);
    corpus.xml.push_back(std::move(xml_text));
    if (!corpus.collection.Add(name, std::move(*document)).ok()) std::abort();
  }
  return corpus;
}

collection::Collection ParseBuild(const Corpus& corpus) {
  collection::Collection collection;
  for (size_t i = 0; i < corpus.names.size(); ++i) {
    if (!collection.AddXml(corpus.names[i], corpus.xml[i]).ok()) std::abort();
  }
  return collection;
}

/// One /query body with elapsed_ms zeroed, for the equality check and the
/// first-query timings.
std::string NormalizedQuery(const server::QueryService& service,
                            double* micros_out) {
  Timer timer;
  server::QueryOutcome outcome = service.HandleQuery(
      R"({"terms":["kwone","kwtwo"],"filter":"size<=6","rank":true})");
  if (micros_out != nullptr) *micros_out = timer.ElapsedMillis() * 1000.0;
  if (outcome.http_status != 200) std::abort();
  outcome.body.Set("elapsed_ms", 0);
  return outcome.body.Dump();
}

}  // namespace

int main() {
  const bool smoke = bench::BenchSmokeMode();
  const int repeats = smoke ? 1 : 7;
  std::vector<std::pair<size_t, size_t>> sizes;
  if (smoke) {
    sizes = {{2, 300}};
  } else {
    sizes = {{8, 1000}, {16, 4000}, {24, 12000}};
  }

  bench::Banner("Snapshot bootstrap vs parse-build");
  bench::TablePrinter table({"corpus", "parse ms", "open ms", "trusted ms",
                             "speedup", "cold q ms", "warm q ms", "MiB"});
  std::vector<bench::BenchRecord> records;
  // The same registry class the server renders under /metrics —
  // "snapshot_open" numbers here and there come from one implementation.
  server::StatsRegistry registry;

  for (const auto& [documents, nodes_each] : sizes) {
    Corpus corpus = MakeCorpus(documents, nodes_each);
    std::string path = "bench_snapshot_" + std::to_string(documents) + "x" +
                       std::to_string(nodes_each) + ".snap";
    auto written =
        storage::WriteSnapshot(corpus.collection, text::IndexOptions{}, path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }

    double parse_ms = bench::MedianMillis(
        [&] { collection::Collection built = ParseBuild(corpus); }, repeats);

    // Open timings come from the snapshot's own stats record (the value
    // RecordSnapshotOpen feeds /metrics), medianed over repeats.
    std::vector<double> validated_samples, trusted_samples;
    for (int r = 0; r < repeats; ++r) {
      auto loaded = storage::LoadCollectionFromSnapshot(path);
      if (!loaded.ok()) std::abort();
      validated_samples.push_back(loaded->stats.open_ms);
      storage::SnapshotOpenOptions trusted;
      trusted.validate_structure = false;
      auto trusted_loaded = storage::LoadCollectionFromSnapshot(path, trusted);
      if (!trusted_loaded.ok()) std::abort();
      trusted_samples.push_back(trusted_loaded->stats.open_ms);
    }
    std::sort(validated_samples.begin(), validated_samples.end());
    std::sort(trusted_samples.begin(), trusted_samples.end());
    double validated_ms = validated_samples[validated_samples.size() / 2];
    double trusted_ms = trusted_samples[trusted_samples.size() / 2];

    // First-query latency after each bootstrap, and the equivalence check.
    auto loaded = storage::LoadCollectionFromSnapshot(path);
    if (!loaded.ok()) std::abort();
    registry.RecordSnapshotOpen(loaded->stats.open_ms,
                                loaded->stats.file_bytes,
                                loaded->stats.mapped_bytes,
                                loaded->stats.resident_bytes);
    collection::Collection built = ParseBuild(corpus);
    server::QueryService snapshot_service(loaded->collection, {});
    server::QueryService built_service(built, {});
    double cold_us = 0, warm_us = 0, built_cold_us = 0;
    std::string snapshot_body = NormalizedQuery(snapshot_service, &cold_us);
    std::string built_body = NormalizedQuery(built_service, &built_cold_us);
    bool equal = snapshot_body == built_body;
    (void)NormalizedQuery(snapshot_service, &warm_us);

    std::string op = "snapshot_bootstrap/" + std::to_string(documents) + "x" +
                     std::to_string(nodes_each);
    bench::BenchRecord record(op, documents, corpus.total_nodes, 1, parse_ms,
                              validated_ms, equal);
    record.counters.emplace_back(
        "trusted_open_us", static_cast<uint64_t>(trusted_ms * 1000.0));
    record.counters.emplace_back("file_bytes", loaded->stats.file_bytes);
    record.counters.emplace_back("cold_first_query_us",
                                 static_cast<uint64_t>(cold_us));
    record.counters.emplace_back("warm_query_us",
                                 static_cast<uint64_t>(warm_us));
    record.counters.emplace_back("parse_build_cold_query_us",
                                 static_cast<uint64_t>(built_cold_us));
    records.push_back(std::move(record));

    table.AddRow({std::to_string(documents) + "x" +
                      std::to_string(nodes_each),
                  bench::Cell(parse_ms, 2), bench::Cell(validated_ms, 3),
                  bench::Cell(trusted_ms, 3),
                  bench::Cell(parse_ms / std::max(validated_ms, 1e-9), 1),
                  bench::Cell(cold_us / 1000.0, 2),
                  bench::Cell(warm_us / 1000.0, 2),
                  bench::Cell(static_cast<double>(loaded->stats.file_bytes) /
                                  (1024.0 * 1024.0),
                              2)});
    std::remove(path.c_str());
  }
  table.Print();

  std::printf("\nRegistry snapshot_open record (the same JSON /metrics "
              "serves):\n%s\n",
              server::StatsRegistry::SnapshotOpenToJson(
                  registry.snapshot_open())
                  .Dump()
                  .c_str());
  std::printf("\nOpen time is O(superblock + TOC + directory) while "
              "parse-build is O(corpus);\nthe ratio grows with corpus size, "
              "and trusted mode removes the structural\nscans for pipelines "
              "that just wrote the file.\n");

  bench::WriteBenchJson(records, "BENCH_snapshot.json", /*merge=*/false);
  return 0;
}
