// Collection-scale evaluation (the paper's "very large collection of XML
// documents" deployment, §7): term-presence skipping and per-document
// parallelism across a generated library.

#include <cstdio>

#include "bench_util.h"
#include "collection/collection_engine.h"
#include "gen/corpus.h"

using namespace xfrag;

namespace {

// A library where only every `hit_every`-th document contains both terms.
collection::Collection MakeLibrary(size_t documents, size_t nodes_each,
                                   size_t hit_every) {
  collection::Collection library;
  for (size_t i = 0; i < documents; ++i) {
    gen::CorpusProfile profile;
    profile.target_nodes = nodes_each;
    profile.seed = 5000 + i;
    gen::RawCorpus raw = gen::GenerateRaw(profile);
    Rng rng(6000 + i);
    gen::PlantKeyword(&raw, "kwone", 6, gen::PlantMode::kClustered, &rng);
    if (i % hit_every == 0) {
      gen::PlantKeyword(&raw, "kwtwo", 5, gen::PlantMode::kClustered, &rng);
    }
    auto document = gen::Materialize(raw);
    if (!document.ok()) std::abort();
    if (!library
             .Add("doc" + std::to_string(i), std::move(document).value())
             .ok()) {
      std::abort();
    }
  }
  return library;
}

}  // namespace

int main() {
  bench::Banner("Term-presence skipping across a 64-document library");
  {
    bench::TablePrinter table({"hit ratio", "evaluated", "skipped",
                               "answers", "ms"});
    for (size_t hit_every : {1u, 2u, 4u, 16u}) {
      collection::Collection library = MakeLibrary(64, 800, hit_every);
      collection::CollectionEngine engine(library);
      query::Query q;
      q.terms = {"kwone", "kwtwo"};
      q.filter = algebra::filters::SizeAtMost(5);
      collection::CollectionEvalOptions options;
      size_t evaluated = 0, skipped = 0, answers = 0;
      double ms = bench::MedianMillis(
          [&] {
            auto result = engine.Evaluate(q, options);
            if (!result.ok()) std::abort();
            evaluated = result->documents_evaluated;
            skipped = result->documents_skipped;
            answers = result->answers.size();
          },
          5);
      table.AddRow({bench::Cell(1.0 / static_cast<double>(hit_every), 2),
                    bench::Cell(evaluated), bench::Cell(skipped),
                    bench::Cell(answers), bench::Cell(ms, 2)});
    }
    table.Print();
    std::printf("\nEvaluation cost tracks the number of documents containing "
                "all terms, not the\nlibrary size — conjunctive skipping is "
                "the collection-level analogue of the\nbase keyword "
                "selection.\n");
  }

  bench::Banner("Per-document parallelism (32 documents, all matching)");
  {
    collection::Collection library = MakeLibrary(32, 1500, 1);
    collection::CollectionEngine engine(library);
    query::Query q;
    q.terms = {"kwone", "kwtwo"};
    q.filter = algebra::filters::SizeAtMost(6);
    bench::TablePrinter table({"workers", "ms", "speedup", "answers"});
    double base_ms = 0;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      collection::CollectionEvalOptions options;
      options.parallelism = workers;
      size_t answers = 0;
      double ms = bench::MedianMillis(
          [&] {
            auto result = engine.Evaluate(q, options);
            if (!result.ok()) std::abort();
            answers = result->answers.size();
          },
          5);
      if (workers == 1) base_ms = ms;
      table.AddRow({bench::Cell(static_cast<uint64_t>(workers)),
                    bench::Cell(ms, 2),
                    bench::Cell(base_ms / (ms > 0 ? ms : 1e-9), 2),
                    bench::Cell(answers)});
    }
    table.Print();
    std::printf("\n(Speedup is bounded by available cores; on a single-core "
                "container the rows\nshould be flat, which is itself the "
                "correct shape.)\n");
  }
  return 0;
}
