// Figure 5 / Theorem 3: value of pushing anti-monotonic selection below the
// joins. Sweeps (a) the size filter beta at fixed corpus, and (b) the corpus
// size at fixed beta, comparing late filtering (fixed point + final sigma)
// against the push-down plan, in joins performed and wall-clock time. The
// push-down rows also report how many candidate pairs the summary prefilter
// rejected in O(1); records land in BENCH_core.json via the shared writer.

#include <cstdio>

#include "bench_util.h"
#include "query/engine.h"

using namespace xfrag;

namespace {

struct Measurement {
  double ms = 0;
  algebra::OpMetrics metrics;
  size_t answers = 0;
};

Measurement Run(query::QueryEngine& engine, const query::Query& q,
                query::Strategy strategy) {
  Measurement m;
  query::EvalOptions options;
  options.strategy = strategy;
  m.ms = bench::MedianMillis(
      [&] {
        auto result = engine.Evaluate(q, options);
        if (!result.ok()) std::abort();
        m.metrics = result->metrics;
        m.answers = result->answers.size();
      },
      5);
  return m;
}

}  // namespace

int main() {
  std::vector<bench::BenchRecord> records;
  bench::Banner("Push-down vs late filtering: sweep of beta (size filter)");
  {
    bench::PlantedCorpus corpus =
        bench::MakePlantedCorpus(6000, 10, gen::PlantMode::kClustered, 10,
                                 gen::PlantMode::kClustered, 42);
    query::QueryEngine engine(*corpus.document, *corpus.index);
    bench::TablePrinter table({"beta", "late joins", "late ms", "push joins",
                               "push ms", "speedup", "answers", "equal"});
    for (uint32_t beta : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
      query::Query q;
      q.terms = {bench::PlantedCorpus::kTerm1, bench::PlantedCorpus::kTerm2};
      q.filter = algebra::filters::SizeAtMost(beta);
      Measurement late = Run(engine, q, query::Strategy::kFixedPointNaive);
      Measurement push = Run(engine, q, query::Strategy::kPushDown);
      table.AddRow({bench::Cell(static_cast<uint64_t>(beta)),
                    bench::Cell(late.metrics.fragment_joins),
                    bench::Cell(late.ms, 3),
                    bench::Cell(push.metrics.fragment_joins),
                    bench::Cell(push.ms, 3),
                    bench::Cell(late.ms / (push.ms > 0 ? push.ms : 1e-9), 1),
                    bench::Cell(push.answers),
                    late.answers == push.answers ? "yes" : "NO"});
      bench::BenchRecord record{"PushDown/beta", beta,    0, 1, late.ms,
                                push.ms,         late.answers == push.answers};
      record.counters = {
          {"late_joins", late.metrics.fragment_joins},
          {"push_joins", push.metrics.fragment_joins},
          {"pairs_considered", push.metrics.pairs_considered},
          {"pairs_rejected_summary", push.metrics.pairs_rejected_summary}};
      records.push_back(record);
    }
    table.Print();
    std::printf("\nExpected shape (Theorem 3, §4.3): the smaller beta is, "
                "the more joins the pushed\nselection prunes and the larger "
                "the speedup; at very loose beta the two converge.\n");
  }

  bench::Banner("Push-down vs late filtering: sweep of corpus size (beta=4)");
  {
    bench::TablePrinter table({"nodes", "|Fi|", "late joins", "late ms",
                               "push joins", "push ms", "speedup",
                               "answers"});
    for (size_t nodes : {500u, 1000u, 2000u, 4000u, 8000u, 16000u}) {
      // Posting counts grow logarithmically with document size, as keyword
      // frequency does in real corpora; the unfiltered baseline's fixed
      // points are exponential in this count, so the late side's work
      // explodes with size while the pushed side stays flat.
      size_t count = 3;
      for (size_t scale = nodes / 500; scale > 1; scale /= 2) ++count;
      bench::PlantedCorpus corpus =
          bench::MakePlantedCorpus(nodes, count, gen::PlantMode::kScattered,
                                   count, gen::PlantMode::kScattered, 7);
      query::QueryEngine engine(*corpus.document, *corpus.index);
      query::Query q;
      q.terms = {bench::PlantedCorpus::kTerm1, bench::PlantedCorpus::kTerm2};
      q.filter = algebra::filters::SizeAtMost(4);
      Measurement late = Run(engine, q, query::Strategy::kFixedPointNaive);
      Measurement push = Run(engine, q, query::Strategy::kPushDown);
      table.AddRow({bench::Cell(nodes), bench::Cell(count),
                    bench::Cell(late.metrics.fragment_joins),
                    bench::Cell(late.ms, 3),
                    bench::Cell(push.metrics.fragment_joins),
                    bench::Cell(push.ms, 3),
                    bench::Cell(late.ms / (push.ms > 0 ? push.ms : 1e-9), 1),
                    bench::Cell(push.answers)});
      bench::BenchRecord record{"PushDown/nodes", nodes,   count,
                                1,                late.ms, push.ms,
                                late.answers == push.answers};
      record.counters = {
          {"pairs_considered", push.metrics.pairs_considered},
          {"pairs_rejected_summary", push.metrics.pairs_rejected_summary}};
      records.push_back(record);
    }
    table.Print();
    std::printf("\nExpected shape (§4.3): \"particularly in a large XML tree "
                "... this strategy will\nplay a crucial role\" — the gap "
                "widens with document size because scattered\nkeywords make "
                "ever-larger (hence filtered) join results. Zero answers at "
                "beta=4\nis the correct result for fully scattered keywords; "
                "both plans agree on it while\ndoing vastly different "
                "amounts of work.\n");
  }

  bench::Banner("Composite anti-monotonic filters (size & height pushed)");
  {
    bench::PlantedCorpus corpus =
        bench::MakePlantedCorpus(6000, 10, gen::PlantMode::kClustered, 8,
                                 gen::PlantMode::kScattered, 11);
    query::QueryEngine engine(*corpus.document, *corpus.index);
    bench::TablePrinter table(
        {"filter", "late ms", "push ms", "speedup", "answers"});
    for (const char* expr :
         {"size<=4", "height<=2", "span<=16", "size<=6 & height<=2",
          "size<=6 & height<=2 & span<=32"}) {
      query::Query q;
      q.terms = {bench::PlantedCorpus::kTerm1, bench::PlantedCorpus::kTerm2};
      auto filter = query::ParseFilterExpression(expr);
      if (!filter.ok()) return 1;
      q.filter = *filter;
      Measurement late = Run(engine, q, query::Strategy::kFixedPointNaive);
      Measurement push = Run(engine, q, query::Strategy::kPushDown);
      table.AddRow({expr, bench::Cell(late.ms, 3), bench::Cell(push.ms, 3),
                    bench::Cell(late.ms / (push.ms > 0 ? push.ms : 1e-9), 1),
                    bench::Cell(push.answers)});
      bench::BenchRecord record{std::string("PushDown/composite/") + expr,
                                0,
                                0,
                                1,
                                late.ms,
                                push.ms,
                                late.answers == push.answers};
      record.counters = {
          {"pairs_considered", push.metrics.pairs_considered},
          {"pairs_rejected_summary", push.metrics.pairs_rejected_summary}};
      records.push_back(record);
    }
    table.Print();
  }

  bench::WriteBenchJson(records, "BENCH_core.json");
  return 0;
}
