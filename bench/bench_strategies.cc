// Section-4 strategy comparison at scale: brute force (§4.1), naive fixed
// point (§3.1.1), Theorem-1 set reduction (§4.2) and anti-monotonic
// push-down (§4.3) across posting-list sizes and keyword placements.

#include <cstdio>

#include "bench_util.h"
#include "query/engine.h"

using namespace xfrag;

namespace {

struct Measurement {
  bool ok = false;
  double ms = 0;
  uint64_t joins = 0;
  size_t answers = 0;
};

Measurement Run(query::QueryEngine& engine, const query::Query& q,
                query::Strategy strategy) {
  Measurement m;
  query::EvalOptions options;
  options.strategy = strategy;
  options.executor.powerset.max_set_size = 12;
  auto probe = engine.Evaluate(q, options);
  if (!probe.ok()) return m;  // Brute force may refuse (guarded).
  m.ok = true;
  m.ms = bench::MedianMillis(
      [&] {
        auto result = engine.Evaluate(q, options);
        if (!result.ok()) std::abort();
        m.joins = result->metrics.fragment_joins;
        m.answers = result->answers.size();
      },
      3);
  return m;
}

std::string CellOrDash(const Measurement& m, bool time) {
  if (!m.ok) return "-";
  return time ? bench::Cell(m.ms, 3) : bench::Cell(m.joins);
}

}  // namespace

int main() {
  bench::Banner(
      "Strategy comparison: sweep |F_i| (clustered placement, beta = 6, "
      "4000-node corpus)");
  {
    bench::TablePrinter table({"|Fi|", "brute ms", "naive ms", "reduced ms",
                               "push ms", "brute joins", "naive joins",
                               "reduced joins", "push joins", "answers"});
    for (size_t count : {3u, 5u, 7u, 9u, 11u, 14u}) {
      bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
          4000, count, gen::PlantMode::kClustered, count,
          gen::PlantMode::kClustered, 300 + count);
      query::QueryEngine engine(*corpus.document, *corpus.index);
      query::Query q;
      q.terms = {bench::PlantedCorpus::kTerm1, bench::PlantedCorpus::kTerm2};
      q.filter = algebra::filters::SizeAtMost(6);

      Measurement brute = Run(engine, q, query::Strategy::kBruteForce);
      Measurement naive = Run(engine, q, query::Strategy::kFixedPointNaive);
      Measurement reduced =
          Run(engine, q, query::Strategy::kFixedPointReduced);
      Measurement push = Run(engine, q, query::Strategy::kPushDown);
      table.AddRow({bench::Cell(count), CellOrDash(brute, true),
                    CellOrDash(naive, true), CellOrDash(reduced, true),
                    CellOrDash(push, true), CellOrDash(brute, false),
                    CellOrDash(naive, false), CellOrDash(reduced, false),
                    CellOrDash(push, false), bench::Cell(push.answers)});
    }
    table.Print();
    std::printf(
        "\nExpected shape (§4): brute force degrades exponentially and is "
        "refused ('-')\nbeyond the guard; set reduction beats naive checking "
        "on clustered (high-RF) data;\npush-down wins overall. All answer "
        "counts agree across strategies.\n");
  }

  bench::Banner(
      "Strategy comparison: clustered vs scattered placement (|Fi| = 8, "
      "beta = 6)");
  {
    bench::TablePrinter table({"placement", "naive ms", "reduced ms",
                               "push ms", "naive joins", "reduced joins",
                               "push joins", "answers"});
    for (auto [label, mode] :
         {std::pair{"clustered", gen::PlantMode::kClustered},
          std::pair{"siblings", gen::PlantMode::kSiblings},
          std::pair{"scattered", gen::PlantMode::kScattered}}) {
      bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
          4000, 8, mode, 8, mode, 77);
      query::QueryEngine engine(*corpus.document, *corpus.index);
      query::Query q;
      q.terms = {bench::PlantedCorpus::kTerm1, bench::PlantedCorpus::kTerm2};
      q.filter = algebra::filters::SizeAtMost(6);
      Measurement naive = Run(engine, q, query::Strategy::kFixedPointNaive);
      Measurement reduced =
          Run(engine, q, query::Strategy::kFixedPointReduced);
      Measurement push = Run(engine, q, query::Strategy::kPushDown);
      table.AddRow({label, CellOrDash(naive, true), CellOrDash(reduced, true),
                    CellOrDash(push, true), CellOrDash(naive, false),
                    CellOrDash(reduced, false), CellOrDash(push, false),
                    bench::Cell(push.answers)});
    }
    table.Print();
  }

  bench::Banner("Three-keyword queries (m = 3), beta = 8");
  {
    gen::CorpusProfile profile;
    profile.target_nodes = 3000;
    profile.seed = 55;
    gen::RawCorpus raw = gen::GenerateRaw(profile);
    Rng rng(56);
    gen::PlantKeyword(&raw, "kwone", 6, gen::PlantMode::kClustered, &rng);
    gen::PlantKeyword(&raw, "kwtwo", 6, gen::PlantMode::kClustered, &rng);
    gen::PlantKeyword(&raw, "kwthree", 5, gen::PlantMode::kScattered, &rng);
    auto document = gen::Materialize(raw);
    if (!document.ok()) return 1;
    auto index = text::InvertedIndex::Build(*document);
    query::QueryEngine engine(*document, index);
    query::Query q;
    q.terms = {"kwone", "kwtwo", "kwthree"};
    q.filter = algebra::filters::And(algebra::filters::SizeAtMost(8),
                                     algebra::filters::HeightAtMost(3));
    bench::TablePrinter table({"strategy", "ms", "joins", "answers"});
    for (auto strategy :
         {query::Strategy::kFixedPointNaive, query::Strategy::kPushDown}) {
      Measurement m = Run(engine, q, strategy);
      table.AddRow({std::string(query::StrategyName(strategy)),
                    CellOrDash(m, true), CellOrDash(m, false),
                    bench::Cell(m.answers)});
    }
    table.Print();
  }

  bench::Banner(
      "Cross-query fixed-point cache (repeated push-down queries)");
  {
    bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
        4000, 10, gen::PlantMode::kClustered, 10, gen::PlantMode::kClustered,
        88);
    query::QueryEngine engine(*corpus.document, *corpus.index);
    query::Query q;
    q.terms = {bench::PlantedCorpus::kTerm1, bench::PlantedCorpus::kTerm2};
    q.filter = algebra::filters::SizeAtMost(6);

    query::EvalOptions cold_options;
    cold_options.strategy = query::Strategy::kPushDown;
    double cold_ms = bench::MedianMillis(
        [&] {
          auto result = engine.Evaluate(q, cold_options);
          if (!result.ok()) std::abort();
        },
        5);

    query::FixedPointCache cache;
    query::EvalOptions warm_options = cold_options;
    warm_options.executor.fixed_point_cache = &cache;
    // Prime once, then measure warm evaluations.
    if (!engine.Evaluate(q, warm_options).ok()) std::abort();
    double warm_ms = bench::MedianMillis(
        [&] {
          auto result = engine.Evaluate(q, warm_options);
          if (!result.ok()) std::abort();
        },
        5);

    bench::TablePrinter table({"mode", "ms", "speedup"});
    table.AddRow({"no cache", bench::Cell(cold_ms, 3), "1.0"});
    table.AddRow({"warm cache", bench::Cell(warm_ms, 3),
                  bench::Cell(cold_ms / (warm_ms > 0 ? warm_ms : 1e-9), 1)});
    table.Print();
    std::printf("\nRepeated queries over an immutable document skip the "
                "per-term closures\nentirely (%llu cache hits recorded) — "
                "the §5 implementation-level complement\nto the algebraic "
                "optimizations.\n",
                static_cast<unsigned long long>(cache.hits()));
  }
  return 0;
}
