// Batched-query benchmark: closed-loop loopback clients posting whole
// batches to an in-process xfrag_router (fronting 1 or 4 in-process xfragd
// shards over one planted corpus) via POST /query_batch, at batch sizes 1,
// 8, and 64 in full and top-k(=10) modes. The aggregate-throughput story:
// one batch pays one client connection, one admission slot, one JSON parse,
// and ONE scatter per shard for all its items, and the shards share term
// scans and warm fixed-point closures across items — so queries/sec rises
// steeply with the batch size while every per-item body stays exact.
//
// Every row is exactness-checked after its measured run: the batch is
// posted once more and each item compared byte-for-byte (modulo
// "elapsed_ms" and the work "metrics", which a distributed evaluation may
// legitimately change) against a sequential POST /query of the same item to
// a combined single node holding the whole corpus. A throughput number can
// never come from a wrong answer; the check also runs in smoke mode
// (XFRAG_BENCH_SMOKE=1, scripts/check.sh).
//
//   ./bench_batch [queries_per_client] [total_nodes]
//
// Emits BENCH_batch.json:
//   [{"shards": 4, "mode": "full", "batch": 64, "clients": 4,
//     "batches": 16, "queries": 1024, "throughput_qps": ...,
//     "batch_latency_ms": {"mean": .., "p50": .., "p95": .., "p99": ..,
//                          "max": ..},
//     "ok": 16, "exact": true}, ...]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "collection/collection.h"
#include "common/json.h"
#include "common/strings.h"
#include "common/timer.h"
#include "gen/corpus.h"
#include "router/router.h"
#include "server/http.h"
#include "server/net.h"
#include "server/server.h"

namespace {

using xfrag::bench::Banner;
using xfrag::bench::Cell;
using xfrag::bench::MakePlantedCorpus;
using xfrag::bench::PlantedCorpus;
using xfrag::bench::TablePrinter;

constexpr size_t kDocs = 8;  // partitions evenly across 1 and 4 shards

double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p / 100.0 *
                                    static_cast<double>(sorted_ms.size()));
  if (rank >= sorted_ms.size()) rank = sorted_ms.size() - 1;
  return sorted_ms[rank];
}

/// One /query_batch item. Variants cycle so a big batch mixes rendering
/// caps (full mode) or k values (top-k mode) while still sharing term scans
/// and fixed-point closures — the workload batching exists for.
std::string ItemBody(bool topk, size_t variant) {
  if (topk) {
    static const int ks[] = {10, 7, 5, 3};
    return xfrag::StrFormat(
        R"({"terms":["kwone","kwtwo"],"top_k":%d})", ks[variant % 4]);
  }
  static const int caps[] = {64, 32, 16, 8};
  return xfrag::StrFormat(
      R"({"terms":["kwone","kwtwo"],"filter":"size<=4",)"
      R"("strategy":"pushdown","max_answers":%d})",
      caps[variant % 4]);
}

std::string BatchBody(bool topk, size_t batch_size) {
  std::string body = "[";
  for (size_t i = 0; i < batch_size; ++i) {
    if (i > 0) body += ",";
    body += ItemBody(topk, i);
  }
  body += "]";
  return body;
}

struct RunResult {
  int batches = 0;
  int ok = 0;  // batch envelopes answered 200 with every item 200
  double elapsed_s = 0.0;
  std::vector<double> latencies_ms;  // per batch
};

xfrag::StatusOr<xfrag::server::HttpResponse> PostBody(
    uint16_t port, const std::string& target, const std::string& body) {
  std::string request = xfrag::StrFormat(
      "POST %s HTTP/1.1\r\nHost: b\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      target.c_str(), body.size());
  request += body;
  auto raw = xfrag::server::HttpRoundTrip("127.0.0.1", port, request);
  if (!raw.ok()) return raw.status();
  return xfrag::server::ParseHttpResponse(*raw);
}

/// True iff the batch envelope answered 200 and every item inside did too.
bool AllItemsOk(const std::string& envelope_body) {
  auto parsed = xfrag::json::Parse(envelope_body);
  if (!parsed.ok()) return false;
  const xfrag::json::Value* results = parsed->Find("results");
  if (results == nullptr || !results->is_array()) return false;
  for (const xfrag::json::Value& entry : results->items()) {
    const xfrag::json::Value* status = entry.Find("status");
    if (status == nullptr || status->AsInt() != 200) return false;
  }
  return true;
}

RunResult RunClosedLoop(uint16_t port, int clients, int batches_per_client,
                        const std::string& batch_body) {
  RunResult result;
  result.batches = clients * batches_per_client;
  std::atomic<int> ok{0};
  std::vector<std::vector<double>> per_client(clients);
  xfrag::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      per_client[c].reserve(batches_per_client);
      for (int r = 0; r < batches_per_client; ++r) {
        xfrag::Timer timer;
        auto response = PostBody(port, "/query_batch", batch_body);
        per_client[c].push_back(timer.ElapsedMillis());
        if (response.ok() && response->status == 200 &&
            AllItemsOk(response->body)) {
          ++ok;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = wall.ElapsedMillis() / 1e3;
  result.ok = ok.load();
  for (auto& v : per_client) {
    result.latencies_ms.insert(result.latencies_ms.end(), v.begin(), v.end());
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

std::vector<std::unique_ptr<xfrag::collection::Collection>> BuildShards(
    size_t shard_count, size_t nodes_per_doc) {
  std::vector<std::unique_ptr<xfrag::collection::Collection>> shards;
  size_t docs_per_shard = kDocs / shard_count;
  for (size_t s = 0; s < shard_count; ++s) {
    shards.push_back(std::make_unique<xfrag::collection::Collection>());
  }
  for (size_t d = 0; d < kDocs; ++d) {
    PlantedCorpus corpus =
        MakePlantedCorpus(nodes_per_doc, 8, xfrag::gen::PlantMode::kClustered,
                          8, xfrag::gen::PlantMode::kScattered,
                          /*seed=*/0x70c + d);
    auto status = shards[d / docs_per_shard]->Add(
        xfrag::StrFormat("doc%zu.xml", d), std::move(*corpus.document));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  return shards;
}

xfrag::router::ShardMap MapForPorts(const std::vector<uint16_t>& ports,
                                    size_t docs_per_shard) {
  xfrag::router::ShardMap map;
  for (size_t s = 0; s < ports.size(); ++s) {
    xfrag::router::ShardInfo info;
    info.host = "127.0.0.1";
    info.port = ports[s];
    info.doc_begin = s * docs_per_shard;
    info.doc_count = docs_per_shard;
    map.shards.push_back(std::move(info));
  }
  map.total_documents = ports.size() * docs_per_shard;
  return map;
}

double MeanMs(const RunResult& run) {
  double mean = 0.0;
  for (double ms : run.latencies_ms) mean += ms;
  if (!run.latencies_ms.empty()) {
    mean /= static_cast<double>(run.latencies_ms.size());
  }
  return mean;
}

xfrag::json::Value LatencyJson(const RunResult& run) {
  xfrag::json::Value latency = xfrag::json::Value::Object();
  latency.Set("mean", MeanMs(run));
  latency.Set("p50", Percentile(run.latencies_ms, 50));
  latency.Set("p95", Percentile(run.latencies_ms, 95));
  latency.Set("p99", Percentile(run.latencies_ms, 99));
  latency.Set("max",
              run.latencies_ms.empty() ? 0.0 : run.latencies_ms.back());
  return latency;
}

/// The only fields a distributed evaluation may change (same normalization
/// as bench_router's exactness gate).
std::string NormalizedBody(const xfrag::json::Value& body) {
  xfrag::json::Value v = body;
  v.Set("elapsed_ms", 0);
  v.Remove("metrics");
  return v.Dump();
}

/// Posts the batch to the router once and each item sequentially to the
/// combined node, comparing per item. A throughput row with a wrong answer
/// is a bug, so a mismatch fails the benchmark (smoke mode included).
bool AssertBatchExact(uint16_t router_port, uint16_t combined_port,
                      bool topk, size_t batch_size, const char* label) {
  auto from_router =
      PostBody(router_port, "/query_batch", BatchBody(topk, batch_size));
  if (!from_router.ok() || from_router->status != 200) {
    std::fprintf(stderr, "exactness probe failed for %s\n", label);
    return false;
  }
  auto parsed = xfrag::json::Parse(from_router->body);
  if (!parsed.ok()) return false;
  const xfrag::json::Value* results = parsed->Find("results");
  if (results == nullptr || results->size() != batch_size) {
    std::fprintf(stderr, "exactness probe: %s returned %zu results\n", label,
                 results == nullptr ? size_t{0} : results->size());
    return false;
  }
  for (size_t i = 0; i < batch_size; ++i) {
    auto sequential =
        PostBody(combined_port, "/query", ItemBody(topk, i));
    if (!sequential.ok() || sequential->status != 200) return false;
    auto expected = xfrag::json::Parse(sequential->body);
    if (!expected.ok()) return false;
    const xfrag::json::Value& entry = (*results)[i];
    const xfrag::json::Value* status = entry.Find("status");
    const xfrag::json::Value* body = entry.Find("body");
    if (status == nullptr || status->AsInt() != 200 || body == nullptr ||
        NormalizedBody(*body) != NormalizedBody(*expected)) {
      std::fprintf(stderr,
                   "EXACTNESS VIOLATION (%s item %zu):\n  batch:      %s\n"
                   "  sequential: %s\n",
                   label, i, body != nullptr ? body->Dump().c_str() : "null",
                   expected->Dump().c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int queries_per_client = argc > 1 ? std::atoi(argv[1]) : 256;
  size_t total_nodes = argc > 2 ? static_cast<size_t>(std::atol(argv[2]))
                                : 40000;
  int clients = 4;
  if (xfrag::bench::BenchSmokeMode()) {
    queries_per_client = std::min(queries_per_client, 8);
    total_nodes = std::min<size_t>(total_nodes, 4000);
    clients = 2;
  }
  size_t nodes_per_doc = total_nodes / kDocs;

  Banner("batched multi-query execution (/query_batch through the router)");

  TablePrinter table({"shards", "mode", "batch", "clients", "queries", "qps",
                      "batch mean ms", "batch p95 ms", "ok", "exact"});
  xfrag::json::Value records = xfrag::json::Value::Array();
  bool all_exact = true;

  // The combined single node every row's answers are checked against.
  auto combined_collections = BuildShards(1, nodes_per_doc);
  xfrag::server::ServerOptions combined_options;
  combined_options.workers = 4;
  combined_options.queue_capacity = 1024;
  xfrag::server::Server combined_node(*combined_collections[0],
                                      combined_options);
  {
    auto started = combined_node.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
  }

  for (size_t shard_count : {1u, 4u}) {
    auto collections = BuildShards(shard_count, nodes_per_doc);
    std::vector<std::unique_ptr<xfrag::server::Server>> shard_servers;
    std::vector<uint16_t> ports;
    for (auto& collection : collections) {
      xfrag::server::ServerOptions options;
      options.workers = 4;
      options.queue_capacity = 1024;
      shard_servers.push_back(
          std::make_unique<xfrag::server::Server>(*collection, options));
      auto started = shard_servers.back()->Start();
      if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
      }
      ports.push_back(shard_servers.back()->port());
    }

    xfrag::router::RouterOptions router_options;
    router_options.workers = 16;
    router_options.queue_capacity = 1024;
    router_options.enable_hedging = false;
    router_options.health_check_interval_ms = 0;
    xfrag::router::Router router(MapForPorts(ports, kDocs / shard_count),
                                 router_options);
    {
      auto started = router.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
      }
    }

    for (bool topk : {false, true}) {
      const char* mode = topk ? "topk10" : "full";
      for (size_t batch_size : {size_t{1}, size_t{8}, size_t{64}}) {
        std::string batch_body = BatchBody(topk, batch_size);
        int batches_per_client = std::max(
            1, queries_per_client / static_cast<int>(batch_size));

        // Warm every shard's caches (and the combined node's, so the
        // exactness probe compares equally warm states).
        (void)PostBody(router.port(), "/query_batch", batch_body);
        for (size_t i = 0; i < std::min<size_t>(batch_size, 4); ++i) {
          (void)PostBody(combined_node.port(), "/query", ItemBody(topk, i));
        }

        RunResult run = RunClosedLoop(router.port(), clients,
                                      batches_per_client, batch_body);
        const int queries = run.batches * static_cast<int>(batch_size);
        double qps = run.elapsed_s > 0
                         ? static_cast<double>(queries) / run.elapsed_s
                         : 0.0;
        std::string label = xfrag::StrFormat("%zu-shard %s batch=%zu",
                                             shard_count, mode, batch_size);
        bool exact = AssertBatchExact(router.port(), combined_node.port(),
                                      topk, batch_size, label.c_str());
        all_exact = all_exact && exact;

        table.AddRow({Cell(uint64_t(shard_count)), mode,
                      Cell(uint64_t(batch_size)), Cell(uint64_t(clients)),
                      Cell(uint64_t(queries)), Cell(qps, 0),
                      Cell(MeanMs(run)),
                      Cell(Percentile(run.latencies_ms, 95)),
                      Cell(uint64_t(run.ok)),
                      std::string(exact ? "yes" : "NO")});

        xfrag::json::Value record = xfrag::json::Value::Object();
        record.Set("shards", static_cast<uint64_t>(shard_count));
        record.Set("mode", mode);
        record.Set("batch", static_cast<uint64_t>(batch_size));
        record.Set("clients", int64_t{clients});
        record.Set("batches", int64_t{run.batches});
        record.Set("queries", int64_t{queries});
        record.Set("throughput_qps", qps);
        record.Set("batch_latency_ms", LatencyJson(run));
        record.Set("ok", int64_t{run.ok});
        record.Set("exact", exact);
        records.Append(std::move(record));
      }
    }
    router.Shutdown();
    for (auto& shard : shard_servers) shard->Shutdown();
  }
  combined_node.Shutdown();

  table.Print();
  const std::string path = xfrag::bench::BenchOutputPath("BENCH_batch.json");
  std::ofstream out(path);
  out << records.Dump(2) << "\n";
  std::printf("wrote %s\n", path.c_str());
  if (!all_exact) {
    std::fprintf(stderr,
                 "bench_batch: row(s) failed the per-item exactness check\n");
    return 1;
  }
  return 0;
}
