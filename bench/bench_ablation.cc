// Ablations of the design choices DESIGN.md calls out:
//
//  1. Filter granularity in push-down: rejecting each joined fragment the
//     moment it is produced (PairwiseJoinFiltered, the shipped design) vs
//     materializing every join of an iteration and filtering afterwards
//     (coarse). Both are Theorem-3-correct; the eager form avoids carrying
//     doomed fragments through dedup.
//
//  2. Base-selection push-down: applying σ_Pa to the single-node base sets
//     (Figure 5's lowest selection level) on top of join-time filtering —
//     how much of the win comes from the bottom-most σ alone?
//
//  3. The Theorem-1 iteration bound vs convergence checking *inside* an
//     unfiltered closure (complement to bench_fig4's RF sweep, here on
//     corpus-shaped data).

#include <cstdio>

#include "algebra/ops.h"
#include "bench_util.h"
#include "query/engine.h"

using namespace xfrag;
using algebra::Fragment;
using algebra::FragmentSet;

namespace {

// Coarse-grained filtered fixed point: filter once per iteration instead of
// per produced fragment.
FragmentSet FixedPointFilteredCoarse(const doc::Document& document,
                                     const FragmentSet& base,
                                     const algebra::FilterPtr& filter,
                                     const algebra::FilterContext& context,
                                     algebra::OpMetrics* metrics) {
  FragmentSet current = algebra::Select(base, filter, context, metrics);
  FragmentSet seed = current;
  while (true) {
    if (metrics != nullptr) ++metrics->fixed_point_iterations;
    FragmentSet joined =
        algebra::PairwiseJoin(document, current, seed, metrics);
    FragmentSet kept = algebra::Select(joined, filter, context, metrics);
    size_t before = current.size();
    current = current.Union(kept);
    if (current.size() == before) return current;
  }
}

}  // namespace

int main() {
  bench::Banner("Ablation 1: eager vs coarse filter granularity (size<=5)");
  {
    bench::TablePrinter table({"|Fi|", "eager ms", "coarse ms",
                               "eager dedup inserts", "coarse dedup inserts",
                               "equal"});
    for (size_t count : {8u, 12u, 16u, 24u}) {
      bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
          4000, count, gen::PlantMode::kSiblings, 2,
          gen::PlantMode::kScattered, 900 + count);
      const doc::Document& d = *corpus.document;
      algebra::FilterContext context{&d, corpus.index.get()};
      auto filter = algebra::filters::SizeAtMost(5);
      FragmentSet base;
      for (doc::NodeId n : corpus.postings1) base.Insert(Fragment::Single(n));

      algebra::OpMetrics eager_metrics, coarse_metrics;
      FragmentSet eager_result, coarse_result;
      double eager_ms = bench::MedianMillis(
          [&] {
            eager_metrics.Reset();
            eager_result = algebra::FixedPointFiltered(d, base, filter,
                                                       context,
                                                       &eager_metrics);
          },
          5);
      double coarse_ms = bench::MedianMillis(
          [&] {
            coarse_metrics.Reset();
            coarse_result = FixedPointFilteredCoarse(d, base, filter, context,
                                                     &coarse_metrics);
          },
          5);
      table.AddRow({bench::Cell(count), bench::Cell(eager_ms, 3),
                    bench::Cell(coarse_ms, 3),
                    bench::Cell(eager_metrics.fragments_produced),
                    bench::Cell(coarse_metrics.fragments_produced),
                    eager_result.SetEquals(coarse_result) ? "yes" : "NO"});
    }
    table.Print();
    std::printf("\nBoth granularities agree (Theorem 3 covers each); eager "
                "filtering skips the\ndedup/materialization of doomed "
                "fragments, so it wins as join results grow.\n");
  }

  bench::Banner(
      "Ablation 2: where does the push-down win come from? (size<=4)");
  {
    bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
        6000, 9, gen::PlantMode::kScattered, 9, gen::PlantMode::kScattered,
        77);
    const doc::Document& d = *corpus.document;
    algebra::FilterContext context{&d, corpus.index.get()};
    auto filter = algebra::filters::SizeAtMost(4);
    FragmentSet base1, base2;
    for (doc::NodeId n : corpus.postings1) base1.Insert(Fragment::Single(n));
    for (doc::NodeId n : corpus.postings2) base2.Insert(Fragment::Single(n));

    struct Variant {
      const char* name;
      bool filter_in_fixed_point;
      bool filter_in_chain;
    };
    bench::TablePrinter table({"variant", "ms", "joins", "answers"});
    for (Variant variant : {Variant{"no push-down (late filter)", false, false},
                            Variant{"push into fixed points only", true, false},
                            Variant{"push everywhere (shipped)", true, true}}) {
      algebra::OpMetrics metrics;
      size_t answers = 0;
      double ms = bench::MedianMillis(
          [&] {
            metrics.Reset();
            FragmentSet fp1 =
                variant.filter_in_fixed_point
                    ? algebra::FixedPointFiltered(d, base1, filter, context,
                                                  &metrics)
                    : algebra::FixedPointNaive(d, base1, &metrics);
            FragmentSet fp2 =
                variant.filter_in_fixed_point
                    ? algebra::FixedPointFiltered(d, base2, filter, context,
                                                  &metrics)
                    : algebra::FixedPointNaive(d, base2, &metrics);
            FragmentSet joined =
                variant.filter_in_chain
                    ? algebra::PairwiseJoinFiltered(d, fp1, fp2, filter,
                                                    context, &metrics)
                    : algebra::PairwiseJoin(d, fp1, fp2, &metrics);
            answers =
                algebra::Select(joined, filter, context, &metrics).size();
          },
          5);
      table.AddRow({variant.name, bench::Cell(ms, 3),
                    bench::Cell(metrics.fragment_joins),
                    bench::Cell(answers)});
    }
    table.Print();
    std::printf("\nMost of the win comes from filtering inside the fixed "
                "points (they otherwise\nenumerate 2^|Fi| closures); join-"
                "time filtering in the final chain adds the rest.\n");
  }

  bench::Banner(
      "Ablation 3: convergence checking vs Theorem-1 bound, corpus-shaped "
      "sets");
  {
    bench::TablePrinter table(
        {"placement", "|F|", "naive iters", "reduced iters", "naive ms",
         "reduced ms", "equal"});
    for (auto [label, mode, count] :
         {std::tuple{"clustered", gen::PlantMode::kClustered, size_t{10}},
          std::tuple{"clustered", gen::PlantMode::kClustered, size_t{14}},
          std::tuple{"scattered", gen::PlantMode::kScattered, size_t{10}}}) {
      bench::PlantedCorpus corpus = bench::MakePlantedCorpus(
          3000, count, mode, 2, gen::PlantMode::kScattered, 1200 + count);
      const doc::Document& d = *corpus.document;
      FragmentSet base;
      for (doc::NodeId n : corpus.postings1) base.Insert(Fragment::Single(n));

      algebra::OpMetrics naive_metrics, reduced_metrics;
      FragmentSet naive_result, reduced_result;
      double naive_ms = bench::MedianMillis(
          [&] {
            naive_metrics.Reset();
            naive_result = algebra::FixedPointNaive(d, base, &naive_metrics);
          },
          3);
      double reduced_ms = bench::MedianMillis(
          [&] {
            reduced_metrics.Reset();
            reduced_result =
                algebra::FixedPointReduced(d, base, &reduced_metrics);
          },
          3);
      table.AddRow({label, bench::Cell(base.size()),
                    bench::Cell(naive_metrics.fixed_point_iterations),
                    bench::Cell(reduced_metrics.fixed_point_iterations),
                    bench::Cell(naive_ms, 3), bench::Cell(reduced_ms, 3),
                    naive_result.SetEquals(reduced_result) ? "yes" : "NO"});
    }
    table.Print();
  }
  return 0;
}
