// Domain scenario: searching a generated "digital library" of
// document-centric XML (books → chapters → sections → paragraphs) and
// comparing the algebraic fragment answers against SLCA-style baselines —
// the workload the paper's introduction motivates.
//
//   $ ./literature_search [num_nodes]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baseline/lca_baselines.h"
#include "gen/corpus.h"
#include "query/answers.h"
#include "query/engine.h"
#include "query/ranking.h"
#include "text/inverted_index.h"

int main(int argc, char** argv) {
  size_t nodes = 5000;
  if (argc > 1) nodes = static_cast<size_t>(std::atol(argv[1]));

  // Build the library corpus and plant two topic keywords: one clustered
  // (a coherent chapter about the topic) and one scattered (incidental
  // mentions across the library).
  xfrag::gen::CorpusProfile profile;
  profile.target_nodes = nodes;
  profile.seed = 2026;
  xfrag::gen::RawCorpus raw = xfrag::gen::GenerateRaw(profile);
  xfrag::Rng rng(7);
  auto topical = xfrag::gen::PlantKeyword(&raw, "provenance", 18,
                                          xfrag::gen::PlantMode::kClustered,
                                          &rng);
  auto incidental = xfrag::gen::PlantKeyword(&raw, "lineage", 14,
                                             xfrag::gen::PlantMode::kScattered,
                                             &rng);
  // The coherent chapter also mentions lineage a few times — that is where
  // the good answers live.
  for (size_t i = 0; i + 1 < topical.size(); i += 4) {
    raw.texts[topical[i]] += " lineage";
  }
  auto document = xfrag::gen::Materialize(raw);
  if (!document.ok()) {
    std::fprintf(stderr, "%s\n", document.status().ToString().c_str());
    return 1;
  }
  auto index = xfrag::text::InvertedIndex::Build(*document);
  std::printf("library: %zu nodes, height %u; 'provenance' in %zu nodes, "
              "'lineage' in %zu nodes\n",
              document->size(), document->height(), topical.size(),
              incidental.size());

  // The reader's question: passages relating provenance to lineage.
  xfrag::query::QueryEngine engine(*document, index);
  xfrag::query::Query query;
  query.terms = {"provenance", "lineage"};
  auto filter =
      xfrag::query::ParseFilterExpression("size<=4 & height<=2");
  if (!filter.ok()) {
    std::fprintf(stderr, "%s\n", filter.status().ToString().c_str());
    return 1;
  }
  query.filter = *filter;

  xfrag::query::EvalOptions options;  // Auto strategy.
  auto result = engine.Evaluate(query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nxfrag answers (%s, %.2f ms): %zu fragments\n",
              std::string(xfrag::query::StrategyName(result->strategy_used))
                  .c_str(),
              result->elapsed_ms, result->answers.size());

  // §5 of the paper: overlapping answers are sub-fragments of larger
  // answers — group them under their maximal targets for presentation.
  auto groups = xfrag::query::GroupOverlappingAnswers(result->answers);
  std::printf("grouped into %zu maximal self-contained passages:\n",
              groups.size());
  size_t shown = 0;
  for (const auto& group : groups) {
    if (shown++ == 4) {
      std::printf("  ... (%zu more groups)\n", groups.size() - 4);
      break;
    }
    std::printf("  %s rooted at <%s> (size %zu, height %u, +%zu overlapping "
                "sub-answers)\n",
                group.target.ToString().c_str(),
                std::string(document->tag(group.target.root())).c_str(),
                group.target.size(),
                xfrag::algebra::FragmentHeight(group.target, *document),
                group.overlaps.size());
  }

  // §6: IR-style ranking incorporated on top of the algebraic answers.
  auto ranked = xfrag::query::RankAnswers(result->answers, query.terms,
                                          *document, index);
  std::printf("\ntop passages by TF-IDF density:\n");
  for (size_t i = 0; i < ranked.size() && i < 3; ++i) {
    std::printf("  %.3f  %s\n", ranked[i].score,
                ranked[i].fragment.ToString().c_str());
  }

  // Baseline comparison: what would SLCA-style systems return?
  xfrag::baseline::LcaBaselines baselines(*document, index);
  auto slca = baselines.Slca({"provenance", "lineage"});
  auto elca = baselines.Elca({"provenance", "lineage"});
  if (slca.ok() && elca.ok()) {
    std::printf("\nbaselines: %zu SLCA node(s), %zu ELCA node(s)\n",
                slca->size(), elca->size());
    auto subtrees = baselines.SmallestSubtreeAnswers(
        {"provenance", "lineage"});
    if (subtrees.ok()) {
      size_t covered = 0;
      for (const auto& fragment : *subtrees) {
        if (result->answers.Contains(fragment)) ++covered;
      }
      std::printf("smallest-subtree answers also produced by xfrag: %zu/%zu "
                  "(xfrag additionally returns intermediate self-contained "
                  "fragments the baselines cannot)\n",
                  covered, subtrees->size());
    }
  }

  std::printf("\nEXPLAIN:\n%s", result->explain.c_str());
  return 0;
}
