// xfrag_cli — keyword search over XML files from the command line.
//
//   usage: xfrag_cli <file.xml|file.xdb>... <keyword>... [options]
//
//   Files are recognized by extension: .xml is parsed, .xdb is a binary
//   bundle written by --save-bundle. Multiple files form a collection and
//   answers carry document provenance.
//
//   options:
//     --filter EXPR        e.g. --filter 'size<=3 & height<=2'
//     --strategy S         auto|brute|naive|reduced|pushdown
//     --cost-model         resolve 'auto' with the Section-5 cost model
//     --leaf-strict        Definition-8 leaf condition
//     --explain            print the executed plan (single-document mode)
//     --parallel N         run kernels on an N-worker pool (default 1)
//     --max N              print at most N fragments (default 10)
//     --save-bundle PATH   persist the parsed document + index (single file)
//     --xml                print each answer fragment as an XML snippet
//
//   $ ./xfrag_cli paper.xml xquery optimization --filter 'size<=3' --explain

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "collection/collection_engine.h"
#include "common/strings.h"
#include "query/answers.h"
#include "query/engine.h"
#include "storage/storage.h"
#include "xml/parser.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <file.xml|file.xdb>... <keyword>... [options]\n"
      "  --filter EXPR | --strategy S | --cost-model | --leaf-strict\n"
      "  --explain | --analyze | --parallel N | --max N\n"
      "  --save-bundle PATH | --xml\n",
      argv0);
  return 2;
}

xfrag::StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return xfrag::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);

  std::vector<std::string> files;
  std::vector<std::string> terms;
  std::string filter_expr = "true";
  std::string strategy_name = "auto";
  std::string save_bundle_path;
  bool leaf_strict = false, explain = false, cost_model = false,
       print_xml = false, analyze = false;
  size_t max_print = 10;
  long parallelism = 1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--filter" && i + 1 < argc) {
      filter_expr = argv[++i];
    } else if (arg == "--strategy" && i + 1 < argc) {
      strategy_name = argv[++i];
    } else if (arg == "--save-bundle" && i + 1 < argc) {
      save_bundle_path = argv[++i];
    } else if (arg == "--leaf-strict") {
      leaf_strict = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--analyze") {
      explain = true;
      analyze = true;
    } else if (arg == "--cost-model") {
      cost_model = true;
    } else if (arg == "--xml") {
      print_xml = true;
    } else if (arg == "--parallel" && i + 1 < argc) {
      parallelism = std::atol(argv[++i]);
      if (parallelism < 1) {
        std::fprintf(stderr, "--parallel requires a worker count >= 1\n");
        return 2;
      }
    } else if (arg == "--max" && i + 1 < argc) {
      max_print = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else if (xfrag::EndsWith(arg, ".xml") || xfrag::EndsWith(arg, ".xdb")) {
      files.push_back(arg);
    } else {
      terms.push_back(arg);
    }
  }
  if (files.empty() || terms.empty()) return Usage(argv[0]);

  // Load everything into a collection.
  xfrag::collection::Collection collection;
  for (const std::string& path : files) {
    if (xfrag::EndsWith(path, ".xdb")) {
      auto bundle = xfrag::storage::LoadBundleFromFile(path);
      if (!bundle.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     bundle.status().ToString().c_str());
        return 1;
      }
      auto status = collection.Add(path, std::move(bundle->document));
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    } else {
      auto content = ReadFile(path);
      if (!content.ok()) {
        std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
        return 1;
      }
      auto status = collection.AddXml(path, *content);
      if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     status.ToString().c_str());
        return 1;
      }
    }
  }

  if (!save_bundle_path.empty()) {
    if (collection.size() != 1) {
      std::fprintf(stderr, "--save-bundle requires exactly one input file\n");
      return 1;
    }
    const auto& entry = collection.entry(0);
    auto status = xfrag::storage::SaveBundleToFile(
        save_bundle_path, entry.document, &entry.index);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved bundle: %s (%zu nodes)\n", save_bundle_path.c_str(),
                entry.document.size());
  }

  // Build the query.
  xfrag::query::Query query;
  query.terms = terms;
  auto filter = xfrag::query::ParseFilterExpression(filter_expr);
  if (!filter.ok()) {
    std::fprintf(stderr, "filter error: %s\n",
                 filter.status().ToString().c_str());
    return 1;
  }
  query.filter = *filter;

  xfrag::query::EvalOptions options;
  if (strategy_name == "auto") {
    options.strategy = xfrag::query::Strategy::kAuto;
  } else if (strategy_name == "brute") {
    options.strategy = xfrag::query::Strategy::kBruteForce;
  } else if (strategy_name == "naive") {
    options.strategy = xfrag::query::Strategy::kFixedPointNaive;
  } else if (strategy_name == "reduced") {
    options.strategy = xfrag::query::Strategy::kFixedPointReduced;
  } else if (strategy_name == "pushdown") {
    options.strategy = xfrag::query::Strategy::kPushDown;
  } else {
    return Usage(argv[0]);
  }
  options.optimizer.use_cost_model = cost_model;
  options.analyze = analyze;
  options.executor.parallelism = static_cast<unsigned>(parallelism);
  if (leaf_strict) {
    options.answer_mode = xfrag::query::AnswerMode::kLeafStrict;
  }

  // Evaluate over the collection.
  xfrag::collection::CollectionEngine engine(collection);
  xfrag::collection::CollectionEvalOptions collection_options;
  collection_options.per_document = options;
  collection_options.parallelism = collection.size() > 1 ? 4 : 1;
  auto result = engine.Evaluate(query, collection_options);
  if (!result.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu fragment(s) for %s across %zu document(s) "
              "(%zu evaluated, %zu skipped) in %.2f ms\n",
              result->answers.size(), query.ToString().c_str(),
              collection.size(), result->documents_evaluated,
              result->documents_skipped, result->elapsed_ms);

  size_t shown = 0;
  for (const auto& answer : result->answers) {
    if (shown++ == max_print) {
      std::printf("... (%zu more; raise --max to see them)\n",
                  result->answers.size() - max_print);
      break;
    }
    const auto& entry = collection.entry(answer.document_index);
    std::printf("\n-- %s %s (root <%s>, size %zu) --\n",
                answer.document_name.c_str(),
                answer.fragment.ToString().c_str(),
                std::string(entry.document.tag(answer.fragment.root())).c_str(),
                answer.fragment.size());
    if (print_xml) {
      std::printf("%s", xfrag::query::FragmentToXml(
                            answer.fragment, entry.document,
                            /*mark_elisions=*/true)
                            .c_str());
    } else {
      for (auto n : answer.fragment.nodes()) {
        std::string text(entry.document.text(n));
        if (text.size() > 70) text = text.substr(0, 67) + "...";
        std::printf("  n%-5u <%s> %s\n", n, std::string(entry.document.tag(n)).c_str(),
                    text.c_str());
      }
    }
  }

  if (explain && collection.size() == 1) {
    const auto& entry = collection.entry(0);
    xfrag::query::QueryEngine single(entry.document, entry.index);
    options.executor.subtree_classes = &entry.classes;
    auto single_result = single.Evaluate(query, options);
    if (single_result.ok()) {
      std::printf("\nEXPLAIN:\n%s", single_result->explain.c_str());
    }
  }
  return 0;
}
