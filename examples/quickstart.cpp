// Quickstart: parse an XML document, index it, and run a filtered keyword
// query — the five-minute tour of the public API.
//
//   $ ./quickstart

#include <cstdio>

#include "doc/document.h"
#include "query/engine.h"
#include "text/inverted_index.h"
#include "xml/parser.h"

namespace {

constexpr const char* kXml = R"(
<article>
  <section>
    <title>Query processing</title>
    <par>Cost models guide optimization of relational queries.</par>
    <par>XQuery evaluates path expressions over trees.</par>
  </section>
  <section>
    <title>Storage</title>
    <par>Pages and extents organize tuples on disk.</par>
  </section>
</article>)";

}  // namespace

int main() {
  // 1. Parse XML text into a DOM.
  auto dom = xfrag::xml::Parse(kXml);
  if (!dom.ok()) {
    std::fprintf(stderr, "parse error: %s\n", dom.status().ToString().c_str());
    return 1;
  }

  // 2. Flatten to the tree model and build the keyword index.
  auto document = xfrag::doc::Document::FromDom(*dom);
  if (!document.ok()) {
    std::fprintf(stderr, "%s\n", document.status().ToString().c_str());
    return 1;
  }
  auto index = xfrag::text::InvertedIndex::Build(*document);
  std::printf("document: %zu nodes, %zu distinct terms\n", document->size(),
              index.term_count());

  // 3. Pose a keyword query with a size filter (the paper's Q_P{k1,k2}).
  xfrag::query::QueryEngine engine(*document, index);
  xfrag::query::Query query;
  query.terms = {"xquery", "optimization"};
  auto filter = xfrag::query::ParseFilterExpression("size<=4");
  if (!filter.ok()) {
    std::fprintf(stderr, "%s\n", filter.status().ToString().c_str());
    return 1;
  }
  query.filter = *filter;

  // 4. Evaluate (the optimizer picks the strategy) and print the fragments.
  auto result = engine.Evaluate(query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("query %s -> %zu fragment(s) via %s in %.3f ms\n",
              query.ToString().c_str(), result->answers.size(),
              std::string(xfrag::query::StrategyName(result->strategy_used))
                  .c_str(),
              result->elapsed_ms);
  for (const auto& fragment : result->answers.Sorted()) {
    std::printf("  %s  (root <%s>)\n", fragment.ToString().c_str(),
                std::string(document->tag(fragment.root())).c_str());
  }
  return 0;
}
