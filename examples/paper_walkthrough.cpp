// Walks through Section 4 of the paper on the reconstructed Figure-1
// document: base selections, the Table-1 candidate joins, set reduction
// (§4.2), and the anti-monotonic push-down strategy (§4.3), printing each
// intermediate result in the paper's notation.
//
//   $ ./paper_walkthrough

#include <cstdio>
#include <string>

#include "algebra/ops.h"
#include "gen/paper_document.h"
#include "query/engine.h"
#include "text/inverted_index.h"

using xfrag::algebra::Fragment;
using xfrag::algebra::FragmentSet;

namespace {

void PrintSet(const char* label, const FragmentSet& set) {
  std::printf("%s = %s\n", label, set.ToString().c_str());
}

}  // namespace

int main() {
  auto document = xfrag::gen::BuildPaperDocument();
  if (!document.ok()) {
    std::fprintf(stderr, "%s\n", document.status().ToString().c_str());
    return 1;
  }
  auto index = xfrag::text::InvertedIndex::Build(*document);
  const auto& d = *document;

  std::printf("== The Figure-1 document ==\n");
  std::printf("%zu nodes; n17 = \"%s\"\n\n", d.size(), std::string(d.text(17)).c_str());

  std::printf("== Base selections (Section 4) ==\n");
  FragmentSet f1, f2;
  for (auto n : index.Lookup("xquery")) f1.Insert(Fragment::Single(n));
  for (auto n : index.Lookup("optimization")) f2.Insert(Fragment::Single(n));
  PrintSet("F1 = sigma_{keyword=XQuery}(F)      ", f1);
  PrintSet("F2 = sigma_{keyword=optimization}(F)", f2);

  std::printf("\n== Brute force (Section 4.1): F1 |x|* F2 ==\n");
  auto powerset = xfrag::algebra::PowersetJoinBruteForce(d, f1, f2);
  if (!powerset.ok()) {
    std::fprintf(stderr, "%s\n", powerset.status().ToString().c_str());
    return 1;
  }
  std::printf("Table 1 candidate fragments (%zu unique):\n", powerset->size());
  int row = 1;
  for (const auto& fragment : powerset->Sorted()) {
    bool irrelevant = fragment.size() > 3;
    std::printf("  %2d. %-50s %s\n", row++, fragment.ToString().c_str(),
                irrelevant ? "(irrelevant: filtered by size<=3)" : "");
  }

  std::printf("\n== Set reduction (Section 4.2) ==\n");
  FragmentSet reduced2 = xfrag::algebra::Reduce(d, f2);
  PrintSet("reduce(F2)", reduced2);
  std::printf("|reduce(F2)| = %zu, so F2+ needs %zu pairwise join(s)\n",
              reduced2.size(), reduced2.size() - 1);
  FragmentSet fp1 = xfrag::algebra::FixedPointReduced(d, f1);
  FragmentSet fp2 = xfrag::algebra::FixedPointReduced(d, f2);
  PrintSet("F1+", fp1);
  PrintSet("F2+", fp2);
  FragmentSet via_fp = xfrag::algebra::PairwiseJoin(d, fp1, fp2);
  std::printf("F1+ |x| F2+ has %zu fragments (Theorem 2: equals F1 |x|* F2: "
              "%s)\n",
              via_fp.size(),
              via_fp.SetEquals(*powerset) ? "yes" : "NO - BUG");

  std::printf("\n== Push-down (Section 4.3): size<=3 ahead of joins ==\n");
  xfrag::query::QueryEngine engine(d, index);
  xfrag::query::Query query;
  query.terms = {"xquery", "optimization"};
  query.filter = xfrag::algebra::filters::SizeAtMost(3);
  for (auto strategy : {xfrag::query::Strategy::kBruteForce,
                        xfrag::query::Strategy::kFixedPointNaive,
                        xfrag::query::Strategy::kFixedPointReduced,
                        xfrag::query::Strategy::kPushDown}) {
    xfrag::query::EvalOptions options;
    options.strategy = strategy;
    auto result = engine.Evaluate(query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-20s joins=%-4llu filter_rejections=%-3llu answers=%zu\n",
                std::string(xfrag::query::StrategyName(strategy)).c_str(),
                static_cast<unsigned long long>(result->metrics.fragment_joins),
                static_cast<unsigned long long>(
                    result->metrics.filter_rejections),
                result->answers.size());
  }

  xfrag::query::EvalOptions options;
  options.strategy = xfrag::query::Strategy::kPushDown;
  auto final_result = engine.Evaluate(query, options);
  std::printf("\nFinal answer set (all strategies agree):\n");
  for (const auto& fragment : final_result->answers.Sorted()) {
    bool target = fragment.ToString() == "⟨n16,n17,n18⟩";
    std::printf("  %s%s\n", fragment.ToString().c_str(),
                target ? "   <-- the fragment of interest (Figure 8b)" : "");
  }

  std::printf("\nEXPLAIN (push-down plan):\n%s", final_result->explain.c_str());
  return 0;
}
