// Library indexer: the full production pipeline on one screen.
//
//  1. Generate a small library of XML files on disk (stand-in for a real
//     document-centric corpus).
//  2. Parse + index each file once and persist it as a binary bundle (.xdb).
//  3. Reload the bundles into a Collection (no re-parsing, checksums
//     verified) and run keyword queries across the whole library with
//     provenance and overlap grouping.
//
//   $ ./library_indexer [num_documents]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "collection/collection_engine.h"
#include "common/timer.h"
#include "gen/corpus.h"
#include "query/answers.h"
#include "storage/storage.h"
#include "text/inverted_index.h"
#include "xml/parser.h"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  size_t documents = 12;
  if (argc > 1) documents = static_cast<size_t>(std::atol(argv[1]));
  fs::path workdir = fs::temp_directory_path() / "xfrag_library";
  fs::create_directories(workdir);

  // --- 1. Write the raw XML library -------------------------------------
  std::printf("writing %zu XML files to %s\n", documents,
              workdir.string().c_str());
  for (size_t i = 0; i < documents; ++i) {
    xfrag::gen::CorpusProfile profile;
    profile.target_nodes = 600;
    profile.seed = 9000 + i;
    xfrag::gen::RawCorpus raw = xfrag::gen::GenerateRaw(profile);
    xfrag::Rng rng(9500 + i);
    xfrag::gen::PlantKeyword(&raw, "replication", 6,
                             xfrag::gen::PlantMode::kClustered, &rng);
    if (i % 2 == 0) {
      xfrag::gen::PlantKeyword(&raw, "consensus", 5,
                               xfrag::gen::PlantMode::kClustered, &rng);
    }
    std::ofstream out(workdir / ("vol" + std::to_string(i) + ".xml"));
    out << xfrag::gen::ToXml(raw);
  }

  // --- 2. Index each file into a bundle ----------------------------------
  xfrag::Timer index_timer;
  size_t total_nodes = 0;
  for (size_t i = 0; i < documents; ++i) {
    fs::path xml_path = workdir / ("vol" + std::to_string(i) + ".xml");
    std::ifstream in(xml_path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    auto dom = xfrag::xml::Parse(content);
    if (!dom.ok()) {
      std::fprintf(stderr, "%s\n", dom.status().ToString().c_str());
      return 1;
    }
    auto document = xfrag::doc::Document::FromDom(*dom);
    if (!document.ok()) return 1;
    auto index = xfrag::text::InvertedIndex::Build(*document);
    total_nodes += document->size();
    auto status = xfrag::storage::SaveBundleToFile(
        (workdir / ("vol" + std::to_string(i) + ".xdb")).string(), *document,
        &index);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("indexed %zu nodes into bundles in %.1f ms\n", total_nodes,
              index_timer.ElapsedMillis());

  // --- 3. Reload bundles and query the collection ------------------------
  xfrag::Timer load_timer;
  xfrag::collection::Collection library;
  for (size_t i = 0; i < documents; ++i) {
    std::string name = "vol" + std::to_string(i);
    auto bundle = xfrag::storage::LoadBundleFromFile(
        (workdir / (name + ".xdb")).string());
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
      return 1;
    }
    if (!library.Add(name, std::move(bundle->document)).ok()) return 1;
  }
  std::printf("reloaded %zu bundles in %.1f ms (no re-parsing)\n",
              library.size(), load_timer.ElapsedMillis());

  xfrag::collection::CollectionEngine engine(library);
  xfrag::query::Query query;
  query.terms = {"replication", "consensus"};
  query.filter = *xfrag::query::ParseFilterExpression("size<=5 & height<=2");
  xfrag::collection::CollectionEvalOptions options;
  options.parallelism = 4;
  auto result = engine.Evaluate(query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nquery %s: %zu fragments from %zu/%zu documents (%zu skipped) in "
      "%.2f ms\n",
      query.ToString().c_str(), result->answers.size(),
      result->documents_evaluated, library.size(),
      result->documents_skipped, result->elapsed_ms);

  // Group per document for presentation.
  size_t shown = 0;
  for (const auto& answer : result->answers) {
    if (shown++ == 6) {
      std::printf("  ... (%zu more)\n", result->answers.size() - 6);
      break;
    }
    std::printf("  [%s] %s\n", answer.document_name.c_str(),
                answer.fragment.ToString().c_str());
  }
  return 0;
}
