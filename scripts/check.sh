#!/usr/bin/env bash
# Tier-1 gate plus sanitizer passes over the algebra kernels and the server.
#
#   scripts/check.sh            # build + full ctest + ASan + TSan server stage
#   scripts/check.sh --fast     # skip the sanitizer builds
#
# The first stage is exactly the tier-1 contract from ROADMAP.md: configure,
# build, and run the whole test suite. Then every bench binary runs once in
# smoke mode (tiny inputs, one repetition) so the perf trajectory cannot
# silently rot. The sanitizer stages rebuild with -DXFRAG_SANITIZE=address in
# a separate build dir and run the algebra, query (top-k engine path), and
# concurrency suites (plus everything labelled `parallel`, which includes
# the DAG-equivalence property suite, and `storage`, the mmap snapshot
# corruption/fuzz suites) under ASan — the kernels that do manual
# arena/buffer/mmap work — and finally rebuild with
# -DXFRAG_SANITIZE=thread and run everything labelled `server` (the xfragd
# loopback integration suite, the /admin/reload epoch-swap suite, and the
# /query_batch byte-identity suite included), `router` (the scatter-gather
# tier with its hedging, cancellation, and batch-scatter paths), and
# `parallel` (the pooled class-aware kernels with their per-chunk DAG
# caches) under TSan, since those are the places worker threads share an
# engine, caches, or replay state. The batched-evaluation suites ride the
# existing stages: query/batch_test in tier-1 ctest and the ASan query_test
# run, server/batch_equivalence_test under `-L server`, and
# router/router_batch_test under `-L router` — both in tier-1 and again
# under TSan.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== server: ctest -L server (tier-1 build) =="
(cd build && ctest -L server --output-on-failure -j "$JOBS")

echo "== storage: ctest -L storage (tier-1 build) =="
(cd build && ctest -L storage --output-on-failure -j "$JOBS")

echo "== router: ctest -L router (tier-1 build) =="
(cd build && ctest -L router --output-on-failure -j "$JOBS")

echo "== bench: smoke run (XFRAG_BENCH_SMOKE=1) =="
# Every bench binary runs end-to-end on tiny inputs so a broken bench fails
# CI, not the next full perf run. Outputs land in build/bench-smoke, never in
# the repo-root BENCH_*.json trajectory files (those come from full runs,
# which resolve bare filenames to the repo root via BenchOutputPath).
mkdir -p build/bench-smoke
for bench in build/bench/bench_*; do
  [[ -x "$bench" ]] || continue
  echo "-- $(basename "$bench")"
  XFRAG_BENCH_SMOKE=1 XFRAG_BENCH_DIR="$PWD/build/bench-smoke" "$bench" \
    > /dev/null
done

if [[ "$FAST" == 1 ]]; then
  echo "== skipping sanitizer stages (--fast) =="
  exit 0
fi

echo "== asan: build algebra + query + parallel + storage suites =="
cmake -B build-asan -S . -DXFRAG_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" --target algebra_test query_test \
  parallel_test storage_test

echo "== asan: run =="
./build-asan/tests/algebra_test
./build-asan/tests/query_test
(cd build-asan && ctest -L parallel --output-on-failure -j "$JOBS")
# The storage label is the mmap snapshot surface: corruption/truncation
# fuzzing, structural-attack rejection, and zero-copy column views — exactly
# where an out-of-bounds read past a mapped section would hide.
(cd build-asan && ctest -L storage --output-on-failure -j "$JOBS")

echo "== tsan: build server + router + parallel suites =="
cmake -B build-tsan -S . -DXFRAG_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target server_test router_test \
  parallel_test

echo "== tsan: run =="
(cd build-tsan && ctest -L server --output-on-failure -j "$JOBS")
(cd build-tsan && ctest -L router --output-on-failure -j "$JOBS")
# The DAG-equivalence stage: pooled class-aware kernels (per-chunk replay
# caches) must be data-race-free at every thread count the suite sweeps.
(cd build-tsan && ctest -L parallel --output-on-failure -j "$JOBS")

echo "== check.sh: all stages passed =="
