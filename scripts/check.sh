#!/usr/bin/env bash
# Tier-1 gate plus a sanitizer pass over the algebra kernels.
#
#   scripts/check.sh            # build + full ctest + ASan on the algebra suites
#   scripts/check.sh --fast     # skip the sanitizer build
#
# The first stage is exactly the tier-1 contract from ROADMAP.md: configure,
# build, and run the whole test suite. The second stage rebuilds with
# -DXFRAG_SANITIZE=address in a separate build dir and runs the algebra and
# concurrency suites (algebra_test plus everything labelled `parallel`) under
# ASan — the kernels that do manual arena/buffer work.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$FAST" == 1 ]]; then
  echo "== skipping sanitizer stage (--fast) =="
  exit 0
fi

echo "== asan: build algebra + parallel suites =="
cmake -B build-asan -S . -DXFRAG_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" --target algebra_test parallel_test

echo "== asan: run =="
./build-asan/tests/algebra_test
(cd build-asan && ctest -L parallel --output-on-failure -j "$JOBS")

echo "== check.sh: all stages passed =="
