// Umbrella header for the xfrag library — the full public API in one
// include. Fine for applications; library code should include the specific
// module headers instead.
//
// The five-minute tour:
//
//   auto dom      = xfrag::xml::Parse(xml_text);
//   auto document = xfrag::doc::Document::FromDom(*dom);
//   auto index    = xfrag::text::InvertedIndex::Build(*document);
//   xfrag::query::QueryEngine engine(*document, index);
//
//   xfrag::query::Query q;
//   q.terms  = {"xquery", "optimization"};
//   q.filter = *xfrag::query::ParseFilterExpression("size<=3");
//   auto result = engine.Evaluate(q);
//
// Modules:
//   xfrag::xml        — XML parsing, DOM, serialization
//   xfrag::doc        — the rooted ordered tree model (Definition 1)
//   xfrag::text       — tokenization and the keyword index
//   xfrag::algebra    — fragments, joins, fixed points, ⊖, filters
//   xfrag::query      — plans, rewrites, strategies, optimizer, cost model,
//                       answer presentation
//   xfrag::baseline   — SLCA / ELCA / smallest-subtree comparisons
//   xfrag::rel        — the relational backend ([13])
//   xfrag::collection — multi-document collections
//   xfrag::storage    — binary persistence bundles
//   xfrag::gen        — synthetic corpora and the paper's Figure-1 document

#ifndef XFRAG_XFRAG_H_
#define XFRAG_XFRAG_H_

#include "algebra/filter.h"      // IWYU pragma: export
#include "algebra/fragment.h"    // IWYU pragma: export
#include "algebra/fragment_set.h"  // IWYU pragma: export
#include "algebra/ops.h"         // IWYU pragma: export
#include "baseline/lca_baselines.h"  // IWYU pragma: export
#include "collection/collection.h"   // IWYU pragma: export
#include "collection/collection_engine.h"  // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "doc/document.h"        // IWYU pragma: export
#include "gen/corpus.h"          // IWYU pragma: export
#include "gen/paper_document.h"  // IWYU pragma: export
#include "query/answers.h"       // IWYU pragma: export
#include "query/cost_model.h"    // IWYU pragma: export
#include "query/engine.h"        // IWYU pragma: export
#include "query/fixed_point_cache.h"  // IWYU pragma: export
#include "query/optimizer.h"     // IWYU pragma: export
#include "query/plan.h"          // IWYU pragma: export
#include "query/query.h"         // IWYU pragma: export
#include "query/ranking.h"       // IWYU pragma: export
#include "rel/engine.h"          // IWYU pragma: export
#include "storage/storage.h"     // IWYU pragma: export
#include "text/inverted_index.h" // IWYU pragma: export
#include "text/tokenizer.h"      // IWYU pragma: export
#include "xml/dom.h"             // IWYU pragma: export
#include "xml/parser.h"          // IWYU pragma: export
#include "xml/serializer.h"      // IWYU pragma: export

#endif  // XFRAG_XFRAG_H_
