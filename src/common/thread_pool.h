// A small fixed-size thread pool with deterministic chunked fan-out — the
// execution substrate for the parallel algebra kernels (ops_parallel) and the
// collection engine's per-document fan-out.
//
// Design constraints (see docs/ALGEBRA.md, "Parallel kernels"):
//  * no work stealing: ParallelFor statically partitions [0, n) into one
//    contiguous chunk per worker, so the assignment of indices to chunks is a
//    pure function of (n, parallelism) and results merged in chunk order are
//    bit-identical run to run;
//  * the calling thread participates as chunk 0, so ThreadPool(p) spawns only
//    p − 1 OS threads and ThreadPool(1) spawns none (pure serial execution);
//  * a thread waiting for its ParallelFor to finish helps drain the task
//    queue, which makes nested ParallelFor calls (a parallel kernel running
//    inside a parallel collection scan) deadlock-free.

#ifndef XFRAG_COMMON_THREAD_POOL_H_
#define XFRAG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace xfrag {

/// \brief Fixed-size pool executing deterministic chunked parallel loops.
class ThreadPool {
 public:
  /// \brief Creates a pool of total `parallelism` workers, counting the
  /// calling thread; `parallelism` ≤ 1 spawns no threads. Spawning is eager,
  /// so a pool can be built once and reused across many operator calls.
  explicit ThreadPool(unsigned parallelism);

  /// Joins all workers. Outstanding ParallelFor calls must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread (≥ 1).
  unsigned parallelism() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// \brief The deterministic partition of [0, n) into at most `parts`
  /// contiguous, near-equal chunks (empty chunks are omitted). Exposed so
  /// callers and tests can reason about the exact chunking.
  static std::vector<std::pair<size_t, size_t>> Chunks(size_t n,
                                                       unsigned parts);

  /// \brief Runs `body(chunk, begin, end)` for every chunk of the
  /// deterministic partition of [0, n), distributing chunks over the pool.
  ///
  /// Chunk 0 runs on the calling thread; the call returns only after every
  /// chunk has finished (the barrier at which per-chunk results are merged).
  /// Safe to call concurrently from several threads and reentrantly from
  /// inside a chunk body; bodies must synchronize any shared state they
  /// touch themselves (the intended pattern is one output slot per chunk).
  void ParallelFor(
      size_t n,
      const std::function<void(unsigned chunk, size_t begin, size_t end)>&
          body);

  /// \brief Enqueues a free-standing task; some pool thread runs it once.
  ///
  /// This is the server's accept→worker pipeline primitive: unlike
  /// ParallelFor, Post does not block and provides no completion barrier —
  /// the task tracks its own completion (the server counts in-flight
  /// requests). Requires a pool with parallelism ≥ 2: with no spawned
  /// workers there is no thread to ever run the task. Tasks still queued at
  /// destruction are drained by the exiting workers, not dropped. A thread
  /// blocked in ParallelFor may also pick a posted task up (help-first
  /// waiting), so tasks must not assume a dedicated thread.
  void Post(std::function<void()> task);

 private:
  void WorkerLoop();
  /// Pops and runs queued tasks until `done` becomes true (help-first wait).
  void HelpWhileWaiting(std::unique_lock<std::mutex>& lock,
                        const std::function<bool()>& done);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  /// Signals both "task available" and "some task finished".
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace xfrag

#endif  // XFRAG_COMMON_THREAD_POOL_H_
