// Small string helpers shared across modules. Kept dependency-free.

#ifndef XFRAG_COMMON_STRINGS_H_
#define XFRAG_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace xfrag {

/// \brief Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view input, char sep);

/// \brief Splits `input` on any ASCII whitespace, dropping empty pieces.
std::vector<std::string_view> SplitWhitespace(std::string_view input);

/// \brief Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// \brief ASCII lowercases a copy of `s`.
std::string AsciiToLower(std::string_view s);

/// \brief True iff `s` starts with `prefix`.
inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// \brief True iff `s` ends with `suffix`.
inline bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace xfrag

#endif  // XFRAG_COMMON_STRINGS_H_
