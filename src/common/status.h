// Lightweight Status / StatusOr error model, in the style of Apache Arrow and
// RocksDB: library code on query paths reports recoverable failures through
// return values rather than exceptions.

#ifndef XFRAG_COMMON_STATUS_H_
#define XFRAG_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xfrag {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kParseError,
  kResourceExhausted,
  kDeadlineExceeded,
  kUnimplemented,
  kInternal,
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeName(StatusCode code);

/// \brief Result of an operation that can fail without a payload.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. The class is cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// \brief Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored StatusOr is a
/// programming error and asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit, enables `return status;`).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Dereference sugar.
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status from an expression returning Status.
#define XFRAG_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::xfrag::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define XFRAG_ASSIGN_OR_RETURN(lhs, expr)        \
  auto XFRAG_CONCAT_(_statusor_, __LINE__) = (expr);                      \
  if (!XFRAG_CONCAT_(_statusor_, __LINE__).ok())                          \
    return XFRAG_CONCAT_(_statusor_, __LINE__).status();                  \
  lhs = std::move(XFRAG_CONCAT_(_statusor_, __LINE__)).value()

#define XFRAG_CONCAT_IMPL_(a, b) a##b
#define XFRAG_CONCAT_(a, b) XFRAG_CONCAT_IMPL_(a, b)

}  // namespace xfrag

#endif  // XFRAG_COMMON_STATUS_H_
