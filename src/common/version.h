// Build identification shared by the CLIs and the server's /version endpoint.
// Deliberately free of timestamps so identical sources produce identical
// binaries and test output.

#ifndef XFRAG_COMMON_VERSION_H_
#define XFRAG_COMMON_VERSION_H_

#include <string>

namespace xfrag {

/// Library version, bumped with each serving-visible change.
inline constexpr const char* kVersion = "0.6.0";

/// \brief Revision of the router↔shard and client↔router protocol: the
/// /query request fields the router understands (`require_complete`,
/// `bound_exchange`), the shard-side distributed top-k fields
/// (`score_floor`, `probe_documents`, `skip_documents`, `query_id`), the
/// POST /threshold endpoint, the `"partial"` response contract, and the
/// cross-shard merge ordering. Bumped whenever any of those change shape.
inline constexpr int kRouterProtocolRevision = 3;

/// \brief One-line build description: version, compiler, language level.
inline std::string BuildInfo(const char* binary_name) {
  std::string info = binary_name;
  info += " ";
  info += kVersion;
  info += " (xfrag algebraic XML fragment retrieval; ";
#if defined(__clang__)
  info += "clang " __clang_version__;
#elif defined(__GNUC__)
  info += "gcc " __VERSION__;
#else
  info += "unknown compiler";
#endif
  info += ", C++" + std::to_string(__cplusplus / 100 % 100) + ")";
  return info;
}

}  // namespace xfrag

#endif  // XFRAG_COMMON_VERSION_H_
