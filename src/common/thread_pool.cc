#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

namespace xfrag {

ThreadPool::ThreadPool(unsigned parallelism) {
  unsigned spawned = parallelism > 1 ? parallelism - 1 : 0;
  workers_.reserve(spawned);
  for (unsigned i = 0; i < spawned; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void ThreadPool::HelpWhileWaiting(std::unique_lock<std::mutex>& lock,
                                  const std::function<bool()>& done) {
  while (!done()) {
    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
    } else {
      cv_.wait(lock, [&] { return done() || !queue_.empty(); });
    }
  }
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_all();
}

std::vector<std::pair<size_t, size_t>> ThreadPool::Chunks(size_t n,
                                                          unsigned parts) {
  std::vector<std::pair<size_t, size_t>> out;
  if (n == 0) return out;
  size_t p = std::max<unsigned>(parts, 1);
  p = std::min<size_t>(p, n);
  out.reserve(p);
  // Near-equal contiguous chunks: the first n % p chunks get one extra item.
  size_t base = n / p;
  size_t extra = n % p;
  size_t begin = 0;
  for (size_t c = 0; c < p; ++c) {
    size_t len = base + (c < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

void ThreadPool::ParallelFor(
    size_t n,
    const std::function<void(unsigned chunk, size_t begin, size_t end)>&
        body) {
  std::vector<std::pair<size_t, size_t>> chunks = Chunks(n, parallelism());
  if (chunks.empty()) return;
  if (chunks.size() == 1) {
    body(0, chunks[0].first, chunks[0].second);
    return;
  }
  // Per-call completion state; the pool-wide cv_ doubles as the completion
  // signal (waiters re-check their own counter).
  struct CallState {
    size_t remaining;
  };
  auto state = std::make_shared<CallState>();
  state->remaining = chunks.size() - 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t c = 1; c < chunks.size(); ++c) {
      queue_.emplace_back([this, state, c, &chunks, &body] {
        body(static_cast<unsigned>(c), chunks[c].first, chunks[c].second);
        {
          std::lock_guard<std::mutex> inner(mutex_);
          --state->remaining;
        }
        cv_.notify_all();
      });
    }
  }
  cv_.notify_all();
  // The caller is worker 0, then helps drain the queue until its own chunks
  // are done (keeps nested ParallelFor calls deadlock-free).
  body(0, chunks[0].first, chunks[0].second);
  std::unique_lock<std::mutex> lock(mutex_);
  HelpWhileWaiting(lock, [&] { return state->remaining == 0; });
}

}  // namespace xfrag
