// Cooperative cancellation for long-running kernels. A CancelToken carries an
// explicit cancel flag plus an optional monotonic deadline; the query executor
// checks it between plan nodes, and the unbounded algebra loops (fixed-point
// iteration, powerset subset enumeration) check it once per outer iteration,
// so a cancelled evaluation stops within one iteration's worth of work.
//
// The token is shared by pointer: the request thread owns it, evaluation code
// only reads it, and a server shutdown path may Cancel() it from another
// thread — hence the atomics (relaxed is enough: cancellation is advisory and
// observing it one check late is fine).

#ifndef XFRAG_COMMON_CANCEL_H_
#define XFRAG_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace xfrag {

/// \brief Cancellation flag + optional deadline, checked cooperatively.
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation (idempotent, thread-safe).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// \brief Arms a deadline `timeout` from now. A non-positive timeout
  /// expires immediately.
  void SetDeadlineAfter(std::chrono::nanoseconds timeout) {
    int64_t now = NowNanos();
    int64_t deadline = timeout.count() > 0 ? now + timeout.count() : now;
    deadline_ns_.store(deadline, std::memory_order_relaxed);
  }

  /// Whether a deadline has been armed.
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  /// \brief True once Cancel() was called or the armed deadline has passed.
  /// Cheap enough for per-iteration checks (one atomic load, plus one clock
  /// read while a deadline is armed and not yet expired).
  bool ShouldStop() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 && NowNanos() >= deadline) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  mutable std::atomic<bool> cancelled_{false};
  /// Deadline in steady_clock nanoseconds; 0 = no deadline armed.
  std::atomic<int64_t> deadline_ns_{0};
};

/// \brief ShouldStop for an optional token: null means "never stop" — lets
/// kernels take `const CancelToken*` defaulting to nullptr.
inline bool ShouldStop(const CancelToken* token) {
  return token != nullptr && token->ShouldStop();
}

}  // namespace xfrag

#endif  // XFRAG_COMMON_CANCEL_H_
