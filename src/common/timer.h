// Wall-clock timing helper for the bench harness and the optimizer's
// measurement hooks.

#ifndef XFRAG_COMMON_TIMER_H_
#define XFRAG_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace xfrag {

/// \brief Monotonic stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xfrag

#endif  // XFRAG_COMMON_TIMER_H_
