// A small dependency-free JSON value tree with a writer and a strict
// RFC 8259 parser — the wire format of the xfragd serving subsystem
// (src/server) and the BENCH_*.json emitters. Design points:
//
//  * one Value type holding null/bool/number/string/array/object; objects
//    preserve insertion order so rendered responses are deterministic;
//  * numbers remember whether they were integral, so node ids and counters
//    round-trip as "42", never "42.0" (doubles use shortest-round-trip
//    formatting via std::to_chars);
//  * Parse reports the byte offset of the first error — the server's
//    structured 400 bodies ({"error": ..., "offset": N}) depend on it.

#ifndef XFRAG_COMMON_JSON_H_
#define XFRAG_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace xfrag::json {

/// \brief One JSON value (recursively, a whole document).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Constructs null.
  Value() = default;

  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Value(int i) : Value(static_cast<int64_t>(i)) {}  // NOLINT
  Value(int64_t i)  // NOLINT(runtime/explicit)
      : kind_(Kind::kNumber), number_(static_cast<double>(i)), integral_(true),
        int_(i) {}
  Value(uint64_t u)  // NOLINT(runtime/explicit)
      : kind_(Kind::kNumber), number_(static_cast<double>(u)), integral_(true),
        unsigned_(true), int_(static_cast<int64_t>(u)) {}
  Value(double d) : kind_(Kind::kNumber), number_(d) {}  // NOLINT
  Value(std::string s)  // NOLINT(runtime/explicit)
      : kind_(Kind::kString), string_(std::move(s)) {}
  Value(std::string_view s) : kind_(Kind::kString), string_(s) {}  // NOLINT
  Value(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT

  /// Factories for the container kinds (an empty `{}`/`[]` is not expressible
  /// through the converting constructors).
  static Value Array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }
  /// True for numbers written without a fraction or exponent (and for values
  /// constructed from C++ integers).
  bool is_integral() const { return kind_ == Kind::kNumber && integral_; }

  /// Typed accessors. Calling one on the wrong kind is a programming error.
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt() const;
  const std::string& AsString() const;

  /// Elements of an array / members of an object; 0 for scalars.
  size_t size() const;

  /// Array element access (requires is_array()).
  const Value& operator[](size_t i) const;
  const std::vector<Value>& items() const { return array_; }

  /// \brief Appends to an array (a null Value becomes an array first).
  /// Returns *this for chaining.
  Value& Append(Value element);

  /// \brief Sets `key` in an object (a null Value becomes an object first).
  /// An existing key is overwritten in place, preserving its position.
  Value& Set(std::string key, Value value);

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* Find(std::string_view key) const;

  /// \brief Removes `key` from an object, preserving the order of the
  /// remaining members. Returns whether the key was present (false also for
  /// non-objects).
  bool Remove(std::string_view key);
  const std::vector<std::pair<std::string, Value>>& members() const {
    return object_;
  }

  /// \brief Renders the value as JSON text. `indent` < 0 produces the compact
  /// single-line form; `indent` >= 0 pretty-prints with that many spaces per
  /// nesting level.
  std::string Dump(int indent = -1) const;

  bool operator==(const Value& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool integral_ = false;
  /// int_ holds a uint64_t bit pattern (counters above INT64_MAX must not
  /// render with a sign flip).
  bool unsigned_ = false;
  int64_t int_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// \brief Appends `s` to `out` as a quoted, escaped JSON string literal.
void AppendQuoted(std::string* out, std::string_view s);

/// Nesting depth beyond which Parse rejects the input (stack safety).
inline constexpr int kMaxParseDepth = 128;

/// \brief Parses one JSON document (any value kind at the top level).
///
/// Strict: no trailing garbage, no comments, no trailing commas, strings
/// must be valid escapes (\uXXXX surrogate pairs are combined into UTF-8).
/// On failure returns ParseError and, when `error_offset` is non-null, the
/// byte offset at which parsing failed.
StatusOr<Value> Parse(std::string_view text, size_t* error_offset = nullptr);

}  // namespace xfrag::json

#endif  // XFRAG_COMMON_JSON_H_
