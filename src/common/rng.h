// Deterministic pseudo-random number generation for workload generators,
// property tests and benchmarks. A fixed algorithm (xoshiro256++) keeps
// generated corpora and test inputs bit-identical across platforms and
// standard-library versions, unlike std::mt19937 + distribution objects.

#ifndef XFRAG_COMMON_RNG_H_
#define XFRAG_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace xfrag {

/// \brief Deterministic 64-bit PRNG (xoshiro256++).
///
/// All derived draws (ranges, doubles, Zipf) are implemented in-library so
/// that a given seed yields an identical stream everywhere.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Reseeds the generator via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit draw.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Multiply-shift rejection-free mapping (Lemire); slight bias is
    // irrelevant at our bounds and keeps the stream platform-stable.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p` of true.
  bool Chance(double p) { return UniformDouble() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// \brief Zipf-distributed integer sampler over {0, ..., n-1}.
///
/// Rank 0 is the most frequent value. Uses the classic precomputed-CDF
/// method; construction is O(n), sampling O(log n).
class ZipfSampler {
 public:
  /// \param n universe size (> 0)
  /// \param skew the Zipf exponent s >= 0; s = 0 is uniform
  ZipfSampler(size_t n, double skew);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Universe size.
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace xfrag

#endif  // XFRAG_COMMON_RNG_H_
