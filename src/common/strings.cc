#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace xfrag {

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view input) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) out.push_back(input.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace xfrag
