#include "common/json.h"

#include <cassert>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace xfrag::json {

bool Value::AsBool() const {
  XFRAG_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double Value::AsDouble() const {
  XFRAG_CHECK(kind_ == Kind::kNumber);
  return number_;
}

int64_t Value::AsInt() const {
  XFRAG_CHECK(kind_ == Kind::kNumber);
  return integral_ ? int_ : static_cast<int64_t>(number_);
}

const std::string& Value::AsString() const {
  XFRAG_CHECK(kind_ == Kind::kString);
  return string_;
}

size_t Value::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

const Value& Value::operator[](size_t i) const {
  XFRAG_CHECK(kind_ == Kind::kArray && i < array_.size());
  return array_[i];
}

Value& Value::Append(Value element) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  XFRAG_CHECK(kind_ == Kind::kArray);
  array_.push_back(std::move(element));
  return *this;
}

Value& Value::Set(std::string key, Value value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  XFRAG_CHECK(kind_ == Kind::kObject);
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Value* Value::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

bool Value::Remove(std::string_view key) {
  if (kind_ != Kind::kObject) return false;
  for (auto it = object_.begin(); it != object_.end(); ++it) {
    if (it->first == key) {
      object_.erase(it);
      return true;
    }
  }
  return false;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      if (integral_ && other.integral_) {
        // Same bit pattern, and (when the sign interpretations could
        // disagree) a non-negative value.
        return int_ == other.int_ &&
               (unsigned_ == other.unsigned_ || int_ >= 0);
      }
      return number_ == other.number_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return array_ == other.array_;
    case Kind::kObject:
      return object_ == other.object_;
  }
  return false;
}

void AppendQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

namespace {

void AppendNumber(std::string* out, double number, bool integral,
                  bool is_unsigned, int64_t int_value) {
  char buf[32];
  if (integral && is_unsigned) {
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf),
                                   static_cast<uint64_t>(int_value));
    XFRAG_CHECK(ec == std::errc());
    out->append(buf, end);
    return;
  }
  if (integral) {
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), int_value);
    XFRAG_CHECK(ec == std::errc());
    out->append(buf, end);
    return;
  }
  // Shortest representation that round-trips the double exactly.
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), number);
  XFRAG_CHECK(ec == std::errc());
  out->append(buf, end);
}

void AppendIndent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      AppendNumber(out, number_, integral_, unsigned_, int_);
      return;
    case Kind::kString:
      AppendQuoted(out, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        AppendQuoted(out, object_[i].first);
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

// Recursive-descent parser over the input span; `pos` always points at the
// next unconsumed byte, so a failure's offset is simply the current `pos`.
class Parser {
 public:
  Parser(std::string_view text, size_t* error_offset)
      : text_(text), error_offset_(error_offset) {}

  StatusOr<Value> Run() {
    SkipWhitespace();
    Value root;
    XFRAG_RETURN_NOT_OK(ParseValue(&root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return root;
  }

 private:
  Status Fail(const std::string& message) {
    if (error_offset_ != nullptr) *error_offset_ = pos_;
    return Status::ParseError(
        StrFormat("%s at offset %zu", message.c_str(), pos_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxParseDepth) return Fail("nesting depth limit exceeded");
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("invalid literal");
        *out = Value();
        return Status::OK();
      case 't':
        if (!ConsumeLiteral("true")) return Fail("invalid literal");
        *out = Value(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("invalid literal");
        *out = Value(false);
        return Status::OK();
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    *out = Value::Array();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      Value element;
      XFRAG_RETURN_NOT_OK(ParseValue(&element, depth + 1));
      out->Append(std::move(element));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Status::OK();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    *out = Value::Object();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      Value key;
      XFRAG_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Fail("expected ':' after key");
      ++pos_;
      SkipWhitespace();
      Value member;
      XFRAG_RETURN_NOT_OK(ParseValue(&member, depth + 1));
      out->Set(key.AsString(), std::move(member));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Status::OK();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(Value* out) {
    ++pos_;  // '"'
    std::string result;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        *out = Value(std::move(result));
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        result.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (AtEnd()) return Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          result.push_back('"');
          break;
        case '\\':
          result.push_back('\\');
          break;
        case '/':
          result.push_back('/');
          break;
        case 'n':
          result.push_back('\n');
          break;
        case 't':
          result.push_back('\t');
          break;
        case 'r':
          result.push_back('\r');
          break;
        case 'b':
          result.push_back('\b');
          break;
        case 'f':
          result.push_back('\f');
          break;
        case 'u': {
          uint32_t cp = 0;
          XFRAG_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate in \\u escape");
            }
            pos_ += 2;
            uint32_t low = 0;
            XFRAG_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate in \\u escape");
          }
          AppendUtf8(&result, cp);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    bool integral = true;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      pos_ = start;
      return Fail("invalid value");
    }
    // Leading zero must not be followed by more digits.
    if (Peek() == '0') {
      ++pos_;
      if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        return Fail("leading zero in number");
      }
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("expected digit after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("expected digit in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      int64_t value = 0;
      auto [end, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && end == token.data() + token.size()) {
        *out = Value(value);
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0.0;
    auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || end != token.data() + token.size()) {
      pos_ = start;
      return Fail("invalid number");
    }
    *out = Value(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t* error_offset_;
};

}  // namespace

StatusOr<Value> Parse(std::string_view text, size_t* error_offset) {
  return Parser(text, error_offset).Run();
}

}  // namespace xfrag::json
