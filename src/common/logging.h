// Assertion and check macros. XFRAG_CHECK is active in all build types and is
// reserved for invariant violations that indicate a bug in this library; it
// never fires on bad user input (which is reported through Status).

#ifndef XFRAG_COMMON_LOGGING_H_
#define XFRAG_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace xfrag::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "XFRAG_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace xfrag::internal

/// Aborts with a diagnostic when `cond` is false. Enabled in release builds.
#define XFRAG_CHECK(cond)                                        \
  do {                                                           \
    if (!(cond)) {                                               \
      ::xfrag::internal::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                            \
  } while (false)

/// Debug-only check, compiled out in NDEBUG builds.
#ifdef NDEBUG
#define XFRAG_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define XFRAG_DCHECK(cond) XFRAG_CHECK(cond)
#endif

#endif  // XFRAG_COMMON_LOGGING_H_
