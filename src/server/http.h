// Minimal HTTP/1.1 message handling for xfragd: an incremental request
// parser (feed bytes as they arrive from the socket, stop when a full
// message is buffered), a response serializer, and a client-side response
// parser. Deliberately small: no chunked bodies, no keep-alive, no
// continuation headers — every connection carries exactly one exchange and
// is closed by the server, which keeps the concurrency model trivial to
// reason about (and to prove race-free under TSan).

#ifndef XFRAG_SERVER_HTTP_H_
#define XFRAG_SERVER_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace xfrag::server {

/// \brief One parsed request.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// \brief Incremental request parser.
///
/// Feed() appends received bytes and attempts to complete the message;
/// kNeedMore means "read more from the socket". Once kComplete or kError is
/// reached the parser stays there. On kError, `error()` describes the
/// problem and `error_status()` is the HTTP status to answer with (400
/// malformed, 413 oversized body, 501 unsupported framing).
class HttpRequestParser {
 public:
  explicit HttpRequestParser(size_t max_body_bytes = 1 << 20)
      : max_body_bytes_(max_body_bytes) {}

  enum class State { kNeedMore, kComplete, kError };

  State Feed(std::string_view data);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  const std::string& error() const { return error_; }
  int error_status() const { return error_status_; }

 private:
  State Fail(std::string message, int status = 400) {
    error_ = std::move(message);
    error_status_ = status;
    state_ = State::kError;
    return state_;
  }
  State TryParse();

  size_t max_body_bytes_;
  std::string buffer_;
  /// Offset of the first body byte once headers are parsed; 0 = not yet.
  size_t body_start_ = 0;
  size_t content_length_ = 0;
  HttpRequest request_;
  std::string error_;
  int error_status_ = 400;
  State state_ = State::kNeedMore;
};

/// Reason phrase for the status codes xfragd emits ("Unknown" otherwise).
std::string_view HttpStatusReason(int status);

/// \brief Serializes a complete `Connection: close` response.
std::string RenderHttpResponse(int status, std::string_view content_type,
                               std::string_view body,
                               std::string_view extra_headers = {});

/// \brief A parsed client-side view of a response.
struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// \brief Parses the raw bytes of one full response (as returned by
/// HttpRoundTrip). Tolerates a missing Content-Length by taking the rest of
/// the input as the body (legal for close-delimited messages).
StatusOr<HttpResponse> ParseHttpResponse(std::string_view raw);

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_HTTP_H_
