// Minimal HTTP/1.1 message handling for xfragd and xfrag_router: an
// incremental request parser (feed bytes as they arrive from the socket,
// stop when a full message is buffered), a response serializer, and both a
// whole-message and an incremental client-side response parser. Deliberately
// small: no chunked bodies, no continuation headers. Connections may carry
// several exchanges (HTTP/1.1 keep-alive with Content-Length framing); the
// parsers expose the bytes left over after a complete message so a pipelined
// follow-up request survives the hand-off to the next parser instance.

#ifndef XFRAG_SERVER_HTTP_H_
#define XFRAG_SERVER_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace xfrag::server {

/// \brief One parsed request.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// \brief Incremental request parser.
///
/// Feed() appends received bytes and attempts to complete the message;
/// kNeedMore means "read more from the socket". Once kComplete or kError is
/// reached the parser stays there. On kError, `error()` describes the
/// problem and `error_status()` is the HTTP status to answer with (400
/// malformed, 413 oversized body, 501 unsupported framing).
class HttpRequestParser {
 public:
  explicit HttpRequestParser(size_t max_body_bytes = 1 << 20)
      : max_body_bytes_(max_body_bytes) {}

  enum class State { kNeedMore, kComplete, kError };

  State Feed(std::string_view data);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  const std::string& error() const { return error_; }
  int error_status() const { return error_status_; }

  /// \brief Bytes fed beyond the completed message (the start of a pipelined
  /// follow-up request). Only meaningful in state kComplete.
  std::string TakeRemaining();

 private:
  State Fail(std::string message, int status = 400) {
    error_ = std::move(message);
    error_status_ = status;
    state_ = State::kError;
    return state_;
  }
  State TryParse();

  size_t max_body_bytes_;
  std::string buffer_;
  /// Offset of the first body byte once headers are parsed; 0 = not yet.
  size_t body_start_ = 0;
  size_t content_length_ = 0;
  HttpRequest request_;
  std::string error_;
  int error_status_ = 400;
  State state_ = State::kNeedMore;
};

/// Reason phrase for the status codes xfragd emits ("Unknown" otherwise).
std::string_view HttpStatusReason(int status);

/// \brief Serializes a complete response. `keep_alive` selects the
/// Connection header; the body is always Content-Length framed, so a
/// keep-alive response leaves the connection ready for the next exchange.
std::string RenderHttpResponse(int status, std::string_view content_type,
                               std::string_view body,
                               std::string_view extra_headers = {},
                               bool keep_alive = false);

/// \brief A parsed client-side view of a response.
struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;

  /// \brief Whether the server committed to keeping the connection open:
  /// HTTP/1.1 semantics — keep-alive unless `Connection: close` — as
  /// reported by the parser that produced this response.
  bool keep_alive = false;
};

/// \brief Parses the raw bytes of one full response (as returned by
/// HttpRoundTrip). Tolerates a missing Content-Length by taking the rest of
/// the input as the body (legal for close-delimited messages).
StatusOr<HttpResponse> ParseHttpResponse(std::string_view raw);

/// \brief Incremental client-side response parser for keep-alive
/// connections, where "read until the peer closes" is not an option.
///
/// Feed bytes as they arrive; kComplete means `response()` is a full
/// message framed by Content-Length. A response without Content-Length is
/// close-delimited: the parser stays in kNeedMore until OnEof() seals the
/// body (such a connection cannot be reused, and `response().keep_alive`
/// reports false).
class HttpResponseParser {
 public:
  explicit HttpResponseParser(size_t max_body_bytes = 64u << 20)
      : max_body_bytes_(max_body_bytes) {}

  enum class State { kNeedMore, kComplete, kError };

  State Feed(std::string_view data);

  /// \brief Signals that the peer closed the connection. Completes a
  /// close-delimited body; anything else mid-message becomes kError.
  State OnEof();

  State state() const { return state_; }
  const HttpResponse& response() const { return response_; }
  const std::string& error() const { return error_; }

  /// \brief True once any response byte has been consumed — the caller's
  /// signal that a failed exchange cannot be retried transparently.
  bool saw_bytes() const { return saw_bytes_; }

  /// \brief Bytes fed beyond the completed message (pipelined data; normally
  /// empty for request/response clients). Only meaningful in kComplete.
  std::string TakeRemaining();

 private:
  State Fail(std::string message) {
    error_ = std::move(message);
    state_ = State::kError;
    return state_;
  }
  State TryParse();

  size_t max_body_bytes_;
  std::string buffer_;
  /// Offset of the first body byte once headers are parsed; 0 = not yet.
  size_t body_start_ = 0;
  size_t content_length_ = 0;
  bool has_content_length_ = false;
  bool saw_bytes_ = false;
  HttpResponse response_;
  std::string error_;
  State state_ = State::kNeedMore;
};

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_HTTP_H_
