// The xfragd socket layer: a poll-driven accept loop feeding a bounded
// worker pool, with admission control in front of it. The concurrency model
// is deliberately simple — one connection carries one exchange, each
// exchange runs entirely on one worker thread, and the only cross-thread
// state is the stats registry (mutex), the per-document fixed-point caches
// (internally synchronized), and an in-flight counter (atomic + cv):
//
//   accept thread ──admission──▶ ThreadPool::Post ──▶ HandleConnection
//        │  (at capacity: inline 503 + Retry-After, never queued)
//        ▼
//   Shutdown(): stop accepting, wait for in-flight exchanges to finish,
//   then tear the pool down. In-flight responses are always written.

#ifndef XFRAG_SERVER_SERVER_H_
#define XFRAG_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "collection/collection.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "server/http.h"
#include "server/net.h"
#include "server/service.h"
#include "server/stats.h"

namespace xfrag::server {

/// Socket-layer configuration (the query policy lives in `service`).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back with port().
  uint16_t port = 0;
  /// Worker threads evaluating queries (>= 1).
  int workers = 4;
  /// Connections admitted beyond the ones actively being served. Admission
  /// rejects (503) once workers + queue_capacity exchanges are in flight.
  int queue_capacity = 64;
  /// Per-request socket read/write timeout.
  int request_timeout_ms = 10000;
  /// Maximum accepted request body size (413 beyond it).
  size_t max_body_bytes = 1 << 20;
  ServiceOptions service;
};

/// \brief The xfragd HTTP server over one immutable collection.
///
/// Lifecycle: construct → Start() → (serve) → Shutdown(). The destructor
/// calls Shutdown() if needed. The collection must outlive the server.
class Server {
 public:
  Server(const collection::Collection& collection, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Binds, listens, and starts the accept loop + worker pool.
  Status Start();

  /// The bound port (valid after Start; resolves an ephemeral bind).
  uint16_t port() const { return port_; }

  /// \brief Graceful drain: stop accepting, wait for every in-flight
  /// exchange to finish (responses are written), release the threads.
  /// Idempotent; safe to call from a signal-watching thread.
  void Shutdown();

  const StatsRegistry& stats() const { return stats_; }
  const QueryService& service() const { return service_; }

  /// Exchanges currently admitted (serving or queued) — exposed for the
  /// overload tests and the /metrics gauge.
  int InFlight() const { return in_flight_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void HandleConnection(UniqueFd conn);
  /// Routes one complete request to a handler; returns the response
  /// (status + body are recorded by the caller).
  std::string Dispatch(const HttpRequest& request, int* status_out,
                       algebra::OpMetrics* metrics_out,
                       bool* has_metrics_out) const;
  void FinishExchange();

  ServerOptions options_;
  QueryService service_;
  StatsRegistry stats_;

  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<int> in_flight_{0};
  std::mutex shutdown_mutex_;
  std::mutex drain_mutex_;
  std::condition_variable drained_;
};

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_SERVER_H_
