// The xfragd server: a QueryService behind the shared HttpServer socket
// layer (accept loop, admission control, HTTP/1.1 keep-alive — see
// server/http_server.h). This class only supplies the dispatch logic:
// routing /query, /healthz, /metrics, /version to the service. Each exchange
// runs entirely on one worker thread; the only cross-thread state is the
// stats registry (mutex) and the per-document fixed-point caches
// (internally synchronized).

#ifndef XFRAG_SERVER_SERVER_H_
#define XFRAG_SERVER_SERVER_H_

#include <cstdint>
#include <string>

#include "collection/collection.h"
#include "common/status.h"
#include "server/http.h"
#include "server/http_server.h"
#include "server/service.h"
#include "server/stats.h"

namespace xfrag::server {

/// Socket-layer configuration (the query policy lives in `service`).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back with port().
  uint16_t port = 0;
  /// Worker threads evaluating queries (>= 1).
  int workers = 4;
  /// Connections admitted beyond the ones actively being served. Admission
  /// rejects (503) once workers + queue_capacity connections are in flight.
  int queue_capacity = 64;
  /// Per-request socket read/write timeout.
  int request_timeout_ms = 10000;
  /// Maximum accepted request body size (413 beyond it).
  size_t max_body_bytes = 1 << 20;
  /// HTTP/1.1 persistent connections (see HttpServerOptions for semantics).
  bool keep_alive = true;
  int keep_alive_idle_timeout_ms = 5000;
  int max_requests_per_connection = 1000;
  ServiceOptions service;
};

/// \brief The xfragd HTTP server over one immutable collection.
///
/// Lifecycle: construct → Start() → (serve) → Shutdown(). The destructor
/// calls Shutdown() if needed. The collection must outlive the server.
class Server : private HttpDispatcher {
 public:
  Server(const collection::Collection& collection, ServerOptions options);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Binds, listens, and starts the accept loop + worker pool.
  Status Start() { return http_.Start(); }

  /// The bound port (valid after Start; resolves an ephemeral bind).
  uint16_t port() const { return http_.port(); }

  /// \brief Graceful drain: stop accepting, wait for every in-flight
  /// exchange to finish (responses are written), release the threads.
  /// Idempotent; safe to call from a signal-watching thread.
  void Shutdown() { http_.Shutdown(); }

  const StatsRegistry& stats() const { return http_.stats(); }
  const QueryService& service() const { return service_; }

  /// Connections currently admitted (serving or queued) — exposed for the
  /// overload tests and the /metrics gauge.
  int InFlight() const { return http_.InFlight(); }

 private:
  /// Routes one complete request to a handler (HttpDispatcher).
  std::string Dispatch(const HttpRequest& request, bool keep_alive,
                       int* status_out, algebra::OpMetrics* metrics_out,
                       bool* has_metrics_out) override;

  static HttpServerOptions ToHttpOptions(const ServerOptions& options);

  ServerOptions options_;
  QueryService service_;
  HttpServer http_;
};

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_SERVER_H_
