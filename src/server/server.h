// The xfragd server: a QueryService behind the shared HttpServer socket
// layer (accept loop, admission control, HTTP/1.1 keep-alive — see
// server/http_server.h). This class supplies the dispatch logic — routing
// /query, /healthz, /metrics, /version, /admin/reload to the service — and
// owns the swappable serving state.
//
// Serving state and atomic reload: the collection, its QueryService, and
// the snapshot bookkeeping live together in one immutable ServingState held
// through a shared_ptr. Every dispatched request copies the pointer once at
// entry and uses that state for its whole exchange, so POST /admin/reload
// can build a replacement state off to the side (parse nothing — just mmap
// and validate the new snapshot) and publish it with a pointer swap. In-
// flight requests finish against the epoch they started on; new requests
// see the new one; nobody ever blocks on a reload, and the old state is
// destroyed by the last request that holds it (its mapping is anchored via
// Collection::HoldResource). The old service's caches are invalidated at
// swap so a drained epoch releases its memory immediately.

#ifndef XFRAG_SERVER_SERVER_H_
#define XFRAG_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "collection/collection.h"
#include "common/status.h"
#include "server/http.h"
#include "server/http_server.h"
#include "server/service.h"
#include "server/stats.h"
#include "storage/snapshot.h"

namespace xfrag::server {

/// Socket-layer configuration (the query policy lives in `service`).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back with port().
  uint16_t port = 0;
  /// Worker threads evaluating queries (>= 1).
  int workers = 4;
  /// Connections admitted beyond the ones actively being served. Admission
  /// rejects (503) once workers + queue_capacity connections are in flight.
  int queue_capacity = 64;
  /// Per-request socket read/write timeout.
  int request_timeout_ms = 10000;
  /// Maximum accepted request body size (413 beyond it).
  size_t max_body_bytes = 1 << 20;
  /// HTTP/1.1 persistent connections (see HttpServerOptions for semantics).
  bool keep_alive = true;
  int keep_alive_idle_timeout_ms = 5000;
  int max_requests_per_connection = 1000;
  /// Worker linger before parking a kept-alive connection (see
  /// HttpServerOptions::keep_alive_linger_ms; 0 = park immediately).
  int keep_alive_linger_ms = 1;
  int keep_alive_linger_burst = 32;
  /// Run the structural column scans when /admin/reload opens a snapshot
  /// (mirrors SnapshotOpenOptions::validate_structure). Leave on unless the
  /// snapshot pipeline is fully trusted.
  bool validate_snapshot_on_reload = true;
  ServiceOptions service;
};

/// \brief The xfragd HTTP server over one immutable collection epoch.
///
/// Lifecycle: construct → Start() → (serve, possibly reload) → Shutdown().
/// The destructor calls Shutdown() if needed. With the borrowed-collection
/// constructor the collection must outlive the server; with the snapshot
/// constructor the server owns the mapping and POST /admin/reload works.
class Server : private HttpDispatcher {
 public:
  /// Serves a caller-owned collection (no reload support — there is no
  /// snapshot file to re-open).
  Server(const collection::Collection& collection, ServerOptions options);

  /// Serves a snapshot-backed collection; `path` is re-opened by
  /// POST /admin/reload (or replaced by the path in the reload body).
  Server(std::string snapshot_path, storage::SnapshotCollection snapshot,
         ServerOptions options);

  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Binds, listens, and starts the accept loop + worker pool.
  Status Start() { return http_.Start(); }

  /// The bound port (valid after Start; resolves an ephemeral bind).
  uint16_t port() const { return http_.port(); }

  /// \brief Graceful drain: stop accepting, wait for every in-flight
  /// exchange to finish (responses are written), release the threads.
  /// Idempotent; safe to call from a signal-watching thread.
  void Shutdown() { http_.Shutdown(); }

  const StatsRegistry& stats() const { return http_.stats(); }

  /// The current epoch's service. The reference is invalidated by a
  /// concurrent /admin/reload — single-threaded tests only; request
  /// handling goes through the per-request state snapshot instead.
  const QueryService& service() const { return CurrentState()->service(); }

  /// Monotonic serving-state generation; starts at 1, +1 per reload.
  uint64_t Epoch() const { return CurrentState()->epoch; }

  /// \brief Re-opens `path` (empty = the path currently served) and swaps
  /// it in as the next epoch. Exposed for tests; /admin/reload calls this.
  /// Fails without touching the serving state when the server was not
  /// constructed from a snapshot or the new snapshot fails validation.
  StatusOr<json::Value> ReloadSnapshot(const std::string& path);

  /// Connections currently admitted (serving or queued) — exposed for the
  /// overload tests and the /metrics gauge.
  int InFlight() const { return http_.InFlight(); }

 private:
  /// One immutable generation of serving state. `snapshot.collection` (or
  /// the borrowed pointer) must not move after construction, hence the
  /// in-place service construction and the shared_ptr indirection.
  struct ServingState {
    storage::SnapshotCollection snapshot;  // Owner when from_snapshot.
    const collection::Collection* borrowed = nullptr;
    std::unique_ptr<QueryService> query_service;
    uint64_t epoch = 1;
    bool from_snapshot = false;
    std::string snapshot_path;

    const collection::Collection& collection() const {
      return borrowed != nullptr ? *borrowed : snapshot.collection;
    }
    const QueryService& service() const { return *query_service; }
  };

  /// Routes one complete request to a handler (HttpDispatcher).
  std::string Dispatch(const HttpRequest& request, bool keep_alive,
                       int* status_out, algebra::OpMetrics* metrics_out,
                       bool* has_metrics_out) override;

  std::shared_ptr<const ServingState> CurrentState() const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return state_;
  }

  /// Snapshot block of GET /metrics for `state` (live resident bytes).
  json::Value SnapshotMetricsJson(const ServingState& state) const;

  static HttpServerOptions ToHttpOptions(const ServerOptions& options);

  ServerOptions options_;
  mutable std::mutex state_mutex_;   // Guards the state_ pointer only.
  std::shared_ptr<const ServingState> state_;
  std::mutex reload_mutex_;          // Serializes concurrent reloads.
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reload_failures_{0};
  HttpServer http_;
};

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_SERVER_H_
