#include "server/result_cache.h"

#include <functional>
#include <utility>

namespace xfrag::server {

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  shard_budget_ = options_.max_bytes / options_.shards;
  // Budgets so small they round to zero per shard behave as disabled.
  if (shard_budget_ == 0) options_.max_bytes = 0;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const json::Value> ResultCache::Find(const std::string& key) {
  if (!enabled()) return nullptr;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->body;
}

void ResultCache::Insert(const std::string& key, json::Value body) {
  if (!enabled()) return;
  // Size the entry by its serialized form — the same bytes the server would
  // otherwise recompute — plus key and bookkeeping overhead.
  size_t bytes = key.size() + body.Dump().size() + 160;
  if (bytes > shard_budget_) return;
  auto shared = std::make_shared<const json::Value>(std::move(body));

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{key, std::move(shared), bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  ++shard.inserts;
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.entries += shard->index.size();
    stats.bytes += shard->bytes;
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.inserts += shard->inserts;
  }
  return stats;
}

json::Value ResultCache::StatsJson() const {
  ResultCacheStats stats = Stats();
  json::Value out = json::Value::Object();
  out.Set("enabled", enabled());
  out.Set("entries", stats.entries);
  out.Set("bytes", stats.bytes);
  out.Set("hits", stats.hits);
  out.Set("misses", stats.misses);
  out.Set("evictions", stats.evictions);
  out.Set("inserts", stats.inserts);
  return out;
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
    shard->hits = 0;
    shard->misses = 0;
    shard->evictions = 0;
    shard->inserts = 0;
  }
}

}  // namespace xfrag::server
