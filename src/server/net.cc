#include "server/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/strings.h"

namespace xfrag::server {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, std::strerror(errno)));
}

StatusOr<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                             int backlog) {
  XFRAG_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

StatusOr<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  XFRAG_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::NotFound(StrFormat("connect %s:%u: %s", host.c_str(),
                                      unsigned{port}, std::strerror(errno)));
  }
  return fd;
}

StatusOr<UniqueFd> ConnectTcpTimeout(const std::string& host, uint16_t port,
                                     int timeout_ms) {
  XFRAG_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) return Errno("socket");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      return Status::NotFound(StrFormat("connect %s:%u: %s", host.c_str(),
                                        unsigned{port}, std::strerror(errno)));
    }
    pollfd pfd{fd.get(), POLLOUT, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      return Status::DeadlineExceeded(StrFormat(
          "connect %s:%u timed out after %d ms", host.c_str(), unsigned{port},
          timeout_ms));
    }
    if (ready < 0) return Errno("poll(connect)");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::NotFound(StrFormat("connect %s:%u: %s", host.c_str(),
                                        unsigned{port}, std::strerror(err)));
    }
  }
  // Back to blocking mode: callers bound further I/O with SetSocketTimeouts.
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) != 0) {
    return Errno("fcntl");
  }
  return fd;
}

Status SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(timeout)");
  }
  return Status::OK();
}

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a peer that closed early yields EPIPE, not SIGPIPE.
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

StatusOr<size_t> ReadSome(int fd, char* buf, size_t len) {
  while (true) {
    ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv timed out");
    }
    return Errno("recv");
  }
}

StatusOr<std::string> HttpRoundTrip(const std::string& host, uint16_t port,
                                    std::string_view request, int timeout_ms) {
  XFRAG_ASSIGN_OR_RETURN(UniqueFd fd, ConnectTcp(host, port));
  XFRAG_RETURN_NOT_OK(SetSocketTimeouts(fd.get(), timeout_ms));
  XFRAG_RETURN_NOT_OK(WriteAll(fd.get(), request));
  std::string response;
  char buf[16384];
  while (true) {
    XFRAG_ASSIGN_OR_RETURN(size_t n, ReadSome(fd.get(), buf, sizeof(buf)));
    if (n == 0) break;  // Server closed: message complete.
    response.append(buf, n);
  }
  return response;
}

}  // namespace xfrag::server
