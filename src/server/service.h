// The serving core of xfragd, separated from the socket layer so the whole
// request→response path is unit-testable without a network: parse a JSON
// query request, evaluate it per document against the collection (shared
// per-document FixedPointCaches make concurrent identical queries hit warm
// closures), and render a JSON response with answers, metrics, and EXPLAIN.
//
// The JSON request schema (POST /query):
//   {
//     "terms": ["xquery", "optimization"],   // required, non-empty strings
//     "filter": "size<=5 & height<=3",       // optional, default "true"
//     "strategy": "auto",                    // auto|brute|naive|reduced|pushdown
//     "answer_mode": "algebraic",            // algebraic|leaf_strict
//     "deadline_ms": 250,                    // optional per-request deadline
//     "explain": false, "analyze": false,    // EXPLAIN / EXPLAIN ANALYZE
//     "xml": false,                          // render each answer as XML
//     "max_answers": 100,                    // truncate the answer array
//     "top_k": 10,                           // k best-ranked answers only
//     "rank": true                           // rank (all) answers by score
//   }
// Unknown fields are rejected with a structured 400 — a misspelled option
// must never be silently ignored.
//
// "top_k" asks for exactly the k best answers by the engine's ranking
// (docs/SERVING.md) and implies "rank": true; the evaluation itself runs
// score-bounded, so most candidate joins are rejected in O(1) before being
// materialized. "rank": true alone ranks the full answer set. Each ranked
// answer carries a "score" field; answers are ordered by (score desc,
// document index asc, canonical fragment order). "max_answers" still
// truncates the rendered array afterwards, as in unranked mode.

#ifndef XFRAG_SERVER_SERVICE_H_
#define XFRAG_SERVER_SERVICE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "collection/collection.h"
#include "common/json.h"
#include "query/engine.h"
#include "query/fixed_point_cache.h"
#include "server/result_cache.h"

namespace xfrag::server {

/// Serving-policy knobs, independent of the socket layer.
struct ServiceOptions {
  /// Deadline applied when a request does not carry "deadline_ms"
  /// (0 = unlimited).
  double default_deadline_ms = 0.0;
  /// Upper bound on any per-request deadline (0 = uncapped); larger
  /// requested deadlines are clamped, so a client cannot opt out of the
  /// operator-configured ceiling.
  double max_deadline_ms = 0.0;
  /// Accept the "debug_sleep_ms" request field, which stalls the worker
  /// before evaluation. Exists for deterministic overload/drain/deadline
  /// tests and load benches; never enable it on a real deployment.
  bool enable_debug_sleep = false;
  /// Byte budget of the serving-side result cache (0 disables it). Whole
  /// successful /query bodies are cached by normalized request — terms
  /// sorted and case-folded, plus filter, strategy, answer mode, top_k, and
  /// every rendering option — and a hit is served without invoking the
  /// engine at all. Requests carrying "debug_sleep_ms" bypass the cache.
  size_t result_cache_bytes = 0;
  /// Lock-striping shard count of the result cache.
  size_t result_cache_shards = 8;
  /// Capacity limits applied to each per-document fixed-point cache. The
  /// default (both zero) is unlimited — the pre-bounded behaviour; xfragd
  /// sets real caps so long-running traffic cannot grow the caches without
  /// bound.
  query::FixedPointCacheLimits fixed_point_cache;
};

/// \brief Result of handling one /query request.
struct QueryOutcome {
  int http_status = 200;
  json::Value body;
  /// Aggregated operator metrics (partial when http_status == 504).
  algebra::OpMetrics metrics;
};

/// \brief Stateless-per-request query handler over an immutable collection.
///
/// Thread-safe: Handle() may run on any number of worker threads at once.
/// The only shared mutable state is the per-document FixedPointCache set,
/// which is internally synchronized (first-wins inserts, stable pointers).
class QueryService {
 public:
  explicit QueryService(const collection::Collection& collection,
                        ServiceOptions options = {});

  /// \brief Handles one POST /query body.
  QueryOutcome HandleQuery(std::string_view body_text) const;

  /// GET /healthz body.
  json::Value HealthzJson() const;

  /// GET /version body.
  json::Value VersionJson() const;

  /// Fixed-point cache statistics, merged into GET /metrics output.
  json::Value CacheStatsJson() const;

  /// Result cache statistics, merged into GET /metrics output.
  json::Value ResultCacheStatsJson() const;

  /// \brief Drops every cached result body and fixed-point closure. The
  /// invalidation hook for a future document-reload path: any change to the
  /// collection must call this before serving, since both caches assume
  /// immutable documents.
  void InvalidateCaches() const;

  /// \brief Renders one answer fragment the way /query responses do —
  /// exposed so tests can build the expected bytes from a direct
  /// QueryEngine::Evaluate call and compare byte-for-byte.
  static json::Value AnswerToJson(std::string_view document_name,
                                  size_t document_index,
                                  const algebra::Fragment& fragment,
                                  const doc::Document& document,
                                  bool include_xml);

 private:
  const collection::Collection& collection_;
  ServiceOptions options_;
  /// One cache per collection entry: closures are document-specific.
  std::vector<std::unique_ptr<query::FixedPointCache>> caches_;
  /// Whole-response cache (internally synchronized; disabled by default).
  std::unique_ptr<ResultCache> result_cache_;
};

/// \brief Maps a Status to the HTTP status the server answers with.
int HttpStatusForError(const Status& status);

/// \brief Parses a strategy name (auto|brute|naive|reduced|pushdown).
StatusOr<query::Strategy> ParseStrategyName(std::string_view name);

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_SERVICE_H_
