// The serving core of xfragd, separated from the socket layer so the whole
// request→response path is unit-testable without a network: parse a JSON
// query request, evaluate it per document against the collection (shared
// per-document FixedPointCaches make concurrent identical queries hit warm
// closures), and render a JSON response with answers, metrics, and EXPLAIN.
//
// The JSON request schema (POST /query):
//   {
//     "terms": ["xquery", "optimization"],   // required, non-empty strings
//     "filter": "size<=5 & height<=3",       // optional, default "true"
//     "strategy": "auto",                    // auto|brute|naive|reduced|pushdown
//     "answer_mode": "algebraic",            // algebraic|leaf_strict
//     "deadline_ms": 250,                    // optional per-request deadline
//     "explain": false, "analyze": false,    // EXPLAIN / EXPLAIN ANALYZE
//     "xml": false,                          // render each answer as XML
//     "max_answers": 100,                    // truncate the answer array
//     "top_k": 10,                           // k best-ranked answers only
//     "rank": true,                          // rank (all) answers by score
//     "score_floor": 1.25,                   // distributed top-k seed bound
//     "probe_documents": 1,                  // top-k probe: first N docs only
//     "skip_documents": 1,                   // resume after an N-doc probe
//     "query_id": "q-42"                     // accept POST /threshold updates
//   }
// Unknown fields are rejected with a structured 400 — a misspelled option
// must never be silently ignored.
//
// The last four fields are the distributed top-k shard protocol
// (docs/SERVING.md, "Distributed top-k"); each requires "top_k", and
// "probe_documents" conflicts with "score_floor", "skip_documents", and
// "query_id". "score_floor" is the caller's promise that k answers scoring
// at or above it exist globally; the evaluation prunes strictly-below
// candidates, and the response is the node's top-k filtered to
// score >= floor. "skip_documents": N passes over the first N eligible
// documents without evaluating them — the resume half of a probe/resume
// split: a probe response covering those N documents plus the resume
// response partition the corpus exactly (counters sum field by field, and
// the union of the two answer streams contains the node's true top k).
// "query_id" registers the query to receive mid-flight floor raises via
// POST /threshold {"query_id": ..., "score_floor": ...} → {"updated": bool}.
//
// "top_k" asks for exactly the k best answers by the engine's ranking
// (docs/SERVING.md) and implies "rank": true; the evaluation itself runs
// score-bounded, so most candidate joins are rejected in O(1) before being
// materialized. "rank": true alone ranks the full answer set. Each ranked
// answer carries a "score" field; answers are ordered by (score desc,
// document index asc, canonical fragment order). "max_answers" still
// truncates the rendered array afterwards, as in unranked mode.

#ifndef XFRAG_SERVER_SERVICE_H_
#define XFRAG_SERVER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "collection/collection.h"
#include "common/json.h"
#include "common/timer.h"
#include "query/engine.h"
#include "query/fixed_point_cache.h"
#include "server/latency_histogram.h"
#include "server/result_cache.h"

namespace xfrag::server {

/// Serving-policy knobs, independent of the socket layer.
struct ServiceOptions {
  /// Deadline applied when a request does not carry "deadline_ms"
  /// (0 = unlimited).
  double default_deadline_ms = 0.0;
  /// Upper bound on any per-request deadline (0 = uncapped); larger
  /// requested deadlines are clamped, so a client cannot opt out of the
  /// operator-configured ceiling.
  double max_deadline_ms = 0.0;
  /// Accept the "debug_sleep_ms" request field, which stalls the worker
  /// before evaluation. Exists for deterministic overload/drain/deadline
  /// tests and load benches; never enable it on a real deployment.
  bool enable_debug_sleep = false;
  /// Byte budget of the serving-side result cache (0 disables it). Whole
  /// successful /query bodies are cached by normalized request — terms
  /// sorted and case-folded, plus filter, strategy, answer mode, top_k, and
  /// every rendering option — and a hit is served without invoking the
  /// engine at all. Requests carrying "debug_sleep_ms" bypass the cache.
  size_t result_cache_bytes = 0;
  /// Lock-striping shard count of the result cache.
  size_t result_cache_shards = 8;
  /// Capacity limits applied to each per-document fixed-point cache. The
  /// default (both zero) is unlimited — the pre-bounded behaviour; xfragd
  /// sets real caps so long-running traffic cannot grow the caches without
  /// bound.
  query::FixedPointCacheLimits fixed_point_cache;
  /// Seed each successive document's top-k collector with the running k-th
  /// best score of the documents already evaluated (provably answer-
  /// preserving — see docs/SERVING.md). Changes work metrics (fewer joins),
  /// never answers; tests that compare metrics byte-for-byte across
  /// different document partitions turn it off.
  bool enable_cross_document_floor = true;
  /// Capacity of the live-floor registry (concurrent queries carrying
  /// "query_id"); registrations beyond it are refused, which only disables
  /// mid-flight updates for those queries, never correctness.
  size_t floor_registry_capacity = 4096;
  /// Maximum items one POST /query_batch request may carry; a larger batch
  /// is rejected whole with a structured 400 (the batch holds exactly one
  /// admission slot, so the cap bounds the work a slot can claim).
  size_t batch_max_items = 256;
  /// Worker threads a batch may use to evaluate term-disjoint query groups
  /// concurrently (1 = serial). Parallelism never crosses a group boundary:
  /// items sharing any term evaluate sequentially in submission order, so
  /// the fixed-point and result caches evolve exactly as under sequential
  /// /query requests and every per-item body stays byte-identical. Groups
  /// touch disjoint cache keys; the only cross-group coupling is LRU
  /// eviction order when a cache is at capacity (entries kept may differ,
  /// bodies never do).
  unsigned batch_parallelism = 1;
};

/// \brief Registry of per-query live score floors, keyed by "query_id".
///
/// A query carrying "query_id" registers an entry whose atomic floor its
/// collectors read during evaluation; POST /threshold raises it mid-flight.
/// Entries are refcounted (identical ids share one floor) and vanish with
/// their last registrant, so an update for a finished query is a no-op.
/// Thread-safe.
class FloorRegistry {
 public:
  struct Entry {
    std::atomic<double> floor;
    size_t refs = 0;
    Entry();
  };

  explicit FloorRegistry(size_t capacity) : capacity_(capacity) {}

  /// Registers `id`; returns the shared floor entry, or nullptr when the
  /// registry is at capacity. Pair every successful call with Deregister.
  std::shared_ptr<Entry> Register(const std::string& id);

  /// Drops one registration of `id`; the entry dies with the last one.
  void Deregister(const std::string& id);

  /// Raises `id`'s floor to at least `floor` (monotonic CAS — concurrent
  /// raises keep the maximum). False iff no such query is registered.
  bool Raise(const std::string& id, double floor);

  size_t size() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
};

struct ParsedRequest;  // service.cc: one decoded /query request
struct BatchShared;    // service.cc: per-group sharing state of one batch

/// \brief Result of handling one /query request.
struct QueryOutcome {
  int http_status = 200;
  json::Value body;
  /// Aggregated operator metrics (partial when http_status == 504).
  algebra::OpMetrics metrics;
};

/// \brief Stateless-per-request query handler over an immutable collection.
///
/// Thread-safe: Handle() may run on any number of worker threads at once.
/// The only shared mutable state is the per-document FixedPointCache set,
/// which is internally synchronized (first-wins inserts, stable pointers).
class QueryService {
 public:
  explicit QueryService(const collection::Collection& collection,
                        ServiceOptions options = {});

  /// \brief Handles one POST /query body.
  QueryOutcome HandleQuery(std::string_view body_text) const;

  /// \brief Handles one POST /query_batch body: a JSON array of standard
  /// /query objects (or {"queries": [...]}) evaluated with cross-query
  /// sharing. The response is always HTTP 200 with
  ///   {"results": [{"status": N, "body": {...}}, ...],
  ///    "batch": {items, groups, evaluated, result_cache_hits,
  ///              subplans_shared, postings_shared},
  ///    "elapsed_ms": ...}
  /// where results[i].body is byte-identical (modulo elapsed_ms) to what a
  /// sequential POST /query of item i would have returned — including
  /// per-item 400s for malformed items and per-item 504s for expired
  /// deadlines; one bad item never poisons the batch. Envelope-level
  /// errors (unparseable body, not an array, empty, above batch_max_items)
  /// are a structured 400 for the whole request.
  QueryOutcome HandleQueryBatch(std::string_view body_text) const;

  /// \brief Handles one POST /threshold body ({"query_id", "score_floor"}):
  /// raises the registered query's live floor. Replies {"updated": bool};
  /// an unknown query_id is not an error (the query already finished).
  QueryOutcome HandleThresholdUpdate(std::string_view body_text) const;

  /// Distributed top-k counters, merged into GET /metrics output.
  json::Value DistributedTopKStatsJson() const;

  /// Batch-execution counters (batch-size histogram, sharing counters),
  /// merged into GET /metrics output as the "batch" section.
  json::Value BatchStatsJson() const;

  /// DAG-compression statistics (subtree classes, compression ratio, replay
  /// counters), merged into GET /metrics output.
  json::Value DagStatsJson() const;

  /// GET /healthz body.
  json::Value HealthzJson() const;

  /// GET /version body.
  json::Value VersionJson() const;

  /// Fixed-point cache statistics, merged into GET /metrics output.
  json::Value CacheStatsJson() const;

  /// Result cache statistics, merged into GET /metrics output.
  json::Value ResultCacheStatsJson() const;

  /// \brief Drops every cached result body and fixed-point closure. The
  /// invalidation hook for a future document-reload path: any change to the
  /// collection must call this before serving, since both caches assume
  /// immutable documents.
  void InvalidateCaches() const;

  /// \brief Renders one answer fragment the way /query responses do —
  /// exposed so tests can build the expected bytes from a direct
  /// QueryEngine::Evaluate call and compare byte-for-byte.
  static json::Value AnswerToJson(std::string_view document_name,
                                  size_t document_index,
                                  const algebra::Fragment& fragment,
                                  const doc::Document& document,
                                  bool include_xml);

 private:
  /// \brief Runs one decoded request end to end (result-cache lookup,
  /// deadline, per-document evaluation, rendering, cache fill). `shared`,
  /// when non-null, wires the batch sharing state of the item's group into
  /// the evaluation (scan memo, hoisted term-presence prechecks).
  QueryOutcome RunParsed(ParsedRequest& request, const Timer& timer,
                         BatchShared* shared) const;

  const collection::Collection& collection_;
  ServiceOptions options_;
  /// One cache per collection entry: closures are document-specific.
  std::vector<std::unique_ptr<query::FixedPointCache>> caches_;
  /// Whole-response cache (internally synchronized; disabled by default).
  std::unique_ptr<ResultCache> result_cache_;
  /// Root classes shared by >= 2 member documents: only these can ever be
  /// deduplicated, so requests over a duplicate-free collection skip the
  /// replay bookkeeping (no result copies, no map) entirely.
  std::unordered_set<doc::SubtreeClassId> duplicate_root_classes_;
  /// Live floors for in-flight queries carrying "query_id".
  mutable FloorRegistry floor_registry_;
  /// Distributed top-k observability (GET /metrics).
  mutable std::atomic<uint64_t> floors_seeded_{0};
  mutable std::atomic<uint64_t> probe_requests_{0};
  mutable std::atomic<uint64_t> resume_requests_{0};
  mutable std::atomic<uint64_t> floor_updates_received_{0};
  mutable std::atomic<uint64_t> floor_updates_applied_{0};
  /// DAG-compression observability (GET /metrics): documents served by
  /// replaying a byte-identical representative, and the kernel-level replay
  /// counters accumulated across successful /query requests.
  mutable std::atomic<uint64_t> dag_documents_deduplicated_{0};
  mutable std::atomic<uint64_t> dag_class_pairs_considered_{0};
  mutable std::atomic<uint64_t> dag_answers_multiplied_out_{0};
  /// Batch-execution observability (GET /metrics "batch" section).
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> batch_items_{0};
  mutable std::atomic<uint64_t> batch_result_cache_hits_{0};
  mutable std::atomic<uint64_t> batch_subplans_shared_{0};
  mutable std::atomic<uint64_t> batch_postings_shared_{0};
  /// Batch-size histogram ("size" in the batch metrics section); guarded by
  /// batch_mu_ (LatencyHistogram is synchronization-free by design).
  mutable std::mutex batch_mu_;
  mutable LatencyHistogram batch_sizes_;
};

/// \brief Maps a Status to the HTTP status the server answers with.
int HttpStatusForError(const Status& status);

/// \brief Parses a strategy name (auto|brute|naive|reduced|pushdown).
StatusOr<query::Strategy> ParseStrategyName(std::string_view name);

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_SERVICE_H_
