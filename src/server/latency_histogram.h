// A power-of-two-bucketed latency histogram with nearest-rank percentile
// upper bounds — shared by the xfragd stats registry (one histogram per
// server) and the router's per-shard backend latency tracking, so both tiers
// report percentiles with identical semantics. Header-only and
// synchronization-free: callers wrap it in whatever locking their registry
// already uses.

#ifndef XFRAG_SERVER_LATENCY_HISTOGRAM_H_
#define XFRAG_SERVER_LATENCY_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace xfrag::server {

/// \brief Power-of-two-bucketed latency histogram (microseconds).
///
/// Bucket i counts samples in [2^i, 2^(i+1)) µs; bucket 0 additionally
/// holds sub-microsecond samples. 40 buckets cover up to ~12.7 days.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(uint64_t micros) {
    size_t bucket =
        micros == 0 ? 0 : static_cast<size_t>(std::bit_width(micros) - 1);
    if (bucket >= kBuckets) bucket = kBuckets - 1;
    ++buckets_[bucket];
    ++count_;
    sum_ += micros;
    if (micros > max_) max_ = micros;
  }

  uint64_t count() const { return count_; }
  uint64_t max_micros() const { return max_; }
  double MeanMicros() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) /
                                   static_cast<double>(count_);
  }

  /// \brief Upper bound of the bucket containing the p-th percentile sample
  /// (p in (0, 100]); 0 when empty. Error is bounded by the 2× bucket width.
  uint64_t PercentileUpperBoundMicros(double p) const {
    if (count_ == 0) return 0;
    // Rank of the percentile sample, 1-based (nearest-rank definition:
    // ceil(p/100 * N), so p95 of 3 samples is the 3rd, not the 2nd).
    auto rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (rank < 1) rank = 1;
    if (rank > count_) rank = count_;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= rank) {
        uint64_t upper = (uint64_t{1} << (i + 1)) - 1;
        // The top sample bounds the histogram: never report past the max.
        return upper < max_ ? upper : max_;
      }
    }
    return max_;
  }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_LATENCY_HISTOGRAM_H_
