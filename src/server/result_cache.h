// A serving-side cache of whole /query response bodies. Documents are
// immutable while a server runs, so two requests that normalize to the same
// evaluation (same term multiset, filter, strategy, answer mode, top_k, and
// rendering options) produce the same answers — the second one can be served
// without invoking the engine at all.
//
// Sharded LRU with a global byte budget split evenly across shards: each
// shard is an intrusive recency list plus a key map under its own mutex, so
// concurrent workers serving disjoint queries rarely contend. Values are
// held by shared_ptr and copied out on hit — an entry may be evicted while a
// hit is still rendering, and nothing dangles.
//
// The cache stores only successful (HTTP 200) bodies; errors, deadline
// expirations, and debug-sleep requests are never cached (see service.cc).

#ifndef XFRAG_SERVER_RESULT_CACHE_H_
#define XFRAG_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.h"

namespace xfrag::server {

/// Result-cache sizing knobs.
struct ResultCacheOptions {
  /// Total byte budget across all shards. 0 disables the cache entirely
  /// (every Find misses without counting, every Insert is a no-op).
  size_t max_bytes = 0;
  /// Number of lock-striped shards; clamped to at least 1. Requests hash to
  /// a shard by key, so the budget is enforced per shard (max_bytes/shards).
  size_t shards = 8;
};

/// A point-in-time aggregate of every shard's counters.
struct ResultCacheStats {
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t inserts = 0;
};

/// \brief Sharded, byte-budgeted LRU cache of rendered response bodies.
///
/// Thread-safe: all methods may be called concurrently from any number of
/// worker threads.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  bool enabled() const { return options_.max_bytes > 0; }

  /// Looks up `key`, refreshing its recency. Returns null on miss (or when
  /// the cache is disabled — that case counts neither hit nor miss). The
  /// pointee is immutable and survives concurrent eviction for as long as
  /// the caller holds the pointer.
  std::shared_ptr<const json::Value> Find(const std::string& key);

  /// \brief Stores `body` under `key`, replacing any existing entry and
  /// evicting least-recently-used entries until the shard fits its budget.
  /// A body larger than the whole shard budget is not cached (it would only
  /// flush everything else for a single-use entry).
  void Insert(const std::string& key, json::Value body);

  ResultCacheStats Stats() const;

  /// Stats() rendered for GET /metrics.
  json::Value StatsJson() const;

  /// Drops every entry (counters too) — the invalidation hook for a future
  /// document-reload path, and for tests.
  void Clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const json::Value> body;
    size_t bytes = 0;
  };
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used; eviction pops from the back.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
  };

  Shard& ShardFor(const std::string& key);

  ResultCacheOptions options_;
  size_t shard_budget_ = 0;
  /// unique_ptr: Shard holds a mutex and must never move.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_RESULT_CACHE_H_
