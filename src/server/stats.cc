#include "server/stats.h"

#include <bit>
#include <cmath>

#include "common/strings.h"

namespace xfrag::server {

void LatencyHistogram::Record(uint64_t micros) {
  size_t bucket =
      micros == 0 ? 0 : static_cast<size_t>(std::bit_width(micros) - 1);
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  ++buckets_[bucket];
  ++count_;
  sum_ += micros;
  if (micros > max_) max_ = micros;
}

uint64_t LatencyHistogram::PercentileUpperBoundMicros(double p) const {
  if (count_ == 0) return 0;
  // Rank of the percentile sample, 1-based (nearest-rank definition:
  // ceil(p/100 * N), so p95 of 3 samples is the 3rd, not the 2nd).
  auto rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      uint64_t upper = (uint64_t{1} << (i + 1)) - 1;
      // The top sample bounds the histogram: never report past the max.
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

void StatsRegistry::RecordRequest(int http_status, uint64_t latency_micros,
                                  const algebra::OpMetrics* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++by_status_[http_status];
  latency_.Record(latency_micros);
  if (metrics != nullptr) op_metrics_.Merge(*metrics);
}

uint64_t StatsRegistry::TotalRequests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latency_.count();
}

uint64_t StatsRegistry::RequestsWithStatus(int http_status) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_status_.find(http_status);
  return it == by_status_.end() ? 0 : it->second;
}

json::Value StatsRegistry::OpMetricsToJson(const algebra::OpMetrics& metrics) {
  json::Value out = json::Value::Object();
  out.Set("fragment_joins", metrics.fragment_joins);
  out.Set("filter_evals", metrics.filter_evals);
  out.Set("filter_rejections", metrics.filter_rejections);
  out.Set("fixed_point_iterations", metrics.fixed_point_iterations);
  out.Set("fragments_produced", metrics.fragments_produced);
  out.Set("pairs_considered", metrics.pairs_considered);
  out.Set("pairs_rejected_summary", metrics.pairs_rejected_summary);
  out.Set("pairs_rejected_score", metrics.pairs_rejected_score);
  out.Set("subsume_checks_skipped", metrics.subsume_checks_skipped);
  return out;
}

json::Value StatsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Value requests = json::Value::Object();
  requests.Set("total", latency_.count());
  json::Value by_status = json::Value::Object();
  for (const auto& [status, count] : by_status_) {
    by_status.Set(StrFormat("%d", status), count);
  }
  requests.Set("by_status", std::move(by_status));

  json::Value latency = json::Value::Object();
  latency.Set("count", latency_.count());
  latency.Set("mean", latency_.MeanMicros());
  latency.Set("p50", latency_.PercentileUpperBoundMicros(50));
  latency.Set("p95", latency_.PercentileUpperBoundMicros(95));
  latency.Set("p99", latency_.PercentileUpperBoundMicros(99));
  latency.Set("max", latency_.max_micros());

  json::Value out = json::Value::Object();
  out.Set("requests", std::move(requests));
  out.Set("latency_us", std::move(latency));
  out.Set("op_metrics", OpMetricsToJson(op_metrics_));
  return out;
}

}  // namespace xfrag::server
