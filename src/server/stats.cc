#include "server/stats.h"

#include "common/strings.h"

namespace xfrag::server {

void StatsRegistry::RecordRequest(int http_status, uint64_t latency_micros,
                                  const algebra::OpMetrics* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++by_status_[http_status];
  latency_.Record(latency_micros);
  if (metrics != nullptr) op_metrics_.Merge(*metrics);
}

void StatsRegistry::RecordSnapshotOpen(double open_ms, uint64_t file_bytes,
                                       uint64_t mapped_bytes,
                                       uint64_t resident_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++snapshot_open_.count;
  snapshot_open_.last_open_ms = open_ms;
  snapshot_open_.total_open_ms += open_ms;
  snapshot_open_.file_bytes = file_bytes;
  snapshot_open_.mapped_bytes = mapped_bytes;
  snapshot_open_.resident_bytes = resident_bytes;
}

StatsRegistry::SnapshotOpen StatsRegistry::snapshot_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_open_;
}

uint64_t StatsRegistry::TotalRequests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latency_.count();
}

uint64_t StatsRegistry::RequestsWithStatus(int http_status) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_status_.find(http_status);
  return it == by_status_.end() ? 0 : it->second;
}

json::Value StatsRegistry::OpMetricsToJson(const algebra::OpMetrics& metrics) {
  json::Value out = json::Value::Object();
  out.Set("fragment_joins", metrics.fragment_joins);
  out.Set("filter_evals", metrics.filter_evals);
  out.Set("filter_rejections", metrics.filter_rejections);
  out.Set("fixed_point_iterations", metrics.fixed_point_iterations);
  out.Set("fragments_produced", metrics.fragments_produced);
  out.Set("pairs_considered", metrics.pairs_considered);
  out.Set("pairs_rejected_summary", metrics.pairs_rejected_summary);
  out.Set("pairs_rejected_score", metrics.pairs_rejected_score);
  out.Set("subsume_checks_skipped", metrics.subsume_checks_skipped);
  out.Set("classes_total", metrics.classes_total);
  out.Set("class_pairs_considered", metrics.class_pairs_considered);
  out.Set("answers_multiplied_out", metrics.answers_multiplied_out);
  return out;
}

json::Value StatsRegistry::LatencyToJson(const LatencyHistogram& histogram) {
  json::Value latency = json::Value::Object();
  latency.Set("count", histogram.count());
  latency.Set("mean", histogram.MeanMicros());
  latency.Set("p50", histogram.PercentileUpperBoundMicros(50));
  latency.Set("p95", histogram.PercentileUpperBoundMicros(95));
  latency.Set("p99", histogram.PercentileUpperBoundMicros(99));
  latency.Set("max", histogram.max_micros());
  return latency;
}

json::Value StatsRegistry::SnapshotOpenToJson(const SnapshotOpen& open) {
  json::Value out = json::Value::Object();
  out.Set("count", open.count);
  out.Set("last_open_ms", open.last_open_ms);
  out.Set("total_open_ms", open.total_open_ms);
  out.Set("file_bytes", open.file_bytes);
  out.Set("mapped_bytes", open.mapped_bytes);
  out.Set("resident_bytes", open.resident_bytes);
  return out;
}

json::Value StatsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Value requests = json::Value::Object();
  requests.Set("total", latency_.count());
  json::Value by_status = json::Value::Object();
  for (const auto& [status, count] : by_status_) {
    by_status.Set(StrFormat("%d", status), count);
  }
  requests.Set("by_status", std::move(by_status));

  json::Value out = json::Value::Object();
  out.Set("requests", std::move(requests));
  out.Set("latency_us", LatencyToJson(latency_));
  out.Set("op_metrics", OpMetricsToJson(op_metrics_));
  if (snapshot_open_.count > 0) {
    out.Set("snapshot_open", SnapshotOpenToJson(snapshot_open_));
  }
  return out;
}

}  // namespace xfrag::server
