// xfragd — the XML-fragment query daemon.
//
//   usage: xfragd [--collection] <file.xml|file.xdb>... [options]
//          xfragd --snapshot <file.snap> [options]
//
//   options:
//     --snapshot F           serve an mmap snapshot (xfrag_snapshot build);
//                            O(1) startup, POST /admin/reload swaps epochs
//     --trust-snapshot       skip the structural column scans when opening
//                            (only for snapshots from a trusted pipeline)
//     --host H               bind address      (default 127.0.0.1)
//     --port N               TCP port          (default 8378, 0 = ephemeral)
//     --workers N            query worker threads        (default 4)
//     --queue N              admission queue beyond workers (default 64)
//     --default-deadline-ms  deadline for requests without one (0 = none)
//     --max-deadline-ms      ceiling on per-request deadlines  (0 = none)
//     --request-timeout-ms   socket read/write timeout (default 10000)
//     --result-cache-mb N    result-cache budget in MiB (default 32, 0 = off)
//     --fp-cache-entries N   per-document fixed-point cache entry cap
//                            (default 4096, 0 = unlimited)
//     --fp-cache-mb N        per-document fixed-point cache budget in MiB
//                            (default 64, 0 = unlimited)
//     --batch-max-items N    per-request /query_batch item cap (default 256)
//     --batch-parallelism N  worker threads across term-disjoint groups of
//                            one batch (default 1; identity holds at any N)
//     --debug-sleep          accept the "debug_sleep_ms" request field
//                            (test/bench hook; do not enable in production)
//     --version              print build info and exit
//
//   $ xfragd --collection paper.xml &
//   xfragd: loaded 1 document (132 nodes)
//   xfragd listening on 127.0.0.1:8378
//   $ xfrag_client '{XQuery, optimization}'
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops accepting,
// every in-flight query finishes and its response is written, then the
// process exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "collection/collection.h"
#include "common/strings.h"
#include "common/version.h"
#include "server/server.h"
#include "storage/snapshot.h"
#include "storage/storage.h"

namespace {

// Signal handlers may only touch lock-free state; the main thread polls this.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleSignal(int) { g_shutdown_requested = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--collection] <file.xml|file.xdb>... [options]\n"
      "       %s --snapshot <file.snap> [options]\n"
      "  --snapshot F | --trust-snapshot\n"
      "  --host H | --port N | --workers N | --queue N\n"
      "  --default-deadline-ms MS | --max-deadline-ms MS\n"
      "  --request-timeout-ms MS | --result-cache-mb N\n"
      "  --fp-cache-entries N | --fp-cache-mb N\n"
      "  --batch-max-items N | --batch-parallelism N\n"
      "  --debug-sleep | --version\n",
      argv0, argv0);
  return 2;
}

xfrag::StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return xfrag::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Starts `server` and blocks until SIGINT/SIGTERM, then drains gracefully.
int ServeUntilSignalled(xfrag::server::Server& server,
                        const xfrag::server::ServerOptions& options) {
  auto started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "xfragd: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("xfragd listening on %s:%u\n", options.host.c_str(),
              server.port());
  std::fflush(stdout);

  while (g_shutdown_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("xfragd: draining %d in-flight request(s)...\n",
              server.InFlight());
  std::fflush(stdout);
  server.Shutdown();
  std::printf("xfragd: served %llu request(s), bye\n",
              static_cast<unsigned long long>(server.stats().TotalRequests()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string snapshot_path;
  bool trust_snapshot = false;
  xfrag::server::ServerOptions options;
  options.port = 8378;
  // Daemon defaults differ from the library's: a long-running server wants
  // the result cache on and the per-document caches bounded.
  options.service.result_cache_bytes = 32u << 20;
  options.service.fixed_point_cache.max_entries = 4096;
  options.service.fixed_point_cache.max_bytes = 64u << 20;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s\n", xfrag::BuildInfo("xfragd").c_str());
      return 0;
    } else if (arg == "--collection") {
      // Cosmetic marker; the files that follow are positional anyway.
    } else if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (arg == "--trust-snapshot") {
      trust_snapshot = true;
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      options.workers = std::atoi(argv[++i]);
      if (options.workers < 1) {
        std::fprintf(stderr, "--workers requires a count >= 1\n");
        return 2;
      }
    } else if (arg == "--queue" && i + 1 < argc) {
      options.queue_capacity = std::atoi(argv[++i]);
    } else if (arg == "--default-deadline-ms" && i + 1 < argc) {
      options.service.default_deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--max-deadline-ms" && i + 1 < argc) {
      options.service.max_deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--request-timeout-ms" && i + 1 < argc) {
      options.request_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--result-cache-mb" && i + 1 < argc) {
      options.service.result_cache_bytes =
          static_cast<size_t>(std::atol(argv[++i])) << 20;
    } else if (arg == "--fp-cache-entries" && i + 1 < argc) {
      options.service.fixed_point_cache.max_entries =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--fp-cache-mb" && i + 1 < argc) {
      options.service.fixed_point_cache.max_bytes =
          static_cast<size_t>(std::atol(argv[++i])) << 20;
    } else if (arg == "--batch-max-items" && i + 1 < argc) {
      options.service.batch_max_items =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--batch-parallelism" && i + 1 < argc) {
      options.service.batch_parallelism =
          static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--debug-sleep") {
      options.service.enable_debug_sleep = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() == snapshot_path.empty()) {
    // Exactly one of --snapshot and positional files must be given.
    return Usage(argv[0]);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!snapshot_path.empty()) {
    xfrag::storage::SnapshotOpenOptions open_options;
    open_options.validate_structure = !trust_snapshot;
    auto loaded = xfrag::storage::LoadCollectionFromSnapshot(snapshot_path,
                                                             open_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "xfragd: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("xfragd: opened snapshot %s in %.3f ms "
                "(%zu document%s, %zu nodes, %llu bytes mapped)\n",
                snapshot_path.c_str(), loaded->stats.open_ms,
                loaded->collection.size(),
                loaded->collection.size() == 1 ? "" : "s",
                loaded->collection.TotalNodes(),
                static_cast<unsigned long long>(loaded->stats.mapped_bytes));
    xfrag::server::Server server(snapshot_path, std::move(*loaded), options);
    return ServeUntilSignalled(server, options);
  }

  xfrag::collection::Collection collection;
  for (const std::string& path : files) {
    if (xfrag::EndsWith(path, ".xdb")) {
      auto bundle = xfrag::storage::LoadBundleFromFile(path);
      if (!bundle.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     bundle.status().ToString().c_str());
        return 1;
      }
      auto status = collection.Add(path, std::move(bundle->document));
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    } else {
      auto content = ReadFile(path);
      if (!content.ok()) {
        std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
        return 1;
      }
      auto status = collection.AddXml(path, *content);
      if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     status.ToString().c_str());
        return 1;
      }
    }
  }

  std::printf("xfragd: loaded %zu document%s (%zu nodes)\n", collection.size(),
              collection.size() == 1 ? "" : "s", collection.TotalNodes());
  xfrag::server::Server server(collection, options);
  return ServeUntilSignalled(server, options);
}
