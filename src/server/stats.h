// Server-wide observability: request counts by HTTP status, a log-scaled
// latency histogram with percentile estimation, and the aggregate of every
// request's OpMetrics (logical + physical algebra work, including the
// summary-prefilter counters). One registry per Server, rendered live by
// GET /metrics; a mutex keeps it simple and provably race-free (recording is
// a handful of integer adds — contention is negligible next to query work).

#ifndef XFRAG_SERVER_STATS_H_
#define XFRAG_SERVER_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "algebra/ops.h"
#include "common/json.h"
#include "server/latency_histogram.h"

namespace xfrag::server {

/// \brief Thread-safe request statistics for one server instance.
class StatsRegistry {
 public:
  /// \brief Aggregate of every snapshot open this process performed
  /// (startup + each /admin/reload). The byte fields describe the most
  /// recent open. Rendered by SnapshotOpenToJson — the one rendering shared
  /// by GET /metrics and bench_snapshot, so the numbers an operator reads
  /// and the numbers the bench records can never drift apart.
  struct SnapshotOpen {
    uint64_t count = 0;
    double last_open_ms = 0.0;
    double total_open_ms = 0.0;
    uint64_t file_bytes = 0;
    uint64_t mapped_bytes = 0;
    uint64_t resident_bytes = 0;
  };

  /// \brief Records one finished request. `metrics` may be null (health
  /// checks, rejected requests); when present it is merged into the
  /// aggregate — 504 responses contribute their partial metrics too.
  void RecordRequest(int http_status, uint64_t latency_micros,
                     const algebra::OpMetrics* metrics);

  /// \brief Records one snapshot open (startup or reload).
  void RecordSnapshotOpen(double open_ms, uint64_t file_bytes,
                          uint64_t mapped_bytes, uint64_t resident_bytes);

  SnapshotOpen snapshot_open() const;

  /// Total requests recorded.
  uint64_t TotalRequests() const;

  /// Requests recorded with the given HTTP status.
  uint64_t RequestsWithStatus(int http_status) const;

  /// \brief Renders the whole registry, e.g.
  /// {"requests": {"total": 12, "by_status": {"200": 10, "503": 2}},
  ///  "latency_us": {"count": .., "mean": .., "p50": .., "p95": ..,
  ///                 "p99": .., "max": ..},
  ///  "op_metrics": {"fragment_joins": .., ...}}
  json::Value ToJson() const;

  /// JSON rendering of one OpMetrics (also used for per-response metrics).
  static json::Value OpMetricsToJson(const algebra::OpMetrics& metrics);

  /// \brief Renders a histogram as the {"count", "mean", "p50", "p95",
  /// "p99", "max"} object used under "latency_us" — shared with the
  /// router's per-shard metrics so both tiers report identically.
  static json::Value LatencyToJson(const LatencyHistogram& histogram);

  /// \brief Renders a SnapshotOpen as {"count", "last_open_ms",
  /// "total_open_ms", "file_bytes", "mapped_bytes", "resident_bytes"}.
  static json::Value SnapshotOpenToJson(const SnapshotOpen& open);

 private:
  mutable std::mutex mutex_;
  std::map<int, uint64_t> by_status_;
  LatencyHistogram latency_;
  algebra::OpMetrics op_metrics_;
  SnapshotOpen snapshot_open_;
};

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_STATS_H_
