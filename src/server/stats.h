// Server-wide observability: request counts by HTTP status, a log-scaled
// latency histogram with percentile estimation, and the aggregate of every
// request's OpMetrics (logical + physical algebra work, including the
// summary-prefilter counters). One registry per Server, rendered live by
// GET /metrics; a mutex keeps it simple and provably race-free (recording is
// a handful of integer adds — contention is negligible next to query work).

#ifndef XFRAG_SERVER_STATS_H_
#define XFRAG_SERVER_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "algebra/ops.h"
#include "common/json.h"
#include "server/latency_histogram.h"

namespace xfrag::server {

/// \brief Thread-safe request statistics for one server instance.
class StatsRegistry {
 public:
  /// \brief Records one finished request. `metrics` may be null (health
  /// checks, rejected requests); when present it is merged into the
  /// aggregate — 504 responses contribute their partial metrics too.
  void RecordRequest(int http_status, uint64_t latency_micros,
                     const algebra::OpMetrics* metrics);

  /// Total requests recorded.
  uint64_t TotalRequests() const;

  /// Requests recorded with the given HTTP status.
  uint64_t RequestsWithStatus(int http_status) const;

  /// \brief Renders the whole registry, e.g.
  /// {"requests": {"total": 12, "by_status": {"200": 10, "503": 2}},
  ///  "latency_us": {"count": .., "mean": .., "p50": .., "p95": ..,
  ///                 "p99": .., "max": ..},
  ///  "op_metrics": {"fragment_joins": .., ...}}
  json::Value ToJson() const;

  /// JSON rendering of one OpMetrics (also used for per-response metrics).
  static json::Value OpMetricsToJson(const algebra::OpMetrics& metrics);

  /// \brief Renders a histogram as the {"count", "mean", "p50", "p95",
  /// "p99", "max"} object used under "latency_us" — shared with the
  /// router's per-shard metrics so both tiers report identically.
  static json::Value LatencyToJson(const LatencyHistogram& histogram);

 private:
  mutable std::mutex mutex_;
  std::map<int, uint64_t> by_status_;
  LatencyHistogram latency_;
  algebra::OpMetrics op_metrics_;
};

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_STATS_H_
