#include "server/http.h"

#include <algorithm>
#include <charconv>

#include "common/strings.h"

namespace xfrag::server {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& header : headers) {
    if (EqualsIgnoreCase(header.first, name)) return &header.second;
  }
  return nullptr;
}

const std::string* HttpResponse::FindHeader(std::string_view name) const {
  for (const auto& header : headers) {
    if (EqualsIgnoreCase(header.first, name)) return &header.second;
  }
  return nullptr;
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view data) {
  if (state_ != State::kNeedMore) return state_;
  buffer_.append(data);
  return TryParse();
}

HttpRequestParser::State HttpRequestParser::TryParse() {
  if (body_start_ == 0) {
    size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      // An attacker (or a confused client) must not grow headers unboundedly.
      if (buffer_.size() > 64 * 1024) {
        return Fail("request headers exceed 64 KiB", 400);
      }
      return state_;
    }
    // Parse the request line + headers in [0, header_end).
    std::string_view head(buffer_.data(), header_end);
    size_t line_end = head.find("\r\n");
    std::string_view request_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    size_t sp1 = request_line.find(' ');
    size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        request_line.find(' ', sp2 + 1) != std::string_view::npos) {
      return Fail("malformed request line");
    }
    request_.method = std::string(request_line.substr(0, sp1));
    request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    request_.version = std::string(request_line.substr(sp2 + 1));
    if (request_.method.empty() || request_.target.empty() ||
        (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0")) {
      return Fail("malformed request line");
    }
    // Header lines.
    size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string_view::npos) eol = head.size();
      std::string_view line = head.substr(pos, eol - pos);
      pos = eol + 2;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return Fail("malformed header line");
      }
      std::string_view name = line.substr(0, colon);
      std::string_view value = StripAsciiWhitespace(line.substr(colon + 1));
      request_.headers.emplace_back(std::string(name), std::string(value));
    }
    if (request_.FindHeader("Transfer-Encoding") != nullptr) {
      return Fail("chunked transfer encoding is not supported", 501);
    }
    if (const std::string* cl = request_.FindHeader("Content-Length")) {
      uint64_t length = 0;
      auto [end, ec] =
          std::from_chars(cl->data(), cl->data() + cl->size(), length);
      if (ec != std::errc() || end != cl->data() + cl->size()) {
        return Fail("invalid Content-Length");
      }
      if (length > max_body_bytes_) {
        return Fail(StrFormat("request body of %llu bytes exceeds the %zu "
                              "byte limit",
                              static_cast<unsigned long long>(length),
                              max_body_bytes_),
                    413);
      }
      content_length_ = static_cast<size_t>(length);
    }
    body_start_ = header_end + 4;
  }
  if (buffer_.size() - body_start_ < content_length_) return state_;
  request_.body = buffer_.substr(body_start_, content_length_);
  state_ = State::kComplete;
  return state_;
}

std::string HttpRequestParser::TakeRemaining() {
  if (state_ != State::kComplete) return {};
  return buffer_.substr(body_start_ + content_length_);
}

std::string_view HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 502:
      return "Bad Gateway";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

std::string RenderHttpResponse(int status, std::string_view content_type,
                               std::string_view body,
                               std::string_view extra_headers,
                               bool keep_alive) {
  std::string out = StrFormat("HTTP/1.1 %d ", status);
  out += HttpStatusReason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += StrFormat("\r\nContent-Length: %zu", body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n"
                    : "\r\nConnection: close\r\n";
  out += extra_headers;
  out += "\r\n";
  out += body;
  return out;
}

StatusOr<HttpResponse> ParseHttpResponse(std::string_view raw) {
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return Status::ParseError("no header terminator in HTTP response");
  }
  HttpResponse response;
  std::string_view head = raw.substr(0, header_end);
  size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || status_line.substr(0, 5) != "HTTP/") {
    return Status::ParseError("malformed HTTP status line");
  }
  std::string_view code = status_line.substr(sp + 1, 3);
  auto [end, ec] =
      std::from_chars(code.data(), code.data() + code.size(), response.status);
  if (ec != std::errc() || end != code.data() + code.size()) {
    return Status::ParseError("malformed HTTP status code");
  }
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    response.headers.emplace_back(
        std::string(line.substr(0, colon)),
        std::string(StripAsciiWhitespace(line.substr(colon + 1))));
  }
  response.body = std::string(raw.substr(header_end + 4));
  return response;
}

HttpResponseParser::State HttpResponseParser::Feed(std::string_view data) {
  if (state_ != State::kNeedMore) return state_;
  if (!data.empty()) saw_bytes_ = true;
  buffer_.append(data);
  return TryParse();
}

HttpResponseParser::State HttpResponseParser::TryParse() {
  if (body_start_ == 0) {
    size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (buffer_.size() > 64 * 1024) {
        return Fail("response headers exceed 64 KiB");
      }
      return state_;
    }
    std::string_view head(buffer_.data(), header_end);
    size_t line_end = head.find("\r\n");
    std::string_view status_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    size_t sp = status_line.find(' ');
    if (sp == std::string_view::npos || status_line.substr(0, 5) != "HTTP/") {
      return Fail("malformed HTTP status line");
    }
    std::string_view code = status_line.substr(sp + 1, 3);
    auto [end, ec] = std::from_chars(code.data(), code.data() + code.size(),
                                     response_.status);
    if (ec != std::errc() || end != code.data() + code.size()) {
      return Fail("malformed HTTP status code");
    }
    size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string_view::npos) eol = head.size();
      std::string_view line = head.substr(pos, eol - pos);
      pos = eol + 2;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) continue;
      response_.headers.emplace_back(
          std::string(line.substr(0, colon)),
          std::string(StripAsciiWhitespace(line.substr(colon + 1))));
    }
    if (const std::string* cl = response_.FindHeader("Content-Length")) {
      uint64_t length = 0;
      auto [cl_end, cl_ec] =
          std::from_chars(cl->data(), cl->data() + cl->size(), length);
      if (cl_ec != std::errc() || cl_end != cl->data() + cl->size()) {
        return Fail("invalid Content-Length in response");
      }
      if (length > max_body_bytes_) {
        return Fail(StrFormat("response body of %llu bytes exceeds the %zu "
                              "byte limit",
                              static_cast<unsigned long long>(length),
                              max_body_bytes_));
      }
      content_length_ = static_cast<size_t>(length);
      has_content_length_ = true;
    }
    body_start_ = header_end + 4;
  }
  if (!has_content_length_) {
    // Close-delimited: only OnEof() can complete the message. Still bound
    // the buffered body.
    if (buffer_.size() - body_start_ > max_body_bytes_) {
      return Fail("close-delimited response body exceeds the byte limit");
    }
    return state_;
  }
  if (buffer_.size() - body_start_ < content_length_) return state_;
  response_.body = buffer_.substr(body_start_, content_length_);
  const std::string* connection = response_.FindHeader("Connection");
  response_.keep_alive =
      connection == nullptr || !EqualsIgnoreCase(*connection, "close");
  state_ = State::kComplete;
  return state_;
}

HttpResponseParser::State HttpResponseParser::OnEof() {
  if (state_ != State::kNeedMore) return state_;
  if (body_start_ == 0) {
    return Fail(saw_bytes_ ? "connection closed mid-headers"
                           : "connection closed before any response");
  }
  if (has_content_length_) {
    return Fail("connection closed mid-body");
  }
  response_.body = buffer_.substr(body_start_);
  response_.keep_alive = false;
  state_ = State::kComplete;
  return state_;
}

std::string HttpResponseParser::TakeRemaining() {
  if (state_ != State::kComplete || !has_content_length_) return {};
  return buffer_.substr(body_start_ + content_length_);
}

}  // namespace xfrag::server
