// The generic HTTP socket layer shared by xfragd and xfrag_router: a
// poll-driven accept loop feeding a bounded worker pool, with admission
// control in front of it and HTTP/1.1 keep-alive inside it. What to do with
// a parsed request is delegated through HttpDispatcher, so the daemons
// differ only in their dispatch logic, never in socket handling.
//
//   accept thread ──admission──▶ ThreadPool::Post ──▶ HandleConnection
//        │  (at capacity: inline 503 + Retry-After, never queued)
//        ▲ parked keep-alive connections re-enter the poll set here
//        ▼
//   Shutdown(): stop accepting, wait for in-flight exchanges to finish,
//   then tear the pool down. In-flight responses are always written.
//
// Keep-alive model: one admitted connection may carry several sequential
// exchanges (HTTP/1.1 default, `Connection: keep-alive` for 1.0), bounded
// by an idle timeout between requests and a max-requests-per-connection
// cap. Between requests the connection does NOT hold a worker: the worker
// hands it back to the accept thread's poll set ("parking") and returns to
// the pool, so a client that keeps more connections open than the server
// has workers cannot starve other connections' pending requests. The
// poller re-dispatches a parked connection the moment it turns readable
// (a self-pipe wakes the poll immediately on park), closes it silently at
// the idle deadline, and closes all parked connections during drain. The
// connection holds its admission slot for its whole lifetime — parked or
// serving — so the single-atomic admission invariant is unchanged.

#ifndef XFRAG_SERVER_HTTP_SERVER_H_
#define XFRAG_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algebra/ops.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "server/http.h"
#include "server/net.h"
#include "server/stats.h"

namespace xfrag::server {

/// \brief Routes one complete request to a handler. Implementations must be
/// thread-safe: Dispatch runs concurrently on every worker thread.
class HttpDispatcher {
 public:
  virtual ~HttpDispatcher() = default;

  /// \brief Returns the full response bytes for `request`. `keep_alive` is
  /// the connection disposition the server has already decided — the
  /// rendered response's Connection header must match it (pass it through
  /// to RenderHttpResponse). `status_out` is recorded in the stats
  /// registry; `metrics_out`/`has_metrics_out` optionally attach operator
  /// metrics to the aggregate.
  virtual std::string Dispatch(const HttpRequest& request, bool keep_alive,
                               int* status_out,
                               algebra::OpMetrics* metrics_out,
                               bool* has_metrics_out) = 0;
};

/// Socket-layer configuration.
struct HttpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back with port().
  uint16_t port = 0;
  /// Worker threads running Dispatch (>= 1).
  int workers = 4;
  /// Connections admitted beyond the ones actively being served. Admission
  /// rejects (503) once workers + queue_capacity connections are in flight.
  int queue_capacity = 64;
  /// Per-request socket read/write timeout (also bounds the wait for the
  /// first request on a new connection; expiry answers 408).
  int request_timeout_ms = 10000;
  /// Maximum accepted request body size (413 beyond it).
  size_t max_body_bytes = 1 << 20;
  /// Honor HTTP/1.1 persistent connections. Off = one exchange per
  /// connection, as before keep-alive support existed.
  bool keep_alive = true;
  /// How long a kept-alive connection may sit idle between requests before
  /// the server closes it silently.
  int keep_alive_idle_timeout_ms = 5000;
  /// Exchanges served per connection before the server answers the last one
  /// with `Connection: close` (0 = unlimited).
  int max_requests_per_connection = 1000;
  /// How long the worker that just wrote a response lingers on the
  /// connection waiting for its next request before parking it with the
  /// poller. Busy closed-loop clients send the next request within
  /// microseconds; lingering turns that into a same-worker continuation
  /// with zero poller handoffs, where parking would pay a self-pipe wakeup,
  /// a poll dispatch, and a fresh ThreadPool::Post per exchange — under
  /// enough concurrent keep-alive connections that reactor churn costs more
  /// than one-exchange-per-connection close mode. 0 restores park-immediately.
  int keep_alive_linger_ms = 1;
  /// Consecutive lingered continuations before the worker force-parks the
  /// connection anyway, so one hot client cannot pin a worker forever while
  /// parked connections with requests pending wait (0 = no cap).
  int keep_alive_linger_burst = 32;
};

/// \brief A dispatcher-agnostic HTTP/1.1 server.
///
/// Lifecycle: construct → Start() → (serve) → Shutdown(). The destructor
/// calls Shutdown() if needed. The dispatcher must outlive the server.
class HttpServer {
 public:
  HttpServer(HttpDispatcher& dispatcher, HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// \brief Binds, listens, and starts the accept loop + worker pool.
  Status Start();

  /// The bound port (valid after Start; resolves an ephemeral bind).
  uint16_t port() const { return port_; }

  /// \brief Graceful drain: stop accepting, wait for every in-flight
  /// exchange to finish (responses are written), release the threads.
  /// Idempotent; safe to call from a signal-watching thread.
  void Shutdown();

  const StatsRegistry& stats() const { return stats_; }
  /// Mutable registry access for dispatcher-level events that are not
  /// requests (e.g. xfragd recording snapshot opens). Thread-safe.
  StatsRegistry& mutable_stats() { return stats_; }

  /// Connections currently admitted (serving, between keep-alive requests,
  /// or queued) — exposed for the overload tests and the /metrics gauge.
  int InFlight() const { return in_flight_.load(std::memory_order_relaxed); }

 private:
  /// A keep-alive connection waiting for its next request, owned by the
  /// poller rather than a worker thread.
  struct ParkedConnection {
    UniqueFd conn;
    int served = 0;
    std::chrono::steady_clock::time_point idle_deadline;
  };

  void AcceptLoop();
  /// Serves sequential exchanges on `conn` until it closes or goes quiet
  /// between requests, in which case ownership moves to the poller via
  /// ParkConnection. `served` is the exchanges already served on this
  /// connection (non-zero when resuming a parked one).
  void HandleConnection(UniqueFd conn, int served);
  /// Hands a between-requests connection to the poller and wakes it. If the
  /// server is draining, closes the connection and releases its slot
  /// instead. Either way ownership is taken.
  void ParkConnection(UniqueFd conn, int served);
  void LingeringClose(UniqueFd* conn);
  void FinishExchange();

  HttpDispatcher& dispatcher_;
  HttpServerOptions options_;
  StatsRegistry stats_;

  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  /// Self-pipe: ParkConnection writes a byte so the poll in AcceptLoop sees
  /// freshly parked connections immediately instead of at the next tick.
  UniqueFd wake_read_;
  UniqueFd wake_write_;
  std::mutex park_mutex_;
  std::vector<ParkedConnection> park_inbox_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<int> in_flight_{0};
  std::mutex shutdown_mutex_;
  std::mutex drain_mutex_;
  std::condition_variable drained_;
};

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_HTTP_SERVER_H_
