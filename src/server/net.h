// Thin POSIX TCP helpers for the serving subsystem: RAII file descriptors,
// loopback listeners with ephemeral-port support, client connects, and
// timeout-bounded whole-connection round trips (used by xfrag_client, the
// integration tests, and bench_serving). IPv4 only — xfragd is a
// loopback/LAN daemon, not an internet-facing frontend.

#ifndef XFRAG_SERVER_NET_H_
#define XFRAG_SERVER_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace xfrag::server {

/// \brief Owning wrapper around a file descriptor (closes on destruction).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor now (idempotent).
  void Reset();

 private:
  int fd_ = -1;
};

/// \brief Creates a listening TCP socket bound to `host:port` (port 0 picks
/// an ephemeral port; read it back with LocalPort). SO_REUSEADDR is set.
StatusOr<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                             int backlog = 128);

/// \brief The locally bound port of a socket (resolves ephemeral binds).
StatusOr<uint16_t> LocalPort(int fd);

/// \brief Blocking connect to `host:port`.
StatusOr<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

/// \brief Connect bounded by `timeout_ms` (non-blocking connect + poll).
/// A timeout reports DeadlineExceeded; a refused/unreachable peer NotFound.
StatusOr<UniqueFd> ConnectTcpTimeout(const std::string& host, uint16_t port,
                                     int timeout_ms);

/// \brief Sets SO_RCVTIMEO / SO_SNDTIMEO (bounds every recv/send).
Status SetSocketTimeouts(int fd, int timeout_ms);

/// \brief Writes all of `data` (retrying short writes). SIGPIPE-safe.
Status WriteAll(int fd, std::string_view data);

/// \brief One recv into `buf`; returns the byte count, 0 on orderly peer
/// close, or an error (including timeouts, reported as DeadlineExceeded).
StatusOr<size_t> ReadSome(int fd, char* buf, size_t len);

/// \brief Client-side convenience: connect, send `request` (an HTTP/1.1
/// message with Connection: close), read until the server closes, and return
/// the raw response bytes. `timeout_ms` bounds each socket operation.
StatusOr<std::string> HttpRoundTrip(const std::string& host, uint16_t port,
                                    std::string_view request,
                                    int timeout_ms = 30000);

}  // namespace xfrag::server

#endif  // XFRAG_SERVER_NET_H_
