// xfrag_client — command-line client for xfragd.
//
//   usage: xfrag_client '{XQuery, optimization}' [options]
//          xfrag_client --json '{"terms":["xquery"]}' [options]
//          xfrag_client --get /healthz [options]
//          xfrag_client --batch-file queries.txt [options]
//
//   The brace form mirrors the paper's Q_P{k1, ..., km} notation: terms in
//   braces, the predicate via --filter. --json sends a raw request body
//   instead; --get fetches a GET endpoint (/healthz, /metrics, /version).
//
//   --batch-file FILE sends every query in FILE as ONE POST /query_batch
//   request (shared-scan evaluation server-side). If the file starts with
//   '[' it is a JSON array of query objects; otherwise each non-blank,
//   non-# line is one query — either a JSON object or the brace form
//   ('{XQuery, optimization}'). Results print per item in input order,
//   prefixed "item N: HTTP S". The exit status is the worst item's.
//
//   options:
//     --host H          server address         (default 127.0.0.1)
//     --port N          server port            (default 8378)
//     --router LIST     comma-separated xfrag_router endpoints tried in
//                       order until one answers, e.g.
//                       --router 127.0.0.1:8377,127.0.0.1:8380
//                       (a bare host defaults to port 8377)
//     --require-complete  ask the router for all-shards-or-504 semantics
//     --filter EXPR     e.g. --filter 'size<=3 & height<=2'
//     --strategy S      auto|brute|naive|reduced|pushdown
//     --leaf-strict     Definition-8 leaf condition
//     --deadline-ms MS  per-request deadline
//     --explain         request the executed plan
//     --xml             request XML renderings of the answers
//     --max N           cap the answer array
//     --top N           only the N best-ranked answers (score-bounded eval)
//     --rank            rank all answers by score
//     --compact         print the raw compact JSON (default pretty-prints)
//     --version         print build info and exit
//
//   Ranked responses (--top/--rank) print a human-readable scoreboard —
//   "1. 3.141  paper.xml #17 <section> size=4" per answer — followed by the
//   pretty JSON; --compact suppresses the scoreboard.
//
//   Degraded router responses (a 200 whose body carries "partial") print a
//   stderr warning naming the missing shards, so scripts piping stdout still
//   get clean JSON but an operator sees the gap.
//
//   Exit status: 0 on HTTP 200, 1 on transport errors, otherwise the HTTP
//   status class (4 for 4xx, 5 for 5xx) — scriptable overload/deadline
//   detection without parsing the body.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "common/version.h"
#include "server/http.h"
#include "server/net.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s '{term1, term2, ...}' [options]\n"
               "       %s --json '{\"terms\":[...]}' [options]\n"
               "       %s --get /healthz|/metrics|/version [options]\n"
               "       %s --batch-file FILE [options]\n"
               "  --host H | --port N | --router H:P[,H:P...] | --filter EXPR\n"
               "  --strategy S | --leaf-strict | --deadline-ms MS | --explain\n"
               "  --xml | --max N | --top N | --rank | --require-complete\n"
               "  --compact | --version\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

// One try-in-order target ("--router a:1,b:2" or plain --host/--port).
struct Target {
  std::string host;
  uint16_t port = 0;
};

// "h1:p1,h2:p2,h3" -> targets (a bare host gets the router default port).
bool ParseRouterList(std::string_view list, std::vector<Target>* targets) {
  while (!list.empty()) {
    size_t comma = list.find(',');
    std::string_view entry = xfrag::StripAsciiWhitespace(list.substr(0, comma));
    if (!entry.empty()) {
      Target target;
      target.port = 8377;  // xfrag_router's default port
      size_t colon = entry.rfind(':');
      if (colon != std::string_view::npos) {
        long port = std::atol(std::string(entry.substr(colon + 1)).c_str());
        if (port < 1 || port > 65535) return false;
        target.port = static_cast<uint16_t>(port);
        entry = entry.substr(0, colon);
      }
      if (entry.empty()) return false;
      target.host = std::string(entry);
      targets->push_back(std::move(target));
    }
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return !targets->empty();
}

// The degraded-mode warning: a 200 with "partial" means some shards are
// missing from the merge; say which, on stderr, so stdout stays clean JSON.
void WarnIfPartial(const xfrag::json::Value& body) {
  const xfrag::json::Value* partial = body.Find("partial");
  if (partial == nullptr || !partial->is_object()) return;
  const xfrag::json::Value* missing = partial->Find("missing_shards");
  std::string list;
  if (missing != nullptr && missing->is_array()) {
    for (const xfrag::json::Value& index : missing->items()) {
      if (!list.empty()) list += ", ";
      list += xfrag::StrFormat("%lld",
                               static_cast<long long>(index.AsInt()));
    }
  }
  std::fprintf(stderr,
               "xfrag_client: PARTIAL result — missing shard(s): [%s]\n",
               list.c_str());
}

// "{XQuery, optimization}" -> ["xquery", "optimization"] (the server folds
// case; we only split and trim here).
bool ParseBraceQuery(std::string_view input, std::vector<std::string>* terms) {
  input = xfrag::StripAsciiWhitespace(input);
  if (input.size() < 2 || input.front() != '{' || input.back() != '}') {
    return false;
  }
  input.remove_prefix(1);
  input.remove_suffix(1);
  while (!input.empty()) {
    size_t comma = input.find(',');
    std::string_view term = input.substr(0, comma);
    term = xfrag::StripAsciiWhitespace(term);
    if (term.empty()) return false;
    terms->emplace_back(term);
    if (comma == std::string_view::npos) break;
    input.remove_prefix(comma + 1);
  }
  return !terms->empty();
}

// The human-readable scoreboard for ranked responses: one line per answer,
// best first, before the JSON body.
void PrintScoreboard(const xfrag::json::Value& body) {
  const xfrag::json::Value* ranked = body.Find("ranked");
  if (ranked == nullptr || !ranked->is_bool() || !ranked->AsBool()) return;
  const xfrag::json::Value* answers = body.Find("answers");
  if (answers == nullptr || !answers->is_array()) return;
  int position = 0;
  for (const xfrag::json::Value& answer : answers->items()) {
    const xfrag::json::Value* score = answer.Find("score");
    const xfrag::json::Value* document = answer.Find("document");
    const xfrag::json::Value* root = answer.Find("root");
    const xfrag::json::Value* tag = answer.Find("root_tag");
    const xfrag::json::Value* size = answer.Find("size");
    if (score == nullptr || !score->is_number()) continue;
    std::printf(
        "%3d. %-10.4f %s #%lld <%s> size=%lld\n", ++position,
        score->AsDouble(),
        document != nullptr ? document->AsString().c_str() : "?",
        root != nullptr ? static_cast<long long>(root->AsInt()) : -1,
        tag != nullptr ? tag->AsString().c_str() : "?",
        size != nullptr ? static_cast<long long>(size->AsInt()) : -1);
  }
  if (position > 0) std::printf("\n");
}

// Reads FILE into the batch request body: a leading '[' means the file is
// already a JSON array of query objects; otherwise every non-blank,
// non-'#' line is one query — a JSON object, or the paper's brace form
// (which becomes {"terms": [...]}). Returns false (with a message) on
// unreadable files or unparseable lines.
bool BuildBatchBody(const std::string& path, bool require_complete,
                    std::string* body) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "xfrag_client: cannot read --batch-file %s\n",
                 path.c_str());
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  xfrag::json::Value queries;
  std::string_view trimmed = xfrag::StripAsciiWhitespace(text);
  if (!trimmed.empty() && trimmed.front() == '[') {
    auto parsed = xfrag::json::Parse(text);
    if (!parsed.ok() || !parsed->is_array()) {
      std::fprintf(stderr,
                   "xfrag_client: %s does not hold a JSON array (%s)\n",
                   path.c_str(),
                   parsed.ok() ? "not an array"
                               : parsed.status().ToString().c_str());
      return false;
    }
    queries = std::move(*parsed);
  } else {
    queries = xfrag::json::Value::Array();
    size_t line_number = 0;
    std::string_view rest = text;
    while (!rest.empty()) {
      size_t newline = rest.find('\n');
      std::string_view line =
          xfrag::StripAsciiWhitespace(rest.substr(0, newline));
      rest = newline == std::string_view::npos ? std::string_view()
                                               : rest.substr(newline + 1);
      ++line_number;
      if (line.empty() || line.front() == '#') continue;
      auto parsed = xfrag::json::Parse(std::string(line));
      if (parsed.ok() && parsed->is_object()) {
        queries.Append(std::move(*parsed));
        continue;
      }
      std::vector<std::string> terms;
      if (ParseBraceQuery(line, &terms)) {
        xfrag::json::Value query = xfrag::json::Value::Object();
        xfrag::json::Value term_array = xfrag::json::Value::Array();
        for (const std::string& term : terms) term_array.Append(term);
        query.Set("terms", std::move(term_array));
        queries.Append(std::move(query));
        continue;
      }
      std::fprintf(stderr,
                   "xfrag_client: %s:%zu is neither a JSON object nor a "
                   "brace query\n",
                   path.c_str(), line_number);
      return false;
    }
  }
  if (queries.size() == 0) {
    std::fprintf(stderr, "xfrag_client: %s holds no queries\n", path.c_str());
    return false;
  }
  if (require_complete) {
    xfrag::json::Value envelope = xfrag::json::Value::Object();
    envelope.Set("queries", std::move(queries));
    envelope.Set("require_complete", true);
    *body = envelope.Dump();
  } else {
    *body = queries.Dump();
  }
  return true;
}

// Per-item rendering of a /query_batch response. Returns the worst item's
// exit code under the same scheme as single-query mode (0 / 4 / 5).
int PrintBatchResults(const xfrag::json::Value& envelope, bool compact) {
  const xfrag::json::Value* results = envelope.Find("results");
  if (results == nullptr || !results->is_array()) {
    std::fprintf(stderr,
                 "xfrag_client: batch response carries no results array\n");
    return 1;
  }
  int exit_code = 0;
  size_t index = 0;
  for (const xfrag::json::Value& entry : results->items()) {
    const xfrag::json::Value* status = entry.Find("status");
    const xfrag::json::Value* body = entry.Find("body");
    const long long code =
        status != nullptr && status->is_integral() ? status->AsInt() : 0;
    std::printf("item %zu: HTTP %lld\n", index++, code);
    if (body != nullptr) {
      if (compact) {
        std::printf("%s\n", body->Dump().c_str());
      } else {
        if (code == 200) PrintScoreboard(*body);
        std::printf("%s\n", body->Dump(2).c_str());
      }
      if (code == 200) WarnIfPartial(*body);
    }
    if (code >= 500) {
      exit_code = 5;
    } else if (code >= 400 && exit_code != 5) {
      exit_code = 4;
    } else if (code != 200 && exit_code == 0) {
      exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 8378;
  std::vector<Target> routers;
  std::string brace_query, raw_json, get_path, filter_expr, strategy;
  std::string batch_file;
  double deadline_ms = 0;
  long max_answers = -1, top_k = -1;
  bool leaf_strict = false, explain = false, xml = false, compact = false;
  bool rank = false, require_complete = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s (router protocol revision %d)\n",
                  xfrag::BuildInfo("xfrag_client").c_str(),
                  xfrag::kRouterProtocolRevision);
      return 0;
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--router" && i + 1 < argc) {
      if (!ParseRouterList(argv[++i], &routers)) {
        std::fprintf(stderr, "cannot parse --router list \"%s\"\n", argv[i]);
        return 2;
      }
    } else if (arg == "--require-complete") {
      require_complete = true;
    } else if (arg == "--json" && i + 1 < argc) {
      raw_json = argv[++i];
    } else if (arg == "--get" && i + 1 < argc) {
      get_path = argv[++i];
    } else if (arg == "--batch-file" && i + 1 < argc) {
      batch_file = argv[++i];
    } else if (arg == "--filter" && i + 1 < argc) {
      filter_expr = argv[++i];
    } else if (arg == "--strategy" && i + 1 < argc) {
      strategy = argv[++i];
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--max" && i + 1 < argc) {
      max_answers = std::atol(argv[++i]);
    } else if (arg == "--top" && i + 1 < argc) {
      top_k = std::atol(argv[++i]);
    } else if (arg == "--rank") {
      rank = true;
    } else if (arg == "--leaf-strict") {
      leaf_strict = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--xml") {
      xml = true;
    } else if (arg == "--compact") {
      compact = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else if (brace_query.empty()) {
      brace_query = arg;
    } else {
      return Usage(argv[0]);
    }
  }

  std::string body;
  if (!batch_file.empty()) {
    if (!brace_query.empty() || !raw_json.empty() || !get_path.empty()) {
      return Usage(argv[0]);
    }
    if (!BuildBatchBody(batch_file, require_complete, &body)) return 2;
  } else if (get_path.empty()) {
    if (!raw_json.empty()) {
      body = raw_json;
      if (require_complete) {
        auto parsed = xfrag::json::Parse(body);
        if (parsed.ok() && parsed->is_object()) {
          parsed->Set("require_complete", true);
          body = parsed->Dump();
        }
      }
    } else if (!brace_query.empty()) {
      std::vector<std::string> terms;
      if (!ParseBraceQuery(brace_query, &terms)) {
        std::fprintf(stderr, "cannot parse query %s (expected e.g. "
                             "'{XQuery, optimization}')\n",
                     brace_query.c_str());
        return 2;
      }
      xfrag::json::Value req = xfrag::json::Value::Object();
      xfrag::json::Value term_array = xfrag::json::Value::Array();
      for (const std::string& term : terms) term_array.Append(term);
      req.Set("terms", std::move(term_array));
      if (!filter_expr.empty()) req.Set("filter", filter_expr);
      if (!strategy.empty()) req.Set("strategy", strategy);
      if (leaf_strict) req.Set("answer_mode", "leaf_strict");
      if (deadline_ms > 0) req.Set("deadline_ms", deadline_ms);
      if (explain) req.Set("explain", true);
      if (xml) req.Set("xml", true);
      if (max_answers >= 0) {
        req.Set("max_answers", static_cast<int64_t>(max_answers));
      }
      if (top_k >= 0) req.Set("top_k", static_cast<int64_t>(top_k));
      if (rank) req.Set("rank", true);
      if (require_complete) req.Set("require_complete", true);
      body = req.Dump();
    } else {
      return Usage(argv[0]);
    }
  }

  // --router gives an ordered failover list; otherwise the single
  // --host/--port target. Transport errors advance to the next endpoint;
  // an HTTP response of any status ends the search.
  std::vector<Target> targets = routers;
  if (targets.empty()) targets.push_back(Target{host, port});

  xfrag::StatusOr<std::string> raw =
      xfrag::Status::Internal("no targets tried");
  const Target* answered = nullptr;
  for (const Target& target : targets) {
    std::string request;
    if (!get_path.empty()) {
      request = xfrag::StrFormat("GET %s HTTP/1.1\r\nHost: %s\r\n"
                                 "Connection: close\r\n\r\n",
                                 get_path.c_str(), target.host.c_str());
    } else {
      request = xfrag::StrFormat(
          "POST %s HTTP/1.1\r\nHost: %s\r\n"
          "Content-Type: application/json\r\nContent-Length: %zu\r\n"
          "Connection: close\r\n\r\n",
          batch_file.empty() ? "/query" : "/query_batch",
          target.host.c_str(), body.size());
      request += body;
    }
    raw = xfrag::server::HttpRoundTrip(target.host, target.port, request);
    if (raw.ok()) {
      answered = &target;
      break;
    }
    if (targets.size() > 1) {
      std::fprintf(stderr, "xfrag_client: %s:%u unreachable (%s), trying "
                           "next endpoint\n",
                   target.host.c_str(), target.port,
                   raw.status().ToString().c_str());
    }
  }
  if (!raw.ok() || answered == nullptr) {
    std::fprintf(stderr, "xfrag_client: %s (is %s running on %s:%u?)\n",
                 raw.status().ToString().c_str(),
                 routers.empty() ? "xfragd" : "xfrag_router",
                 targets.back().host.c_str(), targets.back().port);
    return 1;
  }
  auto response = xfrag::server::ParseHttpResponse(*raw);
  if (!response.ok()) {
    std::fprintf(stderr, "xfrag_client: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  if (!batch_file.empty() && response->status == 200) {
    auto parsed = xfrag::json::Parse(response->body);
    if (!parsed.ok()) {
      std::fprintf(stderr, "xfrag_client: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    return PrintBatchResults(*parsed, compact);
  }
  if (compact) {
    std::printf("%s\n", response->body.c_str());
    if (response->status == 200) {
      auto parsed = xfrag::json::Parse(response->body);
      if (parsed.ok()) WarnIfPartial(*parsed);
    }
  } else {
    auto parsed = xfrag::json::Parse(response->body);
    if (parsed.ok()) {
      if (response->status == 200) {
        PrintScoreboard(*parsed);
        WarnIfPartial(*parsed);
      }
      std::printf("%s\n", parsed->Dump(2).c_str());
    } else {
      std::printf("%s\n", response->body.c_str());
    }
  }
  if (response->status == 200) return 0;
  if (response->status >= 500) {
    std::fprintf(stderr, "xfrag_client: server answered %d %s\n",
                 response->status,
                 std::string(
                     xfrag::server::HttpStatusReason(response->status))
                     .c_str());
    return 5;
  }
  std::fprintf(stderr, "xfrag_client: server answered %d %s\n",
               response->status,
               std::string(
                   xfrag::server::HttpStatusReason(response->status))
                   .c_str());
  return 4;
}
