#include "server/service.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "common/cancel.h"
#include "common/strings.h"
#include "common/timer.h"
#include "common/version.h"
#include "query/answers.h"
#include "server/stats.h"

namespace xfrag::server {

using algebra::Fragment;
using algebra::OpMetrics;
using query::Strategy;

int HttpStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      // A query that trips the powerset enumeration limits is the client's
      // to fix (choose another strategy), not a server overload.
      return 400;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

StatusOr<Strategy> ParseStrategyName(std::string_view name) {
  if (name == "auto") return Strategy::kAuto;
  if (name == "brute") return Strategy::kBruteForce;
  if (name == "naive") return Strategy::kFixedPointNaive;
  if (name == "reduced") return Strategy::kFixedPointReduced;
  if (name == "pushdown") return Strategy::kPushDown;
  return Status::InvalidArgument(
      StrFormat("unknown strategy '%.*s' (expected auto|brute|naive|reduced|"
                "pushdown)",
                static_cast<int>(name.size()), name.data()));
}

namespace {

// A structured error body: {"error": ..., "code": ...} plus extra fields
// callers attach (offset, metrics).
json::Value ErrorBody(const Status& status) {
  json::Value body = json::Value::Object();
  body.Set("error", status.message());
  body.Set("code", std::string(StatusCodeName(status.code())));
  return body;
}

QueryOutcome ErrorOutcome(const Status& status) {
  QueryOutcome outcome;
  outcome.http_status = HttpStatusForError(status);
  outcome.body = ErrorBody(status);
  return outcome;
}

// The decoded request, after validation.
struct ParsedRequest {
  query::Query query;
  query::EvalOptions eval;
  double deadline_ms = 0.0;
  double debug_sleep_ms = 0.0;
  bool explain = false;
  bool include_xml = false;
  int64_t max_answers = -1;  // < 0 = unlimited
  int64_t top_k = -1;        // < 0 = no top-k cutoff
  bool rank = false;         // ranked evaluation ("top_k" implies it)
  bool rank_explicit = false;
};

Status DecodeRequest(const json::Value& root, bool allow_debug_sleep,
                     ParsedRequest* out) {
  if (!root.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  for (const auto& [key, value] : root.members()) {
    if (key == "terms") {
      if (!value.is_array() || value.size() == 0) {
        return Status::InvalidArgument(
            "\"terms\" must be a non-empty array of strings");
      }
      for (const json::Value& term : value.items()) {
        if (!term.is_string() || term.AsString().empty()) {
          return Status::InvalidArgument(
              "\"terms\" must be a non-empty array of strings");
        }
        out->query.terms.push_back(term.AsString());
      }
    } else if (key == "filter") {
      if (!value.is_string()) {
        return Status::InvalidArgument("\"filter\" must be a string");
      }
      auto filter = query::ParseFilterExpression(value.AsString());
      if (!filter.ok()) {
        return Status::InvalidArgument("filter: " + filter.status().message());
      }
      out->query.filter = *filter;
    } else if (key == "strategy") {
      if (!value.is_string()) {
        return Status::InvalidArgument("\"strategy\" must be a string");
      }
      XFRAG_ASSIGN_OR_RETURN(out->eval.strategy,
                             ParseStrategyName(value.AsString()));
    } else if (key == "answer_mode") {
      if (value.is_string() && value.AsString() == "algebraic") {
        out->eval.answer_mode = query::AnswerMode::kAlgebraic;
      } else if (value.is_string() && value.AsString() == "leaf_strict") {
        out->eval.answer_mode = query::AnswerMode::kLeafStrict;
      } else {
        return Status::InvalidArgument(
            "\"answer_mode\" must be \"algebraic\" or \"leaf_strict\"");
      }
    } else if (key == "deadline_ms") {
      if (!value.is_number() || value.AsDouble() <= 0) {
        return Status::InvalidArgument(
            "\"deadline_ms\" must be a positive number");
      }
      out->deadline_ms = value.AsDouble();
    } else if (key == "explain") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("\"explain\" must be a boolean");
      }
      out->explain = value.AsBool();
    } else if (key == "analyze") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("\"analyze\" must be a boolean");
      }
      out->eval.analyze = value.AsBool();
      if (value.AsBool()) out->explain = true;
    } else if (key == "xml") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("\"xml\" must be a boolean");
      }
      out->include_xml = value.AsBool();
    } else if (key == "max_answers") {
      if (!value.is_integral() || value.AsInt() < 0) {
        return Status::InvalidArgument(
            "\"max_answers\" must be a non-negative integer");
      }
      out->max_answers = value.AsInt();
    } else if (key == "top_k") {
      if (!value.is_integral() || value.AsInt() < 0) {
        return Status::InvalidArgument(
            "\"top_k\" must be a non-negative integer");
      }
      out->top_k = value.AsInt();
    } else if (key == "rank") {
      if (!value.is_bool()) {
        return Status::InvalidArgument("\"rank\" must be a boolean");
      }
      out->rank = value.AsBool();
      out->rank_explicit = true;
    } else if (key == "debug_sleep_ms" && allow_debug_sleep) {
      if (!value.is_number() || value.AsDouble() < 0) {
        return Status::InvalidArgument(
            "\"debug_sleep_ms\" must be a non-negative number");
      }
      out->debug_sleep_ms = value.AsDouble();
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown request field \"%s\"", key.c_str()));
    }
  }
  if (out->query.terms.empty()) {
    return Status::InvalidArgument("missing required field \"terms\"");
  }
  if (out->top_k >= 0) {
    if (out->rank_explicit && !out->rank) {
      return Status::InvalidArgument(
          "\"rank\": false conflicts with \"top_k\" (top-k answers are "
          "ranked by definition)");
    }
    out->rank = true;
  }
  return Status::OK();
}

// The normalized-request cache key: terms case-folded (the index folds them
// anyway) and sorted (conjunctive semantics are order-free), then every
// field that can change the response body. '\x1f'/'\x1e' separators keep
// the key unambiguous. Deadline and debug-sleep are deliberately absent —
// they change timing, never a successful body, and debug-sleep requests
// bypass the cache entirely.
std::string ResultCacheKey(const ParsedRequest& request) {
  std::vector<std::string> terms;
  terms.reserve(request.query.terms.size());
  for (const std::string& term : request.query.terms) {
    terms.push_back(AsciiToLower(term));
  }
  std::sort(terms.begin(), terms.end());
  std::string key;
  for (const std::string& term : terms) {
    key += term;
    key += '\x1e';
  }
  key += '\x1f';
  key += request.query.filter != nullptr ? request.query.filter->ToString()
                                         : "";
  key += '\x1f';
  key += query::StrategyName(request.eval.strategy);
  key += '\x1f';
  key += request.eval.answer_mode == query::AnswerMode::kLeafStrict ? "L" : "A";
  key += '\x1f';
  key += StrFormat("%lld", static_cast<long long>(request.top_k));
  key += request.rank ? "\x1fR" : "\x1fU";
  key += '\x1f';
  key += StrFormat("%lld", static_cast<long long>(request.max_answers));
  key += request.include_xml ? "\x1f" "x" : "\x1f";
  key += request.explain ? "\x1f" "e" : "\x1f";
  key += request.eval.analyze ? "\x1f" "a" : "\x1f";
  return key;
}

// One globally ranked answer, carrying its source document.
struct RankedHit {
  double score = 0.0;
  size_t document_index = 0;
  Fragment fragment;
};

// Cross-document rank order: score descending, then document index, then
// canonical fragment order — fully deterministic.
bool OutranksHit(const RankedHit& a, const RankedHit& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.document_index != b.document_index) {
    return a.document_index < b.document_index;
  }
  return a.fragment < b.fragment;
}

}  // namespace

QueryService::QueryService(const collection::Collection& collection,
                           ServiceOptions options)
    : collection_(collection), options_(options) {
  caches_.reserve(collection_.size());
  for (size_t i = 0; i < collection_.size(); ++i) {
    caches_.push_back(std::make_unique<query::FixedPointCache>(
        options_.fixed_point_cache));
  }
  ResultCacheOptions cache_options;
  cache_options.max_bytes = options_.result_cache_bytes;
  cache_options.shards = options_.result_cache_shards;
  result_cache_ = std::make_unique<ResultCache>(cache_options);
}

json::Value QueryService::AnswerToJson(std::string_view document_name,
                                       size_t document_index,
                                       const Fragment& fragment,
                                       const doc::Document& document,
                                       bool include_xml) {
  json::Value answer = json::Value::Object();
  answer.Set("document", document_name);
  answer.Set("document_index", static_cast<uint64_t>(document_index));
  answer.Set("root", static_cast<uint64_t>(fragment.root()));
  answer.Set("root_tag", document.tag(fragment.root()));
  answer.Set("size", static_cast<uint64_t>(fragment.size()));
  json::Value nodes = json::Value::Array();
  for (doc::NodeId n : fragment.nodes()) {
    nodes.Append(static_cast<uint64_t>(n));
  }
  answer.Set("nodes", std::move(nodes));
  if (include_xml) {
    answer.Set("xml", query::FragmentToXml(fragment, document,
                                           /*mark_elisions=*/true));
  }
  return answer;
}

QueryOutcome QueryService::HandleQuery(std::string_view body_text) const {
  Timer timer;
  size_t error_offset = 0;
  auto root = json::Parse(body_text, &error_offset);
  if (!root.ok()) {
    QueryOutcome outcome = ErrorOutcome(root.status());
    outcome.body.Set("offset", static_cast<uint64_t>(error_offset));
    return outcome;
  }

  ParsedRequest request;
  Status decoded =
      DecodeRequest(*root, options_.enable_debug_sleep, &request);
  if (!decoded.ok()) return ErrorOutcome(decoded);

  // Serve from the result cache when possible: a hit costs one key build and
  // one map lookup, and the engine never runs — the outcome carries zero
  // metrics, which is how the loopback tests prove the hit was served
  // without evaluation. Only request-specific echo fields are re-stamped.
  std::string cache_key;
  if (result_cache_->enabled() && request.debug_sleep_ms <= 0) {
    cache_key = ResultCacheKey(request);
    if (auto cached = result_cache_->Find(cache_key)) {
      QueryOutcome outcome;
      outcome.http_status = 200;
      outcome.body = *cached;
      outcome.body.Set("query", request.query.ToString());
      outcome.body.Set("result_cache", "hit");
      outcome.body.Set("elapsed_ms", timer.ElapsedMillis());
      return outcome;
    }
  }

  // Resolve the deadline policy: request value, else the server default,
  // both clamped to the configured ceiling.
  double deadline_ms = request.deadline_ms > 0 ? request.deadline_ms
                                               : options_.default_deadline_ms;
  if (options_.max_deadline_ms > 0 &&
      (deadline_ms <= 0 || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }
  CancelToken cancel;
  if (deadline_ms > 0) {
    cancel.SetDeadlineAfter(std::chrono::nanoseconds(
        static_cast<int64_t>(deadline_ms * 1e6)));
    request.eval.executor.cancel = &cancel;
  }

  if (request.debug_sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        static_cast<int64_t>(request.debug_sleep_ms * 1e6)));
  }

  QueryOutcome outcome;
  json::Value answers = json::Value::Array();
  json::Value explains = json::Value::Array();
  size_t answer_count = 0;
  size_t documents_evaluated = 0;
  size_t documents_skipped = 0;
  bool truncated = false;

  // Ranked evaluation asks each document for its k best answers (the global
  // top k is a subset of the per-document top k's), then merges. "rank"
  // without "top_k" ranks everything: an effectively-unbounded k keeps the
  // engine on the ranked path without ever pruning.
  const bool ranked_mode = request.rank;
  const int64_t effective_k = request.top_k >= 0
                                  ? request.top_k
                                  : std::numeric_limits<int64_t>::max();
  std::vector<RankedHit> hits;

  for (size_t i = 0; i < collection_.size(); ++i) {
    const collection::CollectionEntry& entry = collection_.entry(i);
    // Conjunctive pre-check, as in CollectionEngine: a document missing any
    // term cannot contribute answers, so skip it without building a plan.
    bool has_all_terms = true;
    for (const std::string& term : request.query.terms) {
      if (entry.index.Lookup(term).empty()) {
        has_all_terms = false;
        break;
      }
    }
    if (!has_all_terms) {
      ++documents_skipped;
      continue;
    }

    query::EvalOptions eval = request.eval;
    eval.executor.fixed_point_cache = caches_[i].get();
    if (ranked_mode) eval.top_k = effective_k;
    OpMetrics partial;
    eval.metrics_sink = &partial;
    query::QueryEngine engine(entry.document, entry.index);
    auto result = engine.Evaluate(request.query, eval);
    outcome.metrics.Merge(partial);
    if (!result.ok()) {
      QueryOutcome error = ErrorOutcome(result.status());
      error.metrics = outcome.metrics;
      error.body.Set("documents_evaluated",
                     static_cast<uint64_t>(documents_evaluated));
      error.body.Set("metrics", StatsRegistry::OpMetricsToJson(error.metrics));
      if (error.http_status == 504) {
        error.body.Set("partial", true);
      }
      return error;
    }
    ++documents_evaluated;
    if (ranked_mode) {
      for (query::RankedAnswer& answer : result->ranked) {
        hits.push_back(RankedHit{answer.score, i, std::move(answer.fragment)});
      }
    } else {
      for (const Fragment& fragment : result->answers.Sorted()) {
        ++answer_count;
        if (request.max_answers >= 0 &&
            answers.size() >= static_cast<size_t>(request.max_answers)) {
          truncated = true;
          continue;
        }
        answers.Append(AnswerToJson(entry.name, i, fragment, entry.document,
                                    request.include_xml));
      }
    }
    if (request.explain) {
      json::Value explain = json::Value::Object();
      explain.Set("document", entry.name);
      explain.Set("strategy_used",
                  std::string(query::StrategyName(result->strategy_used)));
      explain.Set("text", result->explain);
      explains.Append(std::move(explain));
    }
  }

  if (ranked_mode) {
    std::sort(hits.begin(), hits.end(), OutranksHit);
    if (hits.size() > static_cast<uint64_t>(effective_k)) {
      hits.erase(hits.begin() + static_cast<ptrdiff_t>(effective_k),
                 hits.end());
    }
    answer_count = hits.size();
    for (const RankedHit& hit : hits) {
      if (request.max_answers >= 0 &&
          answers.size() >= static_cast<size_t>(request.max_answers)) {
        truncated = true;
        break;
      }
      const collection::CollectionEntry& entry =
          collection_.entry(hit.document_index);
      json::Value answer =
          AnswerToJson(entry.name, hit.document_index, hit.fragment,
                       entry.document, request.include_xml);
      answer.Set("score", hit.score);
      answers.Append(std::move(answer));
    }
  }

  json::Value body = json::Value::Object();
  body.Set("query", request.query.ToString());
  if (ranked_mode) {
    body.Set("ranked", true);
    if (request.top_k >= 0) body.Set("top_k", request.top_k);
  }
  body.Set("documents", static_cast<uint64_t>(collection_.size()));
  body.Set("documents_evaluated", static_cast<uint64_t>(documents_evaluated));
  body.Set("documents_skipped", static_cast<uint64_t>(documents_skipped));
  body.Set("answer_count", static_cast<uint64_t>(answer_count));
  if (truncated) body.Set("truncated", true);
  body.Set("answers", std::move(answers));
  body.Set("metrics", StatsRegistry::OpMetricsToJson(outcome.metrics));
  if (request.explain) body.Set("explain", std::move(explains));
  body.Set("elapsed_ms", timer.ElapsedMillis());
  outcome.body = std::move(body);
  // Only fully successful bodies are cached (errors and deadline
  // expirations returned above never reach this point).
  if (!cache_key.empty()) result_cache_->Insert(cache_key, outcome.body);
  return outcome;
}

json::Value QueryService::HealthzJson() const {
  json::Value body = json::Value::Object();
  body.Set("status", "ok");
  body.Set("documents", static_cast<uint64_t>(collection_.size()));
  body.Set("total_nodes", static_cast<uint64_t>(collection_.TotalNodes()));
  return body;
}

json::Value QueryService::VersionJson() const {
  json::Value body = json::Value::Object();
  body.Set("version", kVersion);
  body.Set("build", BuildInfo("xfragd"));
  return body;
}

json::Value QueryService::CacheStatsJson() const {
  uint64_t entries = 0, bytes = 0, hits = 0, misses = 0, evictions = 0;
  for (const auto& cache : caches_) {
    entries += cache->size();
    bytes += cache->bytes();
    hits += cache->hits();
    misses += cache->misses();
    evictions += cache->evictions();
  }
  json::Value body = json::Value::Object();
  body.Set("entries", entries);
  body.Set("bytes", bytes);
  body.Set("hits", hits);
  body.Set("misses", misses);
  body.Set("evictions", evictions);
  return body;
}

json::Value QueryService::ResultCacheStatsJson() const {
  return result_cache_->StatsJson();
}

void QueryService::InvalidateCaches() const {
  result_cache_->Clear();
  for (const auto& cache : caches_) cache->Clear();
}

}  // namespace xfrag::server
